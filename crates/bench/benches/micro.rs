//! Criterion microbenchmarks for the substrate operations the paper's
//! costs decompose into, plus the ablations DESIGN.md §5 calls out:
//!
//! * `spt_build/*` — Skippy vs linear Maplog scan (the n log n claim);
//! * `cache_keying/*` — Pagelog-offset vs per-snapshot cache keys
//!   (cross-snapshot sharing);
//! * `cow_commit/*` — commit overhead with and without a declared
//!   snapshot (the COW capture cost);
//! * `result_table/*` — blind inserts vs probe+update on an indexed
//!   result table (Figure 12's explanation);
//! * `engine/*` — parser and executor hot paths.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use rql_pagestore::{CacheKeying, PageId, PagerConfig};
use rql_retro::{RetroConfig, RetroStore};
use rql_sqlengine::{parse_statements, Database, Value};

fn config(keying: CacheKeying, use_skippy: bool) -> RetroConfig {
    RetroConfig {
        pager: PagerConfig {
            page_size: 4096,
            cache_capacity: 1 << 14,
            wal_sync_on_commit: false,
        },
        use_skippy,
        keying,
        pagelog_format: rql_retro::PagelogFormat::Raw,
    }
}

/// A store with `pages` pages and `snapshots` snapshots, each snapshot
/// followed by `writes_per_snapshot` page writes.
fn store_with_history(
    cfg: RetroConfig,
    pages: u64,
    snapshots: u64,
    writes_per_snapshot: u64,
) -> Arc<RetroStore> {
    let store = RetroStore::in_memory(cfg);
    let mut txn = store.begin().unwrap();
    for _ in 0..pages {
        txn.allocate_page();
    }
    store.commit(txn).unwrap();
    let mut cursor = 0u64;
    for _ in 0..snapshots {
        let t = store.begin().unwrap();
        store.commit_with_snapshot(t).unwrap();
        let mut txn = store.begin().unwrap();
        for _ in 0..writes_per_snapshot {
            let pid = PageId(cursor % pages);
            cursor += 1;
            let mut page = txn.page_for_update(pid).unwrap();
            page.write_u64(0, cursor);
            txn.write_page(pid, page).unwrap();
        }
        store.commit(txn).unwrap();
    }
    store
}

fn bench_spt_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("spt_build");
    for (label, use_skippy) in [("skippy", true), ("linear", false)] {
        let store = store_with_history(
            config(CacheKeying::ByPagelogOffset, use_skippy),
            256,
            200,
            64,
        );
        group.bench_function(format!("{label}/oldest_snapshot"), |b| {
            b.iter(|| store.build_spt(1).unwrap())
        });
        group.bench_function(format!("{label}/recent_snapshot"), |b| {
            b.iter(|| store.build_spt(190).unwrap())
        });
    }
    group.finish();
}

fn bench_cache_keying(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_keying");
    for (label, keying) in [
        ("pagelog_offset", CacheKeying::ByPagelogOffset),
        ("per_snapshot", CacheKeying::PerSnapshot),
    ] {
        let store = store_with_history(config(keying, true), 128, 20, 8);
        group.bench_function(format!("{label}/two_consecutive_snapshots"), |b| {
            b.iter(|| {
                store.cache().clear();
                for sid in [1u64, 2u64] {
                    let reader = store.open_snapshot(sid).unwrap();
                    for p in 0..reader.page_count() {
                        reader.page(PageId(p)).unwrap();
                    }
                }
            })
        });
    }
    group.finish();
}

fn bench_cow_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("cow_commit");
    for (label, declare) in [("plain_commit", false), ("after_snapshot", true)] {
        group.bench_function(format!("{label}/64_page_txn"), |b| {
            b.iter_batched(
                || {
                    let store =
                        store_with_history(config(CacheKeying::ByPagelogOffset, true), 128, 0, 0);
                    if declare {
                        let t = store.begin().unwrap();
                        store.commit_with_snapshot(t).unwrap();
                    }
                    store
                },
                |store| {
                    let mut txn = store.begin().unwrap();
                    for p in 0..64 {
                        let pid = PageId(p);
                        let mut page = txn.page_for_update(pid).unwrap();
                        page.write_u64(0, p);
                        txn.write_page(pid, page).unwrap();
                    }
                    store.commit(txn).unwrap();
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_result_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("result_table");
    // Figure 12's cost explanation: blind inserts (CollateData, no key)
    // vs probe+update through an index (AggregateDataInTable).
    group.bench_function("blind_insert_1k", |b| {
        b.iter_batched(
            || {
                let db = Database::default_in_memory();
                db.execute("CREATE TABLE r (k INTEGER, v INTEGER)").unwrap();
                db
            },
            |db| {
                db.with_table_writer("r", |w| {
                    for i in 0..1000 {
                        w.insert(vec![Value::Integer(i), Value::Integer(i)])?;
                    }
                    Ok(())
                })
                .unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("probe_update_1k", |b| {
        b.iter_batched(
            || {
                let db = Database::default_in_memory();
                db.execute("CREATE TABLE r (k INTEGER, v INTEGER)").unwrap();
                db.execute("CREATE INDEX r_k ON r (k)").unwrap();
                db.with_table_writer("r", |w| {
                    for i in 0..1000 {
                        w.insert(vec![Value::Integer(i), Value::Integer(i)])?;
                    }
                    Ok(())
                })
                .unwrap();
                db
            },
            |db| {
                db.with_table_writer("r", |w| {
                    for i in 0..1000 {
                        let hits = w.probe(0, &[Value::Integer(i)])?;
                        let (rid, old) = hits.into_iter().next().unwrap();
                        let mut new_row = old.clone();
                        new_row[1] = Value::Integer(i + 1);
                        w.update(rid, &old, new_row)?;
                    }
                    Ok(())
                })
                .unwrap();
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.bench_function("parse_qq_agg", |b| {
        b.iter(|| {
            parse_statements(
                "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av \
                 FROM orders GROUP BY o_custkey",
            )
            .unwrap()
        })
    });
    let db = Database::default_in_memory();
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
    db.with_table_writer("t", |w| {
        for i in 0..5000 {
            w.insert(vec![Value::Integer(i), Value::text(format!("row{i}"))])?;
        }
        Ok(())
    })
    .unwrap();
    group.bench_function("scan_filter_5k", |b| {
        b.iter(|| db.query("SELECT COUNT(*) FROM t WHERE a % 7 = 0").unwrap())
    });
    group.bench_function("group_by_5k", |b| {
        b.iter(|| {
            db.query("SELECT a % 10, COUNT(*) FROM t GROUP BY a % 10")
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spt_build,
    bench_cache_keying,
    bench_cow_commit,
    bench_result_table,
    bench_engine
);
criterion_main!(benches);
