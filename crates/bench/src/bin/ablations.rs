//! Runs the ablations/extensions section (probe vs sort-merge, Skippy vs
//! linear scan, parallel iteration).
fn main() {
    match rql_bench::experiments::ablations::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("ablations failed: {e}");
            std::process::exit(1);
        }
    }
}
