//! Runs every experiment of the paper's evaluation and prints one
//! markdown document (the content recorded in `EXPERIMENTS.md`).
//!
//! ```sh
//! cargo run --release -p rql-bench --bin all_experiments > results.md
//! RQL_BENCH_FAST=1 cargo run --release -p rql-bench --bin all_experiments  # smoke run
//! ```

use rql_bench::experiments;
use rql_bench::harness::{bench_sf, cost_model, phase};

fn main() {
    let started = std::time::Instant::now();
    println!("# RQL reproduction — experimental results\n");
    println!(
        "Configuration: scale factor {}, modeled Pagelog read cost {:?}, page size 4 KiB.\n",
        bench_sf(),
        cost_model().pagelog_read_cost
    );
    println!("{}", experiments::table1::run());
    type Section = (&'static str, fn() -> rql_sqlengine::Result<String>);
    let sections: Vec<Section> = vec![
        ("Figure 6", experiments::fig6::run),
        ("Figure 7", experiments::fig7::run),
        ("Figure 8", experiments::fig8::run),
        ("Figure 9", experiments::fig9::run),
        ("Figure 10", experiments::fig10::run),
        ("Figure 11", experiments::fig11::run),
        ("Figure 12", experiments::fig12::run),
        ("Figure 13", experiments::fig13::run),
        ("§5.3 memory", experiments::mem_table::run),
        ("Ablations", experiments::ablations::run),
        ("Delta iteration", experiments::delta_iteration::run),
        ("Memo cache", experiments::memo_cache::run),
        ("Prune scan", experiments::prune_scan::run),
    ];
    let mut failures = 0;
    for (name, f) in sections {
        let (result, elapsed) = phase(name, f);
        match result {
            Ok(md) => {
                print!("{md}");
                eprintln!("[{name}] done in {elapsed:?}");
            }
            Err(e) => {
                println!("## {name}\n\nFAILED: {e}\n");
                eprintln!("[{name}] FAILED: {e}");
                failures += 1;
            }
        }
    }
    eprintln!("all experiments finished in {:?}", started.elapsed());
    // RQL_TRACE=out.json: export the phase spans for Perfetto.
    match rql_trace::export_from_env() {
        Some((path, Ok(()))) => eprintln!("trace written to {}", path.display()),
        Some((path, Err(e))) => eprintln!("RQL_TRACE export to {} failed: {e}", path.display()),
        None => {}
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
