//! Runs the delta-iteration ablation (Qq-phase speedup vs snapshot
//! spacing for the delta pipeline).
fn main() {
    match rql_bench::experiments::delta_iteration::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("delta_iteration failed: {e}");
            std::process::exit(1);
        }
    }
}
