//! Regenerates the paper's Figure 10.
fn main() {
    match rql_bench::experiments::fig10::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig10 failed: {e}");
            std::process::exit(1);
        }
    }
}
