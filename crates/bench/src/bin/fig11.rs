//! Regenerates the paper's Figure 11.
fn main() {
    match rql_bench::experiments::fig11::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig11 failed: {e}");
            std::process::exit(1);
        }
    }
}
