//! Regenerates the paper's Figure 12.
fn main() {
    match rql_bench::experiments::fig12::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig12 failed: {e}");
            std::process::exit(1);
        }
    }
}
