//! Regenerates the paper's Figure 13.
fn main() {
    match rql_bench::experiments::fig13::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig13 failed: {e}");
            std::process::exit(1);
        }
    }
}
