//! Regenerates the paper's Figure 6.
fn main() {
    match rql_bench::experiments::fig6::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig6 failed: {e}");
            std::process::exit(1);
        }
    }
}
