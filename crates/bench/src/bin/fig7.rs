//! Regenerates the paper's Figure 7.
fn main() {
    match rql_bench::experiments::fig7::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig7 failed: {e}");
            std::process::exit(1);
        }
    }
}
