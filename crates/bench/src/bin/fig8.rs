//! Regenerates the paper's Figure 8.
fn main() {
    match rql_bench::experiments::fig8::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig8 failed: {e}");
            std::process::exit(1);
        }
    }
}
