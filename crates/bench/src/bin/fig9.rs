//! Regenerates the paper's Figure 9.
fn main() {
    match rql_bench::experiments::fig9::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("fig9 failed: {e}");
            std::process::exit(1);
        }
    }
}
