//! Regenerates the §5.3 memory-cost comparison.
fn main() {
    match rql_bench::experiments::mem_table::run() {
        Ok(md) => println!("{md}"),
        Err(e) => {
            eprintln!("mem_table failed: {e}");
            std::process::exit(1);
        }
    }
}
