//! Runs the memoization-cache ablation (cold vs warm Table-1 workload)
//! and prints its markdown section; writes `BENCH_memo.json`.
fn main() {
    match rql_bench::experiments::memo_cache::run() {
        Ok(md) => print!("{md}"),
        Err(e) => {
            eprintln!("memo_cache: {e}");
            std::process::exit(1);
        }
    }
}
