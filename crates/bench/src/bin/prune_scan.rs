//! Runs the pruning-sidecar selectivity sweep (pruned vs opaque
//! baseline) and prints its markdown section; writes `BENCH_prune.json`.
fn main() {
    match rql_bench::experiments::prune_scan::run() {
        Ok(md) => print!("{md}"),
        Err(e) => {
            eprintln!("prune_scan: {e}");
            std::process::exit(1);
        }
    }
}
