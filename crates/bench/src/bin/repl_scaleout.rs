//! Runs the replication scale-out lane (aggregate Qq throughput of a
//! leader + 2 streaming followers vs the leader alone) and prints its
//! markdown section; writes `BENCH_repl.json`.
fn main() {
    match rql_bench::experiments::repl_scaleout::run() {
        Ok(md) => print!("{md}"),
        Err(e) => {
            eprintln!("repl_scaleout: {e}");
            std::process::exit(1);
        }
    }
}
