//! Runs the standing-query maintenance lane (incremental advance vs
//! per-commit batch recompute) and prints its markdown section; writes
//! `BENCH_standing.json`.
fn main() {
    match rql_bench::experiments::standing_maintenance::run() {
        Ok(md) => print!("{md}"),
        Err(e) => {
            eprintln!("standing_maintenance: {e}");
            std::process::exit(1);
        }
    }
}
