//! Prints Table 1 (parameters and notations) as implemented.
fn main() {
    println!("{}", rql_bench::experiments::table1::run());
}
