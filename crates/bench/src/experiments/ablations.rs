//! Ablations and extensions beyond the paper's figures:
//!
//! 1. **AggregateDataInTable strategy** — index probe (the paper's
//!    implementation) vs sort-merge (the alternative §3 reports as
//!    costlier).
//! 2. **Skippy vs linear Maplog scan** — SPT-build entries touched for
//!    an old snapshot (the Skippy n log n claim).
//! 3. **Parallel iteration** — §7's future work: Qq phases executed on a
//!    thread pool, byte-identical results, wall-clock speedup.

use rql_retro::RetroConfig;
use rql_sqlengine::Result;
use rql_tpch::{build_history, UW30};

use crate::harness::{bench_config, bench_sf, fast_mode, phase, run_from_cold};
use crate::queries::{QQ_AGG, QQ_IO};

/// Run the ablations, returning a markdown section.
pub fn run() -> Result<String> {
    let interval = if fast_mode() { 5 } else { 50 };
    let mut out = String::new();
    out.push_str("## Ablations and extensions\n\n");

    // --- 1. probe vs sort-merge -----------------------------------------
    {
        let mut h = build_history(bench_config(), bench_sf(), UW30, interval, false)?;
        h.age_all_snapshots()?;
        let qs = h.qs(1, interval, 1);
        let pairs = vec![("cn".to_string(), rql::AggOp::Max)];
        let (res, hash_time) = phase("ablation:agg-probe", || {
            run_from_cold(&h.session, "abl_hash", || {
                h.session
                    .aggregate_data_in_table(&qs, QQ_AGG, "abl_hash", &pairs)
            })
        });
        res?;
        let (res, merge_time) = phase("ablation:agg-sortmerge", || {
            run_from_cold(&h.session, "abl_merge", || {
                h.session
                    .aggregate_data_in_table_sortmerge(&qs, QQ_AGG, "abl_merge", &pairs)
            })
        });
        res?;
        let same = {
            let a = h
                .session
                .query_aux("SELECT o_custkey, cn, av FROM abl_hash ORDER BY o_custkey, av, cn")?;
            let b = h
                .session
                .query_aux("SELECT o_custkey, cn, av FROM abl_merge ORDER BY o_custkey, av, cn")?;
            a.rows == b.rows
        };
        out.push_str(&format!(
            "### AggregateDataInTable strategy (Qs_{interval}, Qq_agg, UW30)\n\n\
             | strategy | wall time |\n|---|---|\n\
             | index probe (paper) | {:?} |\n| sort-merge | {:?} |\n\n\
             - Results identical: {same}. Sort-merge costs {:.2}× the probe plan. \
             The paper reports sort-merge \"turned out to be costlier\"; the \
             crossover depends on the result-table/output-size ratio, which at \
             this scale is far smaller than the paper's 50-iteration, 1M-record \
             regime.\n\n",
            hash_time,
            merge_time,
            merge_time.as_secs_f64() / hash_time.as_secs_f64().max(1e-9)
        ));
    }

    // --- 2. Skippy vs linear scan ----------------------------------------
    {
        // Long, fully sealed history: the Skippy gap grows with history
        // length while the linear scan pays for every raw entry.
        let long = if fast_mode() {
            40
        } else {
            4 * UW30.overwrite_cycle()
        };
        let entries = |use_skippy: bool| -> Result<(u64, u64)> {
            let mut cfg: RetroConfig = bench_config();
            cfg.use_skippy = use_skippy;
            let h = build_history(cfg, bench_sf(), UW30, long, false)?;
            let store = h.session.snap_db().store();
            store.stats().reset();
            let reader = store.open_snapshot(1)?;
            Ok((
                reader.build_stats().entries_scanned,
                store.maplog_entries() as u64,
            ))
        };
        let (skippy, total) = entries(true)?;
        let (linear, _) = entries(false)?;
        out.push_str(&format!(
            "### SPT build for the oldest snapshot (Maplog of {total} raw entries)\n\n\
             | scan | entries touched |\n|---|---|\n\
             | Skippy skip levels | {skippy} |\n| linear Maplog scan | {linear} |\n\n\
             - Skippy touches {:.1}× fewer entries; the gap widens with history \
             length (the paper's `O(n log n)` vs history-proportional cost).\n\n",
            linear as f64 / skippy.max(1) as f64
        ));
    }

    // --- 3. adaptive (Thresher-style) Pagelog ------------------------------
    {
        // Diffs pay off for small in-place edits, not for the refresh
        // workload's whole-record churn — so this ablation drives an
        // UPDATE-heavy history (price adjustments scattered over every
        // page) and snapshots it.
        let build = |format: rql_retro::PagelogFormat| -> Result<std::sync::Arc<rql::RqlSession>> {
            let mut cfg = bench_config();
            cfg.pagelog_format = format;
            let session = rql::RqlSession::new(cfg)?;
            rql_tpch::load_initial(session.snap_db(), &rql_tpch::Tpch::new(bench_sf()))?;
            for round in 0..interval {
                session.execute(&format!(
                    "UPDATE orders SET o_totalprice = o_totalprice + 1 \
                     WHERE o_orderkey % {interval} = {round}"
                ))?;
                session.declare_snapshot(None)?;
            }
            // One more full round so snapshot 1 is fully archived.
            session.execute("UPDATE orders SET o_totalprice = o_totalprice + 1")?;
            session.snap_db().store().cache().clear();
            Ok(session)
        };
        let raw = build(rql_retro::PagelogFormat::Raw)?;
        let adaptive = build(rql_retro::PagelogFormat::Adaptive { max_chain: 4 })?;
        let cold_reads = |s: &rql::RqlSession| -> Result<u64> {
            let store = s.snap_db().store();
            store.cache().clear();
            store.stats().reset();
            // Read a late snapshot: its pre-states sit at the deep end of
            // the diff chains, so reconstruction cost is visible.
            s.query(&format!("SELECT AS OF {interval} COUNT(*) FROM orders"))?;
            Ok(store.stats().snapshot().pagelog_reads)
        };
        let raw_reads = cold_reads(&raw)?;
        let adaptive_reads = cold_reads(&adaptive)?;
        let raw_bytes = raw.snap_db().store().pagelog().size_bytes();
        let adaptive_store = adaptive.snap_db().store().clone();
        let adaptive_bytes = adaptive_store.pagelog().size_bytes();
        out.push_str(&format!(
            "### Adaptive (Thresher-style) Pagelog, §6's space/reconstruction trade-off\n\n\
             | format | archive size | diff entries | cold late-snapshot pagelog reads |\n|---|---|---|---|\n\
             | raw full pages (Retro) | {} KiB | 0 | {raw_reads} |\n\
             | adaptive page-diff | {} KiB | {} | {adaptive_reads} |\n\n\
             - The archive shrinks {:.1}× while reconstruction touches {:.1}× more \
             log entries — \"more compact snapshot representation\" for \"a higher \
             cost of snapshot reconstruction\", as §6 describes.\n\n",
            raw_bytes >> 10,
            adaptive_bytes >> 10,
            adaptive_store.pagelog().diff_count(),
            raw_bytes as f64 / adaptive_bytes.max(1) as f64,
            adaptive_reads as f64 / raw_reads.max(1) as f64,
        ));
    }

    // --- 4. parallel iteration (future work) ------------------------------
    {
        let mut h = build_history(bench_config(), bench_sf(), UW30, interval, false)?;
        h.age_all_snapshots()?;
        let qs = h.qs(1, interval, 1);
        let (res, seq) = phase("ablation:collate-sequential", || {
            run_from_cold(&h.session, "abl_seq", || {
                h.session.collate_data(&qs, QQ_IO, "abl_seq")
            })
        });
        res?;
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get().min(8));
        let (res, par) = phase("ablation:collate-parallel", || {
            run_from_cold(&h.session, "abl_par", || {
                rql::collate_data_parallel(
                    h.session.snap_db(),
                    h.session.aux_db(),
                    &qs,
                    QQ_IO,
                    "abl_par",
                    threads,
                )
            })
        });
        res?;
        let same = {
            let a = h.session.query_aux("SELECT COUNT(*) FROM abl_seq")?;
            let b = h.session.query_aux("SELECT COUNT(*) FROM abl_par")?;
            a.rows == b.rows
        };
        out.push_str(&format!(
            "### Parallel iteration (paper §7 future work), {threads} threads\n\n\
             | variant | wall time |\n|---|---|\n\
             | sequential CollateData | {seq:?} |\n| parallel Qq phase | {par:?} |\n\n\
             - Identical output: {same}; speedup {:.2}× on the Qq phase (snapshot \
             readers are read-only MVCC transactions, so iterations parallelize \
             freely; the fold stays sequential). Wall-clock speedup requires \
             multiple cores — this host reports {} — correctness of the parallel \
             path is what the run demonstrates.\n\n",
            seq.as_secs_f64() / par.as_secs_f64().max(1e-9),
            std::thread::available_parallelism().map_or(1, |n| n.get())
        ));
    }
    Ok(out)
}
