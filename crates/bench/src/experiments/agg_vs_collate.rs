//! Shared runs for Figures 11–13: producing the same across-time
//! aggregation with `CollateData` + a final SQL query vs.
//! `AggregateDataInTable`, under UW30 with `Qq_agg`.

use std::time::Duration;

use rql::{AggOp, RqlReport};
use rql_sqlengine::Result;
use rql_tpch::{build_history, SnapshotHistory, UW30};

use crate::harness::{bench_config, bench_sf, fast_mode, phase, run_from_cold};
use crate::queries::QQ_AGG;

/// One approach's outcome.
pub struct ApproachRun {
    /// Display label.
    pub label: String,
    /// The mechanism's report.
    pub report: RqlReport,
    /// Extra final-aggregation query time (CollateData approaches only).
    pub extra_query: Duration,
    /// Result-table size in bytes (pages × page size).
    pub result_bytes: u64,
    /// Result-table row count.
    pub result_rows: u64,
    /// Auxiliary-database pages written during the run (insert/update
    /// volume on the result table).
    pub aux_pages_written: u64,
}

/// Build the shared UW30 history for these figures.
pub fn history() -> Result<SnapshotHistory> {
    let interval = interval_len();
    let mut h = build_history(bench_config(), bench_sf(), UW30, interval, false)?;
    h.age_all_snapshots()?;
    Ok(h)
}

/// Interval length (Qs_50, or shorter in fast mode).
pub fn interval_len() -> u64 {
    if fast_mode() {
        5
    } else {
        50
    }
}

fn measure_result_table(h: &SnapshotHistory, table: &str) -> Result<(u64, u64)> {
    let bytes = h.session.aux_db().table_size_bytes(table)?;
    let rows = h.session.aux_db().table_row_count(table)?;
    Ok((bytes, rows))
}

/// `CollateData` + final SQL aggregation (1 or 2 aggregate functions).
pub fn run_collate(h: &SnapshotHistory, two_aggs: bool) -> Result<ApproachRun> {
    let qs = h.qs(1, interval_len(), 1);
    let table = "fig11_collate";
    let aux_before = h.session.aux_db().io_stats().snapshot();
    let report = run_from_cold(&h.session, table, || {
        h.session.collate_data(&qs, QQ_AGG, table)
    })?;
    let final_query = if two_aggs {
        format!("SELECT o_custkey, MAX(cn) AS cn, MAX(av) AS av FROM {table} GROUP BY o_custkey")
    } else {
        format!("SELECT o_custkey, MAX(cn) AS cn, av FROM {table} GROUP BY o_custkey")
    };
    let (final_rows, extra_query) = phase("collate:final-aggregation", || {
        h.session.query_aux(&final_query).map(|r| r.rows.len())
    });
    let final_rows = final_rows?;
    let (result_bytes, result_rows) = measure_result_table(h, table)?;
    let aux_pages_written = h
        .session
        .aux_db()
        .io_stats()
        .snapshot()
        .delta(&aux_before)
        .pages_written;
    let _ = final_rows;
    Ok(ApproachRun {
        label: format!(
            "CollateData + {} agg. query",
            if two_aggs { "2-func" } else { "1-func" }
        ),
        report,
        extra_query,
        result_bytes,
        result_rows,
        aux_pages_written,
    })
}

/// `AggregateDataInTable` with 1 or 2 aggregations, or a custom op set.
pub fn run_agg_table(
    h: &SnapshotHistory,
    pairs: &[(String, AggOp)],
    label: &str,
) -> Result<ApproachRun> {
    let qs = h.qs(1, interval_len(), 1);
    let table = "fig11_aggtable";
    let aux_before = h.session.aux_db().io_stats().snapshot();
    let report = run_from_cold(&h.session, table, || {
        h.session.aggregate_data_in_table(&qs, QQ_AGG, table, pairs)
    })?;
    let (result_bytes, result_rows) = measure_result_table(h, table)?;
    let aux_pages_written = h
        .session
        .aux_db()
        .io_stats()
        .snapshot()
        .delta(&aux_before)
        .pages_written;
    Ok(ApproachRun {
        label: label.to_owned(),
        report,
        extra_query: Duration::ZERO,
        result_bytes,
        result_rows,
        aux_pages_written,
    })
}

/// The standard one-aggregation pair `(cn, MAX)`.
pub fn one_agg() -> Vec<(String, AggOp)> {
    vec![("cn".to_owned(), AggOp::Max)]
}

/// The two-aggregation pair `(cn, MAX):(av, MAX)`.
pub fn two_aggs() -> Vec<(String, AggOp)> {
    vec![("cn".to_owned(), AggOp::Max), ("av".to_owned(), AggOp::Max)]
}
