//! Delta-driven iteration ablation — Qq-phase speedup vs snapshot
//! spacing (the Figure 6 x-axis).
//!
//! The delta pipeline re-reads only the pages that changed between
//! consecutive Qs snapshots and serves the rest from the scanner's row
//! cache, so its win is largest when snapshots are closely spaced (few
//! changed pages per step) and shrinks as spacing grows. This experiment
//! drives a history whose per-snapshot churn is a *contiguous* orderkey
//! range — a handful of heap pages per step — then compares sequential
//! `CollateData`/`AggregateDataInVariable` against `DeltaPolicy::Forced`
//! for increasing snapshot spacing.
//!
//! The buffer cache is configured smaller than the orders heap, so
//! cross-iteration sharing through the page cache (Figure 6's effect)
//! cannot help the sequential run: any saving visible here comes from
//! the delta scanner alone. Costs are modeled (`cpu + pagelog_reads ×
//! c_io`), like every other figure.

use rql::{AggOp, DeltaPolicy, RqlSession};
use rql_pagestore::PagerConfig;
use rql_retro::{PagelogFormat, RetroConfig};
use rql_sqlengine::Result;
use rql_tpch::{load_initial, Tpch};

use crate::harness::{bench_sf, cost_model, fast_mode, run_from_cold};
use crate::queries::QQ_IO;

/// History with `rounds` snapshots; round `r` updates the `(r % cycle)`-th
/// contiguous orderkey chunk, so consecutive snapshots differ in ~1/cycle
/// of the orders heap. A final full-table pass archives every page (all
/// snapshots "old"), and the cache is left cold.
fn build_session(rounds: u64, cycle: u64) -> Result<std::sync::Arc<RqlSession>> {
    let cfg = RetroConfig {
        pager: PagerConfig {
            page_size: 4096,
            // Smaller than the orders heap: defeats cross-iteration
            // sharing via the buffer cache, isolating the delta
            // scanner's contribution.
            cache_capacity: 8,
            wal_sync_on_commit: false,
        },
        use_skippy: true,
        keying: rql_pagestore::CacheKeying::ByPagelogOffset,
        pagelog_format: PagelogFormat::Raw,
    };
    let session = RqlSession::new(cfg)?;
    load_initial(session.snap_db(), &Tpch::new(bench_sf()))?;
    let maxk = session.query("SELECT MAX(o_orderkey) FROM orders")?.rows[0][0]
        .as_i64()
        .unwrap_or(0) as u64;
    let width = maxk / cycle + 1;
    for r in 0..rounds {
        let lo = (r % cycle) * width;
        session.execute(&format!(
            "UPDATE orders SET o_totalprice = o_totalprice + 1 \
             WHERE o_orderkey >= {lo} AND o_orderkey < {hi}",
            hi = lo + width
        ))?;
        session.declare_snapshot(None)?;
    }
    session.execute("UPDATE orders SET o_totalprice = o_totalprice + 1")?;
    session.snap_db().store().cache().clear();
    Ok(session)
}

fn qs_spaced(iterations: u64, spacing: u64) -> String {
    let end = 1 + (iterations - 1) * spacing;
    format!(
        "SELECT snap_id FROM SnapIds WHERE snap_id >= 1 AND snap_id <= {end} \
         AND (snap_id - 1) % {spacing} = 0 ORDER BY snap_id"
    )
}

fn tables_identical(session: &RqlSession, a: &str, b: &str) -> Result<bool> {
    let ra = session.query_aux(&format!("SELECT * FROM {a}"))?;
    let rb = session.query_aux(&format!("SELECT * FROM {b}"))?;
    Ok(ra.columns == rb.columns && ra.rows == rb.rows)
}

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let (iterations, spacings, cycle): (u64, Vec<u64>, u64) = if fast_mode() {
        (5, vec![1, 2, 5], 12)
    } else {
        (8, vec![1, 2, 5, 10], 16)
    };
    let rounds = 1 + (iterations - 1) * spacings.last().copied().unwrap_or(1);
    let session = build_session(rounds, cycle)?;
    let model = cost_model();

    let mut out = String::new();
    out.push_str("## Delta iteration ablation — Qq-phase speedup vs snapshot spacing\n\n");
    out.push_str(&format!(
        "CollateData(Qs_{iterations}, Qq_io) over old snapshots, buffer cache \
         smaller than the orders heap; per-snapshot churn = 1/{cycle} of the \
         orderkey space (contiguous). Costs are modeled Qq-phase totals \
         (SPT + index + eval + Pagelog I/O).\n\n"
    ));
    out.push_str(
        "| spacing | seq Qq cost (ms) | delta Qq cost (ms) | speedup | \
         plog rd seq | plog rd delta | pages skipped | identical |\n\
         |---|---|---|---|---|---|---|---|\n",
    );
    let mut speedups = Vec::new();
    for &spacing in &spacings {
        let qs = qs_spaced(iterations, spacing);
        let seq = run_from_cold(&session, "di_seq", || {
            session.collate_data(&qs, QQ_IO, "di_seq")
        })?;
        session.snap_db().store().cache().clear();
        let delta = run_from_cold(&session, "di_delta", || {
            session.collate_data_with_policy(&qs, QQ_IO, "di_delta", DeltaPolicy::Forced)
        })?;
        let same = tables_identical(&session, "di_seq", "di_delta")?;
        let s = seq.accumulated_stats();
        let d = delta.accumulated_stats();
        let seq_cost = s.total_cost(&model).as_secs_f64() * 1e3;
        let delta_cost = d.total_cost(&model).as_secs_f64() * 1e3;
        let speedup = seq_cost / delta_cost.max(1e-9);
        speedups.push((spacing, speedup));
        out.push_str(&format!(
            "| {spacing} | {seq_cost:.3} | {delta_cost:.3} | {speedup:.2}× | {} | {} | {} | {same} |\n",
            s.io.pagelog_reads, d.io.pagelog_reads, d.pages_skipped_delta,
        ));
    }
    out.push('\n');

    // AggregateDataInVariable takes the fully incremental path for
    // COUNT-shaped Qq: unchanged pages contribute neither I/O nor eval.
    {
        let qs = qs_spaced(iterations, 1);
        let seq = run_from_cold(&session, "di_av_seq", || {
            session.aggregate_data_in_variable(&qs, QQ_IO, "di_av_seq", AggOp::Avg)
        })?;
        session.snap_db().store().cache().clear();
        let delta = run_from_cold(&session, "di_av_delta", || {
            session.aggregate_data_in_variable_with_policy(
                &qs,
                QQ_IO,
                "di_av_delta",
                AggOp::Avg,
                DeltaPolicy::Forced,
            )
        })?;
        let same = tables_identical(&session, "di_av_seq", "di_av_delta")?;
        let s = seq.accumulated_stats();
        let d = delta.accumulated_stats();
        let seq_cost = s.total_cost(&model).as_secs_f64() * 1e3;
        let delta_cost = d.total_cost(&model).as_secs_f64() * 1e3;
        out.push_str(&format!(
            "### AggregateDataInVariable(Qs_{iterations}, Qq_io, AVG), spacing 1 \
             (incremental fold)\n\n\
             | variant | Qq cost (ms) | plog rd | identical |\n|---|---|---|---|\n\
             | sequential | {seq_cost:.3} | {} | — |\n\
             | delta (Forced) | {delta_cost:.3} | {} | {same} |\n\n\
             - Incremental-fold speedup: {:.2}×.\n\n",
            s.io.pagelog_reads,
            d.io.pagelog_reads,
            seq_cost / delta_cost.max(1e-9),
        ));
    }

    // Shape notes: ≥2× when closely spaced; the win shrinks with spacing.
    let close = speedups.first().copied().unwrap_or((1, 1.0));
    let wide = speedups.last().copied().unwrap_or((1, 1.0));
    out.push_str(&format!(
        "- Closely spaced (spacing {}): Qq-phase speedup {:.2}× (target ≥ 2×): {}\n",
        close.0,
        close.1,
        if close.1 >= 2.0 { "OK" } else { "UNEXPECTED" }
    ));
    out.push_str(&format!(
        "- Speedup declines with spacing ({:.2}× at {} → {:.2}× at {}): {}\n\n",
        close.1,
        close.0,
        wide.1,
        wide.0,
        if close.1 > wide.1 { "OK" } else { "UNEXPECTED" }
    ));
    Ok(out)
}
