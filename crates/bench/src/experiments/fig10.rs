//! Figure 10 — Single-iteration cost for
//! `CollateData(Qs_50, Qq_collate, T)` with varying Qq output size,
//! under UW30.
//!
//! The paper varies `Qq_collate`'s date predicate to return ~500, 100K,
//! 600K and 1M records out of 1.5M orders; scaled down, the same
//! *fractions* of the order table are used. Expected shape: the RQL UDF
//! component (result-table inserts) grows roughly linearly with the
//! output size and dominates for large outputs, while sharing (I/O)
//! stays minimal.

use rql_sqlengine::Result;
use rql_tpch::{build_history, UW30};

use crate::harness::{
    bench_config, bench_sf, breakdown_header, breakdown_row, cold_stats, cost_model, fast_mode,
    hot_mean_stats, run_from_cold,
};
use crate::queries::{date_at_fraction, qq_collate};

/// Output-size fractions mirroring the paper's 500 / 100K / 600K / 1M of
/// 1.5M orders.
const FRACTIONS: [(f64, &str); 4] = [
    (0.0007, "~500 of 1.5M"),
    (0.0667, "~100K of 1.5M"),
    (0.40, "~600K of 1.5M"),
    (0.667, "~1M of 1.5M"),
];

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let interval = if fast_mode() { 5 } else { 50 };
    let mut history = build_history(bench_config(), bench_sf(), UW30, interval, false)?;
    history.age_all_snapshots()?;
    let model = cost_model();
    let qs = history.qs(1, interval, 1);
    let mut out = String::new();
    out.push_str(
        "## Figure 10 — Single-iteration cost, CollateData(Qs_50, Qq_collate, T), UW30\n\n",
    );
    out.push_str(&breakdown_header());
    out.push('\n');
    let mut udf_series: Vec<(u64, f64)> = Vec::new();
    for (frac, paper_label) in FRACTIONS {
        let date = date_at_fraction(&history.session, 1, frac)?;
        let qq = qq_collate(&date);
        let report = run_from_cold(&history.session, "fig10_result", || {
            history.session.collate_data(&qs, &qq, "fig10_result")
        })?;
        let rows = report.iterations.first().map_or(0, |i| i.qq_rows);
        let (cold, cold_udf) = cold_stats(&report);
        out.push_str(&breakdown_row(
            &format!("{rows} records ({paper_label}) cold"),
            &cold,
            cold_udf,
            &model,
        ));
        out.push('\n');
        let (hot, hot_udf) = hot_mean_stats(&report);
        out.push_str(&breakdown_row(
            &format!("{rows} records ({paper_label}) hot"),
            &hot,
            hot_udf,
            &model,
        ));
        out.push('\n');
        udf_series.push((rows, hot_udf.as_secs_f64() * 1e3));
    }
    out.push('\n');
    let monotone = udf_series.windows(2).all(|w| w[1].1 >= w[0].1 * 0.8);
    out.push_str(&format!(
        "- RQL UDF time grows with Qq output size ({}): {}.\n\n",
        udf_series
            .iter()
            .map(|(r, ms)| format!("{r} rows → {ms:.2} ms"))
            .collect::<Vec<_>>()
            .join(", "),
        if monotone {
            "as in the paper"
        } else {
            "UNEXPECTED"
        }
    ));
    Ok(out)
}
