//! Figure 11 — Whole-computation comparison: `CollateData` + final SQL
//! query vs `AggregateDataInTable`, 1 vs 2 aggregations, under UW30.
//!
//! Expected shape: total times are close (the paper measured ~6%
//! overhead for `AggregateDataInTable`), the extra final-aggregation
//! query is visible only on the CollateData side, adding a second
//! aggregation is cheap for both — and `AggregateDataInTable`'s result
//! table is an order of magnitude smaller (1 GB vs < 100 MB in the
//! paper), independent of the snapshot-interval length.

use rql_sqlengine::Result;

use super::agg_vs_collate::{history, interval_len, one_agg, run_agg_table, run_collate, two_aggs};
use crate::harness::cost_model;

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let h = history()?;
    let model = cost_model();
    let runs = vec![
        run_collate(&h, false)?,
        run_agg_table(&h, &one_agg(), "AggregateDataInTable, 1 agg")?,
        run_collate(&h, true)?,
        run_agg_table(&h, &two_aggs(), "AggregateDataInTable, 2 aggs")?,
    ];
    let mut out = String::new();
    out.push_str("## Figure 11 — CollateData vs AggregateDataInTable (whole computation)\n\n");
    out.push_str(
        "| approach | total (ms, modeled) | extra agg. query (ms) | UDF (ms) | \
         result rows | result size |\n|---|---|---|---|---|---|\n",
    );
    for r in &runs {
        out.push_str(&format!(
            "| {} | {:.2} | {:.3} | {:.2} | {} | {} |\n",
            r.label,
            (r.report.total_cost(&model) + r.extra_query).as_secs_f64() * 1e3,
            r.extra_query.as_secs_f64() * 1e3,
            r.report.total_udf_time().as_secs_f64() * 1e3,
            r.result_rows,
            human_bytes(r.result_bytes),
        ));
    }
    out.push('\n');
    let collate = &runs[0];
    let aggtab = &runs[1];
    let overhead = (aggtab.report.total_cost(&model).as_secs_f64()
        / (collate.report.total_cost(&model) + collate.extra_query).as_secs_f64()
        - 1.0)
        * 100.0;
    let shrink = collate.result_bytes as f64 / aggtab.result_bytes.max(1) as f64;
    // The achievable reduction is bounded by the interval length (CollateData
    // materializes every iteration's output); expect a solid fraction of it.
    let expected_shrink = (interval_len() as f64 / 8.0).max(1.5);
    out.push_str(&format!(
        "- AggregateDataInTable overhead vs CollateData: {overhead:+.1}% (paper: ≈ +6% \
         when the 1M-record Qq dominates; at this scale the per-record probe is a \
         larger share): {}.\n- Result-table footprint reduction: {shrink:.1}× against \
         an interval-length bound of {}× (paper: > 10×, 1 GB → < 100 MB): {}.\n\n",
        if overhead > 0.0 {
            "AggregateDataInTable is the slower one, as in the paper"
        } else {
            "UNEXPECTED: not slower"
        },
        interval_len(),
        if shrink > expected_shrink {
            "reduction reproduced"
        } else {
            "UNEXPECTED"
        }
    ));
    Ok(out)
}

fn human_bytes(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}
