//! Figure 12 — Single-iteration cold/hot breakdown for
//! `CollateData(Qs_50, Qq_agg)` vs `AggregateDataInTable(Qs_50, Qq_agg,
//! (cn,MAX))`, under UW30.
//!
//! Expected shape: the cold iteration is more expensive for
//! `AggregateDataInTable` (it also builds the result-table index, and
//! its inserts maintain a key); the hot iterations are more expensive
//! too (per record: index probe + occasional update, vs a blind
//! insert).

use rql_sqlengine::Result;

use super::agg_vs_collate::{history, one_agg, run_agg_table, run_collate};
use crate::harness::{breakdown_header, breakdown_row, cold_stats, cost_model, hot_mean_stats};

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let h = history()?;
    let model = cost_model();
    let collate = run_collate(&h, false)?;
    let aggtab = run_agg_table(&h, &one_agg(), "AggregateDataInTable")?;
    let mut out = String::new();
    out.push_str(
        "## Figure 12 — Single-iteration cost, CollateData vs AggregateDataInTable, UW30\n\n",
    );
    out.push_str(&breakdown_header());
    out.push('\n');
    for (name, run) in [("CollateData", &collate), ("AggregateDataInTable", &aggtab)] {
        let (cold, cold_udf) = cold_stats(&run.report);
        out.push_str(&breakdown_row(
            &format!("{name} cold"),
            &cold,
            cold_udf,
            &model,
        ));
        out.push('\n');
        let (hot, hot_udf) = hot_mean_stats(&run.report);
        out.push_str(&breakdown_row(
            &format!("{name} hot"),
            &hot,
            hot_udf,
            &model,
        ));
        out.push('\n');
    }
    out.push('\n');
    let (_, collate_cold_udf) = cold_stats(&collate.report);
    let (_, aggtab_cold_udf) = cold_stats(&aggtab.report);
    let (_, collate_hot_udf) = hot_mean_stats(&collate.report);
    let (_, aggtab_hot_udf) = hot_mean_stats(&aggtab.report);
    out.push_str(&format!(
        "- Cold UDF: CollateData {:.2} ms vs AggregateDataInTable {:.2} ms \
         (index creation on the result table): {}.\n",
        collate_cold_udf.as_secs_f64() * 1e3,
        aggtab_cold_udf.as_secs_f64() * 1e3,
        if aggtab_cold_udf >= collate_cold_udf {
            "as in the paper"
        } else {
            "UNEXPECTED"
        }
    ));
    out.push_str(&format!(
        "- Hot UDF: CollateData {:.2} ms (blind inserts) vs AggregateDataInTable \
         {:.2} ms (probe + insert/update): {}.\n\n",
        collate_hot_udf.as_secs_f64() * 1e3,
        aggtab_hot_udf.as_secs_f64() * 1e3,
        if aggtab_hot_udf >= collate_hot_udf {
            "as in the paper"
        } else {
            "UNEXPECTED"
        }
    ));
    Ok(out)
}
