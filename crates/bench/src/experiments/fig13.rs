//! Figure 13 — `AggregateDataInTable` with MAX vs SUM aggregation, under
//! UW30.
//!
//! Expected shape: cold iterations cost the same (identical inserts and
//! index creation); hot iterations are more expensive for SUM, which
//! must update the result table for *every* record Qq returns, while
//! MAX only updates when a group's maximum actually changes (the paper
//! measured ~1M updates for SUM vs ~22K for MAX per iteration).

use rql::AggOp;
use rql_sqlengine::Result;

use super::agg_vs_collate::{history, run_agg_table};
use crate::harness::{breakdown_header, breakdown_row, cold_stats, cost_model, hot_mean_stats};

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let h = history()?;
    let model = cost_model();
    let max_run = run_agg_table(&h, &[("cn".to_owned(), AggOp::Max)], "Max aggregation")?;
    let sum_run = run_agg_table(&h, &[("cn".to_owned(), AggOp::Sum)], "Sum aggregation")?;
    let mut out = String::new();
    out.push_str("## Figure 13 — AggregateDataInTable, MAX vs SUM, UW30\n\n");
    out.push_str(&breakdown_header());
    out.push('\n');
    for run in [&max_run, &sum_run] {
        let (cold, cold_udf) = cold_stats(&run.report);
        out.push_str(&breakdown_row(
            &format!("{} cold", run.label),
            &cold,
            cold_udf,
            &model,
        ));
        out.push('\n');
        let (hot, hot_udf) = hot_mean_stats(&run.report);
        out.push_str(&breakdown_row(
            &format!("{} hot", run.label),
            &hot,
            hot_udf,
            &model,
        ));
        out.push('\n');
    }
    out.push('\n');
    let (_, max_hot_udf) = hot_mean_stats(&max_run.report);
    let (_, sum_hot_udf) = hot_mean_stats(&sum_run.report);
    let max_updates = max_run.report.total_result_updates();
    let sum_updates = sum_run.report.total_result_updates();
    out.push_str(&format!(
        "- Result-table updates: MAX {} vs SUM {} (paper: ~22K vs ~1M per iteration — \
         SUM updates every group, MAX only changed maxima): {}.\n",
        max_updates,
        sum_updates,
        if sum_updates > max_updates * 2 {
            "as in the paper"
        } else {
            "UNEXPECTED"
        }
    ));
    out.push_str(&format!(
        "- Result-table pages written: MAX {} vs SUM {}.\n",
        max_run.aux_pages_written, sum_run.aux_pages_written
    ));
    out.push_str(&format!(
        "- Hot UDF time: MAX {:.2} ms vs SUM {:.2} ms: {}.\n\n",
        max_hot_udf.as_secs_f64() * 1e3,
        sum_hot_udf.as_secs_f64() * 1e3,
        if sum_hot_udf >= max_hot_udf {
            "as in the paper"
        } else {
            "close (both probe per record; update volume differs)"
        }
    ));
    Ok(out)
}
