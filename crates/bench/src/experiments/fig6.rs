//! Figure 6 — Ratio C with old snapshots: impact of sharing *between*
//! snapshots.
//!
//! `AggregateDataInVariable(Qs_N, Qq_io, AVG)` over intervals of N old
//! snapshots, for UW30/UW15 and skip 1/skip 10. Expected shape: C is
//! near 1 for short intervals (the cold first iteration dominates),
//! drops as N grows, and converges to a constant determined by sharing —
//! lower for UW15 than UW30 (smaller diff), lower for skip 1 than skip
//! 10 (closer snapshots share more).

use rql::AggOp;
use rql_sqlengine::Result;
use rql_tpch::{build_history, SnapshotHistory, UpdateWorkload, UW15, UW30};

use crate::harness::{
    all_cold_run, bench_config, bench_sf, cost_model, fast_mode, ratio_c, ratio_c_io, resolve_qs,
    run_from_cold,
};
use crate::queries::QQ_IO;

struct Series {
    label: String,
    /// (N, C_modeled, C_io) per interval length.
    points: Vec<(u64, f64, f64)>,
}

fn run_series(workload: UpdateWorkload, skip: u64, lengths: &[u64]) -> Result<Series> {
    let max_len = *lengths.iter().max().unwrap();
    // Enough snapshots to fit the longest (possibly skipping) interval.
    let span = (max_len - 1) * skip + 1;
    let mut history: SnapshotHistory =
        build_history(bench_config(), bench_sf(), workload, span, false)?;
    history.age_all_snapshots()?;
    let model = cost_model();
    let mut points = Vec::new();
    for &n in lengths {
        let qs = history.qs(1, n, skip);
        let report = run_from_cold(&history.session, "fig6_result", || {
            history
                .session
                .aggregate_data_in_variable(&qs, QQ_IO, "fig6_result", AggOp::Avg)
        })?;
        let sids = resolve_qs(&history.session, &qs)?;
        history.session.snap_db().store().cache().clear();
        let baseline = all_cold_run(&history.session, &sids, QQ_IO)?;
        points.push((
            n,
            ratio_c(&report, &baseline, &model),
            ratio_c_io(&report, &baseline),
        ));
    }
    Ok(Series {
        label: format!(
            "{}, AggV(Qs_N{}, Qq_io, AVG)",
            workload.name,
            if skip == 1 {
                String::new()
            } else {
                format!(" with step {skip}")
            }
        ),
        points,
    })
}

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let lengths: Vec<u64> = if fast_mode() {
        vec![1, 5, 10, 20]
    } else {
        vec![1, 5, 10, 20, 40, 60, 80, 100]
    };
    let skip10_lengths: Vec<u64> = lengths.iter().map(|&n| n.min(40)).collect();
    let mut out = String::new();
    out.push_str("## Figure 6 — Ratio C with old snapshots (sharing between snapshots)\n\n");
    out.push_str(
        "C = modeled RQL latency / modeled all-cold latency; C_io = pagelog-read ratio.\n\n",
    );
    let mut series = vec![
        run_series(UW30, 1, &lengths)?,
        run_series(UW15, 1, &lengths)?,
    ];
    if !fast_mode() {
        let mut dedup = skip10_lengths.clone();
        dedup.dedup();
        series.push(run_series(UW30, 10, &dedup)?);
        series.push(run_series(UW15, 10, &dedup)?);
    }
    for s in &series {
        out.push_str(&format!("### {}\n\n", s.label));
        out.push_str("| interval length N | C (modeled) | C (pagelog reads) |\n|---|---|---|\n");
        for (n, c, cio) in &s.points {
            out.push_str(&format!("| {n} | {c:.3} | {cio:.3} |\n"));
        }
        out.push('\n');
    }
    // Shape assertions the paper's figure implies.
    for s in &series {
        let first = s.points.first().unwrap();
        let last = s.points.last().unwrap();
        out.push_str(&format!(
            "- `{}`: C falls from {:.3} (N={}) to {:.3} (N={}): {}\n",
            s.label,
            first.1,
            first.0,
            last.1,
            last.0,
            if last.1 < first.1 {
                "as in the paper"
            } else {
                "UNEXPECTED"
            }
        ));
    }
    out.push('\n');
    Ok(out)
}
