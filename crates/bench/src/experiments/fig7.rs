//! Figure 7 — Ratio C with recent snapshots: impact of sharing with the
//! *current state*.
//!
//! Fixed-length intervals (20 snapshots, skip 1) starting at x, for x
//! moving from `Slast − OverwriteCycle − 20` (fully archived, all-cold
//! baseline constant) toward `Slast − 20` (sharing most pages with the
//! memory-resident database). Expected shape: C(x) first *drops* as x
//! becomes recent (measured RQL cost falls while the all-cold cost is
//! still constant), then *rises* toward 1 once the all-cold baseline
//! itself collapses (both runs read mostly from the database).

use rql::AggOp;
use rql_sqlengine::Result;
use rql_tpch::{build_history, UpdateWorkload, UW15, UW30};

use crate::harness::{
    all_cold_run, bench_config, bench_sf, cost_model, fast_mode, ratio_c, ratio_c_io, resolve_qs,
    run_from_cold,
};
use crate::queries::QQ_IO;

const INTERVAL: u64 = 20;

/// `(interval-start label, C modeled, C pagelog-reads)`.
type SeriesPoint = (String, f64, f64);

fn run_series(workload: UpdateWorkload) -> Result<(String, Vec<SeriesPoint>)> {
    let cycle = workload.overwrite_cycle();
    // History long enough that Slast − cycle − 20 is itself ≥ 1.
    let total = cycle + INTERVAL + 10;
    let history = build_history(bench_config(), bench_sf(), workload, total, false)?;
    let slast = history.last_snapshot();
    let model = cost_model();
    // Interval starts from the earliest point where the *end* of the
    // interval begins sharing with the current state, up to Slast − 20.
    let earliest_back = cycle + INTERVAL;
    let steps = if fast_mode() { 4 } else { 8 };
    let mut points = Vec::new();
    for i in 0..=steps {
        let back = earliest_back - (earliest_back - INTERVAL) * i / steps;
        let start = slast - back + 1;
        let qs = history.qs(start, INTERVAL, 1);
        let report = run_from_cold(&history.session, "fig7_result", || {
            history
                .session
                .aggregate_data_in_variable(&qs, QQ_IO, "fig7_result", AggOp::Avg)
        })?;
        let sids = resolve_qs(&history.session, &qs)?;
        history.session.snap_db().store().cache().clear();
        let baseline = all_cold_run(&history.session, &sids, QQ_IO)?;
        points.push((
            format!("Slast-{back}"),
            ratio_c(&report, &baseline, &model),
            ratio_c_io(&report, &baseline),
        ));
    }
    Ok((
        format!("{}, AggV(Qs_{INTERVAL}, Qq_io, AVG)", workload.name),
        points,
    ))
}

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let mut out = String::new();
    out.push_str("## Figure 7 — Ratio C with recent snapshots (sharing with current state)\n\n");
    out.push_str("Interval of 20 consecutive snapshots starting at `Slast-x`; x shrinking.\n\n");
    for workload in [UW30, UW15] {
        let (label, points) = run_series(workload)?;
        out.push_str(&format!("### {label}\n\n"));
        out.push_str("| interval start | C (modeled) | C (pagelog reads) |\n|---|---|---|\n");
        for (start, c, cio) in &points {
            out.push_str(&format!("| {start} | {c:.3} | {cio:.3} |\n"));
        }
        // Shape: minimum strictly inside the range (drop then rise).
        let min_idx = points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1 .1.total_cmp(&b.1 .1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        let ends_higher = points.last().unwrap().1 > points[min_idx].1;
        out.push_str(&format!(
            "\n- C dips at {} then {}\n\n",
            points[min_idx].0,
            if ends_higher {
                "rises toward 1 for the most recent intervals — as in the paper"
            } else {
                "UNEXPECTED: does not rise again"
            }
        ));
    }
    Ok(out)
}
