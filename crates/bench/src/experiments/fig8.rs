//! Figure 8 — Single-iteration cost for
//! `AggregateDataInVariable(Qs_50, Qq_io, AVG)` under UW30: the
//! I/O / SPT-build / query-evaluation / RQL-UDF breakdown for old
//! snapshots (cold and hot), recent snapshots (`Slast-50`, `Slast-25`,
//! `Slast`), and the current state.
//!
//! Expected shape: cold-old is dominated by Pagelog I/O; hot-old is far
//! cheaper (sharing); iterations get cheaper as the snapshot approaches
//! the current state; a current-state run has no Pagelog I/O at all.

use rql::AggOp;
use rql_sqlengine::Result;
use rql_tpch::{build_history, UW30};

use crate::harness::{
    bench_config, bench_sf, breakdown_header, breakdown_row, cold_stats, cost_model, fast_mode,
    hot_mean_stats, run_from_cold,
};
use crate::queries::QQ_IO;

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let interval = if fast_mode() { 10 } else { 50 };
    let cycle = UW30.overwrite_cycle();
    // History: [old interval][full overwrite cycle of further churn]
    // so snapshots 1..interval are old while the tail is recent.
    let total = interval + cycle + 10;
    let history = build_history(bench_config(), bench_sf(), UW30, total, false)?;
    let slast = history.last_snapshot();
    let model = cost_model();
    let mut out = String::new();
    out.push_str("## Figure 8 — Single-iteration cost, AggV(Qs_50, Qq_io, AVG), UW30\n\n");
    out.push_str(&breakdown_header());
    out.push('\n');

    let mut run_interval = |label: &str, start: u64, len: u64| -> Result<()> {
        let qs = history.qs(start, len, 1);
        let report = run_from_cold(&history.session, "fig8_result", || {
            history
                .session
                .aggregate_data_in_variable(&qs, QQ_IO, "fig8_result", AggOp::Avg)
        })?;
        let (cold, cold_udf) = cold_stats(&report);
        out.push_str(&breakdown_row(
            &format!("{label} cold"),
            &cold,
            cold_udf,
            &model,
        ));
        out.push('\n');
        let (hot, hot_udf) = hot_mean_stats(&report);
        out.push_str(&breakdown_row(
            &format!("{label} hot (mean)"),
            &hot,
            hot_udf,
            &model,
        ));
        out.push('\n');
        Ok(())
    };

    run_interval("old snapshot", 1, interval)?;
    run_interval(
        &format!("Slast-{cycle}"),
        slast - cycle + 1,
        interval.min(cycle),
    )?;
    run_interval(
        &format!("Slast-{}", cycle / 2),
        slast - cycle / 2 + 1,
        interval.min(cycle / 2),
    )?;
    run_interval("Slast", slast, 1)?;

    // Current state: same query without AS OF.
    history.session.snap_db().store().cache().clear();
    let r = history.session.query(QQ_IO)?;
    out.push_str(&breakdown_row(
        "current state",
        &r.stats,
        std::time::Duration::ZERO,
        &model,
    ));
    out.push_str("\n\n");
    out.push_str(
        "- Expected: pagelog reads collapse from cold-old to hot-old (sharing), shrink \
         again for recent snapshots (sharing with the database), and are zero for the \
         current state.\n\n",
    );
    Ok(out)
}
