//! Figure 9 — Single-iteration cost for the CPU-intensive
//! `AggregateDataInVariable(Qs_50, Qq_cpu, AVG)` under UW30, with and
//! without a native index on `lineitem(l_partkey)`.
//!
//! Expected shape: without a native index, the ad-hoc covering-index
//! build dominates every iteration and cold ≈ hot (I/O is a small part
//! of the total); with a native index the index-creation component
//! disappears, while I/O and SPT-build grow because the index pages are
//! part of the database and of every snapshot.

use rql::AggOp;
use rql_sqlengine::Result;
use rql_tpch::{build_history, UW30};

use crate::harness::{
    bench_config, bench_sf, breakdown_header, breakdown_row, cold_stats, cost_model, fast_mode,
    hot_mean_stats, run_from_cold,
};
use crate::queries::QQ_CPU;

struct Case {
    #[allow(dead_code)]
    label: &'static str,
    cold: String,
    hot: String,
    cold_index_ms: f64,
    cold_io_reads: u64,
    spt_entries: u64,
    db_pages: u64,
    pagelog_bytes: u64,
}

fn run_case(with_index: bool) -> Result<Case> {
    let interval = if fast_mode() { 5 } else { 50 };
    let mut history = build_history(bench_config(), bench_sf(), UW30, interval, with_index)?;
    history.age_all_snapshots()?;
    let model = cost_model();
    let qs = history.qs(1, interval, 1);
    let report = run_from_cold(&history.session, "fig9_result", || {
        history
            .session
            .aggregate_data_in_variable(&qs, QQ_CPU, "fig9_result", AggOp::Avg)
    })?;
    let label = if with_index { "w/ index" } else { "w/o index" };
    let (cold, cold_udf) = cold_stats(&report);
    let (hot, hot_udf) = hot_mean_stats(&report);
    let store = history.session.snap_db().store();
    Ok(Case {
        label,
        cold: breakdown_row(&format!("cold iteration {label}"), &cold, cold_udf, &model),
        hot: breakdown_row(&format!("hot iteration {label}"), &hot, hot_udf, &model),
        cold_index_ms: cold.index_creation.as_secs_f64() * 1e3,
        cold_io_reads: cold.io.pagelog_reads,
        spt_entries: cold.io.maplog_entries_scanned,
        db_pages: store.pager().page_count(),
        pagelog_bytes: store.pagelog().size_bytes(),
    })
}

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let without = run_case(false)?;
    let with = run_case(true)?;
    let mut out = String::new();
    out.push_str("## Figure 9 — Single-iteration cost, AggV(Qs_50, Qq_cpu, AVG), UW30\n\n");
    out.push_str(&breakdown_header());
    out.push('\n');
    for case in [&without, &with] {
        out.push_str(&case.cold);
        out.push('\n');
        out.push_str(&case.hot);
        out.push('\n');
    }
    out.push('\n');
    out.push_str(&format!(
        "- Ad-hoc index creation w/o native index: {:.3} ms (cold); with a native \
         index it is {:.3} ms — {}.\n",
        without.cold_index_ms,
        with.cold_index_ms,
        if with.cold_index_ms < without.cold_index_ms / 4.0 {
            "eliminated, as in the paper"
        } else {
            "UNEXPECTED"
        }
    ));
    out.push_str(&format!(
        "- Native indexes enlarge the database ({} → {} pages) and the Pagelog \
         ({} → {} KiB), the paper's \"an index increases the size of the database \
         and the Pagelog\": {}.\n",
        without.db_pages,
        with.db_pages,
        without.pagelog_bytes >> 10,
        with.pagelog_bytes >> 10,
        if with.db_pages > without.db_pages && with.pagelog_bytes > without.pagelog_bytes {
            "as in the paper"
        } else {
            "UNEXPECTED"
        }
    ));
    out.push_str(&format!(
        "- Cold pagelog reads for this query: {} (w/o) vs {} (w/) — at this scale the \
         native index makes the probe touch far fewer lineitem pages, so per-query \
         I/O can drop even though snapshots are larger.\n",
        without.cold_io_reads, with.cold_io_reads
    ));
    out.push_str(&format!(
        "- Maplog entries scanned for the SPT: {} (w/o) vs {} (w/).\n\n",
        without.spt_entries, with.spt_entries
    ));
    Ok(out)
}
