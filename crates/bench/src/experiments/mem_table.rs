//! §5.3's memory-cost table — `CollateData` vs
//! `CollateDataIntoIntervals` result-table sizes under UW7.5 / UW15 /
//! UW30 / UW60 with `Qq_int` over 50 snapshots.
//!
//! Paper numbers (SF 1): CollateData materializes 75M records (> 3 GB);
//! CollateDataIntoIntervals materializes 1.86M / 2.3M / 2.97M / 4.4M
//! records (89–204 MB) for the four workloads, plus ~50% extra for its
//! index — and the interval table grows *sub-linearly* in the churn
//! rate. The same relationships are expected at the reproduction's
//! scale.

use rql_sqlengine::Result;
use rql_tpch::{build_history, UpdateWorkload, UW15, UW30, UW60, UW7_5};

use crate::harness::{bench_config, bench_sf, fast_mode, run_from_cold};
use crate::queries::QQ_INT;

struct Row {
    workload: &'static str,
    collate_rows: u64,
    collate_bytes: u64,
    interval_rows: u64,
    interval_bytes: u64,
    index_bytes: u64,
}

fn run_workload(workload: UpdateWorkload, interval: u64) -> Result<Row> {
    let mut h = build_history(bench_config(), bench_sf(), workload, interval, false)?;
    h.age_all_snapshots()?;
    let qs = h.qs(1, interval, 1);

    run_from_cold(&h.session, "mem_collate", || {
        h.session.collate_data(&qs, QQ_INT, "mem_collate")
    })?;
    let collate_rows = h.session.aux_db().table_row_count("mem_collate")?;
    let collate_bytes = h.session.aux_db().table_size_bytes("mem_collate")?;

    let aux_pages_before = h.session.aux_db().store().pager().page_count();
    run_from_cold(&h.session, "mem_intervals", || {
        h.session
            .collate_data_into_intervals(&qs, QQ_INT, "mem_intervals")
    })?;
    let interval_rows = h.session.aux_db().table_row_count("mem_intervals")?;
    let interval_bytes = h.session.aux_db().table_size_bytes("mem_intervals")?;
    let page_size = h.session.aux_db().store().pager().config().page_size as u64;
    let total_growth =
        (h.session.aux_db().store().pager().page_count() - aux_pages_before) * page_size;
    // Pages beyond the table itself belong to the mechanism's index.
    let index_bytes = total_growth.saturating_sub(interval_bytes);
    Ok(Row {
        workload: workload.name,
        collate_rows,
        collate_bytes,
        interval_rows,
        interval_bytes,
        index_bytes,
    })
}

/// Run the experiment, returning a markdown section.
pub fn run() -> Result<String> {
    let interval = if fast_mode() { 5 } else { 50 };
    let workloads = if fast_mode() {
        vec![UW15, UW60]
    } else {
        vec![UW7_5, UW15, UW30, UW60]
    };
    let mut rows = Vec::new();
    for w in workloads {
        rows.push(run_workload(w, interval)?);
    }
    let mut out = String::new();
    out.push_str(
        "## §5.3 memory table — CollateData vs CollateDataIntoIntervals (Qq_int, Qs_50)\n\n",
    );
    out.push_str(
        "| workload | collate rows | collate size | interval rows | interval size | \
         interval index | reduction |\n|---|---|---|---|---|---|---|\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} | {:.1}× |\n",
            r.workload,
            r.collate_rows,
            human(r.collate_bytes),
            r.interval_rows,
            human(r.interval_bytes),
            human(r.index_bytes),
            r.collate_bytes as f64 / r.interval_bytes.max(1) as f64,
        ));
    }
    out.push('\n');
    // Shape checks: interval table much smaller; grows with churn but
    // sub-linearly (doubling the churn does not double the table).
    let monotone = rows
        .windows(2)
        .all(|w| w[1].interval_rows >= w[0].interval_rows);
    let sublinear = rows
        .windows(2)
        .all(|w| (w[1].interval_rows as f64) < 2.0 * w[0].interval_rows as f64);
    out.push_str(&format!(
        "- Interval rows grow with churn ({}) and sub-linearly ({}), and the interval \
         table is far smaller than CollateData's — {}.\n\n",
        if monotone { "monotone" } else { "NOT monotone" },
        if sublinear { "yes" } else { "NO" },
        if rows.iter().all(|r| (r.interval_bytes as f64)
            < r.collate_bytes as f64 / (interval as f64 / 8.0).max(1.5))
        {
            "as in the paper"
        } else {
            "UNEXPECTED"
        }
    ));
    Ok(out)
}

fn human(b: u64) -> String {
    if b >= 1 << 20 {
        format!("{:.1} MiB", b as f64 / (1 << 20) as f64)
    } else if b >= 1 << 10 {
        format!("{:.1} KiB", b as f64 / (1 << 10) as f64)
    } else {
        format!("{b} B")
    }
}
