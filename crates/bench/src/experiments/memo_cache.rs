//! Memoization-cache ablation — repeated Table-1 workload, cold then
//! warm, against a `--no-memo` baseline.
//!
//! Snapshots are immutable, so a per-snapshot Qq result computed once is
//! valid forever; the memo store (crate `rql-memo`) keys it by canonical
//! Qq fingerprint × snapshot × page-version vector and serves replays
//! without touching the execution layer. This experiment runs the four
//! Table-1 mechanisms over a TPC-H snapshot history three times on one
//! session — memo detached (the `--no-memo` ablation), memo attached
//! cold (populating), memo attached warm (serving) — and reports the
//! modeled Qq-phase cost of each lane, the warm hit rate, and the warm
//! speedup. Machine-readable results land in `BENCH_memo.json`.

use std::sync::Arc;

use rql::{AggOp, RqlSession};
use rql_memo::{MemoConfig, MemoStore};
use rql_sqlengine::{Result, Row};
use rql_tpch::{build_history, UW15};

use crate::harness::{
    bench_config, bench_sf, cost_model, fast_mode, phase, run_from_cold, BENCH_SCHEMA_VERSION,
};
use crate::queries::{QQ_INT, QQ_IO};

const QS: &str = "SELECT snap_id FROM SnapIds";

/// Run the four Table-1 mechanisms into `*_{tag}` result tables.
/// Returns (total modeled Qq-phase cost in ms, canonicalized rows of
/// every result table) — the rows feed the identical-results check
/// between lanes.
fn run_suite(session: &Arc<RqlSession>, tag: &str) -> Result<(f64, Vec<Vec<Row>>)> {
    let model = cost_model();
    let mut cost_ms = 0.0;
    let mut tables = Vec::new();
    let mut record = |report: rql::RqlReport, table: &str, order: &str| -> Result<()> {
        cost_ms += report.accumulated_stats().total_cost(&model).as_secs_f64() * 1e3;
        tables.push(
            session
                .query_aux(&format!("SELECT * FROM {table} ORDER BY {order}"))?
                .rows,
        );
        Ok(())
    };

    let t = format!("mc_c_{tag}");
    let r = run_from_cold(session, &t, || session.collate_data(QS, QQ_IO, &t))?;
    record(r, &t, "1")?;

    let t = format!("mc_a_{tag}");
    let r = run_from_cold(session, &t, || {
        session.aggregate_data_in_variable(QS, QQ_IO, &t, AggOp::Max)
    })?;
    record(r, &t, "1")?;

    let t = format!("mc_t_{tag}");
    let r = run_from_cold(session, &t, || {
        session.aggregate_data_in_table(
            QS,
            "SELECT o_orderkey, o_totalprice FROM orders",
            &t,
            &[("o_totalprice".to_owned(), AggOp::Max)],
        )
    })?;
    record(r, &t, "o_orderkey")?;

    let t = format!("mc_i_{tag}");
    let r = run_from_cold(session, &t, || {
        session.collate_data_into_intervals(QS, QQ_INT, &t)
    })?;
    record(r, &t, "o_orderkey, start_snapshot, end_snapshot")?;

    Ok((cost_ms, tables))
}

/// Run the experiment, returning a markdown section (and writing
/// `BENCH_memo.json` beside the working directory).
pub fn run() -> Result<String> {
    let snapshots: u64 = if fast_mode() { 4 } else { 8 };
    let history = build_history(bench_config(), bench_sf(), UW15, snapshots, false)?;
    let session = history.session;

    // Lane 1 — memo detached: what `rql --no-memo` / `rqld --no-memo`
    // executes. Every iteration pays the full Qq. Each lane runs inside
    // a trace phase so its wall time lands in `BENCH_memo.json` and in
    // `RQL_TRACE` exports alike.
    session.set_memo(None);
    let (res, nomemo_wall) = phase("memo:lane-nomemo", || run_suite(&session, "n"));
    let (nomemo_ms, nomemo_tables) = res?;

    // Lane 2 — memo attached, cold: live execution plus write-through
    // population of the cache.
    let memo = Arc::new(MemoStore::new(MemoConfig::default()));
    session.set_memo(Some(Arc::clone(&memo)));
    let (res, cold_wall) = phase("memo:lane-cold", || run_suite(&session, "c"));
    let (cold_ms, cold_tables) = res?;
    let after_cold = memo.stats();

    // Lane 3 — memo attached, warm: the same Qq set replays from cache.
    let (res, warm_wall) = phase("memo:lane-warm", || run_suite(&session, "w"));
    let (warm_ms, warm_tables) = res?;
    let stats = memo.stats();

    let identical = nomemo_tables == cold_tables && cold_tables == warm_tables;
    let warm_hits = stats.hits - after_cold.hits;
    let warm_misses = stats.misses - after_cold.misses;
    let hit_rate = warm_hits as f64 / (warm_hits + warm_misses).max(1) as f64;
    // A full hit run skips Qq entirely (modeled warm cost 0); floor the
    // denominator at one modeled Pagelog read so the speedup stays a
    // bounded "at least this much" figure.
    let floor_ms = cost_model().pagelog_read_cost.as_secs_f64() * 1e3;
    let speedup = nomemo_ms / warm_ms.max(floor_ms);

    let json = format!(
        "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\
         \"experiment\":\"memo_cache\",\
         \"snapshots\":{snapshots},\"mechanisms\":4,\
         \"nomemo_qq_cost_ms\":{nomemo_ms:.3},\
         \"cold_qq_cost_ms\":{cold_ms:.3},\
         \"warm_qq_cost_ms\":{warm_ms:.3},\
         \"warm_speedup_vs_nomemo\":{speedup:.3},\
         \"warm_hit_rate\":{hit_rate:.4},\
         \"identical_results\":{identical},\
         \"memo_hits\":{},\"memo_misses\":{},\"memo_inserts\":{},\
         \"memo_evictions\":{},\"memo_bytes\":{},\
         \"phases\":{{\"nomemo_wall_ms\":{:.3},\"cold_wall_ms\":{:.3},\
         \"warm_wall_ms\":{:.3}}}}}\n",
        stats.hits,
        stats.misses,
        stats.inserts,
        stats.evictions,
        stats.bytes,
        nomemo_wall.as_secs_f64() * 1e3,
        cold_wall.as_secs_f64() * 1e3,
        warm_wall.as_secs_f64() * 1e3,
    );
    // Best-effort artifact: the markdown is the primary output.
    let _ = std::fs::write("BENCH_memo.json", &json);

    let mut out = String::new();
    out.push_str("## Memoization cache — repeated Table-1 workload, cold vs warm\n\n");
    out.push_str(&format!(
        "Four mechanisms (CollateData, AggregateDataInVariable, \
         AggregateDataInTable, CollateDataIntoIntervals) over {snapshots} \
         UW15 snapshots; modeled Qq-phase cost per lane. `BENCH_memo.json` \
         carries the same numbers.\n\n"
    ));
    out.push_str(
        "| lane | Qq cost (ms) | hits | misses | notes |\n\
         |---|---|---|---|---|\n",
    );
    out.push_str(&format!(
        "| no-memo (ablation) | {nomemo_ms:.3} | — | — | every iteration re-executes Qq |\n"
    ));
    out.push_str(&format!(
        "| memo, cold | {cold_ms:.3} | {} | {} | live run + cache population |\n",
        after_cold.hits, after_cold.misses
    ));
    out.push_str(&format!(
        "| memo, warm | {warm_ms:.3} | {warm_hits} | {warm_misses} | replay from cache |\n\n"
    ));
    out.push_str(&format!(
        "- Warm hit rate: {:.1}% over {} lookups.\n",
        hit_rate * 1e2,
        warm_hits + warm_misses
    ));
    out.push_str(&format!(
        "- Warm Qq-phase speedup vs no-memo: {speedup:.2}× (target ≥ 2×): {}\n",
        if speedup >= 2.0 { "OK" } else { "UNEXPECTED" }
    ));
    out.push_str(&format!(
        "- All three lanes byte-identical: {}\n\n",
        if identical { "OK" } else { "UNEXPECTED" }
    ));
    Ok(out)
}
