//! One module per table/figure of the paper's evaluation (§5), each
//! returning its results as a markdown section.

pub mod ablations;
pub mod agg_vs_collate;
pub mod delta_iteration;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod mem_table;
pub mod memo_cache;
pub mod prune_scan;
pub mod repl_scaleout;
pub mod standing_maintenance;
pub mod table1;
