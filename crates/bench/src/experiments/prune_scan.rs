//! Pruning-sidecar ablation — selectivity sweep over a clustered filter
//! column, pruned vs opaque-predicate baseline, cold cache.
//!
//! The table's filter column (`k`) is inserted in ascending order, so
//! each heap page covers a contiguous `k` range and a zone map refutes
//! every page outside the predicate's range. The baseline lane runs the
//! *same* predicate wrapped in `k + 0 < K` — semantically identical for
//! integers, but opaque to the predicate-summary extractor (exactly the
//! shape rqlcheck's RQL209 warns about) — so the two lanes differ only
//! in whether the sidecars can act. Every lane starts with an empty
//! snapshot-page cache and all heap pages archived to the Pagelog, so
//! the modeled cost (`cpu + pagelog_reads × c_io`) is I/O-dominated and
//! the win is the fraction of pages refuted. Machine-readable results
//! land in `BENCH_prune.json`.

use rql::{DeltaPolicy, RqlSession};
use rql_pagestore::PagerConfig;
use rql_retro::{PagelogFormat, RetroConfig};
use rql_sqlengine::Result;

use crate::harness::{cost_model, fast_mode, phase, run_from_cold, BENCH_SCHEMA_VERSION};

const QS: &str = "SELECT snap_id FROM SnapIds";

/// History over `events(k, b, payload)` with `n` rows inserted in
/// ascending-`k` chunks (one page covers one contiguous `k` band), filter
/// sidecars declared on `k`, then `rounds` churn snapshots that touch
/// only the top `k` band. A final full-table pass archives every page
/// (all snapshots "old"), and the cache is left cold.
fn build_session(n: u64, rounds: u64) -> Result<std::sync::Arc<RqlSession>> {
    let cfg = RetroConfig {
        pager: PagerConfig {
            page_size: 4096,
            // Smaller than the events heap: every lane re-fetches from
            // the Pagelog, keeping the sweep I/O-bound.
            cache_capacity: 8,
            wal_sync_on_commit: false,
        },
        use_skippy: true,
        keying: rql_pagestore::CacheKeying::ByPagelogOffset,
        pagelog_format: PagelogFormat::Raw,
    };
    let session = RqlSession::new(cfg)?;
    session.execute("CREATE TABLE events (k INTEGER, b INTEGER, payload TEXT)")?;
    let chunk = 200;
    let mut k = 0u64;
    while k < n {
        let hi = (k + chunk).min(n);
        let values: Vec<String> = (k..hi).map(|i| format!("({i}, 0, 'pl-{i:08}')")).collect();
        session.execute(&format!("INSERT INTO events VALUES {}", values.join(", ")))?;
        k = hi;
    }
    // Declared before the churn commits: backfills the current pages and
    // makes every page archived from here on carry a sidecar.
    session.snap_db().declare_filter_columns("events", &["k"])?;
    session.declare_snapshot(None)?;
    let slice = n / 10;
    for _ in 0..rounds {
        session.execute(&format!(
            "UPDATE events SET b = b + 1 WHERE k >= {}",
            n - slice
        ))?;
        session.declare_snapshot(None)?;
    }
    session.execute("UPDATE events SET b = b + 1")?;
    session.snap_db().store().cache().clear();
    Ok(session)
}

/// Same columns and same multiset of rows — the delta path emits rows in
/// scan-cache order, so the comparison is order-insensitive.
fn tables_identical(session: &RqlSession, a: &str, b: &str) -> Result<bool> {
    let ra = session.query_aux(&format!("SELECT * FROM {a}"))?;
    let rb = session.query_aux(&format!("SELECT * FROM {b}"))?;
    let key = |rows: &[rql_sqlengine::Row]| {
        let mut k: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        k.sort();
        k
    };
    Ok(ra.columns == rb.columns && key(&ra.rows) == key(&rb.rows))
}

/// Run the experiment, returning a markdown section (and writing
/// `BENCH_prune.json` beside the working directory).
pub fn run() -> Result<String> {
    let (n, rounds): (u64, u64) = if fast_mode() { (1200, 2) } else { (4000, 3) };
    let session = build_session(n, rounds)?;
    // The sweep measures the scan path itself; keep the memo out of it.
    session.set_memo(None);
    let model = cost_model();
    let snapshots = rounds + 1;

    let mut out = String::new();
    out.push_str("## Pruning sidecars — selectivity sweep, pruned vs opaque baseline\n\n");
    out.push_str(&format!(
        "CollateData(Qs_{snapshots}, `SELECT k, payload FROM events WHERE k < K`) \
         over {n} clustered rows, sequential path (DeltaPolicy::Off), cold cache, \
         all pages archived. The baseline wraps the predicate as `k + 0 < K` \
         (same rows, opaque to the sidecars). Costs are modeled \
         (cpu + Pagelog reads × c_io).\n\n"
    ));
    out.push_str(
        "| selectivity | baseline cost (ms) | pruned cost (ms) | speedup | \
         plog rd base | plog rd pruned | pages pruned | identical |\n\
         |---|---|---|---|---|---|---|---|\n",
    );

    // (label, rows selected per 100k) — 0.1%, 1%, 10%, 100%.
    let sweep: &[(&str, u64)] = &[
        ("0.1%", 100),
        ("1%", 1_000),
        ("10%", 10_000),
        ("100%", 100_000),
    ];
    let mut lanes_json = Vec::new();
    let mut speedup_at_1pct = 0.0f64;
    let mut all_identical = true;
    for &(label, per100k) in sweep {
        let threshold = (n * per100k).div_ceil(100_000).max(1);
        let base_qq = format!("SELECT k, payload FROM events WHERE k + 0 < {threshold}");
        let prune_qq = format!("SELECT k, payload FROM events WHERE k < {threshold}");
        let (base, _) = phase("prune:baseline", || {
            run_from_cold(&session, "ps_base", || {
                session.collate_data_with_policy(QS, &base_qq, "ps_base", DeltaPolicy::Off)
            })
        });
        let base = base?;
        session.snap_db().store().cache().clear();
        let (pruned, _) = phase("prune:pruned", || {
            run_from_cold(&session, "ps_pruned", || {
                session.collate_data_with_policy(QS, &prune_qq, "ps_pruned", DeltaPolicy::Off)
            })
        });
        let pruned = pruned?;
        let same = tables_identical(&session, "ps_base", "ps_pruned")?;
        all_identical &= same;
        let b = base.accumulated_stats();
        let p = pruned.accumulated_stats();
        let base_cost = b.total_cost(&model).as_secs_f64() * 1e3;
        let pruned_cost = p.total_cost(&model).as_secs_f64() * 1e3;
        // Floor at one modeled Pagelog read so a fully-refuted scan
        // reports a bounded "at least this much" speedup.
        let floor_ms = model.pagelog_read_cost.as_secs_f64() * 1e3;
        let speedup = base_cost / pruned_cost.max(floor_ms);
        if label == "1%" {
            speedup_at_1pct = speedup;
        }
        out.push_str(&format!(
            "| {label} | {base_cost:.3} | {pruned_cost:.3} | {speedup:.2}× | {} | {} | {} | {same} |\n",
            b.io.pagelog_reads, p.io.pagelog_reads, p.pages_pruned_filter,
        ));
        lanes_json.push(format!(
            "{{\"selectivity\":\"{label}\",\"threshold\":{threshold},\
             \"baseline_cost_ms\":{base_cost:.3},\"pruned_cost_ms\":{pruned_cost:.3},\
             \"speedup\":{speedup:.3},\
             \"pagelog_reads_baseline\":{},\"pagelog_reads_pruned\":{},\
             \"pages_pruned\":{},\"identical_results\":{same}}}",
            b.io.pagelog_reads, p.io.pagelog_reads, p.pages_pruned_filter,
        ));
    }
    out.push('\n');

    // Delta path at 1%: churn touches only the top k band, the predicate
    // selects the bottom, so each post-churn snapshot's changed pages are
    // all refuted and the whole snapshot is skipped with its previous
    // output reused.
    let threshold = (n / 100).max(1);
    let qq_1pct = format!("SELECT k, payload FROM events WHERE k < {threshold}");
    run_from_cold(&session, "ps_seq1", || {
        session.collate_data_with_policy(QS, &qq_1pct, "ps_seq1", DeltaPolicy::Off)
    })?;
    session.snap_db().store().cache().clear();
    let (delta, _) = phase("prune:delta", || {
        run_from_cold(&session, "ps_delta", || {
            session.collate_data_with_policy(QS, &qq_1pct, "ps_delta", DeltaPolicy::Forced)
        })
    });
    let delta = delta?;
    let delta_same = tables_identical(&session, "ps_seq1", "ps_delta")?;
    all_identical &= delta_same;
    let d = delta.accumulated_stats();
    out.push_str(&format!(
        "### Delta path (Forced), 1% selectivity — snapshot-level skip\n\n\
         | plog rd | pages pruned | pages skipped (delta) | snapshots pruned | identical |\n\
         |---|---|---|---|---|\n\
         | {} | {} | {} | {} | {delta_same} |\n\n",
        d.io.pagelog_reads, d.pages_pruned_filter, d.pages_skipped_delta, d.io.snapshots_pruned,
    ));

    out.push_str(&format!(
        "- Speedup at 1% selectivity: {speedup_at_1pct:.2}× (target ≥ 2×): {}\n",
        if speedup_at_1pct >= 2.0 {
            "OK"
        } else {
            "UNEXPECTED"
        }
    ));
    out.push_str(&format!(
        "- Delta path pruned whole snapshots: {}\n",
        if d.io.snapshots_pruned > 0 {
            "OK"
        } else {
            "UNEXPECTED"
        }
    ));
    out.push_str(&format!(
        "- All lanes byte-identical: {}\n\n",
        if all_identical { "OK" } else { "UNEXPECTED" }
    ));

    let json = format!(
        "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\"experiment\":\"prune_scan\",\
         \"rows\":{n},\"snapshots\":{snapshots},\
         \"lanes\":[{}],\
         \"delta_1pct\":{{\"pagelog_reads\":{},\"pages_pruned\":{},\
         \"pages_skipped_delta\":{},\"snapshots_pruned\":{},\
         \"identical_results\":{delta_same}}},\
         \"speedup_at_1pct\":{speedup_at_1pct:.3},\
         \"identical_results\":{all_identical},\
         \"pass\":{}}}\n",
        lanes_json.join(","),
        d.io.pagelog_reads,
        d.pages_pruned_filter,
        d.pages_skipped_delta,
        d.io.snapshots_pruned,
        all_identical && speedup_at_1pct >= 2.0 && d.io.snapshots_pruned > 0,
    );
    // Best-effort artifact: the markdown is the primary output.
    let _ = std::fs::write("BENCH_prune.json", &json);
    Ok(out)
}
