//! Replication scale-out — aggregate retrospective read throughput of a
//! leader plus two streaming followers vs the leader alone.
//!
//! The replication claim (DESIGN.md §14): because declared snapshots
//! are immutable and the WAL is the database, a follower that has
//! applied the leader's committed segments byte-for-byte answers any
//! retrospective query over its acked snapshots with exactly the
//! leader's result — so read capacity scales with the number of
//! replicas while writes stay single-node. This experiment builds a
//! durable leader store with a snapshot history, seeds two followers
//! over localhost TCP via `rql-repl`, verifies all three nodes return
//! identical Table-1 results, then measures per-node Qq throughput.
//!
//! Throughput methodology: CI runners (and this container) expose a
//! single core, so running three nodes' read loops simultaneously would
//! just time-slice one CPU and show no scaling. Instead each node's
//! throughput is measured sequentially *in isolation* and the cluster
//! figure is their sum — which is what three nodes deliver when each
//! has its own core, since post-seed reads touch only node-local state
//! (no cross-node traffic on the query path). Results land in
//! `BENCH_repl.json`.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rql::{snapids, RqlSession};
use rql_repl::{FollowerConfig, LeaderConfig, ReplFollower, ReplLeader, ReplMetrics};
use rql_retro::{RetroConfig, RetroStore};
use rql_sqlengine::{Database, Result, SqlError};

use crate::harness::{fast_mode, phase, BENCH_SCHEMA_VERSION};

const QS: &str = "SELECT snap_id FROM SnapIds";
const QQ: &str = "SELECT grp, v FROM m";

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let path =
            std::env::temp_dir().join(format!("rql-replbench-{tag}-{}-{n}", std::process::id()));
        let _ = std::fs::create_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn io_err(e: impl std::fmt::Display) -> SqlError {
    SqlError::Invalid(format!("repl_scaleout: {e}"))
}

fn open_durable(dir: &std::path::Path, config: RetroConfig) -> Result<Arc<RetroStore>> {
    let mk = |name: &str| -> Result<Arc<rql_pagestore::FileStorage>> {
        let path = dir.join(name);
        let storage = if path.exists() {
            rql_pagestore::FileStorage::open(&path)
        } else {
            rql_pagestore::FileStorage::create(&path)
        };
        storage.map(Arc::new).map_err(io_err)
    };
    RetroStore::open(
        config,
        mk("wal.log")?,
        mk("pagelog.log")?,
        mk("maplog.log")?,
    )
    .map_err(io_err)
}

/// Session facade over an already-populated store: shared snap database
/// plus a private aux database whose `SnapIds` enumerates the store's
/// (dense) snapshot ids.
fn session_over(store: &Arc<RetroStore>, config: &RetroConfig) -> Result<Arc<RqlSession>> {
    let snap = Database::over_store(Arc::clone(store));
    let aux = Database::in_memory(config.clone());
    let session = RqlSession::over_databases(snap, aux)?;
    for sid in 1..=store.snapshot_count() {
        snapids::record_snapshot(session.aux_db(), sid, "@0", None)?;
    }
    Ok(session)
}

/// One Qq round: collate the full history into a fresh result table,
/// read it back deterministically, and drop it. Returns the sorted
/// rows for cross-node comparison.
fn qq_round(session: &RqlSession, round: u64) -> Result<Vec<String>> {
    let table = format!("rs_out_{round}");
    session.collate_data(QS, QQ, &table)?;
    let res = session.query_aux(&format!("SELECT grp, v FROM {table}"))?;
    let mut rows: Vec<String> = res.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    session.drop_result_table(&table)?;
    Ok(rows)
}

/// Measure `rounds` Qq rounds on one node in isolation, returning
/// (queries/sec, first round's sorted rows).
fn measure(session: &RqlSession, rounds: u64) -> Result<(f64, Vec<String>)> {
    let first = qq_round(session, 0)?;
    let t0 = Instant::now();
    for round in 1..=rounds {
        qq_round(session, round)?;
    }
    let wall = t0.elapsed().as_secs_f64();
    Ok((rounds as f64 / wall.max(1e-9), first))
}

/// Run the experiment, returning a markdown section (and writing
/// `BENCH_repl.json` in the working directory).
pub fn run() -> Result<String> {
    let (n, backlog, rounds): (u64, u64, u64) = if fast_mode() {
        (800, 6, 4)
    } else {
        (3000, 10, 12)
    };
    let config = RetroConfig::new();

    // Leader: durable store with a churned snapshot history.
    let leader_dir = TempDir::new("leader");
    let leader_store = open_durable(&leader_dir.0, config.clone())?;
    let leader = session_over(&leader_store, &config)?;
    leader.execute("CREATE TABLE m (grp INTEGER, v INTEGER)")?;
    let chunk = 200;
    let mut i = 0u64;
    while i < n {
        let hi = (i + chunk).min(n);
        let values: Vec<String> = (i..hi).map(|r| format!("({}, {r})", r % 16)).collect();
        leader.execute(&format!("INSERT INTO m VALUES {}", values.join(", ")))?;
        i = hi;
    }
    leader.declare_snapshot(None)?;
    for round in 1..backlog {
        leader.execute(&format!(
            "UPDATE m SET v = v + 1 WHERE grp = {}",
            round % 16
        ))?;
        leader.declare_snapshot(None)?;
    }
    leader_store.flush()?;

    // Ship the history to two followers over localhost TCP.
    let listener = TcpListener::bind("127.0.0.1:0").map_err(io_err)?;
    let addr = listener.local_addr().map_err(io_err)?;
    let leader_metrics = Arc::new(ReplMetrics::default());
    let seed_t0 = Instant::now();
    let mut repl_leader = ReplLeader::start(
        Arc::clone(&leader_store),
        listener,
        Arc::clone(&leader_metrics),
        LeaderConfig::default(),
    )
    .map_err(io_err)?;
    let follower_dirs = [TempDir::new("f1"), TempDir::new("f2")];
    let mut followers: Vec<ReplFollower> = follower_dirs
        .iter()
        .map(|d| {
            let mut fcfg = FollowerConfig::new(addr.to_string(), d.0.clone());
            fcfg.retro = config.clone();
            ReplFollower::start(fcfg, Arc::new(ReplMetrics::default()))
        })
        .collect();
    let mut fstores = Vec::new();
    for f in &followers {
        let store = f
            .wait_for_store(Duration::from_secs(60))
            .ok_or_else(|| io_err(f.last_error().unwrap_or_else(|| "seed timed out".into())))?;
        fstores.push(store);
    }
    // Wait for every shipped snapshot to be applied and acked.
    let deadline = Instant::now() + Duration::from_secs(60);
    for store in &fstores {
        while store.snapshot_count() < backlog {
            if Instant::now() > deadline {
                return Err(io_err("followers never caught up to the leader"));
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let seed_wall = seed_t0.elapsed();

    // Per-node isolated throughput; the leader-only baseline is the
    // leader's own figure.
    let (leader_qps, leader_rows) = {
        let (r, _wall) = phase("repl:leader-reads", || measure(&leader, rounds));
        r?
    };
    let mut node_qps = vec![leader_qps];
    let mut identical = true;
    for store in &fstores {
        let session = session_over(store, &config)?;
        let (r, _wall) = phase("repl:follower-reads", || measure(&session, rounds));
        let (qps, rows) = r?;
        identical &= rows == leader_rows;
        node_qps.push(qps);
    }
    for f in &mut followers {
        f.shutdown();
    }
    repl_leader.shutdown();

    let aggregate: f64 = node_qps.iter().sum();
    let speedup = aggregate / leader_qps.max(1e-9);
    let pass = identical && speedup >= 1.8;

    let mut out = String::new();
    out.push_str("## Replication — aggregate read throughput, leader + 2 followers\n\n");
    out.push_str(&format!(
        "CollateData over `m({n} rows)`, {backlog}-snapshot history, seeded to \
         2 followers over TCP in {:.1} ms. Each node's Qq throughput is \
         measured sequentially in isolation ({rounds} full-history collations \
         per node) and the cluster figure is their sum — the single-core-host \
         equivalent of one core per node, valid because post-seed reads touch \
         only node-local state.\n\n",
        seed_wall.as_secs_f64() * 1e3
    ));
    out.push_str(
        "| node | Qq rounds/s |\n\
         |---|---|\n",
    );
    out.push_str(&format!("| leader (baseline) | {leader_qps:.2} |\n"));
    for (i, qps) in node_qps.iter().enumerate().skip(1) {
        out.push_str(&format!("| follower {i} | {qps:.2} |\n"));
    }
    out.push_str(&format!(
        "| **cluster aggregate** | **{aggregate:.2}** |\n\n"
    ));
    out.push_str(&format!(
        "- Aggregate vs leader-only speedup: {speedup:.2}× (target ≥ 1.8×): {}\n",
        if speedup >= 1.8 { "OK" } else { "UNEXPECTED" }
    ));
    out.push_str(&format!(
        "- Identical results on every node for every snapshot: {}\n",
        if identical { "OK" } else { "UNEXPECTED" }
    ));
    out.push_str(&format!(
        "- Leader shipped {} segment(s), {} bytes; served {} seed(s)\n\n",
        leader_metrics
            .segments_shipped
            .load(std::sync::atomic::Ordering::Relaxed),
        leader_metrics
            .bytes_shipped
            .load(std::sync::atomic::Ordering::Relaxed),
        leader_metrics
            .seeds_served
            .load(std::sync::atomic::Ordering::Relaxed),
    ));

    let followers_json: Vec<String> = node_qps.iter().skip(1).map(|q| format!("{q:.3}")).collect();
    let json = format!(
        "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\"experiment\":\"repl_scaleout\",\
         \"rows\":{n},\"backlog_snapshots\":{backlog},\"rounds_per_node\":{rounds},\
         \"followers\":2,\"seed_ms\":{:.3},\
         \"leader_qps\":{leader_qps:.3},\"follower_qps\":[{}],\
         \"aggregate_qps\":{aggregate:.3},\"speedup\":{speedup:.3},\
         \"identical_results\":{identical},\"pass\":{pass}}}\n",
        seed_wall.as_secs_f64() * 1e3,
        followers_json.join(","),
    );
    // Best-effort artifact: the markdown is the primary output.
    let _ = std::fs::write("BENCH_repl.json", &json);
    Ok(out)
}
