//! Standing-query maintenance — incremental `Maintainer::advance` vs a
//! full batch recompute per commit, at low churn.
//!
//! The standing-query claim (DESIGN.md §12): once a `MAINTAIN QUERY` is
//! seeded, keeping its result table current costs work proportional to
//! the *changed pages* of each new snapshot, while the naive
//! alternative — re-running the mechanism after every commit — re-scans
//! the entire snapshot history every time. This experiment builds a
//! backlog, registers a collation over it, then drives churn rounds
//! that each touch ~1% of rows; per round it times `advance` on the new
//! snapshot against a fresh batch run over the full history, and checks
//! the maintained table stays identical to the batch result. Results
//! land in `BENCH_standing.json`.

use std::time::{Duration, Instant};

use rql::{parse_maintain, DeltaPolicy, Maintainer, RqlSession};
use rql_sqlengine::Result;

use crate::harness::{fast_mode, phase, BENCH_SCHEMA_VERSION};

const QS: &str = "SELECT snap_id FROM SnapIds";
const QQ: &str = "SELECT grp, v FROM m";

/// Session over `m(grp, v)` with `n` rows and `backlog` snapshots of
/// light churn already declared.
fn build_session(n: u64, backlog: u64) -> Result<std::sync::Arc<RqlSession>> {
    let session = RqlSession::with_defaults()?;
    session.execute("CREATE TABLE m (grp INTEGER, v INTEGER)")?;
    let chunk = 200;
    let mut i = 0u64;
    while i < n {
        let hi = (i + chunk).min(n);
        let values: Vec<String> = (i..hi).map(|r| format!("({}, {r})", r % 16)).collect();
        session.execute(&format!("INSERT INTO m VALUES {}", values.join(", ")))?;
        i = hi;
    }
    session.declare_snapshot(None)?;
    for round in 1..backlog {
        session.execute(&format!(
            "UPDATE m SET v = v + 1 WHERE grp = {}",
            round % 16
        ))?;
        session.declare_snapshot(None)?;
    }
    Ok(session)
}

/// Same columns, same multiset of rows (collation order is
/// scan-dependent on the delta path).
fn tables_identical(session: &RqlSession, a: &str, b: &str) -> Result<bool> {
    let ra = session.query_aux(&format!("SELECT * FROM {a}"))?;
    let rb = session.query_aux(&format!("SELECT * FROM {b}"))?;
    let key = |rows: &[rql_sqlengine::Row]| {
        let mut k: Vec<String> = rows.iter().map(|r| format!("{r:?}")).collect();
        k.sort();
        k
    };
    Ok(ra.columns == rb.columns && key(&ra.rows) == key(&rb.rows))
}

/// Run the experiment, returning a markdown section (and writing
/// `BENCH_standing.json` in the working directory).
pub fn run() -> Result<String> {
    // The incremental-vs-batch ratio tracks history length (batch
    // re-scans every snapshot, advance only the newest), so fast mode
    // keeps a real backlog while shrinking rows and rounds.
    let (n, backlog, rounds): (u64, u64, u64) = if fast_mode() {
        (1200, 8, 5)
    } else {
        (4000, 6, 10)
    };
    let session = build_session(n, backlog)?;
    // Both lanes measure the scan/fold work itself, not memo hits.
    session.set_memo(None);

    let text = format!(
        "MAINTAIN QUERY bench AS SELECT CollateData(snap_id, '{QQ}', 'sm_live') FROM SnapIds"
    );
    let spec = parse_maintain(&text)?.ok_or_else(|| {
        rql_sqlengine::SqlError::Invalid("bench MAINTAIN statement did not parse".into())
    })?;
    let ((mut maintainer, _report), seed_wall) = {
        let t0 = Instant::now();
        let r = Maintainer::register(&session, spec)?;
        (r, t0.elapsed())
    };

    // Low-churn rounds: each touches one of 16 groups (~6% of rows) plus
    // a handful of inserts, then declares a snapshot. Incremental lane
    // folds it in; batch lane recomputes the whole history fresh.
    let mut incremental = Duration::ZERO;
    let mut batch = Duration::ZERO;
    let mut all_identical = true;
    let mut rows_pushed = 0u64;
    for round in 0..rounds {
        session.execute(&format!(
            "UPDATE m SET v = v + 1 WHERE grp = {} AND v < {}",
            round % 16,
            n / 8
        ))?;
        session.execute(&format!("INSERT INTO m VALUES ({}, {round})", round % 16))?;
        let sid = session.declare_snapshot(None)?;

        let (delta, inc_wall) = phase("standing:incremental", || maintainer.advance(sid));
        let delta = delta?;
        rows_pushed += (delta.added.len() + delta.removed.len()) as u64;
        incremental += inc_wall;

        let batch_table = format!("sm_batch_{round}");
        let (res, batch_wall) = phase("standing:batch", || {
            session.collate_data_with_policy(QS, QQ, &batch_table, DeltaPolicy::Off)
        });
        res?;
        batch += batch_wall;
        all_identical &= tables_identical(&session, "sm_live", &batch_table)?;
    }

    let stats = maintainer.stats();
    let inc_ms = incremental.as_secs_f64() * 1e3;
    let batch_ms = batch.as_secs_f64() * 1e3;
    let speedup = batch_ms / inc_ms.max(1e-6);
    let pass = all_identical && speedup >= 5.0;

    let mut out = String::new();
    out.push_str("## Standing queries — incremental maintenance vs per-commit batch recompute\n\n");
    out.push_str(&format!(
        "CollateData over `m({n} rows)`, {backlog}-snapshot backlog seeded in \
         {:.1} ms, then {rounds} low-churn commits. Incremental lane: \
         `Maintainer::advance` per commit. Batch lane: full recompute over the \
         whole history per commit (`DeltaPolicy::Off`).\n\n",
        seed_wall.as_secs_f64() * 1e3
    ));
    out.push_str(
        "| lane | total (ms) | mean/commit (ms) |\n\
         |---|---|---|\n",
    );
    out.push_str(&format!(
        "| batch recompute | {batch_ms:.3} | {:.3} |\n",
        batch_ms / rounds as f64
    ));
    out.push_str(&format!(
        "| incremental advance | {inc_ms:.3} | {:.3} |\n\n",
        inc_ms / rounds as f64
    ));
    out.push_str(&format!(
        "- Incremental vs batch speedup: {speedup:.2}× (target ≥ 5×): {}\n",
        if speedup >= 5.0 { "OK" } else { "UNEXPECTED" }
    ));
    out.push_str(&format!(
        "- Maintained table identical to batch after every commit: {}\n",
        if all_identical { "OK" } else { "UNEXPECTED" }
    ));
    out.push_str(&format!(
        "- Maintenance scan: {} pages scanned, {} skipped; {} result rows pushed\n\n",
        stats.pages_scanned, stats.pages_skipped, rows_pushed
    ));

    let json = format!(
        "{{\"schema_version\":{BENCH_SCHEMA_VERSION},\"experiment\":\"standing_maintenance\",\
         \"rows\":{n},\"backlog_snapshots\":{backlog},\"churn_rounds\":{rounds},\
         \"seed_ms\":{:.3},\
         \"batch_total_ms\":{batch_ms:.3},\"incremental_total_ms\":{inc_ms:.3},\
         \"speedup\":{speedup:.3},\
         \"pages_scanned\":{},\"pages_skipped\":{},\"rows_pushed\":{rows_pushed},\
         \"identical_results\":{all_identical},\"pass\":{pass}}}\n",
        seed_wall.as_secs_f64() * 1e3,
        stats.pages_scanned,
        stats.pages_skipped,
    );
    // Best-effort artifact: the markdown is the primary output.
    let _ = std::fs::write("BENCH_standing.json", &json);
    Ok(out)
}
