//! Table 1 — parameters and notations, rendered from the code that
//! defines them (so the harness and the paper's notation stay in sync).

use rql_tpch::{Tpch, UW15, UW30, UW60, UW7_5};

use crate::harness::bench_sf;
use crate::queries::{QQ_AGG, QQ_CPU, QQ_INT, QQ_IO};

/// Render Table 1 as markdown.
pub fn run() -> String {
    let tpch = Tpch::new(bench_sf());
    let mut out = String::new();
    out.push_str("## Table 1 — Parameters and notations (as implemented)\n\n");
    out.push_str(&format!(
        "Scale factor {} ⇒ {} orders, {} parts, {} customers.\n\n",
        bench_sf(),
        tpch.orders_count(),
        tpch.part_count(),
        tpch.customer_count()
    ));
    out.push_str("| parameter | notation | implementation |\n|---|---|---|\n");
    for w in [UW7_5, UW15, UW30, UW60] {
        out.push_str(&format!(
            "| Update workload | {} | delete+insert {} orders (+lineitems) per snapshot; \
             overwrite cycle {} snapshots |\n",
            w.name,
            w.orders_per_snapshot(&tpch),
            w.overwrite_cycle()
        ));
    }
    out.push_str(
        "| Query Qs | Qs_N | `SELECT snap_id FROM SnapIds WHERE …` interval of length N \
         (optional step) |\n",
    );
    out.push_str(&format!("| Query Qq | Qq_io | `{QQ_IO}` |\n"));
    out.push_str(&format!(
        "| Query Qq | Qq_cpu | `{}` |\n",
        QQ_CPU.replace('\n', " ")
    ));
    out.push_str(
        "| Query Qq | Qq_collate | `SELECT o_orderkey FROM orders WHERE o_orderdate < \
         '[DATE]'` |\n",
    );
    out.push_str(&format!(
        "| Query Qq | Qq_agg | `{}` |\n",
        QQ_AGG.replace('\n', " ")
    ));
    out.push_str(&format!("| Query Qq | Qq_int | `{QQ_INT}` |\n"));
    out.push_str(
        "| RQL UDF | CollateData / AggregateDataInVariable / AggregateDataInTable / \
         CollateDataIntoIntervals | `rql::mechanism` (API + SQL UDF forms) |\n",
    );
    out.push_str("| Aggregate function | MIN, MAX, SUM, COUNT, AVG | `rql::AggOp` |\n\n");
    out
}
