//! Shared experiment harness: configurations, all-cold baselines, cost
//! formatting.
//!
//! Latencies are reported two ways, per DESIGN.md's substitution note:
//! measured wall/CPU time, and a **modeled** latency
//! `cpu + pagelog_reads × c_io` under [`IoCostModel`] (default 100 µs per
//! Pagelog page, ≈ the paper's SATA-SSD random 4 KiB read). The modeled
//! number is what reproduces the paper's *shapes* deterministically,
//! because at laptop scale the OS page cache hides real device latency.

use std::time::Duration;

use rql::{RqlReport, RqlSession};
use rql_pagestore::IoCostModel;
use rql_retro::RetroConfig;
use rql_sqlengine::{ExecStats, Result};

/// Schema version stamped into every `BENCH_*.json` artifact. Bump when
/// a field is renamed or its meaning changes; `scripts/validate_bench.py`
/// checks it.
pub const BENCH_SCHEMA_VERSION: u32 = 1;

/// Scale factor used by the experiments (overridable via
/// `RQL_BENCH_SF`). 0.002 ⇒ 3,000 orders ≈ 1/500 of the paper's SF-1.
pub fn bench_sf() -> f64 {
    std::env::var("RQL_BENCH_SF")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.002)
}

/// Whether to run the reduced "fast" parameterization (`RQL_BENCH_FAST`).
pub fn fast_mode() -> bool {
    std::env::var("RQL_BENCH_FAST").is_ok()
}

/// The store configuration all experiments use.
pub fn bench_config() -> RetroConfig {
    RetroConfig::new()
}

/// The I/O cost model (overridable via `RQL_BENCH_IO_US`, microseconds
/// per Pagelog read).
pub fn cost_model() -> IoCostModel {
    let us = std::env::var("RQL_BENCH_IO_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100u64);
    IoCostModel {
        pagelog_read_cost: Duration::from_micros(us),
        ..IoCostModel::default()
    }
}

/// Time one bench phase: emits a labeled [`rql_trace::SpanId::BenchPhase`]
/// span (so `RQL_TRACE=out.json` exports carry the phase breakdown) and
/// returns the phase's wall time alongside the closure's result. This is
/// the harness's replacement for ad-hoc `Instant::now()` pairs — every
/// phase timed this way shows up consistently in both the markdown
/// report and the trace export.
pub fn phase<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, Duration) {
    let _span = rql_trace::span_labeled(rql_trace::SpanId::BenchPhase, name);
    let started = std::time::Instant::now();
    let out = f();
    (out, started.elapsed())
}

/// Cost of an *all-cold* run over `sids` with query `qq`: every
/// iteration starts with an empty snapshot-page cache, so each fetches
/// exactly what a stand-alone snapshot query would (paper §5.1).
pub fn all_cold_run(session: &RqlSession, sids: &[u64], qq: &str) -> Result<RqlReport> {
    let store = session.snap_db().store();
    let mut report = RqlReport::default();
    for &sid in sids {
        store.cache().clear();
        let parsed = rql_sqlengine::parse_select(qq)?;
        let rewritten = rql::rewrite_select(&parsed, sid);
        let outcome = session
            .snap_db()
            .execute_stmt(&rql_sqlengine::Stmt::Select(rewritten))?;
        let result = outcome.rows().expect("select yields rows");
        report.iterations.push(rql::IterationReport {
            snap_id: sid,
            qq_stats: result.stats,
            udf_time: Duration::ZERO,
            qq_rows: result.rows.len() as u64,
            result_inserts: 0,
            result_updates: 0,
            memo_hit: false,
            wall: Duration::ZERO,
        });
    }
    Ok(report)
}

/// Snapshot ids a Qs string resolves to (for driving all-cold baselines
/// with the exact same set).
pub fn resolve_qs(session: &RqlSession, qs: &str) -> Result<Vec<u64>> {
    let r = session.query_aux(qs)?;
    Ok(r.rows
        .iter()
        .filter_map(|row| row[0].as_i64())
        .map(|i| i as u64)
        .collect())
}

/// Run an RQL query "from cold": clear the snapshot-page cache first
/// (paper §5: "the snapshot page cache is empty at the start of an RQL
/// query"), drop the result table, then invoke `f`.
pub fn run_from_cold<T>(
    session: &RqlSession,
    result_table: &str,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    session.drop_result_table(result_table)?;
    session.snap_db().store().cache().clear();
    f()
}

/// The ratio C of paper §5.1: modeled RQL latency over modeled all-cold
/// latency for the same snapshot count.
pub fn ratio_c(rql: &RqlReport, all_cold: &RqlReport, model: &IoCostModel) -> f64 {
    let a = rql.total_cost(model).as_secs_f64();
    let b = all_cold.total_cost(model).as_secs_f64();
    if b == 0.0 {
        return 1.0;
    }
    a / b
}

/// Pure-I/O variant of ratio C (counted Pagelog reads only) — fully
/// deterministic, used alongside the modeled ratio.
pub fn ratio_c_io(rql: &RqlReport, all_cold: &RqlReport) -> f64 {
    let a = rql.accumulated_stats().io.pagelog_reads as f64;
    let b = all_cold.accumulated_stats().io.pagelog_reads as f64;
    if b == 0.0 {
        return 1.0;
    }
    a / b
}

/// One row of a cost-breakdown table (Figures 8–13): I/O (modeled), SPT
/// build, index creation, query evaluation, RQL UDF.
pub fn breakdown_row(label: &str, stats: &ExecStats, udf: Duration, model: &IoCostModel) -> String {
    format!(
        "| {label} | {:>10.3} | {:>9.3} | {:>10.3} | {:>10.3} | {:>8.3} | {:>8} |",
        stats.io_cost(model).as_secs_f64() * 1e3,
        stats.spt_build.as_secs_f64() * 1e3,
        stats.index_creation.as_secs_f64() * 1e3,
        stats.eval.as_secs_f64() * 1e3,
        udf.as_secs_f64() * 1e3,
        stats.io.pagelog_reads,
    )
}

/// Header matching [`breakdown_row`].
pub fn breakdown_header() -> String {
    "| iteration | I/O (ms) | SPT (ms) | index (ms) | eval (ms) | UDF (ms) | plog rd |\n\
     |---|---|---|---|---|---|---|"
        .to_owned()
}

/// Mean breakdown over the hot (non-first) iterations of a report.
pub fn hot_mean_stats(report: &RqlReport) -> (ExecStats, Duration) {
    let hot = &report.iterations[1..];
    if hot.is_empty() {
        return (ExecStats::default(), Duration::ZERO);
    }
    let mut acc = ExecStats::default();
    let mut udf = Duration::ZERO;
    for it in hot {
        acc.accumulate(&it.qq_stats);
        udf += it.udf_time;
    }
    let n = hot.len() as u32;
    let stats = ExecStats {
        spt_build: acc.spt_build / n,
        index_creation: acc.index_creation / n,
        eval: acc.eval / n,
        io: rql_pagestore::IoStatsSnapshot {
            db_reads: acc.io.db_reads / n as u64,
            cache_hits: acc.io.cache_hits / n as u64,
            pagelog_reads: acc.io.pagelog_reads / n as u64,
            cow_captures: acc.io.cow_captures / n as u64,
            pages_written: acc.io.pages_written / n as u64,
            maplog_entries_scanned: acc.io.maplog_entries_scanned / n as u64,
            cache_evictions: acc.io.cache_evictions / n as u64,
            pages_pruned: acc.io.pages_pruned / n as u64,
            snapshots_pruned: acc.io.snapshots_pruned / n as u64,
            sidecar_bytes: acc.io.sidecar_bytes / n as u64,
        },
        rows: acc.rows / n as u64,
        pages_skipped_delta: acc.pages_skipped_delta / n as u64,
        pages_pruned_filter: acc.pages_pruned_filter / n as u64,
        delta_eligible: acc.delta_eligible / n as u64,
    };
    (stats, udf / n)
}

/// The cold (first) iteration's breakdown.
pub fn cold_stats(report: &RqlReport) -> (ExecStats, Duration) {
    match report.iterations.first() {
        Some(it) => (it.qq_stats, it.udf_time),
        None => (ExecStats::default(), Duration::ZERO),
    }
}
