//! # rql-bench
//!
//! Experiment harness regenerating every table and figure of the RQL
//! paper's evaluation (§5). Each experiment is a library function
//! returning a markdown section plus a thin binary
//! (`cargo run --release -p rql-bench --bin fig6` etc.); the
//! `all_experiments` binary runs everything and writes the results into
//! `EXPERIMENTS.md` format on stdout.
//!
//! Environment knobs:
//!
//! * `RQL_BENCH_SF` — TPC-H scale factor (default 0.002 ⇒ 3,000 orders);
//! * `RQL_BENCH_IO_US` — modeled cost per Pagelog page read in
//!   microseconds (default 100 ≈ SATA-SSD random 4 KiB);
//! * `RQL_BENCH_FAST` — reduced parameters for smoke runs/CI.

pub mod experiments;
pub mod harness;
pub mod queries;
