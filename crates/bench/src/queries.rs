//! The queries of Table 1, as code.
//!
//! | Notation    | Query |
//! |-------------|-------|
//! | `Qq_io`     | `SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'` |
//! | `Qq_cpu`    | `SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part WHERE p_partkey = l_partkey AND p_type = 'STANDARD POLISHED TIN'` |
//! | `Qq_collate`| `SELECT o_orderkey FROM orders WHERE o_orderdate < '[DATE]'` |
//! | `Qq_agg`    | `SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av FROM orders GROUP BY o_custkey` |
//! | `Qq_int`    | `SELECT o_orderkey, o_custkey FROM orders` |

use rql::RqlSession;
use rql_sqlengine::Result;

/// `Qq_io`: I/O-intensive, computationally light (scans `orders`).
pub const QQ_IO: &str = "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'";

/// `Qq_cpu`: CPU-intensive join of `lineitem` and `part` (the predicate
/// value is guaranteed by the generator's type grammar).
pub const QQ_CPU: &str = "SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part \
     WHERE p_partkey = l_partkey AND p_type = 'STANDARD POLISHED TIN'";

/// `Qq_agg`: grouped aggregation over `orders`.
pub const QQ_AGG: &str = "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av \
     FROM orders GROUP BY o_custkey";

/// `Qq_int`: full projection of `orders` (drives §5.3's interval
/// experiment).
pub const QQ_INT: &str = "SELECT o_orderkey, o_custkey FROM orders";

/// `Qq_collate` with its `[DATE]` parameter bound.
pub fn qq_collate(date: &str) -> String {
    format!("SELECT o_orderkey FROM orders WHERE o_orderdate < '{date}'")
}

/// Find the `o_orderdate` value below which roughly `fraction` of the
/// orders in snapshot `sid` fall — used to size `Qq_collate`'s output the
/// way the paper varies "the query output size" (Figure 10).
pub fn date_at_fraction(session: &RqlSession, sid: u64, fraction: f64) -> Result<String> {
    let r = session.query(&format!(
        "SELECT AS OF {sid} o_orderdate FROM orders ORDER BY o_orderdate"
    ))?;
    if r.rows.is_empty() {
        return Ok("1992-01-01".to_owned());
    }
    let idx = ((r.rows.len() as f64 * fraction) as usize).min(r.rows.len() - 1);
    Ok(r.rows[idx][0].as_str().unwrap_or("1992-01-01").to_owned())
}
