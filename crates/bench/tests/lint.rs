//! The Table 1 benchmark queries must pass the static analyzer — the
//! same gate CI applies to the runnable examples via `rqlcheck`. Each
//! query is checked under the mechanism it actually drives in the
//! experiments (see `experiments/`), against the TPC-H catalog the
//! harness creates.

use rql::analyze::{analyze_mechanism_call, MechanismCall, MechanismKind, SchemaEnv};
use rql::{DeltaPolicy, RqlSession};
use rql_bench::queries::{qq_collate, QQ_AGG, QQ_CPU, QQ_INT, QQ_IO};

/// The shape every experiment's Qs takes (`SnapshotHistory::qs`).
const QS: &str =
    "SELECT snap_id FROM snapids WHERE snap_id >= 1 AND snap_id <= 10 ORDER BY snap_id";

fn tpch_envs() -> (SchemaEnv, SchemaEnv) {
    let session = RqlSession::with_defaults().unwrap();
    rql_tpch::create_schema(session.snap_db()).unwrap();
    let snap_env = SchemaEnv::from_database(session.snap_db()).unwrap();
    let aux_env = SchemaEnv::from_database(session.aux_db()).unwrap();
    (snap_env, aux_env)
}

fn assert_clean(kind: MechanismKind, qq: &str, spec: Option<&str>, policy: Option<DeltaPolicy>) {
    let (snap_env, aux_env) = tpch_envs();
    let analysis = analyze_mechanism_call(
        &MechanismCall {
            kind,
            qs: QS,
            qq,
            table: "lint_result",
            spec,
        },
        &snap_env,
        &aux_env,
        policy,
    );
    let errors: Vec<_> = analysis
        .diagnostics
        .iter()
        .filter(|d| d.severity == rql::analyze::Severity::Error)
        .collect();
    assert!(errors.is_empty(), "{kind:?} over `{qq}`: {errors:?}");
}

#[test]
fn table1_queries_lint_clean_under_their_mechanisms() {
    // Qq_io and Qq_cpu drive AggregateDataInVariable(avg) in figs 6-9.
    assert_clean(MechanismKind::AggVar, QQ_IO, Some("avg"), None);
    assert_clean(MechanismKind::AggVar, QQ_CPU, Some("avg"), None);
    // Qq_agg drives AggregateDataInTable over its `cn` alias (ablations)
    // and plain CollateData (agg_vs_collate).
    assert_clean(MechanismKind::AggTable, QQ_AGG, Some("(cn,max)"), None);
    assert_clean(MechanismKind::Collate, QQ_AGG, None, None);
    // Qq_int drives both CollateData and CollateDataIntoIntervals
    // (mem_table, §5.3).
    assert_clean(MechanismKind::Collate, QQ_INT, None, None);
    assert_clean(MechanismKind::Intervals, QQ_INT, None, None);
    // Qq_collate with a bound date parameter (fig 10).
    assert_clean(
        MechanismKind::Collate,
        &qq_collate("1995-01-01"),
        None,
        None,
    );
}

/// Policy-aware lint: the single-table scans stay eligible under
/// `Forced`, while the join in Qq_cpu is only acceptable under `Auto`
/// (where the analyzer predicts the sequential fallback, not an error).
#[test]
fn table1_queries_lint_clean_under_delta_policies() {
    assert_clean(
        MechanismKind::Collate,
        QQ_IO,
        None,
        Some(DeltaPolicy::Forced),
    );
    assert_clean(
        MechanismKind::AggVar,
        QQ_CPU,
        Some("avg"),
        Some(DeltaPolicy::Auto),
    );
    assert_clean(
        MechanismKind::Collate,
        QQ_INT,
        None,
        Some(DeltaPolicy::Auto),
    );
}
