//! Aggregate functions usable by the RQL aggregation mechanisms.
//!
//! Paper §2.3: "the aggregate function must be definable by an abelian
//! monoid (X, op, e) where X is the domain of values, op is an
//! associative and commutative binary operation and e is the identity
//! element. Most SQL aggregate functions e.g. min, max, count and sum,
//! satisfy the requirement but some, e.g. average, and aggregations over
//! distinct elements … do not. Because average is widely used in SQL, our
//! aggregation mechanisms implement a simple extension that supports
//! average as a special case."
//!
//! [`AggOp`] is the monoid operation; [`AggState`] carries the running
//! value, with AVG represented as a `(sum, count)` pair — the paper's
//! special case.

use std::fmt;

use rql_sqlengine::{SqlError, Value};

/// An RQL aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Minimum under the SQL total order.
    Min,
    /// Maximum.
    Max,
    /// Numeric sum.
    Sum,
    /// Count of (non-null) contributions.
    Count,
    /// Arithmetic mean — the paper's non-monoid special case, carried as
    /// a `(sum, count)` pair.
    Avg,
}

impl AggOp {
    /// Parse the programmer-facing name ("min", "MAX", …).
    ///
    /// Distinct aggregations are rejected with the paper's guidance:
    /// "Aggregations over distinct elements can use the Collate Data
    /// mechanism … and then use SQL to perform the needed aggregation."
    pub fn parse(name: &str) -> Result<AggOp, SqlError> {
        match name.to_ascii_lowercase().as_str() {
            "min" => Ok(AggOp::Min),
            "max" => Ok(AggOp::Max),
            "sum" => Ok(AggOp::Sum),
            "count" => Ok(AggOp::Count),
            "avg" | "average" => Ok(AggOp::Avg),
            other if other.contains("distinct") => Err(SqlError::Invalid(format!(
                "aggregate '{other}' is not an abelian monoid; collect the elements with \
                 CollateData and aggregate the result table with SQL instead"
            ))),
            other => Err(SqlError::Unknown(format!("aggregate function {other}"))),
        }
    }

    /// Fresh identity state.
    pub fn init(self) -> AggState {
        match self {
            AggOp::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggOp::Count => AggState::Count(0),
            _ => AggState::Simple(None),
        }
    }

    /// Fold one per-snapshot value into the running state. NULLs are
    /// skipped (SQL aggregate semantics).
    pub fn absorb(self, state: &mut AggState, v: &Value) {
        if v.is_null() {
            return;
        }
        match (self, state) {
            (AggOp::Min, AggState::Simple(best)) => {
                if best
                    .as_ref()
                    .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Less)
                {
                    *best = Some(v.clone());
                }
            }
            (AggOp::Max, AggState::Simple(best)) => {
                if best
                    .as_ref()
                    .is_none_or(|b| v.total_cmp(b) == std::cmp::Ordering::Greater)
                {
                    *best = Some(v.clone());
                }
            }
            (AggOp::Sum, AggState::Simple(acc)) => {
                *acc = Some(match acc.take() {
                    None => v.clone(),
                    Some(a) => a.add(v),
                });
            }
            (AggOp::Count, AggState::Count(n)) => *n += 1,
            (AggOp::Avg, AggState::Avg { sum, count }) => {
                if let Some(x) = v.as_f64() {
                    *sum += x;
                    *count += 1;
                }
            }
            (op, st) => unreachable!("state mismatch: {op:?} with {st:?}"),
        }
    }

    /// Combine a value already stored in a result table with a new
    /// per-snapshot value — the `op` of the monoid, used by
    /// `AggregateDataInTable` when its index probe hits.
    pub fn combine(self, stored: &Value, incoming: &Value) -> Value {
        match self {
            AggOp::Min => {
                if incoming.is_null() {
                    stored.clone()
                } else if stored.is_null() || incoming.total_cmp(stored) == std::cmp::Ordering::Less
                {
                    incoming.clone()
                } else {
                    stored.clone()
                }
            }
            AggOp::Max => {
                if incoming.is_null() {
                    stored.clone()
                } else if stored.is_null()
                    || incoming.total_cmp(stored) == std::cmp::Ordering::Greater
                {
                    incoming.clone()
                } else {
                    stored.clone()
                }
            }
            AggOp::Sum => {
                if incoming.is_null() {
                    stored.clone()
                } else if stored.is_null() {
                    incoming.clone()
                } else {
                    stored.add(incoming)
                }
            }
            AggOp::Count => {
                let base = stored.as_i64().unwrap_or(0);
                if incoming.is_null() {
                    Value::Integer(base)
                } else {
                    Value::Integer(base + 1)
                }
            }
            // AVG cannot be combined value-to-value; the mechanism keeps
            // (sum, count) companion columns and never calls this.
            AggOp::Avg => unreachable!("AVG is combined via its (sum, count) pair"),
        }
    }

    /// Finish a running state into the reported value.
    pub fn finish(self, state: &AggState) -> Value {
        match state {
            AggState::Simple(v) => v.clone().unwrap_or(Value::Null),
            AggState::Count(n) => Value::Integer(*n),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Real(sum / *count as f64)
                }
            }
        }
    }

    /// Whether this op needs `(sum, count)` companion columns in a result
    /// table (the AVG special case).
    pub fn needs_companions(self) -> bool {
        matches!(self, AggOp::Avg)
    }
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggOp::Min => "min",
            AggOp::Max => "max",
            AggOp::Sum => "sum",
            AggOp::Count => "count",
            AggOp::Avg => "avg",
        };
        write!(f, "{s}")
    }
}

/// Running state for one aggregate variable.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// MIN/MAX/SUM running value (`None` = identity).
    Simple(Option<Value>),
    /// COUNT of contributions.
    Count(i64),
    /// AVG special case: `(sum, count)`.
    Avg {
        /// Running sum.
        sum: f64,
        /// Contributions.
        count: i64,
    },
}

/// Parse the `ListOfColFuncPairs` notation the paper uses:
/// `"(l_time,min)"` or `"(cn,max):(av,max)"` — also accepted in the
/// reversed `(MAX,cn)` order used in §5.3's prose.
pub fn parse_col_func_pairs(text: &str) -> Result<Vec<(String, AggOp)>, SqlError> {
    let mut out = Vec::new();
    for part in text.split(':') {
        let part = part.trim();
        let inner = part
            .strip_prefix('(')
            .and_then(|p| p.strip_suffix(')'))
            .ok_or_else(|| SqlError::Invalid(format!("bad column/function pair {part:?}")))?;
        let (a, b) = inner
            .split_once(',')
            .ok_or_else(|| SqlError::Invalid(format!("bad column/function pair {part:?}")))?;
        let (a, b) = (a.trim(), b.trim());
        // Accept both (column, func) and (func, column).
        let (col, op) = match AggOp::parse(b) {
            Ok(op) => (a, op),
            Err(_) => (b, AggOp::parse(a)?),
        };
        out.push((col.to_ascii_lowercase(), op));
    }
    if out.is_empty() {
        return Err(SqlError::Invalid("empty column/function list".into()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_names() {
        assert_eq!(AggOp::parse("MIN").unwrap(), AggOp::Min);
        assert_eq!(AggOp::parse("sum").unwrap(), AggOp::Sum);
        assert_eq!(AggOp::parse("Avg").unwrap(), AggOp::Avg);
        assert!(AggOp::parse("median").is_err());
        // Distinct aggregations rejected with CollateData guidance.
        let err = AggOp::parse("count distinct").unwrap_err();
        assert!(err.to_string().contains("CollateData"));
    }

    #[test]
    fn min_max_sum_fold() {
        for (op, expect) in [
            (AggOp::Min, Value::Integer(1)),
            (AggOp::Max, Value::Integer(9)),
            (AggOp::Sum, Value::Integer(15)),
        ] {
            let mut st = op.init();
            for v in [5, 1, 9] {
                op.absorb(&mut st, &Value::Integer(v));
            }
            op.absorb(&mut st, &Value::Null); // ignored
            assert_eq!(op.finish(&st), expect, "{op}");
        }
    }

    #[test]
    fn count_and_avg_fold() {
        let op = AggOp::Count;
        let mut st = op.init();
        for v in [5, 1, 9] {
            op.absorb(&mut st, &Value::Integer(v));
        }
        assert_eq!(op.finish(&st), Value::Integer(3));

        let op = AggOp::Avg;
        let mut st = op.init();
        for v in [2.0, 4.0] {
            op.absorb(&mut st, &Value::Real(v));
        }
        assert_eq!(op.finish(&st), Value::Real(3.0));
        assert!(op.finish(&op.init()).is_null());
    }

    #[test]
    fn combine_is_commutative_and_associative() {
        let vals = [Value::Integer(3), Value::Integer(7), Value::Integer(1)];
        for op in [AggOp::Min, AggOp::Max, AggOp::Sum] {
            let ab = op.combine(&vals[0], &vals[1]);
            let ba = op.combine(&vals[1], &vals[0]);
            assert_eq!(ab, ba, "{op} commutative");
            let ab_c = op.combine(&ab, &vals[2]);
            let a_bc = op.combine(&vals[0], &op.combine(&vals[1], &vals[2]));
            assert_eq!(ab_c, a_bc, "{op} associative");
        }
    }

    #[test]
    fn combine_null_handling() {
        assert_eq!(
            AggOp::Min.combine(&Value::Null, &Value::Integer(2)),
            Value::Integer(2)
        );
        assert_eq!(
            AggOp::Sum.combine(&Value::Integer(2), &Value::Null),
            Value::Integer(2)
        );
    }

    #[test]
    fn pairs_notation() {
        let pairs = parse_col_func_pairs("(l_time,min)").unwrap();
        assert_eq!(pairs, vec![("l_time".to_string(), AggOp::Min)]);
        let pairs = parse_col_func_pairs("(cn,max):(av,max)").unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[1], ("av".to_string(), AggOp::Max));
        // Reversed order, as in the §5.3 prose "(MAX,cn)".
        let pairs = parse_col_func_pairs("(MAX,cn)").unwrap();
        assert_eq!(pairs, vec![("cn".to_string(), AggOp::Max)]);
        assert!(parse_col_func_pairs("cn,max").is_err());
        assert!(parse_col_func_pairs("").is_err());
    }
}
