//! Whole-program dataflow: a def-use graph over result tables.
//!
//! Program-level analysis ([`super::program`]) walks statements in order
//! and collects one [`DfStmt`] fact per statement: mechanism calls
//! *define* their result table (and *use* the auxiliary tables their Qs
//! enumerates), plain auxiliary statements *use* the tables they read or
//! mutate and *define* the tables their DDL creates. The forward passes
//! here then emit the `RQL31x` family:
//!
//! * **RQL310** — a result table is written but no later statement ever
//!   reads it (machine-applicable fix: delete the call);
//! * **RQL311** — a statement reads a result table that only a *later*
//!   statement defines (fix: reorder, maybe-incorrect);
//! * **RQL312** — two calls run the same canonical Qq over *different*
//!   snapshot sets, so memo entries and delta-chain seeds recorded by
//!   one do not line up with the other (fix: reuse the earlier Qs);
//! * **RQL313** — two calls have identical canonical fingerprints (same
//!   mechanism, Qq, Qs, spec) into different tables (machine-applicable
//!   fix: copy the earlier result table instead of recomputing).
//!
//! Canonical comparison reuses the memo store's fingerprint text: the
//! [`render_select`] of the parsed query, exactly what
//! `memoize::qq_fingerprint` hashes.

use rql_sqlengine::ast::{SelectItem, SelectStmt};
use rql_sqlengine::Span;

use crate::analyze::diag::{Applicability, Code, Diagnostic, SourceKind};
use crate::analyze::mechspec::MechanismKind;
use crate::delta::DeltaPolicy;
use crate::rewrite::render_select;

/// Dataflow facts for one mechanism call (literal arguments only).
#[derive(Debug, Clone)]
pub(crate) struct MechNode {
    /// Which mechanism.
    pub kind: MechanismKind,
    /// Result table, lowercase.
    pub table: String,
    /// Auxiliary tables the Qs enumerates (FROM + JOIN), lowercase.
    pub qs_reads: Vec<String>,
    /// Canonical Qs text (render of the projected enclosing SELECT).
    pub qs_canon: String,
    /// Canonical Qq text, `None` when Qq does not parse.
    pub qq_canon: Option<String>,
    /// Whether the memo store would cache this Qq's per-snapshot rows.
    pub memo_eligible: bool,
    /// The spec argument, when the mechanism takes one.
    pub spec: Option<String>,
    /// Span of the mechanism UDF name, program coordinates.
    pub fn_span: Option<Span>,
    /// The full enclosing SELECT of the call statement.
    pub enclosing: SelectStmt,
    /// The projection item holding the mechanism call.
    pub call_item: SelectItem,
}

/// Dataflow facts for a plain (non-mechanism) statement.
#[derive(Debug, Clone)]
pub(crate) struct PlainNode {
    /// Whether the statement runs on the auxiliary database.
    pub on_aux: bool,
    /// Tables read or mutated (lowercase), with the span of the
    /// reference in program coordinates when locatable.
    pub reads: Vec<(String, Option<Span>)>,
    /// Tables the statement's DDL creates (lowercase).
    pub writes: Vec<String>,
}

/// What the dataflow passes know about one statement.
#[derive(Debug, Clone)]
pub(crate) enum DfNode {
    /// A mechanism call with literal arguments.
    Mechanism(Box<MechNode>),
    /// Any other statement that parsed.
    Plain(PlainNode),
    /// Unparseable, or a mechanism call with dynamic arguments — it
    /// could read or define anything, so def-use passes stand down.
    Opaque,
}

/// One statement's dataflow entry, with its source extent.
#[derive(Debug, Clone)]
pub(crate) struct DfStmt {
    /// The classified node.
    pub node: DfNode,
    /// Statement text plus the trailing `;` (and one trailing newline),
    /// program coordinates — the deletion extent for RQL310.
    pub range: Span,
    /// Statement text only (what a replacement must produce).
    pub text_span: Span,
}

/// Extend a statement's text span over its trailing `;` and one
/// following newline, so deleting the range leaves no stray terminator.
pub(crate) fn stmt_range(src: &str, text_span: Span) -> Span {
    let bytes = src.as_bytes();
    let mut end = text_span.end;
    while end < bytes.len() && (bytes[end] as char).is_ascii_whitespace() && bytes[end] != b'\n' {
        end += 1;
    }
    if end < bytes.len() && bytes[end] == b';' {
        end += 1;
        if end < bytes.len() && bytes[end] == b'\n' {
            end += 1;
        }
    }
    Span::new(text_span.start, end)
}

/// Whether an `--@aux` directive line sits in `src[a..b]` (the gap
/// before a statement). Deleting the statement would re-aim such a
/// directive at whatever follows, so fixes near one downgrade to
/// maybe-incorrect.
fn directive_between(src: &str, a: usize, b: usize) -> bool {
    src.get(a..b)
        .is_some_and(|gap| gap.lines().any(|l| l.trim_start().starts_with("--@")))
}

/// Run every dataflow pass over the collected statement facts, pushing
/// findings (program coordinates) onto `diags`.
pub(crate) fn check_dataflow(
    src: &str,
    policy: Option<DeltaPolicy>,
    stmts: &[DfStmt],
    diags: &mut Vec<Diagnostic>,
) {
    // A dynamic mechanism call (or unparseable statement) may read or
    // define tables the graph cannot see; liveness passes stand down,
    // fingerprint passes (which only compare literal calls) still run.
    let opaque = stmts.iter().any(|s| matches!(s.node, DfNode::Opaque));
    if !opaque {
        dead_result_tables(src, stmts, diags);
        use_before_define(src, stmts, diags);
    }
    snapshot_set_mismatch(policy, stmts, diags);
    redundant_recompute(stmts, opaque, diags);
}

/// Whether any statement after index `i` reads `table` on the aux side.
fn read_after(stmts: &[DfStmt], i: usize, table: &str) -> bool {
    stmts[i + 1..]
        .iter()
        .any(|later| aux_uses(later).iter().any(|(t, _)| t == table))
}

/// Auxiliary-side tables statement `s` uses.
fn aux_uses(s: &DfStmt) -> Vec<(String, Option<Span>)> {
    match &s.node {
        DfNode::Mechanism(m) => m.qs_reads.iter().map(|t| (t.clone(), m.fn_span)).collect(),
        DfNode::Plain(p) if p.on_aux => p.reads.clone(),
        _ => Vec::new(),
    }
}

/// Auxiliary-side tables statement `s` defines.
fn aux_defs(s: &DfStmt) -> Vec<String> {
    match &s.node {
        DfNode::Mechanism(m) => vec![m.table.clone()],
        DfNode::Plain(p) if p.on_aux => p.writes.clone(),
        _ => Vec::new(),
    }
}

/// RQL310: a mechanism call whose result table no later statement reads.
fn dead_result_tables(src: &str, stmts: &[DfStmt], diags: &mut Vec<Diagnostic>) {
    for (i, s) in stmts.iter().enumerate() {
        let DfNode::Mechanism(m) = &s.node else {
            continue;
        };
        if read_after(stmts, i, &m.table) {
            continue;
        }
        let prev_end = stmts[..i].last().map_or(0, |p| p.range.end);
        // Deleting a statement that an --@aux (or other) directive
        // precedes would re-aim the directive; keep the edit but demand
        // review.
        let applicability = if directive_between(src, prev_end, s.range.start) {
            Applicability::MaybeIncorrect
        } else {
            Applicability::MachineApplicable
        };
        diags.push(
            Diagnostic::new(
                Code::DeadResultTable,
                format!(
                    "result table '{}' is populated by {} but never read by any later \
                     statement; the whole snapshot loop is wasted work",
                    m.table,
                    m.kind.udf_name(),
                ),
                SourceKind::Program,
                m.fn_span,
            )
            .with_fix(s.range, "", applicability),
        );
    }
}

/// RQL311: a statement reads a result table only a later statement
/// defines. Rides along with the resolver's unknown-table error and
/// explains *why* the name will exist eventually.
fn use_before_define(src: &str, stmts: &[DfStmt], diags: &mut Vec<Diagnostic>) {
    use std::collections::HashMap;
    let mut first_def: HashMap<String, usize> = HashMap::new();
    for (i, s) in stmts.iter().enumerate() {
        for t in aux_defs(s) {
            first_def.entry(t).or_insert(i);
        }
    }
    for (i, s) in stmts.iter().enumerate() {
        for (table, span) in aux_uses(s) {
            let Some(&def_idx) = first_def.get(table.as_str()) else {
                continue;
            };
            if def_idx <= i {
                continue;
            }
            let def = &stmts[def_idx];
            // Reorder fix: move the reading statement (with any directive
            // line glued to it) after the defining statement.
            let prev_end = stmts[..i].last().map_or(0, |p| p.range.end);
            let mut use_start = s.range.start;
            if let Some(gap) = src.get(prev_end..s.range.start) {
                let mut off = 0;
                for line in gap.split_inclusive('\n') {
                    if line.trim_start().starts_with("--@") {
                        use_start = prev_end + off;
                        break;
                    }
                    off += line.len();
                }
            }
            let fix = src.get(use_start..def.range.end).map(|region| {
                let moved = &region[..s.range.end - use_start];
                let rest = &region[s.range.end - use_start..];
                (
                    Span::new(use_start, def.range.end),
                    format!("{}{}\n", rest.trim_start_matches('\n'), moved.trim_end()),
                )
            });
            let mut d = Diagnostic::new(
                Code::UseBeforeDefine,
                format!(
                    "'{table}' is read here but only defined by statement {} below; \
                     move this statement after it",
                    def_idx + 1
                ),
                SourceKind::Program,
                span,
            );
            if let Some((fspan, replacement)) = fix {
                d = d.with_fix(fspan, replacement, Applicability::MaybeIncorrect);
            }
            diags.push(d);
        }
    }
}

/// RQL312: same canonical Qq, different snapshot set. Only interesting
/// when cross-call reuse is in play: a delta policy (chain seeds) or a
/// memo-eligible Qq (shared cache entries).
fn snapshot_set_mismatch(
    policy: Option<DeltaPolicy>,
    stmts: &[DfStmt],
    diags: &mut Vec<Diagnostic>,
) {
    let mechs: Vec<(usize, &MechNode)> = mech_nodes(stmts);
    for (jj, &(j_idx, mj)) in mechs.iter().enumerate() {
        let Some(qq_j) = &mj.qq_canon else { continue };
        let reuse = policy.is_some_and(|p| p != DeltaPolicy::Off) || mj.memo_eligible;
        if !reuse {
            continue;
        }
        let Some(&(_, mi)) = mechs[..jj]
            .iter()
            .find(|(_, mi)| mi.qq_canon.as_ref() == Some(qq_j) && mi.qs_canon != mj.qs_canon)
        else {
            continue;
        };
        // Rebuild this statement on the earlier call's snapshot set: the
        // earlier enclosing SELECT with this call as its projection.
        let mut sel = mi.enclosing.clone();
        sel.items = vec![mj.call_item.clone()];
        diags.push(
            Diagnostic::new(
                Code::SnapshotSetMismatch,
                format!(
                    "this loop runs the same Qq as the earlier call writing '{}' but over a \
                     different snapshot set ({} vs {}); memo entries and delta-chain seeds \
                     recorded there do not line up with this enumeration",
                    mi.table, mi.qs_canon, mj.qs_canon,
                ),
                SourceKind::Program,
                mj.fn_span,
            )
            .with_fix(
                stmts[j_idx].text_span,
                render_select(&sel),
                Applicability::MaybeIncorrect,
            ),
        );
    }
}

/// RQL313: identical canonical fingerprint (mechanism, Qq, Qs, spec)
/// into a different table — a straight recomputation. When liveness is
/// computable, pairs where either table is dead are left to RQL310: the
/// copy-fix would otherwise reference a statement the dead-table fix
/// deletes in the same round.
fn redundant_recompute(stmts: &[DfStmt], opaque: bool, diags: &mut Vec<Diagnostic>) {
    let mechs: Vec<(usize, &MechNode)> = mech_nodes(stmts);
    for (jj, &(j_idx, mj)) in mechs.iter().enumerate() {
        if mj.qq_canon.is_none() {
            continue;
        }
        if !opaque && !read_after(stmts, j_idx, &mj.table) {
            continue;
        }
        let Some(&(i_idx, mi)) = mechs[..jj].iter().find(|(_, mi)| {
            mi.kind == mj.kind
                && mi.qq_canon == mj.qq_canon
                && mi.qs_canon == mj.qs_canon
                && mi.spec == mj.spec
                && mi.table != mj.table
        }) else {
            continue;
        };
        if !opaque && !read_after(stmts, i_idx, &mi.table) {
            continue;
        }
        diags.push(
            Diagnostic::new(
                Code::RedundantRecompute,
                format!(
                    "identical mechanism call already populates '{}' (same Qq, snapshot set, \
                     and spec); copy that table instead of re-running the loop",
                    mi.table,
                ),
                SourceKind::Program,
                mj.fn_span,
            )
            .with_fix(
                stmts[j_idx].text_span,
                // The leading newline guarantees the directive starts its
                // own line even when the statement did not.
                format!(
                    "\n--@aux\nCREATE TABLE {} AS SELECT * FROM {}",
                    mj.table, mi.table
                ),
                Applicability::MachineApplicable,
            ),
        );
    }
}

fn mech_nodes(stmts: &[DfStmt]) -> Vec<(usize, &MechNode)> {
    stmts
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match &s.node {
            DfNode::Mechanism(m) => Some((i, m.as_ref())),
            _ => None,
        })
        .collect()
}
