//! Delta-eligibility explain: DESIGN.md's fallback matrix as
//! compile-time diagnostics.
//!
//! The delta drivers ([`crate::delta`]) decide at runtime whether an
//! iteration takes the delta scan, the pipeline, or falls back to the
//! sequential plan. Under `DeltaPolicy::Auto` the fallback is silent;
//! under `Forced` it is an error — raised only after Qs has already run.
//! This pass evaluates the same predicates statically, so a `Forced`
//! program that can never take the delta path is rejected before any
//! snapshot is opened, and an `Auto` program gets an `info` explaining
//! which path it will actually use.

use rql_sqlengine::ast::SelectStmt;
use rql_sqlengine::DeltaSelectRunner;

use crate::analyze::diag::{Code, Diagnostic, SourceKind};
use crate::delta::{has_inner_agg_shape, DeltaPolicy};
use crate::memoize::expr_calls_udf;
use crate::rewrite::uses_current_snapshot;

use super::mechspec::MechanismKind;

/// The iteration path the analyzer predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredictedPath {
    /// O(delta) incremental inner aggregate (AggregateDataInVariable
    /// with a bare inner-aggregate Qq).
    Incremental,
    /// Delta scan + pipeline re-evaluation over cached base rows.
    Pipeline,
    /// The ordinary sequential mechanism.
    Sequential,
}

/// Why the predicted path is what it is.
#[derive(Debug, Clone)]
pub struct DeltaExplain {
    /// Policy the program requested.
    pub policy: DeltaPolicy,
    /// Whether the mechanism has a delta driver at all.
    pub mechanism_supported: bool,
    /// Single-table scan shape (`DeltaSelectRunner::eligible_shape`).
    pub shape_eligible: bool,
    /// WHERE calls `current_snapshot()`, so the filter varies per
    /// iteration.
    pub snapshot_dependent_where: bool,
    /// WHERE calls a UDF — the delta scan bails per iteration.
    pub udf_in_where: bool,
    /// The incremental inner-aggregate shape applies.
    pub incremental: bool,
    /// The path the computation will take.
    pub predicted_path: PredictedPath,
    /// Human-readable reasons, in decision order.
    pub reasons: Vec<String>,
}

/// Whether the WHERE clause calls a user-defined function. Builtins,
/// aggregates, and `current_snapshot()` are engine-evaluated; anything
/// else compiles to a UDF call, which the delta scan's row cache cannot
/// replay. The walker (and its builtin whitelist) is shared with the
/// memoization-eligibility rule in [`crate::memoize`].
fn udf_in_where(select: &SelectStmt) -> bool {
    select.where_clause.as_ref().is_some_and(expr_calls_udf)
}

/// Evaluate the fallback matrix for one mechanism call and append the
/// policy-appropriate diagnostics (errors under `Forced`, advisories
/// under `Auto`, nothing under `Off`).
pub fn explain_delta(
    kind: MechanismKind,
    qq: Option<&SelectStmt>,
    policy: DeltaPolicy,
    diags: &mut Vec<Diagnostic>,
) -> DeltaExplain {
    let mechanism_supported = matches!(
        kind,
        MechanismKind::Collate | MechanismKind::AggVar | MechanismKind::AggTable
    );
    let shape_eligible = qq.is_some_and(DeltaSelectRunner::eligible_shape);
    let snapshot_dependent_where =
        qq.is_some_and(|q| q.where_clause.as_ref().is_some_and(uses_current_snapshot));
    let udf_where = qq.is_some_and(udf_in_where);
    let incremental = kind == MechanismKind::AggVar && qq.is_some_and(has_inner_agg_shape);

    let mut reasons = Vec::new();
    let mut push = |diags: &mut Vec<Diagnostic>, code: Code, msg: String| {
        reasons.push(msg.clone());
        diags.push(Diagnostic::new(code, msg, SourceKind::Qq, None));
    };

    let predicted_path = if policy == DeltaPolicy::Off {
        reasons.push("delta policy is Off; sequential mechanism".to_owned());
        PredictedPath::Sequential
    } else if !mechanism_supported {
        let msg = "CollateDataIntoIntervals has no delta path yet (see ROADMAP \
                   open items); the sequential mechanism runs instead"
            .to_owned();
        if policy == DeltaPolicy::Forced {
            push(diags, Code::ForcedDeltaUnsupportedMechanism, msg);
        } else {
            push(diags, Code::AutoDeltaFallback, msg);
        }
        PredictedPath::Sequential
    } else if !shape_eligible || qq.is_none() {
        let msg = "Qq is not a single-table scan (joins or multiple FROM \
                   tables); the delta scan cannot reproduce it"
            .to_owned();
        if policy == DeltaPolicy::Forced {
            push(diags, Code::ForcedDeltaIneligibleShape, msg);
        } else {
            push(diags, Code::AutoDeltaFallback, msg);
        }
        PredictedPath::Sequential
    } else if snapshot_dependent_where {
        let msg = "WHERE calls current_snapshot(), so the scan filter \
                   changes every iteration; the cached delta rows cannot \
                   represent that"
            .to_owned();
        if policy == DeltaPolicy::Forced {
            push(diags, Code::ForcedDeltaSnapshotDependentWhere, msg);
        } else {
            push(diags, Code::AutoDeltaFallback, msg);
        }
        PredictedPath::Sequential
    } else if udf_where {
        let msg = "WHERE calls a UDF; the delta scan bails to the ordinary \
                   plan on every iteration"
            .to_owned();
        if policy == DeltaPolicy::Forced {
            push(diags, Code::ForcedDeltaUdfInWhere, msg);
        } else {
            push(diags, Code::AutoDeltaFallback, msg);
        }
        PredictedPath::Sequential
    } else if incremental {
        reasons.push("bare inner aggregate: O(changed rows) incremental maintenance".to_owned());
        PredictedPath::Incremental
    } else {
        if kind == MechanismKind::AggVar {
            push(
                diags,
                Code::IncrementalUnavailable,
                "Qq is delta-eligible but not a bare inner aggregate; the \
                 pipeline re-evaluates post-scan stages per iteration"
                    .to_owned(),
            );
        } else {
            reasons.push("delta scan + pipeline fold".to_owned());
        }
        PredictedPath::Pipeline
    };

    DeltaExplain {
        policy,
        mechanism_supported,
        shape_eligible,
        snapshot_dependent_where,
        udf_in_where: udf_where,
        incremental,
        predicted_path,
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_sqlengine::parse_select;

    fn explain(kind: MechanismKind, qq: &str, policy: DeltaPolicy) -> (DeltaExplain, Vec<Code>) {
        let parsed = parse_select(qq).unwrap();
        let mut diags = Vec::new();
        let ex = explain_delta(kind, Some(&parsed), policy, &mut diags);
        (ex, diags.iter().map(|d| d.code).collect())
    }

    #[test]
    fn incremental_prediction() {
        let (ex, codes) = explain(
            MechanismKind::AggVar,
            "SELECT SUM(v) FROM t WHERE v > 0",
            DeltaPolicy::Forced,
        );
        assert_eq!(ex.predicted_path, PredictedPath::Incremental);
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn pipeline_prediction() {
        let (ex, codes) = explain(
            MechanismKind::Collate,
            "SELECT DISTINCT v FROM t",
            DeltaPolicy::Auto,
        );
        assert_eq!(ex.predicted_path, PredictedPath::Pipeline);
        assert!(codes.is_empty());
        // AggVar with a wrapped aggregate: pipeline, with the info note.
        let (ex, codes) = explain(
            MechanismKind::AggVar,
            "SELECT SUM(v) + 1 FROM t",
            DeltaPolicy::Auto,
        );
        assert_eq!(ex.predicted_path, PredictedPath::Pipeline);
        assert_eq!(codes, vec![Code::IncrementalUnavailable]);
    }

    #[test]
    fn agg_table_predicts_pipeline() {
        let (ex, codes) = explain(
            MechanismKind::AggTable,
            "SELECT cn, l_time FROM lineitem",
            DeltaPolicy::Forced,
        );
        assert_eq!(ex.predicted_path, PredictedPath::Pipeline);
        assert!(codes.is_empty(), "{codes:?}");
    }

    #[test]
    fn forced_failures() {
        let (_, codes) = explain(
            MechanismKind::Intervals,
            "SELECT v FROM t",
            DeltaPolicy::Forced,
        );
        assert_eq!(codes, vec![Code::ForcedDeltaUnsupportedMechanism]);
        let (_, codes) = explain(
            MechanismKind::Collate,
            "SELECT a FROM t, u",
            DeltaPolicy::Forced,
        );
        assert_eq!(codes, vec![Code::ForcedDeltaIneligibleShape]);
        let (_, codes) = explain(
            MechanismKind::Collate,
            "SELECT v FROM t WHERE v = current_snapshot()",
            DeltaPolicy::Forced,
        );
        assert_eq!(codes, vec![Code::ForcedDeltaSnapshotDependentWhere]);
        let (_, codes) = explain(
            MechanismKind::Collate,
            "SELECT v FROM t WHERE my_udf(v) > 0",
            DeltaPolicy::Forced,
        );
        assert_eq!(codes, vec![Code::ForcedDeltaUdfInWhere]);
    }

    #[test]
    fn auto_downgrades_to_info() {
        let (ex, codes) = explain(
            MechanismKind::Collate,
            "SELECT a FROM t, u",
            DeltaPolicy::Auto,
        );
        assert_eq!(ex.predicted_path, PredictedPath::Sequential);
        assert_eq!(codes, vec![Code::AutoDeltaFallback]);
    }

    #[test]
    fn off_is_silent() {
        let (ex, codes) = explain(
            MechanismKind::Collate,
            "SELECT a FROM t, u",
            DeltaPolicy::Off,
        );
        assert_eq!(ex.predicted_path, PredictedPath::Sequential);
        assert!(codes.is_empty());
    }
}
