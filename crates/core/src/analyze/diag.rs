//! Structured diagnostics with stable error codes.
//!
//! Every problem `rqlcheck` can report is a [`Diagnostic`]: a stable
//! [`Code`] (never renumbered, so scripts and CI greps can match on it),
//! a [`Severity`], a message, and — whenever the offending text can be
//! located — a byte [`Span`] into one of the program's source texts
//! ([`SourceKind`] says which one).
//!
//! Code ranges:
//!
//! * `RQL0xx` — semantic errors (name/type resolution, mechanism-spec
//!   validation, result-table schema problems);
//! * `RQL1xx` — rewrite-safety (the `AS OF` injection and
//!   `current_snapshot()` substitution of paper §3);
//! * `RQL2xx` — delta-eligibility (the DESIGN.md §5b fallback matrix as
//!   compile-time diagnostics);
//! * `RQL31x` — whole-program dataflow (def-use over result tables;
//!   `RQL300`–`RQL309` stay reserved for the runtime/server codes the
//!   wire protocol already uses: RQL300 client cancel, RQL301 timeout).
//!
//! A diagnostic may carry a [`Fix`]: a byte-span replacement with a
//! rustc-style [`Applicability`]. `rqlcheck --fix` applies only
//! [`Applicability::MachineApplicable`] fixes.

use std::fmt;

use rql_sqlengine::Span;

/// Stable diagnostic codes. The numeric part is permanent: codes are
/// retired, never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // each variant is documented by `description()`
pub enum Code {
    // ---- RQL0xx: semantic ---------------------------------------------
    UnknownTable,
    UnknownColumn,
    UnknownFunction,
    FunctionArity,
    QsNotSingleColumn,
    QsUnknownTable,
    ResultTableExists,
    DuplicateOutputColumn,
    AggVarNotSingleColumn,
    BadAggFunc,
    AggColumnNotInQq,
    NoGroupingColumns,
    IntervalsReservedColumn,
    AggTypeMismatch,
    AmbiguousColumn,
    UnknownQualifier,
    NestedAggregate,
    UngroupedColumn,
    QsNonIntegerColumn,
    MechanismArity,
    ParseError,
    QsParseError,
    QqParseError,
    // ---- RQL1xx: rewrite safety ---------------------------------------
    AsOfInQq,
    CurrentSnapshotArity,
    CurrentSnapshotInQs,
    CurrentSnapshotOutsideLoop,
    CurrentSnapshotInStringLiteral,
    AsOfInStringLiteral,
    // ---- RQL2xx: delta eligibility ------------------------------------
    ForcedDeltaUnsupportedMechanism,
    ForcedDeltaIneligibleShape,
    ForcedDeltaSnapshotDependentWhere,
    AutoDeltaFallback,
    ForcedDeltaUdfInWhere,
    IncrementalUnavailable,
    MemoIneligible,
    ProfiledUdfOpaque,
    PruneIneligibleWhere,
    MaintainIneligible,
    // ---- RQL31x: whole-program dataflow --------------------------------
    DeadResultTable,
    UseBeforeDefine,
    SnapshotSetMismatch,
    RedundantRecompute,
}

impl Code {
    /// Every code, for registry-coverage assertions.
    pub const ALL: [Code; 43] = [
        Code::UnknownTable,
        Code::UnknownColumn,
        Code::UnknownFunction,
        Code::FunctionArity,
        Code::QsNotSingleColumn,
        Code::QsUnknownTable,
        Code::ResultTableExists,
        Code::DuplicateOutputColumn,
        Code::AggVarNotSingleColumn,
        Code::BadAggFunc,
        Code::AggColumnNotInQq,
        Code::NoGroupingColumns,
        Code::IntervalsReservedColumn,
        Code::AggTypeMismatch,
        Code::AmbiguousColumn,
        Code::UnknownQualifier,
        Code::NestedAggregate,
        Code::UngroupedColumn,
        Code::QsNonIntegerColumn,
        Code::MechanismArity,
        Code::ParseError,
        Code::QsParseError,
        Code::QqParseError,
        Code::AsOfInQq,
        Code::CurrentSnapshotArity,
        Code::CurrentSnapshotInQs,
        Code::CurrentSnapshotOutsideLoop,
        Code::CurrentSnapshotInStringLiteral,
        Code::AsOfInStringLiteral,
        Code::ForcedDeltaUnsupportedMechanism,
        Code::ForcedDeltaIneligibleShape,
        Code::ForcedDeltaSnapshotDependentWhere,
        Code::AutoDeltaFallback,
        Code::ForcedDeltaUdfInWhere,
        Code::IncrementalUnavailable,
        Code::MemoIneligible,
        Code::ProfiledUdfOpaque,
        Code::PruneIneligibleWhere,
        Code::MaintainIneligible,
        Code::DeadResultTable,
        Code::UseBeforeDefine,
        Code::SnapshotSetMismatch,
        Code::RedundantRecompute,
    ];

    /// The stable code string, e.g. `"RQL002"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnknownTable => "RQL001",
            Code::UnknownColumn => "RQL002",
            Code::UnknownFunction => "RQL003",
            Code::FunctionArity => "RQL004",
            Code::QsNotSingleColumn => "RQL005",
            Code::QsUnknownTable => "RQL006",
            Code::ResultTableExists => "RQL007",
            Code::DuplicateOutputColumn => "RQL008",
            Code::AggVarNotSingleColumn => "RQL009",
            Code::BadAggFunc => "RQL010",
            Code::AggColumnNotInQq => "RQL011",
            Code::NoGroupingColumns => "RQL012",
            Code::IntervalsReservedColumn => "RQL013",
            Code::AggTypeMismatch => "RQL014",
            Code::AmbiguousColumn => "RQL015",
            Code::UnknownQualifier => "RQL016",
            Code::NestedAggregate => "RQL017",
            Code::UngroupedColumn => "RQL018",
            Code::QsNonIntegerColumn => "RQL019",
            Code::MechanismArity => "RQL020",
            Code::ParseError => "RQL050",
            Code::QsParseError => "RQL051",
            Code::QqParseError => "RQL052",
            Code::AsOfInQq => "RQL101",
            Code::CurrentSnapshotArity => "RQL102",
            Code::CurrentSnapshotInQs => "RQL103",
            Code::CurrentSnapshotOutsideLoop => "RQL104",
            Code::CurrentSnapshotInStringLiteral => "RQL105",
            Code::AsOfInStringLiteral => "RQL106",
            Code::ForcedDeltaUnsupportedMechanism => "RQL201",
            Code::ForcedDeltaIneligibleShape => "RQL202",
            Code::ForcedDeltaSnapshotDependentWhere => "RQL203",
            Code::AutoDeltaFallback => "RQL204",
            Code::ForcedDeltaUdfInWhere => "RQL205",
            Code::IncrementalUnavailable => "RQL206",
            Code::MemoIneligible => "RQL207",
            Code::ProfiledUdfOpaque => "RQL208",
            Code::PruneIneligibleWhere => "RQL209",
            Code::MaintainIneligible => "RQL210",
            // RQL300–RQL309 are reserved: the runtime/server taxonomy
            // already emits RQL300 (client cancel) and RQL301 (timeout)
            // over the wire, so dataflow codes start at RQL310.
            Code::DeadResultTable => "RQL310",
            Code::UseBeforeDefine => "RQL311",
            Code::SnapshotSetMismatch => "RQL312",
            Code::RedundantRecompute => "RQL313",
        }
    }

    /// One-line registry description (DESIGN.md §6 table).
    pub fn description(self) -> &'static str {
        match self {
            Code::UnknownTable => "query references a table that exists in no reachable catalog",
            Code::UnknownColumn => "column not found in any table in scope",
            Code::UnknownFunction => {
                "function is neither a builtin, an aggregate, nor a registered UDF"
            }
            Code::FunctionArity => "builtin function called with the wrong number of arguments",
            Code::QsNotSingleColumn => "Qs must return exactly one snapshot-id column",
            Code::QsUnknownTable => "Qs references a table missing from the auxiliary database",
            Code::ResultTableExists => "result table T already exists in the auxiliary database",
            Code::DuplicateOutputColumn => "two output columns of T would share a name",
            Code::AggVarNotSingleColumn => "AggregateDataInVariable needs a single-column Qq",
            Code::BadAggFunc => "unknown or non-monoid aggregate function in the mechanism spec",
            Code::AggColumnNotInQq => "aggregated column is not in the Qq output",
            Code::NoGroupingColumns => "every Qq column is aggregated; nothing left to group on",
            Code::IntervalsReservedColumn => "Qq output collides with start_snapshot/end_snapshot",
            Code::AggTypeMismatch => "numeric aggregate applied to a text-typed column",
            Code::AmbiguousColumn => "unqualified column name matches more than one table in scope",
            Code::UnknownQualifier => "column qualifier names no table or alias in FROM",
            Code::NestedAggregate => "aggregate call nested inside another aggregate",
            Code::UngroupedColumn => "non-aggregated column outside GROUP BY",
            Code::QsNonIntegerColumn => "Qs column is not integer-typed; ids coerce at runtime",
            Code::MechanismArity => "mechanism UDF called with the wrong number of arguments",
            Code::ParseError => "statement does not parse",
            Code::QsParseError => "Qs does not parse",
            Code::QqParseError => "Qq does not parse",
            Code::AsOfInQq => "Qq must not contain AS OF; RQL binds the snapshot per iteration",
            Code::CurrentSnapshotArity => "current_snapshot() takes no arguments",
            Code::CurrentSnapshotInQs => "current_snapshot() in Qs has no loop to bind to",
            Code::CurrentSnapshotOutsideLoop => "current_snapshot() outside an RQL loop body",
            Code::CurrentSnapshotInStringLiteral => {
                "current_snapshot inside a string literal is not substituted"
            }
            Code::AsOfInStringLiteral => "AS OF inside a string literal is not rewritten",
            Code::ForcedDeltaUnsupportedMechanism => {
                "Forced delta policy on a mechanism with no delta path"
            }
            Code::ForcedDeltaIneligibleShape => {
                "Forced delta policy but Qq is not a single-table scan"
            }
            Code::ForcedDeltaSnapshotDependentWhere => {
                "Forced delta policy but WHERE depends on the snapshot"
            }
            Code::AutoDeltaFallback => "Auto delta policy will fall back to the sequential path",
            Code::ForcedDeltaUdfInWhere => "Forced delta policy but WHERE calls a UDF",
            Code::IncrementalUnavailable => "delta runs in pipeline mode; no incremental aggregate",
            Code::MemoIneligible => {
                "Qq calls a user-defined function; its per-snapshot results are never memoized"
            }
            Code::ProfiledUdfOpaque => {
                "Qq calls a user-defined function; the profile report cannot attribute its \
                 time to engine phases"
            }
            Code::PruneIneligibleWhere => {
                "no Qq WHERE conjunct compares a bare column to a constant, so zone-map/bloom \
                 sidecars can never prune a page for this scan"
            }
            Code::MaintainIneligible => {
                "MAINTAIN QUERY requires a mechanism call with literal arguments and a \
                 deterministic, UDF-free Qq; this program cannot be registered as a standing \
                 query"
            }
            Code::DeadResultTable => {
                "a mechanism call populates a result table no later statement ever reads"
            }
            Code::UseBeforeDefine => {
                "a statement reads a result table that is only defined by a later statement"
            }
            Code::SnapshotSetMismatch => {
                "two mechanism calls run the same Qq over different snapshot sets, so memo/delta \
                 seeds recorded by one do not line up with the other"
            }
            Code::RedundantRecompute => {
                "two mechanism calls with identical canonical fingerprints recompute the same \
                 result over the same snapshot set"
            }
        }
    }

    /// The severity this code is reported at.
    pub fn severity(self) -> Severity {
        match self {
            Code::AggTypeMismatch
            | Code::UngroupedColumn
            | Code::QsNonIntegerColumn
            | Code::CurrentSnapshotInStringLiteral
            | Code::AsOfInStringLiteral
            | Code::PruneIneligibleWhere
            | Code::DeadResultTable
            | Code::SnapshotSetMismatch
            | Code::RedundantRecompute => Severity::Warning,
            Code::AutoDeltaFallback
            | Code::IncrementalUnavailable
            | Code::MemoIneligible
            | Code::ProfiledUdfOpaque => Severity::Info,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory (delta-path explanations).
    Info,
    /// Suspicious but executable.
    Warning,
    /// The program will fail (or silently misbehave) at runtime.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Which source text a diagnostic's span indexes into. Program-level
/// analysis remaps Qs/Qq spans into program coordinates; API-level
/// analysis (the session pre-flight) reports them against the argument
/// strings directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceKind {
    /// The whole `.rql` program text.
    Program,
    /// The Qs argument string.
    Qs,
    /// The Qq argument string.
    Qq,
    /// The mechanism spec argument (aggregate function / pairs list).
    Spec,
}

/// How confidently a [`Fix`] can be applied without human review.
/// Mirrors rustc's applicability ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// Semantics-preserving; `rqlcheck --fix` applies it automatically.
    MachineApplicable,
    /// Plausibly what the author meant, but could change behavior —
    /// surfaced in output, never auto-applied.
    MaybeIncorrect,
    /// The replacement contains placeholder text a human must fill in.
    HasPlaceholders,
}

impl Applicability {
    /// Stable string form, used by the JSON/SARIF emitters.
    pub fn as_str(self) -> &'static str {
        match self {
            Applicability::MachineApplicable => "machine-applicable",
            Applicability::MaybeIncorrect => "maybe-incorrect",
            Applicability::HasPlaceholders => "has-placeholders",
        }
    }
}

impl fmt::Display for Applicability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A concrete edit that resolves a diagnostic: replace the byte range
/// `span` (in the same source text the diagnostic's span indexes) with
/// `replacement`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Byte range to replace, in the diagnostic's [`SourceKind`] text.
    pub span: Span,
    /// Replacement text (may be empty: a pure deletion).
    pub replacement: String,
    /// How safely the edit can be applied unreviewed.
    pub applicability: Applicability,
}

/// One finding of the static analyzer.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity (derived from the code).
    pub severity: Severity,
    /// Human-readable message (no code/severity prefix).
    pub message: String,
    /// Which text `span` indexes into.
    pub source: SourceKind,
    /// Byte range of the offending text, when locatable.
    pub span: Option<Span>,
    /// A structured edit resolving the finding, when one can be derived.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// Build a diagnostic; severity comes from the code.
    pub fn new(
        code: Code,
        message: impl Into<String>,
        source: SourceKind,
        span: Option<Span>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            source,
            span,
            fix: None,
        }
    }

    /// Attach a structured fix (builder style).
    pub fn with_fix(
        mut self,
        span: Span,
        replacement: impl Into<String>,
        applicability: Applicability,
    ) -> Diagnostic {
        self.fix = Some(Fix {
            span,
            replacement: replacement.into(),
            applicability,
        });
        self
    }

    /// Render for humans: `severity[code]: message` plus, when a span is
    /// available, the `file:line:col` position, the offending source
    /// line, and a caret run under the span.
    pub fn render(&self, file: &str, src: &str) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        let Some(span) = self.span else {
            out.push_str(&format!("\n  --> {file}"));
            return out;
        };
        let (line, col) = span.line_col(src);
        out.push_str(&format!("\n  --> {file}:{line}:{col}"));
        if let Some(text) = src.lines().nth(line - 1) {
            let width = src[span.start..span.end.min(src.len())]
                .chars()
                .count()
                .max(1);
            // Clamp the caret run to the line it starts on.
            let width = width.min(text.chars().count().saturating_sub(col - 1).max(1));
            out.push_str(&format!(
                "\n   | {text}\n   | {}{}",
                " ".repeat(col - 1),
                "^".repeat(width)
            ));
        }
        out
    }
}

/// Drop exact repeats: the same (code, source, span, message) surfaces
/// once per analysis, keeping the first occurrence (which carries the
/// fix, when any copy does). The pre-flight's historical-catalog
/// widening retry re-runs passes over the same text, and multi-reference
/// FROM lists resolve a missing table once per reference — both used to
/// re-emit identical findings.
pub fn dedupe(diags: &mut Vec<Diagnostic>) {
    let mut seen = std::collections::HashSet::new();
    diags.retain(|d| {
        seen.insert((
            d.code,
            d.source as u8,
            d.span.map(|s| (s.start, s.end)),
            d.message.clone(),
        ))
    });
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for code in Code::ALL {
            assert!(seen.insert(code.as_str()), "duplicate {code}");
            assert!(code.as_str().starts_with("RQL"));
            assert!(!code.description().is_empty());
        }
        assert_eq!(seen.len(), Code::ALL.len());
    }

    #[test]
    fn ranges_match_categories() {
        assert_eq!(Code::UnknownTable.as_str(), "RQL001");
        assert_eq!(Code::AsOfInQq.as_str(), "RQL101");
        assert_eq!(Code::ForcedDeltaUnsupportedMechanism.as_str(), "RQL201");
        assert_eq!(Code::DeadResultTable.as_str(), "RQL310");
    }

    #[test]
    fn dataflow_codes_skip_reserved_runtime_range() {
        // RQL300–RQL309 belong to the runtime/server taxonomy.
        for code in Code::ALL {
            let n: u32 = code.as_str()[3..].parse().unwrap();
            assert!(!(300..310).contains(&n), "{code} is in the reserved range");
        }
    }

    #[test]
    fn with_fix_attaches_and_dedupe_keeps_first() {
        let span = Span::new(0, 3);
        let fixed = Diagnostic::new(
            Code::DeadResultTable,
            "dead",
            SourceKind::Program,
            Some(span),
        )
        .with_fix(span, "", Applicability::MachineApplicable);
        let bare = Diagnostic::new(
            Code::DeadResultTable,
            "dead",
            SourceKind::Program,
            Some(span),
        );
        let other = Diagnostic::new(Code::DeadResultTable, "dead", SourceKind::Program, None);
        let mut diags = vec![fixed, bare, other];
        dedupe(&mut diags);
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags[0].fix.is_some(), "first occurrence keeps its fix");
        assert_eq!(
            diags[0].fix.as_ref().unwrap().applicability,
            Applicability::MachineApplicable
        );
    }

    #[test]
    fn render_with_caret() {
        let src = "SELECT bogus FROM t";
        let d = Diagnostic::new(
            Code::UnknownColumn,
            "unknown column bogus",
            SourceKind::Qq,
            Some(Span::new(7, 12)),
        );
        let rendered = d.render("q.rql", src);
        assert!(rendered.contains("error[RQL002]"), "{rendered}");
        assert!(rendered.contains("q.rql:1:8"), "{rendered}");
        assert!(rendered.contains("^^^^^"), "{rendered}");
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
