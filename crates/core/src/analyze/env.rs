//! The schema environment the analyzer resolves names against.
//!
//! A [`SchemaEnv`] is a point-in-time view of what a database knows:
//! table schemas (keyed lowercase, matching the engine's catalog) and
//! the set of callable scalar functions (builtins are implicit; UDFs are
//! listed). It can be captured from a live [`Database`] — the session
//! pre-flight path — or built statically by folding a program's DDL,
//! which is how `rqlcheck` lints `.rql` files without opening a store.

use std::collections::{HashMap, HashSet};

use rql_sqlengine::ast::Stmt;
use rql_sqlengine::{ColumnType, Database, Result, TableSchema};

use crate::snapids::SNAPIDS_TABLE;

/// Tables and functions visible to a query under analysis.
#[derive(Debug, Clone, Default)]
pub struct SchemaEnv {
    tables: HashMap<String, TableSchema>,
    functions: HashSet<String>,
}

impl SchemaEnv {
    /// An empty environment (no tables, no UDFs).
    pub fn new() -> SchemaEnv {
        SchemaEnv::default()
    }

    /// Capture the current catalog and UDF registry of a live database.
    pub fn from_database(db: &Database) -> Result<SchemaEnv> {
        let mut env = SchemaEnv {
            tables: db.table_schemas()?,
            functions: HashSet::new(),
        };
        for name in db.udf_names() {
            env.functions.insert(name.to_ascii_lowercase());
        }
        Ok(env)
    }

    /// The environment an auxiliary database starts with: the `SnapIds`
    /// virtual table (paper §3) plus the mechanism UDFs the session
    /// registers.
    pub fn aux_default() -> SchemaEnv {
        let mut env = SchemaEnv::new();
        env.add_table(TableSchema::new(
            SNAPIDS_TABLE,
            vec![
                ("snap_id".into(), ColumnType::Integer),
                ("snap_ts".into(), ColumnType::Text),
                ("name".into(), ColumnType::Text),
            ],
        ));
        for f in [
            "collatedata",
            "aggregatedatainvariable",
            "aggregatedataintable",
            "collatedataintointervals",
        ] {
            env.add_function(f);
        }
        env
    }

    /// Look up a table schema (case-insensitive).
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Whether `name` is a table (case-insensitive).
    pub fn has_table(&self, name: &str) -> bool {
        self.table(name).is_some()
    }

    /// All table names (lowercase, unsorted).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Whether `name` (lowercase) is a registered scalar function. The
    /// engine's builtins and aggregates are *not* listed here — the
    /// resolver knows them.
    pub fn has_function(&self, name: &str) -> bool {
        self.functions.contains(&name.to_ascii_lowercase())
    }

    /// Insert or replace a table schema.
    pub fn add_table(&mut self, schema: TableSchema) {
        self.tables.insert(schema.name.to_ascii_lowercase(), schema);
    }

    /// Remove a table (DROP TABLE folding).
    pub fn remove_table(&mut self, name: &str) {
        self.tables.remove(&name.to_ascii_lowercase());
    }

    /// Register a callable function name.
    pub fn add_function(&mut self, name: &str) {
        self.functions.insert(name.to_ascii_lowercase());
    }

    /// Merge another environment's tables into this one (used to widen
    /// the current catalog with tables that only exist in old snapshots:
    /// a Qq may legitimately reference them under `AS OF`).
    pub fn absorb_tables(&mut self, other: &SchemaEnv) {
        for schema in other.tables.values() {
            if !self.tables.contains_key(&schema.name.to_ascii_lowercase()) {
                self.add_table(schema.clone());
            }
        }
    }

    /// Fold one statement's DDL effect into the environment. Returns
    /// `true` when the statement changed the set of tables.
    pub fn apply_ddl(&mut self, stmt: &Stmt) -> bool {
        match stmt {
            Stmt::CreateTable { name, columns, .. } => {
                self.add_table(TableSchema::new(name, columns.clone()));
                true
            }
            Stmt::CreateTableAs { name, .. } => {
                // Output schema is query-dependent; record the table with
                // an open schema so later references at least resolve the
                // table name.
                self.add_table(TableSchema::new(name, Vec::new()));
                true
            }
            Stmt::DropTable { name, .. } => {
                self.remove_table(name);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ddl_folding() {
        let mut env = SchemaEnv::new();
        let stmts = rql_sqlengine::parse_statements(
            "CREATE TABLE t (a INTEGER, b TEXT); DROP TABLE t; CREATE TABLE u (x INTEGER)",
        )
        .unwrap();
        for s in &stmts {
            env.apply_ddl(s);
        }
        assert!(!env.has_table("t"));
        assert!(env.has_table("U"));
        assert_eq!(env.table("u").unwrap().columns.len(), 1);
    }

    #[test]
    fn aux_default_has_snapids() {
        let env = SchemaEnv::aux_default();
        assert!(env.has_table("SnapIds"));
        assert!(env.has_function("CollateData"));
        assert!(!env.has_function("median"));
    }

    #[test]
    fn absorb_prefers_existing() {
        let mut a = SchemaEnv::new();
        a.add_table(TableSchema::new("t", vec![("new".into(), ColumnType::Any)]));
        let mut b = SchemaEnv::new();
        b.add_table(TableSchema::new("t", vec![("old".into(), ColumnType::Any)]));
        b.add_table(TableSchema::new("gone", vec![]));
        a.absorb_tables(&b);
        assert_eq!(a.table("t").unwrap().columns[0].name, "new");
        assert!(a.has_table("gone"));
    }
}
