//! Applying structured fixes to program text.
//!
//! `rqlcheck --fix` drives [`fix_program`]: analyze, apply every
//! machine-applicable edit whose span is in program coordinates, and
//! re-analyze, until no such edit remains (or the iteration bound trips
//! — fixes that keep producing fixes indicate an analyzer bug, not a
//! user one, so the loop refuses to spin).

use crate::analyze::diag::{Applicability, Diagnostic, Fix, SourceKind};
use crate::analyze::env::SchemaEnv;
use crate::analyze::program::{analyze_program, parse_program};

/// Fixes that `--fix` is allowed to apply unreviewed: machine-applicable
/// edits whose span indexes the whole program text.
pub fn machine_applicable(diags: &[Diagnostic]) -> Vec<&Fix> {
    diags
        .iter()
        .filter(|d| d.source == SourceKind::Program)
        .filter_map(|d| d.fix.as_ref())
        .filter(|f| f.applicability == Applicability::MachineApplicable)
        .collect()
}

/// Apply a batch of fixes to `src`. Fixes are sorted by span start;
/// overlapping or out-of-bounds edits are skipped (first writer wins),
/// so one pass is always well-defined. Returns the edited text and how
/// many fixes were applied.
pub fn apply_fixes(src: &str, fixes: &[&Fix]) -> (String, usize) {
    let mut sorted: Vec<&&Fix> = fixes.iter().collect();
    sorted.sort_by_key(|f| (f.span.start, f.span.end));
    let mut out = String::with_capacity(src.len());
    let mut cursor = 0usize;
    let mut applied = 0usize;
    for f in sorted {
        let (start, end) = (f.span.start, f.span.end);
        if start < cursor || end < start || end > src.len() {
            continue;
        }
        if !src.is_char_boundary(start) || !src.is_char_boundary(end) {
            continue;
        }
        out.push_str(&src[cursor..start]);
        out.push_str(&f.replacement);
        cursor = end;
        applied += 1;
    }
    out.push_str(&src[cursor..]);
    (out, applied)
}

/// The result of driving fixes to fixpoint.
#[derive(Debug, Clone)]
pub struct FixOutcome {
    /// The (possibly edited) program text.
    pub src: String,
    /// Total fixes applied across all iterations.
    pub applied: usize,
    /// Analysis rounds run (≥ 1 when the program parses).
    pub iterations: usize,
    /// Whether the loop reached a state with no machine-applicable fix
    /// left (as opposed to tripping the iteration bound).
    pub converged: bool,
}

/// Iterations before [`fix_program`] declares divergence. Each round
/// applies every non-overlapping fix at once, so legitimate cascades
/// (fix A unmasks fix B) settle in two or three rounds.
const MAX_FIX_ROUNDS: usize = 8;

/// Analyze `src` and apply machine-applicable fixes until none remain.
/// `snap_env`/`aux_env` are the starting catalogs, exactly as for
/// [`analyze_program`].
pub fn fix_program(src: &str, snap_env: &SchemaEnv, aux_env: &SchemaEnv) -> FixOutcome {
    let mut out = FixOutcome {
        src: src.to_owned(),
        applied: 0,
        iterations: 0,
        converged: false,
    };
    for _ in 0..MAX_FIX_ROUNDS {
        out.iterations += 1;
        // An unparseable program has no analysis, hence no fixes.
        let Ok(program) = parse_program(&out.src) else {
            out.converged = true;
            return out;
        };
        let analysis = analyze_program(&program, snap_env, aux_env);
        let fixes = machine_applicable(&analysis.diagnostics);
        if fixes.is_empty() {
            out.converged = true;
            return out;
        }
        let (next, applied) = apply_fixes(&out.src, &fixes);
        if applied == 0 || next == out.src {
            out.converged = true;
            return out;
        }
        out.src = next;
        out.applied += applied;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::diag::Fix;
    use rql_sqlengine::Span;

    fn fix(start: usize, end: usize, rep: &str) -> Fix {
        Fix {
            span: Span::new(start, end),
            replacement: rep.to_owned(),
            applicability: Applicability::MachineApplicable,
        }
    }

    #[test]
    fn apply_sorted_non_overlapping() {
        let src = "abcdef";
        let f1 = fix(4, 6, "Z");
        let f2 = fix(0, 2, "X");
        let (out, n) = apply_fixes(src, &[&f1, &f2]);
        assert_eq!(out, "XcdZ");
        assert_eq!(n, 2);
    }

    #[test]
    fn overlapping_and_out_of_bounds_skipped() {
        let src = "abcdef";
        let f1 = fix(0, 4, "X");
        let f2 = fix(2, 5, "Y"); // overlaps f1
        let f3 = fix(5, 99, "Z"); // out of bounds
        let (out, n) = apply_fixes(src, &[&f1, &f2, &f3]);
        assert_eq!(out, "Xef");
        assert_eq!(n, 1);
    }

    #[test]
    fn fix_program_removes_dead_mechanism_call() {
        let src = "CREATE TABLE t (v INTEGER);\n\
                   COMMIT WITH SNAPSHOT;\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'dead') FROM SnapIds;\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'kept') FROM SnapIds;\n\
                   --@aux\n\
                   SELECT v FROM kept;\n";
        let out = fix_program(src, &SchemaEnv::new(), &SchemaEnv::aux_default());
        assert!(out.converged);
        assert_eq!(out.applied, 1, "{}", out.src);
        assert!(!out.src.contains("'dead'"), "{}", out.src);
        assert!(out.src.contains("'kept'"), "{}", out.src);
    }
}
