//! Mechanism-spec validation: the (Qs, Qq, T, spec) quadruple of an RQL
//! mechanism call, checked against the runtime's actual contracts.
//!
//! Every error here mirrors a failure the mechanisms in
//! [`crate::mechanism`] would raise mid-loop — after Qs ran and possibly
//! after result rows were already folded. The point of this module is to
//! surface the same messages before any snapshot is opened, plus the
//! warnings (RQL014/018/019) the runtime cannot see because it has
//! already coerced the values.

use rql_sqlengine::{parse_select, ColumnType, SelectStmt};

use crate::aggregate::{parse_col_func_pairs, AggOp};
use crate::analyze::diag::{Code, Diagnostic, SourceKind};
use crate::analyze::env::SchemaEnv;
use crate::analyze::resolve::{check_select, find_word_span, OutputCol, QueryFacts};
use crate::analyze::rewrite_safety::select_uses_current_snapshot;
use crate::mechanism::{END_SNAPSHOT_COL, START_SNAPSHOT_COL};

/// Which of the paper's four mechanisms a call targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MechanismKind {
    /// `CollateData(Qs, Qq, T)` (§2.1).
    Collate,
    /// `AggregateDataInVariable(Qs, Qq, T, AggFunc)` (§2.2).
    AggVar,
    /// `AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)` (§2.3).
    AggTable,
    /// `CollateDataIntoIntervals(Qs, Qq, T)` (§2.4).
    Intervals,
}

impl MechanismKind {
    /// The programmer-facing UDF name (lowercase).
    pub fn udf_name(self) -> &'static str {
        match self {
            MechanismKind::Collate => "collatedata",
            MechanismKind::AggVar => "aggregatedatainvariable",
            MechanismKind::AggTable => "aggregatedataintable",
            MechanismKind::Intervals => "collatedataintointervals",
        }
    }

    /// Map a UDF name to its mechanism.
    pub fn from_udf_name(name: &str) -> Option<MechanismKind> {
        match name.to_ascii_lowercase().as_str() {
            "collatedata" => Some(MechanismKind::Collate),
            "aggregatedatainvariable" => Some(MechanismKind::AggVar),
            "aggregatedataintable" => Some(MechanismKind::AggTable),
            "collatedataintointervals" => Some(MechanismKind::Intervals),
            _ => None,
        }
    }

    /// Whether this mechanism takes a fourth spec argument.
    pub fn takes_spec(self) -> bool {
        matches!(self, MechanismKind::AggVar | MechanismKind::AggTable)
    }
}

/// One mechanism invocation under analysis.
#[derive(Debug, Clone, Copy)]
pub struct MechanismCall<'a> {
    /// Which mechanism.
    pub kind: MechanismKind,
    /// Snapshot-set query (runs on the auxiliary database).
    pub qs: &'a str,
    /// Per-snapshot query (runs on the snapshotable database).
    pub qq: &'a str,
    /// Result table name.
    pub table: &'a str,
    /// Aggregate function / pairs list, when the mechanism takes one.
    pub spec: Option<&'a str>,
}

/// What the checker learned (for downstream passes and env threading).
#[derive(Debug, Clone, Default)]
pub struct MechanismFacts {
    /// Qq parsed (present even when resolution found problems).
    pub qq_parsed: Option<SelectStmt>,
    /// Qs parsed.
    pub qs_parsed: Option<SelectStmt>,
    /// Qq's inferred output columns.
    pub qq_output: Option<Vec<OutputCol>>,
    /// The result table T's column names, when inferable.
    pub result_columns: Option<Vec<String>>,
    /// Tables Qq referenced that the current snapshot catalog lacks
    /// (pre-flight retries against older snapshot catalogs).
    pub qq_unknown_tables: Vec<String>,
}

/// Validate one mechanism call. `snap_env` is the snapshotable
/// database's catalog (what Qq sees), `aux_env` the auxiliary one (what
/// Qs sees and where T will be created).
pub fn check_mechanism(
    call: &MechanismCall<'_>,
    snap_env: &SchemaEnv,
    aux_env: &SchemaEnv,
    diags: &mut Vec<Diagnostic>,
) -> MechanismFacts {
    let mut facts = MechanismFacts::default();
    check_qs(call.qs, aux_env, diags, &mut facts);

    if aux_env.has_table(call.table) {
        diags.push(Diagnostic::new(
            Code::ResultTableExists,
            format!("result table {} already exists", call.table),
            SourceKind::Spec,
            None,
        ));
    }

    match parse_select(call.qq) {
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::QqParseError,
                format!("Qq does not parse: {}", e.message()),
                SourceKind::Qq,
                e.span(),
            ));
            return facts;
        }
        Ok(parsed) => {
            let qf = check_select(&parsed, snap_env, call.qq, SourceKind::Qq, diags);
            facts.qq_output = qf.output.clone();
            facts.qq_unknown_tables = qf.unknown_tables;
            facts.qq_parsed = Some(parsed);
            check_mechanism_spec(call, &qf.output, diags, &mut facts);
        }
    }
    facts
}

/// Qs-side checks: parse, resolve against the auxiliary catalog, and the
/// single-integer-column contract of `mechanism::snapshot_set`.
fn check_qs(
    qs: &str,
    aux_env: &SchemaEnv,
    diags: &mut Vec<Diagnostic>,
    facts: &mut MechanismFacts,
) {
    let parsed = match parse_select(qs) {
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::QsParseError,
                format!("Qs does not parse: {}", e.message()),
                SourceKind::Qs,
                e.span(),
            ));
            return;
        }
        Ok(p) => p,
    };
    let mut qs_diags = Vec::new();
    let qf: QueryFacts = check_select(&parsed, aux_env, qs, SourceKind::Qs, &mut qs_diags);
    // Unknown tables in Qs get their own code: the near-universal cause
    // is querying the snapshotable database's tables where only the
    // auxiliary catalog (SnapIds + result tables) is visible.
    for mut d in qs_diags {
        if d.code == Code::UnknownTable {
            d = Diagnostic::new(
                Code::QsUnknownTable,
                format!(
                    "{}; Qs runs on the auxiliary database (its snapshot \
                     catalog is the SnapIds table)",
                    d.message
                ),
                d.source,
                d.span,
            );
        }
        diags.push(d);
    }
    if select_uses_current_snapshot(&parsed) {
        diags.push(Diagnostic::new(
            Code::CurrentSnapshotInQs,
            "current_snapshot() in Qs has no loop to bind to; Qs selects \
             the snapshot set itself",
            SourceKind::Qs,
            find_word_span(qs, "current_snapshot", 0),
        ));
    }
    if let Some(out) = &qf.output {
        if out.len() != 1 {
            diags.push(Diagnostic::new(
                Code::QsNotSingleColumn,
                format!(
                    "Qs must return a single snapshot-id column, got {}",
                    out.len()
                ),
                SourceKind::Qs,
                None,
            ));
        } else if !matches!(out[0].ty, ColumnType::Integer | ColumnType::Any) {
            diags.push(Diagnostic::new(
                Code::QsNonIntegerColumn,
                format!(
                    "Qs column {} has {} affinity; snapshot ids are integers \
                     and non-integer values fail at runtime",
                    out[0].name,
                    type_name(out[0].ty)
                ),
                SourceKind::Qs,
                find_word_span(qs, &out[0].name, 0),
            ));
        }
    }
    facts.qs_parsed = Some(parsed);
}

/// The per-mechanism contract on Qq's output and the spec argument.
fn check_mechanism_spec(
    call: &MechanismCall<'_>,
    output: &Option<Vec<OutputCol>>,
    diags: &mut Vec<Diagnostic>,
    facts: &mut MechanismFacts,
) {
    match call.kind {
        MechanismKind::Collate => {
            if let Some(out) = output {
                check_duplicates(out.iter().map(|c| c.name.as_str()), diags);
                facts.result_columns = Some(out.iter().map(|c| c.name.clone()).collect());
            }
        }
        MechanismKind::AggVar => {
            let op = check_agg_func(call.spec.unwrap_or(""), diags);
            if let Some(out) = output {
                if out.len() != 1 {
                    diags.push(Diagnostic::new(
                        Code::AggVarNotSingleColumn,
                        format!(
                            "AggregateDataInVariable expects Qq to return one column, got {}",
                            out.len()
                        ),
                        SourceKind::Qq,
                        None,
                    ));
                } else {
                    if let Some(op) = op {
                        check_numeric_agg(op, &out[0], call.qq, SourceKind::Qq, diags);
                    }
                    facts.result_columns = Some(vec![out[0].name.clone()]);
                }
            }
        }
        MechanismKind::AggTable => {
            let spec = call.spec.unwrap_or("");
            let pairs = match parse_col_func_pairs(spec) {
                Err(e) => {
                    diags.push(Diagnostic::new(
                        Code::BadAggFunc,
                        e.message().to_owned(),
                        SourceKind::Spec,
                        None,
                    ));
                    return;
                }
                Ok(p) => p,
            };
            let Some(out) = output else { return };
            let mut table_columns: Vec<String> = out.iter().map(|c| c.name.clone()).collect();
            let mut agg_positions = Vec::new();
            for (col, op) in &pairs {
                match out.iter().position(|c| c.name.eq_ignore_ascii_case(col)) {
                    None => {
                        diags.push(Diagnostic::new(
                            Code::AggColumnNotInQq,
                            format!("aggregated column {col} not in Qq output"),
                            SourceKind::Spec,
                            find_word_span(spec, col, 0),
                        ));
                    }
                    Some(pos) => {
                        agg_positions.push(pos);
                        check_numeric_agg(*op, &out[pos], spec, SourceKind::Spec, diags);
                        if op.needs_companions() {
                            table_columns.push(format!("{col}__avg_sum"));
                            table_columns.push(format!("{col}__avg_cnt"));
                        }
                    }
                }
            }
            if !out.is_empty() && agg_positions.len() == out.len() {
                diags.push(Diagnostic::new(
                    Code::NoGroupingColumns,
                    "every Qq column is aggregated; use AggregateDataInVariable instead",
                    SourceKind::Qq,
                    None,
                ));
            }
            check_duplicates(table_columns.iter().map(String::as_str), diags);
            facts.result_columns = Some(table_columns);
        }
        MechanismKind::Intervals => {
            let Some(out) = output else { return };
            for c in out {
                if c.name.eq_ignore_ascii_case(START_SNAPSHOT_COL)
                    || c.name.eq_ignore_ascii_case(END_SNAPSHOT_COL)
                {
                    diags.push(Diagnostic::new(
                        Code::IntervalsReservedColumn,
                        format!(
                            "Qq output column {} collides with the lifetime column \
                             CollateDataIntoIntervals adds to T",
                            c.name
                        ),
                        SourceKind::Qq,
                        find_word_span(call.qq, &c.name, 0),
                    ));
                }
            }
            let mut cols: Vec<String> = out.iter().map(|c| c.name.clone()).collect();
            cols.push(START_SNAPSHOT_COL.to_owned());
            cols.push(END_SNAPSHOT_COL.to_owned());
            check_duplicates(cols.iter().map(String::as_str), diags);
            facts.result_columns = Some(cols);
        }
    }
}

/// RQL010 for a single aggregate-function name.
fn check_agg_func(spec: &str, diags: &mut Vec<Diagnostic>) -> Option<AggOp> {
    match AggOp::parse(spec.trim()) {
        Ok(op) => Some(op),
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::BadAggFunc,
                e.message().to_owned(),
                SourceKind::Spec,
                None,
            ));
            None
        }
    }
}

/// RQL014: SUM/AVG over a text-typed column folds lexical garbage.
fn check_numeric_agg(
    op: AggOp,
    col: &OutputCol,
    src: &str,
    source: SourceKind,
    diags: &mut Vec<Diagnostic>,
) {
    if matches!(op, AggOp::Sum | AggOp::Avg) && col.ty == ColumnType::Text {
        diags.push(Diagnostic::new(
            Code::AggTypeMismatch,
            format!(
                "{op}() over text-typed column {}; non-numeric values coerce to 0",
                col.name
            ),
            source,
            find_word_span(src, &col.name, 0),
        ));
    }
}

/// RQL008: two result-table columns sharing a name (the runtime rejects
/// this when it creates T).
fn check_duplicates<'a>(names: impl Iterator<Item = &'a str>, diags: &mut Vec<Diagnostic>) {
    let names: Vec<&str> = names.collect();
    let mut reported = Vec::new();
    for (i, n) in names.iter().enumerate() {
        if names[..i].iter().any(|o| o.eq_ignore_ascii_case(n))
            && !reported.iter().any(|r: &&str| r.eq_ignore_ascii_case(n))
        {
            reported.push(*n);
            diags.push(Diagnostic::new(
                Code::DuplicateOutputColumn,
                format!("Qq output has duplicate column name {n}"),
                SourceKind::Qq,
                None,
            ));
        }
    }
}

fn type_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Integer => "INTEGER",
        ColumnType::Real => "REAL",
        ColumnType::Text => "TEXT",
        ColumnType::Any => "ANY",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_sqlengine::TableSchema;

    fn envs() -> (SchemaEnv, SchemaEnv) {
        let mut snap = SchemaEnv::new();
        snap.add_table(TableSchema::new(
            "loggedin",
            vec![
                ("l_userid".into(), ColumnType::Text),
                ("l_time".into(), ColumnType::Text),
            ],
        ));
        (snap, SchemaEnv::aux_default())
    }

    fn run(call: MechanismCall<'_>) -> Vec<Diagnostic> {
        let (snap, aux) = envs();
        let mut diags = Vec::new();
        check_mechanism(&call, &snap, &aux, &mut diags);
        diags
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_collate() {
        let diags = run(MechanismCall {
            kind: MechanismKind::Collate,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT DISTINCT l_userid FROM LoggedIn",
            table: "t",
            spec: None,
        });
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn qs_contract() {
        let diags = run(MechanismCall {
            kind: MechanismKind::Collate,
            qs: "SELECT snap_id, name FROM SnapIds",
            qq: "SELECT l_userid FROM LoggedIn",
            table: "t",
            spec: None,
        });
        assert_eq!(codes(&diags), vec![Code::QsNotSingleColumn]);
        let diags = run(MechanismCall {
            kind: MechanismKind::Collate,
            qs: "SELECT l_userid FROM LoggedIn",
            qq: "SELECT l_userid FROM LoggedIn",
            table: "t",
            spec: None,
        });
        assert_eq!(codes(&diags), vec![Code::QsUnknownTable]);
        let diags = run(MechanismCall {
            kind: MechanismKind::Collate,
            qs: "SELECT name FROM SnapIds",
            qq: "SELECT l_userid FROM LoggedIn",
            table: "t",
            spec: None,
        });
        assert_eq!(codes(&diags), vec![Code::QsNonIntegerColumn]);
    }

    #[test]
    fn result_table_collision() {
        let (snap, mut aux) = envs();
        aux.add_table(TableSchema::new("t", vec![]));
        let mut diags = Vec::new();
        check_mechanism(
            &MechanismCall {
                kind: MechanismKind::Collate,
                qs: "SELECT snap_id FROM SnapIds",
                qq: "SELECT l_userid FROM LoggedIn",
                table: "t",
                spec: None,
            },
            &snap,
            &aux,
            &mut diags,
        );
        assert_eq!(codes(&diags), vec![Code::ResultTableExists]);
        assert!(diags[0].message.contains("result table t already exists"));
    }

    #[test]
    fn agg_var_contract() {
        let diags = run(MechanismCall {
            kind: MechanismKind::AggVar,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT l_userid, l_time FROM LoggedIn",
            table: "t",
            spec: Some("count"),
        });
        assert_eq!(codes(&diags), vec![Code::AggVarNotSingleColumn]);
        let diags = run(MechanismCall {
            kind: MechanismKind::AggVar,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT COUNT(*) FROM LoggedIn",
            table: "t",
            spec: Some("median"),
        });
        assert_eq!(codes(&diags), vec![Code::BadAggFunc]);
        // SUM over a text column: executable but suspicious.
        let diags = run(MechanismCall {
            kind: MechanismKind::AggVar,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT l_userid FROM LoggedIn",
            table: "t",
            spec: Some("sum"),
        });
        assert_eq!(codes(&diags), vec![Code::AggTypeMismatch]);
    }

    #[test]
    fn agg_table_contract() {
        let diags = run(MechanismCall {
            kind: MechanismKind::AggTable,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT l_userid, COUNT(*) AS cn FROM LoggedIn GROUP BY l_userid",
            table: "t",
            spec: Some("(missing,max)"),
        });
        assert_eq!(codes(&diags), vec![Code::AggColumnNotInQq]);
        let diags = run(MechanismCall {
            kind: MechanismKind::AggTable,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT COUNT(*) AS cn FROM LoggedIn",
            table: "t",
            spec: Some("(cn,max)"),
        });
        assert_eq!(codes(&diags), vec![Code::NoGroupingColumns]);
        let diags = run(MechanismCall {
            kind: MechanismKind::AggTable,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT l_userid, COUNT(*) AS cn FROM LoggedIn GROUP BY l_userid",
            table: "t",
            spec: Some("max,cn"),
        });
        assert_eq!(codes(&diags), vec![Code::BadAggFunc]);
    }

    #[test]
    fn intervals_reserved_and_duplicates() {
        let diags = run(MechanismCall {
            kind: MechanismKind::Intervals,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT l_userid AS start_snapshot FROM LoggedIn",
            table: "t",
            spec: None,
        });
        assert!(
            codes(&diags).contains(&Code::IntervalsReservedColumn),
            "{diags:?}"
        );
        let diags = run(MechanismCall {
            kind: MechanismKind::Collate,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT l_userid, l_userid FROM LoggedIn",
            table: "t",
            spec: None,
        });
        assert_eq!(codes(&diags), vec![Code::DuplicateOutputColumn]);
    }

    #[test]
    fn current_snapshot_in_qs() {
        let diags = run(MechanismCall {
            kind: MechanismKind::Collate,
            qs: "SELECT snap_id FROM SnapIds WHERE snap_id = current_snapshot()",
            qq: "SELECT l_userid FROM LoggedIn",
            table: "t",
            spec: None,
        });
        assert_eq!(codes(&diags), vec![Code::CurrentSnapshotInQs]);
    }
}
