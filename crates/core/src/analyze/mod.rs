//! `rqlcheck`: static semantic analysis of RQL programs.
//!
//! Everything here runs before any snapshot is opened. The passes:
//!
//! 1. **Name/type resolution** ([`resolve`]) — Qs against the auxiliary
//!    catalog (`SnapIds` + result tables), Qq against the snapshotable
//!    catalog, with the engine's exact scoping rules.
//! 2. **Mechanism-spec validation** ([`mechspec`]) — aggregate
//!    arity/typing, result-table schema inference, collision checks; the
//!    same contracts the mechanisms enforce mid-loop, moved to compile
//!    time.
//! 3. **Rewrite safety** ([`rewrite_safety`]) — proofs that the §3
//!    rewrite (`AS OF` injection, `current_snapshot()` substitution)
//!    finds all its sites and none are hidden in string literals.
//! 4. **Delta eligibility** ([`delta`]) — the DESIGN.md fallback matrix
//!    as diagnostics: `Forced`-policy fallbacks become compile-time
//!    errors, `Auto` fallbacks become advisories.
//!
//! Diagnostics are structured values ([`Diagnostic`]) with stable codes
//! (`RQL0xx` semantic, `RQL1xx` rewrite safety, `RQL2xx` delta
//! eligibility), byte spans into the offending source, and a human
//! renderer. The session runs [`analyze_mechanism_call`] as a mandatory
//! pre-flight; the `rqlcheck` binary lints whole `.rql` programs via
//! [`program`].
#![deny(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

pub(crate) mod dataflow;
pub mod delta;
pub mod diag;
pub mod env;
pub mod fixes;
pub mod mechspec;
pub mod program;
pub mod resolve;
pub mod rewrite_safety;
pub mod sarif;

use rql_sqlengine::ast::{BinOp, Expr, SelectStmt};
use rql_sqlengine::{ColumnType, Span, SqlError, Value};

pub use self::delta::{explain_delta, DeltaExplain, PredictedPath};
pub use self::diag::{dedupe, Applicability, Code, Diagnostic, Fix, Severity, SourceKind};
pub use self::env::SchemaEnv;
pub use self::fixes::{apply_fixes, fix_program, machine_applicable, FixOutcome};
pub use self::mechspec::{check_mechanism, MechanismCall, MechanismFacts, MechanismKind};
pub use self::program::{
    analyze_program, parse_program, run_program, run_program_with_reports, Program,
    ProgramAnalysis, ProgramRun, ProgramStmt,
};
pub use self::sarif::{render_sarif, SarifFile};
pub use crate::delta::DeltaPolicy;

/// The result of analyzing one mechanism call.
#[derive(Debug, Clone, Default)]
pub struct Analysis {
    /// Everything found, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// The delta-path prediction, when a policy was specified.
    pub delta: Option<DeltaExplain>,
    /// The result table T's inferred column names.
    pub result_columns: Option<Vec<String>>,
    /// Qq tables missing from the provided snapshot catalog (the
    /// pre-flight widens the catalog with older snapshots and retries).
    pub qq_unknown_tables: Vec<String>,
}

impl Analysis {
    /// Whether any diagnostic is an error (warnings/infos don't block).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The first error, mapped to the [`SqlError`] variant the runtime
    /// would eventually raise for the same problem — so pre-flight
    /// rejection is indistinguishable (to `matches!` on the variant)
    /// from the mid-loop failure it preempts.
    pub fn first_error(&self) -> Option<SqlError> {
        self.diagnostics
            .iter()
            .find(|d| d.severity == Severity::Error)
            .map(to_sql_error)
    }
}

/// Map one error diagnostic to the runtime's error taxonomy.
fn to_sql_error(d: &Diagnostic) -> SqlError {
    let msg = format!("[{}] {}", d.code, d.message);
    match d.code {
        Code::ResultTableExists => SqlError::Constraint(msg),
        Code::ParseError | Code::QsParseError | Code::QqParseError => match d.span {
            Some(span) => SqlError::parse_at(msg, span),
            None => SqlError::Invalid(msg),
        },
        Code::UnknownTable
        | Code::UnknownColumn
        | Code::UnknownFunction
        | Code::QsUnknownTable
        | Code::AggColumnNotInQq
        | Code::UseBeforeDefine => SqlError::Unknown(msg),
        // Unknown aggregate names are Unknown at runtime; the non-monoid
        // (distinct) rejection is Invalid.
        Code::BadAggFunc if d.message.starts_with("aggregate function") => SqlError::Unknown(msg),
        _ => SqlError::Invalid(msg),
    }
}

/// Can zone-map/bloom sidecar pruning ever refute a page for this WHERE
/// clause? Mirrors the runtime's predicate-summary extraction: at least
/// one top-level conjunct must be a direct column-vs-constant comparison
/// (`col <op> literal`, either orientation; `=`, `<`, `<=`, `>`, `>=`)
/// or a non-negated `col BETWEEN literal AND literal`, with non-NULL
/// constants. Anything else — a UDF or arithmetic wrapped around the
/// column, `OR` at the top, `!=`, `LIKE` — is opaque to the sidecars.
fn prunable_where(e: &Expr) -> bool {
    fn is_col(e: &Expr) -> bool {
        matches!(e, Expr::Column { .. })
    }
    fn is_const(e: &Expr) -> bool {
        matches!(e, Expr::Literal(v) if !v.is_null())
    }
    match e {
        Expr::Binary {
            op: BinOp::And,
            lhs,
            rhs,
        } => prunable_where(lhs) || prunable_where(rhs),
        Expr::Binary {
            op: BinOp::Eq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge,
            lhs,
            rhs,
        } => (is_col(lhs) && is_const(rhs)) || (is_const(lhs) && is_col(rhs)),
        Expr::Between {
            expr,
            lo,
            hi,
            negated: false,
        } => is_col(expr) && is_const(lo) && is_const(hi),
        _ => false,
    }
}

/// Strip arithmetic identities that hide a column from the pruning
/// sidecars: `col + 0`, `0 + col`, `col - 0`, `col * 1`, `1 * col`,
/// `col / 1`, applied bottom-up so nested identities peel off too.
fn strip_arith_identities(e: &Expr) -> Expr {
    fn identity(e: Expr) -> Expr {
        if let Expr::Binary { op, lhs, rhs } = &e {
            let zero = |x: &Expr| matches!(x, Expr::Literal(Value::Integer(0)));
            let one = |x: &Expr| matches!(x, Expr::Literal(Value::Integer(1)));
            match op {
                BinOp::Add if zero(rhs) => return (**lhs).clone(),
                BinOp::Add if zero(lhs) => return (**rhs).clone(),
                BinOp::Sub if zero(rhs) => return (**lhs).clone(),
                BinOp::Mul if one(rhs) => return (**lhs).clone(),
                BinOp::Mul if one(lhs) => return (**rhs).clone(),
                BinOp::Div if one(rhs) => return (**lhs).clone(),
                _ => {}
            }
        }
        e
    }
    match e {
        Expr::Binary { op, lhs, rhs } => identity(Expr::Binary {
            op: *op,
            lhs: Box::new(strip_arith_identities(lhs)),
            rhs: Box::new(strip_arith_identities(rhs)),
        }),
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => Expr::Between {
            expr: Box::new(strip_arith_identities(expr)),
            lo: Box::new(strip_arith_identities(lo)),
            hi: Box::new(strip_arith_identities(hi)),
            negated: *negated,
        },
        _ => e.clone(),
    }
}

/// Whether every column referenced in `e` resolves to an Integer or Real
/// column of a FROM/JOIN table of `select` in `env`. Unresolvable or
/// text/any-typed columns return false (the caller downgrades the fix).
fn where_columns_numeric(e: &Expr, select: &SelectStmt, env: &SchemaEnv) -> bool {
    let mut cols: Vec<(Option<String>, String)> = Vec::new();
    collect_columns(e, &mut cols);
    let tables: Vec<&rql_sqlengine::ast::TableRef> = select
        .from
        .iter()
        .chain(select.joins.iter().map(|j| &j.table))
        .collect();
    cols.iter().all(|(qual, name)| {
        let candidates = tables.iter().filter(|t| match qual {
            Some(q) => t.binding().eq_ignore_ascii_case(q),
            None => true,
        });
        let mut tys = candidates.filter_map(|t| {
            let schema = env.table(&t.name)?;
            let idx = schema.column_index(name)?;
            Some(schema.columns[idx].ty)
        });
        tys.any(|ty| matches!(ty, ColumnType::Integer | ColumnType::Real))
    })
}

/// Collect every column reference in an expression.
fn collect_columns(e: &Expr, out: &mut Vec<(Option<String>, String)>) {
    match e {
        Expr::Column { table, name } => out.push((table.clone(), name.clone())),
        Expr::Unary { expr, .. } => collect_columns(expr, out),
        Expr::Binary { lhs, rhs, .. } => {
            collect_columns(lhs, out);
            collect_columns(rhs, out);
        }
        Expr::Function { args, .. } => {
            for a in args {
                collect_columns(a, out);
            }
        }
        Expr::IsNull { expr, .. } => collect_columns(expr, out),
        Expr::Between { expr, lo, hi, .. } => {
            collect_columns(expr, out);
            collect_columns(lo, out);
            collect_columns(hi, out);
        }
        Expr::Like { expr, pattern, .. } => {
            collect_columns(expr, out);
            collect_columns(pattern, out);
        }
        Expr::Case {
            operand,
            arms,
            else_branch,
        } => {
            if let Some(op) = operand {
                collect_columns(op, out);
            }
            for (w, t) in arms {
                collect_columns(w, out);
                collect_columns(t, out);
            }
            if let Some(el) = else_branch {
                collect_columns(el, out);
            }
        }
        _ => {}
    }
}

/// Analyze one mechanism call: the API-level entry the session pre-flight
/// uses. `policy` enables the delta-eligibility pass; pass `None` when
/// the caller did not specify one (the plain mechanism API).
pub fn analyze_mechanism_call(
    call: &MechanismCall<'_>,
    snap_env: &SchemaEnv,
    aux_env: &SchemaEnv,
    policy: Option<DeltaPolicy>,
) -> Analysis {
    let mut diags = Vec::new();
    let facts = check_mechanism(call, snap_env, aux_env, &mut diags);
    if let Some(parsed) = &facts.qq_parsed {
        rewrite_safety::check_qq(parsed, call.qq, SourceKind::Qq, &mut diags);
        // Memoization eligibility (RQL207): a UDF call anywhere in Qq
        // makes its per-snapshot results non-deterministic from the
        // snapshot alone, so the memo cache never stores or serves them.
        if !crate::memoize::memo_eligible(parsed) {
            diags.push(
                Diagnostic::new(
                    Code::MemoIneligible,
                    "Qq calls a user-defined function, so its per-snapshot \
                     results are not memoized (every run re-executes Qq)",
                    SourceKind::Qq,
                    None,
                )
                .with_fix(
                    Span::new(0, call.qq.len()),
                    "<rewrite Qq without the UDF call: inline its definition \
                     as a plain SQL expression so results are memoizable>",
                    diag::Applicability::HasPlaceholders,
                ),
            );
            // Profiling opacity (RQL208) rides along with RQL207: the
            // same UDF call that defeats the memo also hides its time
            // from the profile's engine-phase breakdown — it lands in
            // the iteration's eval bucket undifferentiated.
            diags.push(Diagnostic::new(
                Code::ProfiledUdfOpaque,
                "Qq calls a user-defined function, so a profiled session \
                 cannot attribute its time to engine phases (it is folded \
                 into eval undifferentiated)",
                SourceKind::Qq,
                None,
            ));
        }
        // Pruning eligibility (RQL209): a WHERE clause with no direct
        // column-vs-constant conjunct gives the zone-map/bloom sidecars
        // nothing to refute — every page is fetched and filtered row by
        // row no matter how selective the predicate is.
        if let Some(w) = &parsed.where_clause {
            if !prunable_where(w) {
                let why = if crate::memoize::expr_calls_udf(w) {
                    "it filters through a UDF call"
                } else {
                    "no conjunct compares a bare column to a constant"
                };
                let mut d = Diagnostic::new(
                    Code::PruneIneligibleWhere,
                    format!(
                        "Qq's WHERE clause is opaque to page-pruning sidecars ({why}); \
                         every page is read and filtered row by row"
                    ),
                    SourceKind::Qq,
                    None,
                );
                // When only arithmetic identities (`+ 0`, `* 1`, …) hide
                // the column, strip them and offer the rewritten Qq.
                // Machine-applicable only when every column in the
                // rewritten WHERE is numerically typed — on text columns
                // the arithmetic coerced the comparison, so stripping it
                // could change results.
                let simplified = strip_arith_identities(w);
                if simplified != *w && prunable_where(&simplified) {
                    let mut fixed = parsed.clone();
                    fixed.where_clause = Some(simplified.clone());
                    let applicability = if where_columns_numeric(&simplified, parsed, snap_env) {
                        diag::Applicability::MachineApplicable
                    } else {
                        diag::Applicability::MaybeIncorrect
                    };
                    d = d.with_fix(
                        Span::new(0, call.qq.len()),
                        crate::rewrite::render_select(&fixed),
                        applicability,
                    );
                }
                diags.push(d);
            }
        }
    }
    let delta = policy.map(|p| explain_delta(call.kind, facts.qq_parsed.as_ref(), p, &mut diags));
    diag::dedupe(&mut diags);
    Analysis {
        diagnostics: diags,
        delta,
        result_columns: facts.result_columns,
        qq_unknown_tables: facts.qq_unknown_tables,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use rql_sqlengine::{ColumnType, TableSchema};

    fn snap_env() -> SchemaEnv {
        let mut env = SchemaEnv::new();
        env.add_table(TableSchema::new(
            "loggedin",
            vec![
                ("l_userid".into(), ColumnType::Text),
                ("l_time".into(), ColumnType::Text),
            ],
        ));
        env
    }

    #[test]
    fn full_analysis_clean() {
        let a = analyze_mechanism_call(
            &MechanismCall {
                kind: MechanismKind::Collate,
                qs: "SELECT snap_id FROM SnapIds",
                qq: "SELECT DISTINCT l_userid FROM LoggedIn",
                table: "found",
                spec: None,
            },
            &snap_env(),
            &SchemaEnv::aux_default(),
            None,
        );
        assert!(!a.has_errors(), "{:?}", a.diagnostics);
        assert_eq!(a.result_columns, Some(vec!["l_userid".to_owned()]));
    }

    #[test]
    fn error_mapping_matches_runtime_taxonomy() {
        let a = analyze_mechanism_call(
            &MechanismCall {
                kind: MechanismKind::Collate,
                qs: "SELECT snap_id FROM SnapIds",
                qq: "SELECT nope FROM LoggedIn",
                table: "t",
                spec: None,
            },
            &snap_env(),
            &SchemaEnv::aux_default(),
            None,
        );
        assert!(matches!(a.first_error(), Some(SqlError::Unknown(_))));

        let mut aux = SchemaEnv::aux_default();
        aux.add_table(TableSchema::new("t", vec![]));
        let a = analyze_mechanism_call(
            &MechanismCall {
                kind: MechanismKind::Collate,
                qs: "SELECT snap_id FROM SnapIds",
                qq: "SELECT l_userid FROM LoggedIn",
                table: "t",
                spec: None,
            },
            &snap_env(),
            &aux,
            None,
        );
        assert!(matches!(a.first_error(), Some(SqlError::Constraint(_))));
    }

    #[test]
    fn delta_pass_runs_only_with_policy() {
        let call = MechanismCall {
            kind: MechanismKind::Collate,
            qs: "SELECT snap_id FROM SnapIds",
            qq: "SELECT l_userid FROM LoggedIn JOIN LoggedIn l2 ON l_userid = l2.l_userid",
            table: "t",
            spec: None,
        };
        let a = analyze_mechanism_call(&call, &snap_env(), &SchemaEnv::aux_default(), None);
        assert!(a.delta.is_none());
        let a = analyze_mechanism_call(
            &call,
            &snap_env(),
            &SchemaEnv::aux_default(),
            Some(DeltaPolicy::Forced),
        );
        assert!(a.has_errors());
        let delta = a.delta.unwrap();
        assert_eq!(delta.predicted_path, PredictedPath::Sequential);
    }
}
