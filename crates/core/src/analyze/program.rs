//! Whole-program analysis of `.rql` files.
//!
//! An `.rql` program is a `;`-separated list of SQL statements with two
//! comment directives:
//!
//! * `--@aux` — the next statement runs on the auxiliary database
//!   (result-table queries); statements that call a mechanism UDF route
//!   there automatically, everything else runs on the snapshotable
//!   database;
//! * `--@policy off|auto|forced` — the delta policy the program's
//!   mechanism calls assume, enabling the RQL2xx eligibility pass.
//!
//! Mechanism calls use the paper's UDF form:
//!
//! ```sql
//! SELECT CollateData(snap_id, 'SELECT …', 'Result') FROM SnapIds;
//! ```
//!
//! The enclosing SELECT *is* Qs (projected down to the first argument),
//! and the string-literal arguments are Qq / T / spec. Analysis threads
//! a schema environment through the statements — DDL folds in, mechanism
//! calls create their result table in the auxiliary environment — so a
//! later statement sees exactly what the runtime would have created.
//! Diagnostics found inside argument literals are remapped into program
//! byte offsets whenever the literal has no `''` escapes.

use rql_sqlengine::ast::{Expr, InsertSource, SelectItem, SelectStmt, Stmt};
use rql_sqlengine::lexer::{Sym, Token};
use rql_sqlengine::{
    parse_statement, tokenize_spanned, ColumnType, ExecOutcome, QueryResult, Span, TableSchema,
    Value,
};

use crate::aggregate::{parse_col_func_pairs, AggOp};
use crate::analyze::dataflow::{self, DfNode, DfStmt, MechNode, PlainNode};
use crate::analyze::delta::DeltaExplain;
use crate::analyze::diag::{dedupe, Applicability, Code, Diagnostic, Fix, Severity, SourceKind};
use crate::analyze::env::SchemaEnv;
use crate::analyze::mechspec::{MechanismCall, MechanismKind};
use crate::analyze::resolve::check_select;
use crate::analyze::rewrite_safety;
use crate::delta::DeltaPolicy;
use crate::report::RqlReport;
use crate::rewrite::render_select;
use crate::session::RqlSession;
use crate::Result;

/// One statement of a parsed program.
#[derive(Debug, Clone)]
pub struct ProgramStmt {
    /// The statement text (no trailing `;`).
    pub text: String,
    /// Byte offset of `text` within the program source.
    pub offset: usize,
    /// Whether it runs on the auxiliary database.
    pub on_aux: bool,
}

/// A parsed `.rql` program.
#[derive(Debug, Clone)]
pub struct Program {
    /// The full source text (spans index into this).
    pub src: String,
    /// Statements in order.
    pub statements: Vec<ProgramStmt>,
    /// `--@policy` directive, when present.
    pub policy: Option<DeltaPolicy>,
    /// Span of the `--@policy` directive text, when present (anchor for
    /// the RQL204 policy fix).
    pub policy_span: Option<Span>,
}

/// Split a program into statements and directives. A lexical error
/// (unterminated string/comment, bad literal) is returned as the single
/// diagnostic that makes the program unanalyzable.
pub fn parse_program(src: &str) -> std::result::Result<Program, Box<Diagnostic>> {
    let mut policy = None;
    let mut policy_span = None;
    let mut aux_marks: Vec<usize> = Vec::new();
    let mut pos = 0usize;
    for line in src.split_inclusive('\n') {
        let trimmed = line.trim_start();
        if let Some(rest) = trimmed.strip_prefix("--@") {
            let rest = rest.trim();
            if rest.eq_ignore_ascii_case("aux") {
                aux_marks.push(pos);
            } else if let Some(p) = rest
                .to_ascii_lowercase()
                .strip_prefix("policy")
                .map(str::trim)
            {
                let parsed = match p {
                    "off" => Some(DeltaPolicy::Off),
                    "auto" => Some(DeltaPolicy::Auto),
                    "forced" => Some(DeltaPolicy::Forced),
                    _ => None,
                };
                if parsed.is_some() {
                    policy = parsed;
                    let indent = line.len() - trimmed.len();
                    policy_span = Some(Span::new(
                        pos + indent,
                        pos + indent + trimmed.trim_end().len(),
                    ));
                }
            }
        }
        pos += line.len();
    }

    let tokens = match tokenize_spanned(src) {
        Ok(t) => t,
        Err(e) => {
            return Err(Box::new(Diagnostic::new(
                Code::ParseError,
                format!("program does not lex: {}", e.message()),
                SourceKind::Program,
                e.span(),
            )));
        }
    };
    let mut statements = Vec::new();
    let mut group: Vec<&rql_sqlengine::SpannedToken> = Vec::new();
    let mut flush = |group: &mut Vec<&rql_sqlengine::SpannedToken>| {
        if group.is_empty() {
            return;
        }
        let start = group[0].span.start;
        let end = group[group.len() - 1].span.end;
        let mechanism = group.iter().any(
            |t| matches!(&t.token, Token::Word(w) if MechanismKind::from_udf_name(w).is_some()),
        );
        let on_aux = mechanism
            || aux_marks
                .iter()
                .any(|&m| statements_pending(m, start, &statements, src));
        statements.push(ProgramStmt {
            text: src[start..end].to_owned(),
            offset: start,
            on_aux,
        });
        group.clear();
    };
    for t in &tokens {
        if matches!(t.token, Token::Sym(Sym::Semi)) {
            flush(&mut group);
        } else {
            group.push(t);
        }
    }
    flush(&mut group);
    Ok(Program {
        src: src.to_owned(),
        statements,
        policy,
        policy_span,
    })
}

/// Whether an `--@aux` mark at byte `mark` governs the statement
/// starting at `start`: the mark precedes it and no earlier statement
/// sits between them.
fn statements_pending(mark: usize, start: usize, done: &[ProgramStmt], src: &str) -> bool {
    let _ = src;
    mark < start && !done.iter().any(|s| s.offset > mark)
}

/// Program-level analysis result.
#[derive(Debug, Clone, Default)]
pub struct ProgramAnalysis {
    /// All findings, spans in program coordinates.
    pub diagnostics: Vec<Diagnostic>,
    /// Delta explains for the program's mechanism calls, in order
    /// (present when `--@policy` was given).
    pub delta: Vec<DeltaExplain>,
    /// Number of mechanism calls found.
    pub mechanism_count: usize,
    /// Qq tables missing from the snapshot catalog, across every
    /// mechanism call (the session pre-flight widens with historical
    /// snapshots and re-analyzes when this is non-empty).
    pub qq_unknown_tables: Vec<String>,
}

impl ProgramAnalysis {
    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Render every diagnostic against the program source.
    pub fn render(&self, file: &str, src: &str) -> String {
        self.diagnostics
            .iter()
            .map(|d| d.render(file, src))
            .collect::<Vec<_>>()
            .join("\n\n")
    }
}

/// Analyze a whole program. `snap_env`/`aux_env` are the starting
/// catalogs (empty + `aux_default` for standalone files; live captures
/// for a session pre-flight of a script).
pub fn analyze_program(
    program: &Program,
    snap_env: &SchemaEnv,
    aux_env: &SchemaEnv,
) -> ProgramAnalysis {
    let mut snap_env = snap_env.clone();
    let mut aux_env = aux_env.clone();
    let mut out = ProgramAnalysis::default();
    let mut df: Vec<DfStmt> = Vec::with_capacity(program.statements.len());

    for stmt in &program.statements {
        let text_span = Span::new(stmt.offset, stmt.offset + stmt.text.len());
        let range = dataflow::stmt_range(&program.src, text_span);
        // `MAINTAIN QUERY name AS <call>` is not a SQL statement; peel
        // the prefix and analyze the inner mechanism call in place (its
        // result table enters the aux catalog like any batch call's), on
        // top of the standing-query eligibility rules (RQL210).
        if let Some((name, inner_off)) = crate::maintain::maintain_prefix(&stmt.text) {
            let inner = ProgramStmt {
                text: stmt.text[inner_off..].to_owned(),
                offset: stmt.offset + inner_off,
                on_aux: true,
            };
            let call = parse_statement(&inner.text)
                .ok()
                .and_then(|p| extract_mechanism_call(&p, &inner, &mut out.diagnostics));
            match call {
                Some(call) => {
                    if let Some(reason) = crate::maintain::maintain_ineligibility(&call.qq) {
                        out.diagnostics.push(Diagnostic::new(
                            Code::MaintainIneligible,
                            format!("MAINTAIN QUERY {name}: {reason}"),
                            SourceKind::Program,
                            call.fn_span.or_else(|| stmt_head_span(stmt)),
                        ));
                    }
                    df.push(DfStmt {
                        node: DfNode::Mechanism(Box::new(mech_node(&call))),
                        range,
                        text_span,
                    });
                    analyze_call(
                        &call,
                        &inner,
                        program.policy,
                        &snap_env,
                        &mut aux_env,
                        &mut out,
                    );
                }
                None => {
                    out.diagnostics.push(Diagnostic::new(
                        Code::MaintainIneligible,
                        format!(
                            "MAINTAIN QUERY {name}: the body must be a mechanism call with \
                             literal Qq/T/spec arguments (dynamic arguments cannot be \
                             re-evaluated per commit)"
                        ),
                        SourceKind::Program,
                        stmt_head_span(stmt),
                    ));
                    df.push(DfStmt {
                        node: DfNode::Opaque,
                        range,
                        text_span,
                    });
                }
            }
            continue;
        }
        let parsed = match parse_statement(&stmt.text) {
            Err(e) => {
                out.diagnostics.push(Diagnostic::new(
                    Code::ParseError,
                    format!("statement does not parse: {}", e.message()),
                    SourceKind::Program,
                    e.span()
                        .map(|s| s.offset(stmt.offset))
                        .or_else(|| stmt_head_span(stmt)),
                ));
                df.push(DfStmt {
                    node: DfNode::Opaque,
                    range,
                    text_span,
                });
                continue;
            }
            Ok(p) => p,
        };
        if let Some(call) = extract_mechanism_call(&parsed, stmt, &mut out.diagnostics) {
            df.push(DfStmt {
                node: DfNode::Mechanism(Box::new(mech_node(&call))),
                range,
                text_span,
            });
            analyze_call(
                &call,
                stmt,
                program.policy,
                &snap_env,
                &mut aux_env,
                &mut out,
            );
            continue;
        }
        // A statement naming a mechanism UDF that didn't extract has
        // dynamic arguments (or a malformed call): it may read or define
        // anything, so the def-use passes stand down for the program.
        let node = if stmt_names_mechanism(&stmt.text) {
            DfNode::Opaque
        } else {
            DfNode::Plain(plain_node(&parsed, stmt))
        };
        df.push(DfStmt {
            node,
            range,
            text_span,
        });
        let env = if stmt.on_aux { &aux_env } else { &snap_env };
        check_plain_statement(&parsed, stmt, env, &mut out.diagnostics);
        let target = if stmt.on_aux {
            &mut aux_env
        } else {
            &mut snap_env
        };
        apply_statement_ddl(&parsed, stmt, target);
    }
    dataflow::check_dataflow(&program.src, program.policy, &df, &mut out.diagnostics);
    attach_policy_fix(program, &mut out);
    dedupe(&mut out.diagnostics);
    out
}

/// Attach the `--@policy off` fix to RQL204 advisories: the advisory
/// says the auto policy falls back to the sequential path anyway, so
/// declaring `off` states the reality and silences the advisory without
/// changing results. Machine-applicable only when the directive governs
/// a single mechanism call — with several, another call might genuinely
/// ride the delta path and the edit would deoptimize it.
fn attach_policy_fix(program: &Program, out: &mut ProgramAnalysis) {
    let Some(pspan) = program.policy_span else {
        return;
    };
    let applicability = if out.mechanism_count == 1 {
        Applicability::MachineApplicable
    } else {
        Applicability::MaybeIncorrect
    };
    for d in &mut out.diagnostics {
        if d.code == Code::AutoDeltaFallback && d.fix.is_none() {
            d.fix = Some(Fix {
                span: pspan,
                replacement: "--@policy off".to_owned(),
                applicability,
            });
        }
    }
}

/// Whether the statement text names a mechanism UDF at all.
fn stmt_names_mechanism(text: &str) -> bool {
    tokenize_spanned(text).is_ok_and(|tokens| {
        tokens.iter().any(
            |t| matches!(&t.token, Token::Word(w) if MechanismKind::from_udf_name(w).is_some()),
        )
    })
}

/// Dataflow facts for an extracted mechanism call.
fn mech_node(call: &ExtractedCall) -> MechNode {
    let qq_parsed = rql_sqlengine::parse_select(&call.qq).ok();
    let qs_reads = call
        .qs_select
        .from
        .iter()
        .chain(call.qs_select.joins.iter().map(|j| &j.table))
        .map(|t| t.name.to_ascii_lowercase())
        .collect();
    MechNode {
        kind: call.kind,
        table: call.table.to_ascii_lowercase(),
        qs_reads,
        qs_canon: call.qs_text.clone(),
        qq_canon: qq_parsed.as_ref().map(render_select),
        memo_eligible: qq_parsed
            .as_ref()
            .is_some_and(crate::memoize::memo_eligible),
        spec: call.spec.clone(),
        fn_span: call.fn_span,
        enclosing: call.enclosing.clone(),
        call_item: call.call_item.clone(),
    }
}

/// Dataflow facts for a plain statement: tables it reads or mutates,
/// tables its DDL creates.
fn plain_node(parsed: &Stmt, stmt: &ProgramStmt) -> PlainNode {
    fn read_select(
        select: &rql_sqlengine::ast::SelectStmt,
        offset: usize,
        reads: &mut Vec<(String, Option<Span>)>,
    ) {
        for t in select
            .from
            .iter()
            .chain(select.joins.iter().map(|j| &j.table))
        {
            reads.push((
                t.name.to_ascii_lowercase(),
                t.span.map(|s| s.offset(offset)),
            ));
        }
    }
    let mut reads: Vec<(String, Option<Span>)> = Vec::new();
    let mut writes: Vec<String> = Vec::new();
    match parsed {
        Stmt::Select(select) => read_select(select, stmt.offset, &mut reads),
        Stmt::CreateTableAs { name, select, .. } => {
            read_select(select, stmt.offset, &mut reads);
            writes.push(name.to_ascii_lowercase());
        }
        Stmt::Insert { table, source, .. } => {
            // Mutating a table counts as using it: an INSERT into a
            // result table keeps the table live.
            reads.push((
                table.to_ascii_lowercase(),
                crate::analyze::resolve::find_word_span(&stmt.text, table, 0)
                    .map(|s| s.offset(stmt.offset)),
            ));
            if let InsertSource::Select(select) = source {
                read_select(select, stmt.offset, &mut reads);
            }
        }
        Stmt::Update { table, .. } | Stmt::Delete { table, .. } => {
            reads.push((
                table.to_ascii_lowercase(),
                crate::analyze::resolve::find_word_span(&stmt.text, table, 0)
                    .map(|s| s.offset(stmt.offset)),
            ));
        }
        Stmt::CreateTable { name, .. } => writes.push(name.to_ascii_lowercase()),
        _ => {}
    }
    PlainNode {
        on_aux: stmt.on_aux,
        reads,
        writes,
    }
}

/// Execute a parsed program on a session (the differential harness:
/// every program `rqlcheck` accepts must run without a semantic error).
pub fn run_program(session: &RqlSession, program: &Program) -> Result<()> {
    run_program_with_reports(session, program).map(|_| ())
}

/// Everything a program execution produced, for callers (the `rqld`
/// server) that ship results and cost reports over a wire instead of
/// printing them.
#[derive(Debug, Default)]
pub struct ProgramRun {
    /// Rows of every top-level SELECT that was not a mechanism call, in
    /// statement order.
    pub tables: Vec<QueryResult>,
    /// Mechanism reports as `(result_table, report)`, in invocation
    /// order (API-form dispatches and UDF-form invocations alike).
    pub reports: Vec<(String, RqlReport)>,
    /// Snapshot ids the program declared, in order.
    pub snapshots: Vec<u64>,
}

/// Execute a program, capturing SELECT results and mechanism reports.
///
/// Mechanism-call statements whose Qq/T/spec arguments are string
/// literals dispatch through the session API form under the program's
/// `--@policy`, so delta-eligible programs actually take the delta path
/// (and report `pages_skipped`); the UDF form — kept for dynamic
/// arguments — always runs the sequential loop.
pub fn run_program_with_reports(session: &RqlSession, program: &Program) -> Result<ProgramRun> {
    let mut out = ProgramRun::default();
    for stmt in &program.statements {
        // In a batch run, `MAINTAIN QUERY` executes its seed pass — one
        // mechanism run over the backlog Qs — which is byte-identical to
        // what registration would leave in the result table. (Standing
        // registration, which keeps maintaining afterwards, is the
        // server's job; see `crate::maintain`.)
        if let Some(spec) = crate::maintain::parse_maintain(&stmt.text)? {
            let report = dispatch_mechanism_parts(
                session,
                spec.kind,
                &spec.qs,
                &spec.qq,
                &spec.table,
                spec.spec.as_deref(),
                program.policy,
            )?;
            out.reports.push((spec.table, report));
            continue;
        }
        if let Ok(parsed) = parse_statement(&stmt.text) {
            let mut scratch = Vec::new();
            if let Some(call) = extract_mechanism_call(&parsed, stmt, &mut scratch) {
                let report = dispatch_mechanism(session, &call, program.policy)?;
                out.reports.push((call.table, report));
                continue;
            }
        }
        let outcome = if stmt.on_aux {
            session.aux_db().execute(&stmt.text)?
        } else {
            session.execute(&stmt.text)?
        };
        match outcome {
            ExecOutcome::Rows(rows) => out.tables.push(*rows),
            ExecOutcome::SnapshotDeclared(sid) => out.snapshots.push(sid),
            _ => {}
        }
        // A UDF-form mechanism with dynamic arguments ran inside the
        // statement above; pick up the reports it left behind.
        out.reports.extend(session.take_reports());
    }
    Ok(out)
}

/// Route an extracted literal-argument mechanism call through the
/// session API form (delta-aware when `policy` is set).
fn dispatch_mechanism(
    session: &RqlSession,
    call: &ExtractedCall,
    policy: Option<DeltaPolicy>,
) -> Result<RqlReport> {
    dispatch_mechanism_parts(
        session,
        call.kind,
        &call.qs_text,
        &call.qq,
        &call.table,
        call.spec.as_deref(),
        policy,
    )
}

/// The same dispatch from bare textual parts — shared by the statement
/// form above and the `MAINTAIN QUERY` seed-equivalent batch run.
fn dispatch_mechanism_parts(
    session: &RqlSession,
    kind: MechanismKind,
    qs: &str,
    qq: &str,
    table: &str,
    spec: Option<&str>,
    policy: Option<DeltaPolicy>,
) -> Result<RqlReport> {
    match kind {
        MechanismKind::Collate => match policy {
            Some(p) => session.collate_data_with_policy(qs, qq, table, p),
            None => session.collate_data(qs, qq, table),
        },
        MechanismKind::AggVar => {
            let func = AggOp::parse(spec.unwrap_or_default())?;
            match policy {
                Some(p) => session.aggregate_data_in_variable_with_policy(qs, qq, table, func, p),
                None => session.aggregate_data_in_variable(qs, qq, table, func),
            }
        }
        MechanismKind::AggTable => {
            let pairs = parse_col_func_pairs(spec.unwrap_or_default())?;
            match policy {
                Some(p) => session.aggregate_data_in_table_with_policy(qs, qq, table, &pairs, p),
                None => session.aggregate_data_in_table(qs, qq, table, &pairs),
            }
        }
        MechanismKind::Intervals => match policy {
            Some(p) => session.collate_data_into_intervals_with_policy(qs, qq, table, p),
            None => session.collate_data_into_intervals(qs, qq, table),
        },
    }
}

/// A mechanism call's textual arguments, extracted from one statement —
/// what `MAINTAIN QUERY` registration needs (literal arguments only;
/// dynamic arguments return `None`).
pub(crate) struct CallTexts {
    pub(crate) kind: MechanismKind,
    pub(crate) qs: String,
    pub(crate) qq: String,
    pub(crate) table: String,
    pub(crate) spec: Option<String>,
}

/// Extract a literal-argument mechanism call from a statement's text.
pub(crate) fn extract_call_texts(text: &str) -> Option<CallTexts> {
    let parsed = parse_statement(text).ok()?;
    let stmt = ProgramStmt {
        text: text.to_owned(),
        offset: 0,
        on_aux: true,
    };
    let mut scratch = Vec::new();
    let call = extract_mechanism_call(&parsed, &stmt, &mut scratch)?;
    Some(CallTexts {
        kind: call.kind,
        qs: call.qs_text,
        qq: call.qq,
        table: call.table,
        spec: call.spec,
    })
}

/// Span of a statement's first token, for diagnostics with no better
/// anchor.
fn stmt_head_span(stmt: &ProgramStmt) -> Option<Span> {
    tokenize_spanned(&stmt.text)
        .ok()?
        .first()
        .map(|t| t.span.offset(stmt.offset))
}

/// A mechanism call extracted from the UDF form, with everything needed
/// to remap diagnostics back into program coordinates.
struct ExtractedCall {
    kind: MechanismKind,
    qs_text: String,
    qq: String,
    table: String,
    spec: Option<String>,
    /// Span of the mechanism UDF name, program coordinates.
    fn_span: Option<Span>,
    /// The enclosing SELECT projected down to the snap-id argument (the
    /// Qs the loop drives), parsed form.
    qs_select: SelectStmt,
    /// The full enclosing SELECT as written.
    enclosing: SelectStmt,
    /// The projection item holding the mechanism call.
    call_item: SelectItem,
}

fn extract_mechanism_call(
    parsed: &Stmt,
    stmt: &ProgramStmt,
    diags: &mut Vec<Diagnostic>,
) -> Option<ExtractedCall> {
    let Stmt::Select(select) = parsed else {
        return None;
    };
    let (item_idx, name, args) = select.items.iter().enumerate().find_map(|(i, item)| {
        if let SelectItem::Expr {
            expr: Expr::Function { name, args, .. },
            ..
        } = item
        {
            MechanismKind::from_udf_name(name).map(|_| (i, name.clone(), args.clone()))
        } else {
            None
        }
    })?;
    let kind = MechanismKind::from_udf_name(&name)?;
    let fn_span = crate::analyze::resolve::find_word_span(&stmt.text, &name, 0)
        .map(|s| s.offset(stmt.offset));
    let expected = if kind.takes_spec() { 4 } else { 3 };
    if args.len() != expected {
        diags.push(Diagnostic::new(
            Code::MechanismArity,
            format!(
                "{} expects {expected} arguments (snap_id, Qq, T{}), got {}",
                name,
                if kind.takes_spec() { ", spec" } else { "" },
                args.len()
            ),
            SourceKind::Program,
            fn_span,
        ));
        return None;
    }
    let text_arg = |e: &Expr| -> Option<String> {
        if let Expr::Literal(Value::Text(s)) = e {
            Some(s.clone())
        } else {
            None
        }
    };
    // Dynamic (non-literal) arguments can't be analyzed statically.
    let qq = text_arg(&args[1])?;
    let table = text_arg(&args[2])?;
    let spec = if kind.takes_spec() {
        Some(text_arg(&args[3])?)
    } else {
        None
    };
    // The enclosing SELECT, projected down to the snap-id argument, is
    // Qs: it is exactly the query the mechanism loop will drive.
    let mut qs_select = select.clone();
    qs_select.items = vec![SelectItem::Expr {
        expr: args[0].clone(),
        alias: None,
    }];
    let call_item = select.items[item_idx].clone();
    Some(ExtractedCall {
        kind,
        qs_text: render_select(&qs_select),
        qq,
        table,
        spec,
        fn_span,
        qs_select,
        enclosing: select.clone(),
        call_item,
    })
}

fn analyze_call(
    call: &ExtractedCall,
    stmt: &ProgramStmt,
    policy: Option<DeltaPolicy>,
    snap_env: &SchemaEnv,
    aux_env: &mut SchemaEnv,
    out: &mut ProgramAnalysis,
) {
    let analysis = super::analyze_mechanism_call(
        &MechanismCall {
            kind: call.kind,
            qs: &call.qs_text,
            qq: &call.qq,
            table: &call.table,
            spec: call.spec.as_deref(),
        },
        snap_env,
        aux_env,
        policy,
    );
    out.mechanism_count += 1;
    out.qq_unknown_tables
        .extend(analysis.qq_unknown_tables.iter().cloned());
    for d in analysis.diagnostics {
        out.diagnostics.push(remap(d, call, stmt));
    }
    if let Some(explain) = analysis.delta {
        out.delta.push(explain);
    }
    // Thread the result table into the environment so later statements
    // (and later mechanism calls reusing T) see it.
    let columns = analysis
        .result_columns
        .unwrap_or_default()
        .into_iter()
        .map(|c| (c, ColumnType::Any))
        .collect();
    aux_env.add_table(TableSchema::new(&call.table, columns));
}

/// Remap a mechanism-call diagnostic into program coordinates: spans in
/// the Qq/spec argument move inside the corresponding string literal
/// (when it has no `''` escapes); everything else anchors to the
/// mechanism name.
fn remap(mut d: Diagnostic, call: &ExtractedCall, stmt: &ProgramStmt) -> Diagnostic {
    let content = match d.source {
        SourceKind::Qq => Some(call.qq.as_str()),
        SourceKind::Spec => call.spec.as_deref(),
        SourceKind::Qs | SourceKind::Program => None,
    };
    let mapped = content.and_then(|c| literal_span(&stmt.text, c, d.span));
    d.span = mapped.map(|s| s.offset(stmt.offset)).or(call.fn_span);
    // A fix inside an argument literal moves with it — provided the
    // literal has no `''` escapes (positions shift) and the replacement
    // survives re-quoting. Otherwise the fix is dropped: better no edit
    // than a wrong one.
    d.fix = d.fix.take().and_then(|f| {
        let content = content?;
        let lit = exact_literal_span(&stmt.text, content)?;
        if f.span.end > content.len() || f.span.start > f.span.end {
            return None;
        }
        Some(crate::analyze::diag::Fix {
            span: Span::new(lit.start + f.span.start, lit.start + f.span.end).offset(stmt.offset),
            replacement: f.replacement.replace('\'', "''"),
            applicability: f.applicability,
        })
    });
    d.source = SourceKind::Program;
    d
}

/// The span of `content` inside its enclosing single-quoted literal in
/// `text`, only when the raw literal text equals `content` exactly (no
/// `''` escapes — those shift byte positions).
fn exact_literal_span(text: &str, content: &str) -> Option<Span> {
    let tokens = tokenize_spanned(text).ok()?;
    let tok = tokens
        .iter()
        .find(|t| matches!(&t.token, Token::Str(s) if s == content))?;
    let raw = text.get(tok.span.start + 1..tok.span.end.saturating_sub(1))?;
    (raw == content).then(|| Span::new(tok.span.start + 1, tok.span.end.saturating_sub(1)))
}

/// Find the string literal holding `content` in `text` and map `inner`
/// (a span within `content`) into `text` coordinates. Escaped literals
/// (`''`) shift positions, so those map to the whole literal.
fn literal_span(text: &str, content: &str, inner: Option<Span>) -> Option<Span> {
    let tokens = tokenize_spanned(text).ok()?;
    let tok = tokens
        .iter()
        .find(|t| matches!(&t.token, Token::Str(s) if s == content))?;
    let raw = text.get(tok.span.start + 1..tok.span.end.saturating_sub(1))?;
    match inner {
        Some(s) if raw == content => Some(Span::new(
            tok.span.start + 1 + s.start,
            tok.span.start + 1 + s.end,
        )),
        _ => Some(tok.span),
    }
}

/// Checks for a non-mechanism statement: resolve its queries against the
/// environment it runs in, and flag `current_snapshot()` outside the
/// loop body.
fn check_plain_statement(
    parsed: &Stmt,
    stmt: &ProgramStmt,
    env: &SchemaEnv,
    diags: &mut Vec<Diagnostic>,
) {
    let mut local = Vec::new();
    match parsed {
        Stmt::Select(select) | Stmt::CreateTableAs { select, .. } => {
            check_select(select, env, &stmt.text, SourceKind::Program, &mut local);
            rewrite_safety::check_outside_loop(select, &stmt.text, SourceKind::Program, &mut local);
        }
        Stmt::Insert { table, source, .. } => {
            if !env.has_table(table) {
                local.push(Diagnostic::new(
                    Code::UnknownTable,
                    format!("unknown table {table}"),
                    SourceKind::Program,
                    crate::analyze::resolve::find_word_span(&stmt.text, table, 0),
                ));
            }
            if let InsertSource::Select(select) = source {
                check_select(select, env, &stmt.text, SourceKind::Program, &mut local);
            }
        }
        Stmt::Update { table, .. } | Stmt::Delete { table, .. } if !env.has_table(table) => {
            local.push(Diagnostic::new(
                Code::UnknownTable,
                format!("unknown table {table}"),
                SourceKind::Program,
                crate::analyze::resolve::find_word_span(&stmt.text, table, 0),
            ));
        }
        _ => {}
    }
    for mut d in local {
        d.span = d.span.map(|s| s.offset(stmt.offset));
        diags.push(d);
    }
}

/// Fold the statement's DDL effect, preferring an inferred schema for
/// `CREATE TABLE AS`.
fn apply_statement_ddl(parsed: &Stmt, stmt: &ProgramStmt, env: &mut SchemaEnv) {
    if let Stmt::CreateTableAs { name, select, .. } = parsed {
        let mut probe = Vec::new();
        let facts = check_select(select, env, &stmt.text, SourceKind::Program, &mut probe);
        let columns = facts
            .output
            .map(|cols| cols.into_iter().map(|c| (c.name, c.ty)).collect())
            .unwrap_or_default();
        env.add_table(TableSchema::new(name, columns));
        return;
    }
    env.apply_ddl(parsed);
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    const PROGRAM: &str = "\
CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT);
INSERT INTO LoggedIn VALUES ('UserA', '09:00');
COMMIT WITH SNAPSHOT;
SELECT CollateData(snap_id, 'SELECT DISTINCT l_userid FROM LoggedIn', 'Found') FROM SnapIds;
--@aux
SELECT * FROM Found;
";

    fn analyze(src: &str) -> ProgramAnalysis {
        let program = parse_program(src).unwrap();
        analyze_program(&program, &SchemaEnv::new(), &SchemaEnv::aux_default())
    }

    fn codes(a: &ProgramAnalysis) -> Vec<Code> {
        a.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_program() {
        let a = analyze(PROGRAM);
        assert!(a.diagnostics.is_empty(), "{:?}", a.diagnostics);
        assert_eq!(a.mechanism_count, 1);
    }

    #[test]
    fn statement_splitting_and_routing() {
        let program = parse_program(PROGRAM).unwrap();
        assert_eq!(program.statements.len(), 5);
        assert!(!program.statements[0].on_aux);
        assert!(program.statements[3].on_aux, "mechanism call auto-routes");
        assert!(program.statements[4].on_aux, "--@aux directive");
        assert!(program.policy.is_none());
    }

    #[test]
    fn policy_directive() {
        let src = "--@policy forced\n\
                   CREATE TABLE t (v INTEGER);\n\
                   COMMIT WITH SNAPSHOT;\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t, t t2', 'r') FROM SnapIds;";
        let program = parse_program(src).unwrap();
        assert_eq!(program.policy, Some(DeltaPolicy::Forced));
        let a = analyze_program(&program, &SchemaEnv::new(), &SchemaEnv::aux_default());
        assert!(
            codes(&a).contains(&Code::ForcedDeltaIneligibleShape),
            "{:?}",
            a.diagnostics
        );
        assert_eq!(a.delta.len(), 1);
    }

    #[test]
    fn qq_spans_remap_into_program() {
        let src = "CREATE TABLE t (v INTEGER);\n\
                   SELECT CollateData(snap_id, 'SELECT bogus FROM t', 'r') FROM SnapIds;";
        let a = analyze(src);
        // The unread result table rides along as RQL310.
        assert_eq!(codes(&a), vec![Code::UnknownColumn, Code::DeadResultTable]);
        let span = a.diagnostics[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "bogus");
    }

    #[test]
    fn mechanism_arity() {
        let src = "SELECT CollateData(snap_id, 'SELECT 1') FROM SnapIds;";
        let a = analyze(src);
        assert_eq!(codes(&a), vec![Code::MechanismArity]);
    }

    #[test]
    fn current_snapshot_outside_loop() {
        let src = "CREATE TABLE t (v INTEGER);\nSELECT current_snapshot() FROM t;";
        let a = analyze(src);
        assert_eq!(codes(&a), vec![Code::CurrentSnapshotOutsideLoop]);
        let span = a.diagnostics[0].span.unwrap();
        assert_eq!(&src[span.start..span.end], "current_snapshot");
    }

    #[test]
    fn result_table_threads_through_env() {
        // Second mechanism call reuses T → RQL007; the --@aux query of the
        // result table resolves.
        let src = "CREATE TABLE t (v INTEGER);\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'r') FROM SnapIds;\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'r') FROM SnapIds;\n\
                   --@aux\n\
                   SELECT v FROM r;";
        let a = analyze(src);
        assert_eq!(codes(&a), vec![Code::ResultTableExists]);
    }

    #[test]
    fn dead_result_table_has_machine_applicable_fix() {
        let src = "CREATE TABLE t (v INTEGER);\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'r') FROM SnapIds;\n";
        let a = analyze(src);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::DeadResultTable)
            .unwrap();
        let fix = d.fix.as_ref().unwrap();
        assert_eq!(fix.applicability, Applicability::MachineApplicable);
        // Applying the fix deletes the whole statement including `;`.
        let edited = format!("{}{}", &src[..fix.span.start], &src[fix.span.end..]);
        assert!(!edited.contains("CollateData"), "{edited}");
    }

    #[test]
    fn use_before_define_reported_with_reorder_fix() {
        let src = "CREATE TABLE t (v INTEGER);\n\
                   --@aux\n\
                   SELECT v FROM r;\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'r') FROM SnapIds;\n\
                   --@aux\n\
                   SELECT v FROM r;\n";
        let a = analyze(src);
        assert!(
            codes(&a).contains(&Code::UseBeforeDefine),
            "{:?}",
            a.diagnostics
        );
        assert!(
            codes(&a).contains(&Code::UnknownTable),
            "RQL001 rides along"
        );
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UseBeforeDefine)
            .unwrap();
        assert!(d.span.is_some());
        let fix = d.fix.as_ref().unwrap();
        assert_eq!(fix.applicability, Applicability::MaybeIncorrect);
        assert!(
            fix.replacement.contains("CollateData"),
            "{}",
            fix.replacement
        );
    }

    #[test]
    fn snapshot_set_mismatch_under_policy() {
        let src = "--@policy auto\n\
                   CREATE TABLE t (v INTEGER);\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'a') FROM SnapIds;\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'b') FROM SnapIds WHERE snap_id > 2;\n\
                   --@aux\n\
                   SELECT v FROM a;\n\
                   --@aux\n\
                   SELECT v FROM b;\n";
        let a = analyze(src);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::SnapshotSetMismatch)
            .unwrap();
        let fix = d.fix.as_ref().unwrap();
        assert_eq!(fix.applicability, Applicability::MaybeIncorrect);
        assert!(
            !fix.replacement.to_lowercase().contains("where"),
            "fix rebuilds on the earlier (unfiltered) Qs: {}",
            fix.replacement
        );
    }

    #[test]
    fn redundant_recompute_fix_copies_table() {
        let src = "CREATE TABLE t (v INTEGER);\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'a') FROM SnapIds;\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'b') FROM SnapIds;\n\
                   --@aux\n\
                   SELECT v FROM a;\n\
                   --@aux\n\
                   SELECT v FROM b;\n";
        let a = analyze(src);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::RedundantRecompute)
            .unwrap();
        let fix = d.fix.as_ref().unwrap();
        assert_eq!(fix.applicability, Applicability::MachineApplicable);
        assert!(
            fix.replacement
                .contains("CREATE TABLE b AS SELECT * FROM a"),
            "{}",
            fix.replacement
        );
    }

    #[test]
    fn auto_fallback_gets_policy_fix() {
        let src = "--@policy auto\n\
                   CREATE TABLE t (v INTEGER);\n\
                   SELECT CollateData(snap_id, 'SELECT a.v FROM t a, t b', 'r') FROM SnapIds;\n\
                   --@aux\n\
                   SELECT * FROM r;\n";
        let a = analyze(src);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::AutoDeltaFallback)
            .unwrap();
        let fix = d.fix.as_ref().unwrap();
        assert_eq!(fix.applicability, Applicability::MachineApplicable);
        assert_eq!(fix.replacement, "--@policy off");
        assert_eq!(&src[fix.span.start..fix.span.end], "--@policy auto");
    }

    #[test]
    fn prune_identity_where_fix_remaps_into_literal() {
        let src = "CREATE TABLE t (v INTEGER);\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t WHERE v + 0 = 5', 'r') FROM SnapIds;\n\
                   --@aux\n\
                   SELECT * FROM r;\n";
        let a = analyze(src);
        let d = a
            .diagnostics
            .iter()
            .find(|d| d.code == Code::PruneIneligibleWhere)
            .unwrap();
        let fix = d.fix.as_ref().unwrap();
        assert_eq!(fix.applicability, Applicability::MachineApplicable);
        // The fix replaces the Qq literal's content with the rewritten query.
        assert_eq!(
            &src[fix.span.start..fix.span.end],
            "SELECT v FROM t WHERE v + 0 = 5"
        );
        assert!(
            fix.replacement.contains("WHERE (v = 5)"),
            "{}",
            fix.replacement
        );
    }

    #[test]
    fn dynamic_mechanism_args_suppress_liveness_passes() {
        // The second call's Qq is a column, not a literal: the def-use
        // graph cannot see what it defines, so RQL310 must not fire.
        let src = "CREATE TABLE t (v INTEGER, q TEXT);\n\
                   SELECT CollateData(snap_id, 'SELECT v FROM t', 'r') FROM SnapIds;\n\
                   --@aux\n\
                   SELECT CollateData(snap_id, name, 'x') FROM SnapIds;\n";
        let a = analyze(src);
        assert!(
            !codes(&a).contains(&Code::DeadResultTable),
            "{:?}",
            a.diagnostics
        );
    }

    #[test]
    fn lex_error_reported() {
        let err = parse_program("SELECT 'oops").unwrap_err();
        assert_eq!(err.code, Code::ParseError);
        assert!(err.span.is_some());
    }

    #[test]
    fn parse_error_spans() {
        let src = "CREATE TABLE t (v INTEGER);\nSELECT FROM t;";
        let a = analyze(src);
        assert_eq!(codes(&a), vec![Code::ParseError]);
        let span = a.diagnostics[0].span.unwrap();
        assert!(span.start >= 28, "span {span:?} should be in stmt 2");
    }
}
