//! Name/type resolution of a `SELECT` against a [`SchemaEnv`].
//!
//! Mirrors the engine's runtime scope rules (`rql_sqlengine::cexpr`):
//! unqualified names that match more than one FROM binding are ambiguous,
//! unknown names are errors, non-builtin functions must be registered
//! UDFs. On top of that it infers the query's output schema — the column
//! names and affinities a mechanism's result table T would get — so the
//! mechanism-spec checks can run without executing anything.

use rql_sqlengine::ast::{is_aggregate_name, Expr, SelectItem, SelectStmt, TableRef};
use rql_sqlengine::lexer::Token;
use rql_sqlengine::{tokenize_spanned, ColumnType, Span};

use crate::analyze::diag::{Code, Diagnostic, SourceKind};
use crate::analyze::env::SchemaEnv;
use crate::rewrite::CURRENT_SNAPSHOT;

/// One inferred output column.
#[derive(Debug, Clone, PartialEq)]
pub struct OutputCol {
    /// Name the engine would report (alias or derived).
    pub name: String,
    /// Inferred affinity (`Any` when unknown).
    pub ty: ColumnType,
}

/// What resolution learned about a query.
#[derive(Debug, Clone, Default)]
pub struct QueryFacts {
    /// Inferred output columns, `None` when a wildcard expands over a
    /// table whose schema is unknown.
    pub output: Option<Vec<OutputCol>>,
    /// Tables that resolved against no schema (candidates for the
    /// snapshot-catalog widening retry).
    pub unknown_tables: Vec<String>,
}

/// One FROM/JOIN binding: alias → schema columns, or `None` when the
/// table is unknown (already diagnosed; suppresses cascading column
/// errors).
struct Binding {
    name: String,
    columns: Option<Vec<(String, ColumnType)>>,
}

/// Find the span of the `idx`-th case-insensitive occurrence of `word`
/// as an identifier token in `src` (0-based; pass 0 for the first).
pub fn find_word_span(src: &str, word: &str, idx: usize) -> Option<Span> {
    let toks = tokenize_spanned(src).ok()?;
    toks.iter()
        .filter(|t| matches!(&t.token, Token::Word(w) if w.eq_ignore_ascii_case(word)))
        .nth(idx)
        .map(|t| t.span)
}

fn table_span(t: &TableRef, src: &str) -> Option<Span> {
    t.span.or_else(|| find_word_span(src, &t.name, 0))
}

/// Resolve `select` against `env`, appending diagnostics. `src` is the
/// SQL text the spans index into; `source` labels it.
pub fn check_select(
    select: &SelectStmt,
    env: &SchemaEnv,
    src: &str,
    source: SourceKind,
    diags: &mut Vec<Diagnostic>,
) -> QueryFacts {
    let mut facts = QueryFacts::default();
    let mut bindings = Vec::new();
    let refs = select
        .from
        .iter()
        .chain(select.joins.iter().map(|j| &j.table));
    for t in refs {
        let columns = match env.table(&t.name) {
            Some(schema) => Some(
                schema
                    .columns
                    .iter()
                    .map(|c| (c.name.clone(), c.ty))
                    .collect(),
            ),
            None => {
                facts.unknown_tables.push(t.name.clone());
                diags.push(Diagnostic::new(
                    Code::UnknownTable,
                    format!("unknown table {}", t.name),
                    source,
                    table_span(t, src),
                ));
                None
            }
        };
        bindings.push(Binding {
            name: t.binding().to_ascii_lowercase(),
            columns,
        });
    }

    let mut ck = Checker {
        env,
        bindings: &bindings,
        src,
        source,
        diags,
    };
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            ck.visit(expr, 0);
        }
    }
    for clause in select
        .where_clause
        .iter()
        .chain(select.group_by.iter())
        .chain(select.having.iter())
        .chain(select.limit.iter())
    {
        ck.visit(clause, 0);
    }
    // ORDER BY also accepts positional indices and output aliases
    // (`ORDER BY 2`, `ORDER BY cn`) — the engine resolves those against
    // the projection, not the FROM scope.
    let out_names: Vec<String> = select
        .items
        .iter()
        .filter_map(|i| match i {
            SelectItem::Expr { expr, alias } => {
                Some(alias.clone().unwrap_or_else(|| derive_name(expr)))
            }
            _ => None,
        })
        .collect();
    for (e, _) in &select.order_by {
        match e {
            Expr::Literal(rql_sqlengine::Value::Integer(_)) => {}
            Expr::Column { table: None, name }
                if out_names.iter().any(|c| c.eq_ignore_ascii_case(name)) => {}
            _ => ck.visit(e, 0),
        }
    }
    for j in &select.joins {
        ck.visit(&j.on, 0);
    }
    check_grouping(select, src, source, diags);

    facts.output = infer_output(
        select,
        &bindings,
        &mut Checker {
            env,
            bindings: &bindings,
            src,
            source,
            diags,
        },
    );
    facts
}

struct Checker<'a> {
    env: &'a SchemaEnv,
    bindings: &'a [Binding],
    src: &'a str,
    source: SourceKind,
    diags: &'a mut Vec<Diagnostic>,
}

impl Checker<'_> {
    fn push(&mut self, code: Code, message: String, span: Option<Span>) {
        self.diags
            .push(Diagnostic::new(code, message, self.source, span));
    }

    /// Resolve one column reference; returns its inferred type.
    fn resolve_column(&mut self, table: &Option<String>, name: &str) -> ColumnType {
        let span = || find_word_span(self.src, name, 0);
        match table {
            Some(q) => {
                let q_lower = q.to_ascii_lowercase();
                let Some(b) = self.bindings.iter().find(|b| b.name == q_lower) else {
                    self.push(
                        Code::UnknownQualifier,
                        format!("unknown table or alias {q} qualifying column {name}"),
                        find_word_span(self.src, q, 0),
                    );
                    return ColumnType::Any;
                };
                match &b.columns {
                    // The table itself was unknown; don't cascade.
                    None => ColumnType::Any,
                    Some(cols) => match cols.iter().find(|(c, _)| c.eq_ignore_ascii_case(name)) {
                        Some((_, ty)) => *ty,
                        None => {
                            self.push(
                                Code::UnknownColumn,
                                format!("unknown column {q}.{name}"),
                                span(),
                            );
                            ColumnType::Any
                        }
                    },
                }
            }
            None => {
                let mut found: Option<ColumnType> = None;
                let mut matches = 0usize;
                let mut any_unknown_table = false;
                for b in self.bindings {
                    match &b.columns {
                        None => any_unknown_table = true,
                        Some(cols) => {
                            if let Some((_, ty)) =
                                cols.iter().find(|(c, _)| c.eq_ignore_ascii_case(name))
                            {
                                matches += 1;
                                found.get_or_insert(*ty);
                            }
                        }
                    }
                }
                match matches {
                    0 if any_unknown_table || self.bindings.is_empty() => ColumnType::Any,
                    0 => {
                        self.push(
                            Code::UnknownColumn,
                            format!("unknown column {name}"),
                            span(),
                        );
                        ColumnType::Any
                    }
                    1 => found.unwrap_or(ColumnType::Any),
                    _ => {
                        self.push(
                            Code::AmbiguousColumn,
                            format!("ambiguous column {name}"),
                            span(),
                        );
                        found.unwrap_or(ColumnType::Any)
                    }
                }
            }
        }
    }

    /// Walk an expression; `agg_depth` counts enclosing aggregate calls.
    fn visit(&mut self, expr: &Expr, agg_depth: usize) {
        match expr {
            Expr::Column { table, name } => {
                self.resolve_column(table, name);
            }
            Expr::Function { name, args, .. } => {
                // current_snapshot() placement/arity belongs to the
                // rewrite-safety pass; names always resolve here.
                if name == CURRENT_SNAPSHOT {
                    return;
                }
                if is_aggregate_name(name) {
                    if agg_depth > 0 {
                        self.push(
                            Code::NestedAggregate,
                            format!("aggregate {name}() nested inside another aggregate"),
                            find_word_span(self.src, name, 0),
                        );
                    }
                    for a in args {
                        if !matches!(a, Expr::Star) {
                            self.visit(a, agg_depth + 1);
                        }
                    }
                    return;
                }
                if let Some(expected) = builtin_arity(name) {
                    if !expected.contains(&args.len()) {
                        self.push(
                            Code::FunctionArity,
                            format!(
                                "{name}() expects {} argument(s), got {}",
                                render_arity(expected),
                                args.len()
                            ),
                            find_word_span(self.src, name, 0),
                        );
                    }
                } else if !self.env.has_function(name) {
                    self.push(
                        Code::UnknownFunction,
                        format!("unknown function {name}"),
                        find_word_span(self.src, name, 0),
                    );
                }
                for a in args {
                    self.visit(a, agg_depth);
                }
            }
            Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => self.visit(expr, agg_depth),
            Expr::Binary { lhs, rhs, .. } => {
                self.visit(lhs, agg_depth);
                self.visit(rhs, agg_depth);
            }
            Expr::InList { expr, list, .. } => {
                self.visit(expr, agg_depth);
                for e in list {
                    self.visit(e, agg_depth);
                }
            }
            Expr::Between { expr, lo, hi, .. } => {
                self.visit(expr, agg_depth);
                self.visit(lo, agg_depth);
                self.visit(hi, agg_depth);
            }
            Expr::Like { expr, pattern, .. } => {
                self.visit(expr, agg_depth);
                self.visit(pattern, agg_depth);
            }
            Expr::Case {
                operand,
                arms,
                else_branch,
            } => {
                if let Some(o) = operand {
                    self.visit(o, agg_depth);
                }
                for (w, t) in arms {
                    self.visit(w, agg_depth);
                    self.visit(t, agg_depth);
                }
                if let Some(e) = else_branch {
                    self.visit(e, agg_depth);
                }
            }
            Expr::Literal(_) | Expr::Star => {}
        }
    }

    /// Infer an expression's output affinity (best effort; `Any` when
    /// value-dependent).
    fn infer_type(&mut self, expr: &Expr) -> ColumnType {
        use rql_sqlengine::Value;
        match expr {
            Expr::Column { table, name } => self.resolve_column_quiet(table, name),
            Expr::Literal(Value::Integer(_)) => ColumnType::Integer,
            Expr::Literal(Value::Real(_)) => ColumnType::Real,
            Expr::Literal(Value::Text(_)) => ColumnType::Text,
            Expr::Literal(_) => ColumnType::Any,
            Expr::Function { name, args, .. } => match name.as_str() {
                "count" | "length" => ColumnType::Integer,
                "avg" | "round" => ColumnType::Real,
                "lower" | "upper" | "substr" | "typeof" => ColumnType::Text,
                "sum" | "min" | "max" | "total" => {
                    args.first().map_or(ColumnType::Any, |a| self.infer_type(a))
                }
                _ if name == CURRENT_SNAPSHOT => ColumnType::Integer,
                _ => ColumnType::Any,
            },
            Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::Between { .. }
            | Expr::Like { .. } => ColumnType::Integer,
            _ => ColumnType::Any,
        }
    }

    /// Like [`Self::resolve_column`] but without emitting diagnostics
    /// (resolution already ran; type inference must not double-report).
    fn resolve_column_quiet(&self, table: &Option<String>, name: &str) -> ColumnType {
        let find = |cols: &Vec<(String, ColumnType)>| {
            cols.iter()
                .find(|(c, _)| c.eq_ignore_ascii_case(name))
                .map(|(_, ty)| *ty)
        };
        match table {
            Some(q) => {
                let q_lower = q.to_ascii_lowercase();
                self.bindings
                    .iter()
                    .find(|b| b.name == q_lower)
                    .and_then(|b| b.columns.as_ref().and_then(find))
                    .unwrap_or(ColumnType::Any)
            }
            None => self
                .bindings
                .iter()
                .find_map(|b| b.columns.as_ref().and_then(find))
                .unwrap_or(ColumnType::Any),
        }
    }
}

/// Arity sets of the engine's builtin scalars
/// (`rql_sqlengine::cexpr::eval_builtin`).
fn builtin_arity(name: &str) -> Option<std::ops::RangeInclusive<usize>> {
    match name {
        "abs" | "length" | "lower" | "upper" | "typeof" => Some(1..=1),
        "ifnull" | "nullif" => Some(2..=2),
        "round" => Some(1..=2),
        "substr" => Some(2..=3),
        "coalesce" => Some(1..=usize::MAX),
        _ => None,
    }
}

fn render_arity(r: std::ops::RangeInclusive<usize>) -> String {
    match (r.start(), r.end()) {
        (a, b) if a == b => a.to_string(),
        (a, b) if *b == usize::MAX => format!("at least {a}"),
        (a, b) => format!("{a} to {b}"),
    }
}

/// GROUP BY hygiene: a projected bare column that is neither aggregated
/// nor listed in GROUP BY has an arbitrary representative per group.
fn check_grouping(select: &SelectStmt, src: &str, source: SourceKind, diags: &mut Vec<Diagnostic>) {
    let has_aggregate = select.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
        _ => false,
    });
    if select.group_by.is_empty() && !has_aggregate {
        return;
    }
    let grouped: Vec<&Expr> = select.group_by.iter().collect();
    for item in &select.items {
        let SelectItem::Expr { expr, .. } = item else {
            continue;
        };
        if expr.contains_aggregate() {
            continue;
        }
        let Expr::Column { name, .. } = expr else {
            continue;
        };
        let in_group = grouped.iter().any(|g| match g {
            Expr::Column { name: gname, .. } => gname.eq_ignore_ascii_case(name),
            _ => false,
        });
        if !in_group {
            diags.push(Diagnostic::new(
                Code::UngroupedColumn,
                format!("column {name} is neither aggregated nor in GROUP BY"),
                source,
                find_word_span(src, name, 0),
            ));
        }
    }
}

/// The output schema the engine would report for this query, mirroring
/// its wildcard expansion and `derive_name` rules.
fn infer_output(
    select: &SelectStmt,
    bindings: &[Binding],
    ck: &mut Checker<'_>,
) -> Option<Vec<OutputCol>> {
    let mut out = Vec::new();
    for item in &select.items {
        match item {
            SelectItem::Wildcard => {
                for b in bindings {
                    let cols = b.columns.as_ref()?;
                    out.extend(cols.iter().map(|(name, ty)| OutputCol {
                        name: name.clone(),
                        ty: *ty,
                    }));
                }
            }
            SelectItem::TableWildcard(t) => {
                let t_lower = t.to_ascii_lowercase();
                let b = bindings.iter().find(|b| b.name == t_lower)?;
                let cols = b.columns.as_ref()?;
                out.extend(cols.iter().map(|(name, ty)| OutputCol {
                    name: name.clone(),
                    ty: *ty,
                }));
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| derive_name(expr));
                let ty = ck.infer_type(expr);
                out.push(OutputCol { name, ty });
            }
        }
    }
    Some(out)
}

/// Mirror of the engine's `derive_name` (exec.rs): the column name an
/// unaliased projection gets.
fn derive_name(expr: &Expr) -> String {
    match expr {
        Expr::Column { name, .. } => name.to_ascii_lowercase(),
        Expr::Function { name, .. } => name.clone(),
        Expr::Literal(v) => v.to_string(),
        _ => "expr".to_owned(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_sqlengine::{parse_select, TableSchema};

    fn env() -> SchemaEnv {
        let mut env = SchemaEnv::new();
        env.add_table(TableSchema::new(
            "loggedin",
            vec![
                ("l_userid".into(), ColumnType::Text),
                ("l_time".into(), ColumnType::Text),
                ("l_country".into(), ColumnType::Text),
            ],
        ));
        env.add_table(TableSchema::new(
            "orders",
            vec![
                ("o_orderkey".into(), ColumnType::Integer),
                ("o_totalprice".into(), ColumnType::Real),
                ("l_time".into(), ColumnType::Text),
            ],
        ));
        env
    }

    fn run(sql: &str) -> (QueryFacts, Vec<Diagnostic>) {
        let select = parse_select(sql).unwrap();
        let mut diags = Vec::new();
        let facts = check_select(&select, &env(), sql, SourceKind::Qq, &mut diags);
        (facts, diags)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_query_resolves() {
        let (facts, diags) = run("SELECT l_userid, upper(l_country) AS c FROM LoggedIn");
        assert!(diags.is_empty(), "{diags:?}");
        let out = facts.output.unwrap();
        assert_eq!(out[0].name, "l_userid");
        assert_eq!(out[0].ty, ColumnType::Text);
        assert_eq!(out[1].name, "c");
    }

    #[test]
    fn unknown_table_and_column() {
        let (facts, diags) = run("SELECT nope FROM LoggedIn");
        assert_eq!(codes(&diags), vec![Code::UnknownColumn]);
        assert!(facts.unknown_tables.is_empty());
        let (facts, diags) = run("SELECT x FROM Missing");
        // Unknown table, but no cascading unknown-column noise.
        assert_eq!(codes(&diags), vec![Code::UnknownTable]);
        assert_eq!(facts.unknown_tables, vec!["Missing".to_string()]);
        assert!(facts.output.is_none() || !facts.output.as_ref().unwrap().is_empty());
    }

    #[test]
    fn ambiguous_and_qualified() {
        let (_, diags) = run("SELECT l_time FROM LoggedIn, orders");
        assert_eq!(codes(&diags), vec![Code::AmbiguousColumn]);
        let (_, diags) = run("SELECT o.l_time FROM LoggedIn, orders o");
        assert!(diags.is_empty(), "{diags:?}");
        let (_, diags) = run("SELECT z.l_time FROM LoggedIn");
        assert_eq!(codes(&diags), vec![Code::UnknownQualifier]);
    }

    #[test]
    fn order_by_aliases_and_positions() {
        // The engine resolves ORDER BY against the projection first:
        // output aliases and 1-based positions are legal there.
        let (_, diags) = run("SELECT l_userid AS u FROM LoggedIn ORDER BY u");
        assert!(diags.is_empty(), "{diags:?}");
        let (_, diags) = run("SELECT l_userid, l_country FROM LoggedIn ORDER BY 2");
        assert!(diags.is_empty(), "{diags:?}");
        // A name that is neither an alias nor a scope column still errors.
        let (_, diags) = run("SELECT l_userid AS u FROM LoggedIn ORDER BY bogus");
        assert_eq!(codes(&diags), vec![Code::UnknownColumn]);
    }

    #[test]
    fn function_checks() {
        let (_, diags) = run("SELECT median(o_totalprice) FROM orders");
        assert_eq!(codes(&diags), vec![Code::UnknownFunction]);
        let (_, diags) = run("SELECT substr(l_userid) FROM LoggedIn");
        assert_eq!(codes(&diags), vec![Code::FunctionArity]);
        let (_, diags) = run("SELECT SUM(MAX(o_totalprice)) FROM orders");
        assert_eq!(codes(&diags), vec![Code::NestedAggregate]);
        // count(*) is not a column reference.
        let (_, diags) = run("SELECT COUNT(*) FROM orders");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn grouping_warning() {
        let (_, diags) = run("SELECT l_userid, COUNT(*) FROM LoggedIn GROUP BY l_country");
        assert_eq!(codes(&diags), vec![Code::UngroupedColumn]);
        let (_, diags) = run("SELECT l_userid, COUNT(*) FROM LoggedIn GROUP BY l_userid");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn wildcard_output() {
        let (facts, _) = run("SELECT * FROM LoggedIn");
        let out = facts.output.unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[2].name, "l_country");
        let (facts, _) = run("SELECT o.* FROM orders o");
        assert_eq!(facts.output.unwrap().len(), 3);
        // Wildcard over an unknown table: output not inferable.
        let (facts, _) = run("SELECT * FROM Missing");
        assert!(facts.output.is_none());
    }

    #[test]
    fn spans_point_at_names() {
        let sql = "SELECT bogus FROM LoggedIn";
        let (_, diags) = run(sql);
        let span = diags[0].span.unwrap();
        assert_eq!(&sql[span.start..span.end], "bogus");
    }
}
