//! Rewrite-safety proofs for the `AS OF` injection and
//! `current_snapshot()` substitution of paper §3.
//!
//! The runtime rewrite is AST-based ([`crate::rewrite`]), which makes it
//! immune to the string-splicing pitfalls of the paper's SQLite
//! implementation — but the *programmer* can still write things the
//! rewrite will not (and must not) touch: an explicit `AS OF` in Qq that
//! would fight the injected one, a `current_snapshot()` spelled inside a
//! string literal where substitution cannot reach it, or a
//! `current_snapshot()` call in a statement that never enters the loop
//! and therefore has no snapshot to bind to. This pass proves the
//! rewrite sites are all where the rewriter will find them.

use rql_sqlengine::ast::{Expr, SelectItem, SelectStmt};
use rql_sqlengine::lexer::Token;
use rql_sqlengine::{tokenize_spanned, Span};

use crate::analyze::diag::{Code, Diagnostic, SourceKind};
use crate::rewrite::{uses_current_snapshot, CURRENT_SNAPSHOT};

/// Every expression a SELECT contains, in clause order.
fn select_exprs(select: &SelectStmt) -> Vec<&Expr> {
    let mut out = Vec::new();
    for item in &select.items {
        if let SelectItem::Expr { expr, .. } = item {
            out.push(expr);
        }
    }
    out.extend(select.joins.iter().map(|j| &j.on));
    out.extend(select.where_clause.iter());
    out.extend(select.group_by.iter());
    out.extend(select.having.iter());
    out.extend(select.order_by.iter().map(|(e, _)| e));
    out.extend(select.limit.iter());
    out
}

/// Does any clause of the SELECT call `current_snapshot()`?
pub fn select_uses_current_snapshot(select: &SelectStmt) -> bool {
    select.as_of.as_ref().is_some_and(uses_current_snapshot)
        || select_exprs(select).into_iter().any(uses_current_snapshot)
}

/// Check a Qq — the one statement the rewriter *will* process.
pub fn check_qq(select: &SelectStmt, src: &str, source: SourceKind, diags: &mut Vec<Diagnostic>) {
    if select.as_of.is_some() {
        diags.push(Diagnostic::new(
            Code::AsOfInQq,
            "Qq must not contain AS OF; RQL binds the snapshot per iteration",
            source,
            find_as_of_span(src),
        ));
    }
    for e in select_exprs(select) {
        check_call_arity(e, src, source, diags);
    }
    check_string_literals(src, source, diags);
}

/// Check a statement *outside* the loop body (Qs is handled separately
/// with its own code): `current_snapshot()` there never gets substituted
/// and errors at runtime.
pub fn check_outside_loop(
    select: &SelectStmt,
    src: &str,
    source: SourceKind,
    diags: &mut Vec<Diagnostic>,
) {
    if select_uses_current_snapshot(select) {
        diags.push(Diagnostic::new(
            Code::CurrentSnapshotOutsideLoop,
            "current_snapshot() outside an RQL loop body; only Qq is \
             rewritten per snapshot",
            source,
            super::resolve::find_word_span(src, CURRENT_SNAPSHOT, 0),
        ));
    }
    for e in select_exprs(select) {
        check_call_arity(e, src, source, diags);
    }
}

/// RQL102: `current_snapshot` takes no arguments; the substitution
/// replaces the whole call, so arguments would be silently discarded.
fn check_call_arity(expr: &Expr, src: &str, source: SourceKind, diags: &mut Vec<Diagnostic>) {
    match expr {
        Expr::Function { name, args, .. } => {
            if name == CURRENT_SNAPSHOT && !args.is_empty() {
                diags.push(Diagnostic::new(
                    Code::CurrentSnapshotArity,
                    format!("current_snapshot() takes no arguments, got {}", args.len()),
                    source,
                    super::resolve::find_word_span(src, CURRENT_SNAPSHOT, 0),
                ));
            }
            for a in args {
                check_call_arity(a, src, source, diags);
            }
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => {
            check_call_arity(expr, src, source, diags);
        }
        Expr::Binary { lhs, rhs, .. } => {
            check_call_arity(lhs, src, source, diags);
            check_call_arity(rhs, src, source, diags);
        }
        Expr::InList { expr, list, .. } => {
            check_call_arity(expr, src, source, diags);
            for e in list {
                check_call_arity(e, src, source, diags);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            check_call_arity(expr, src, source, diags);
            check_call_arity(lo, src, source, diags);
            check_call_arity(hi, src, source, diags);
        }
        Expr::Like { expr, pattern, .. } => {
            check_call_arity(expr, src, source, diags);
            check_call_arity(pattern, src, source, diags);
        }
        Expr::Case {
            operand,
            arms,
            else_branch,
        } => {
            for e in operand.iter().map(std::convert::AsRef::as_ref) {
                check_call_arity(e, src, source, diags);
            }
            for (w, t) in arms {
                check_call_arity(w, src, source, diags);
                check_call_arity(t, src, source, diags);
            }
            for e in else_branch.iter().map(std::convert::AsRef::as_ref) {
                check_call_arity(e, src, source, diags);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Star => {}
    }
}

/// RQL105/106: substitution sites spelled inside string literals. The
/// AST rewrite never looks into literals (that immunity is the point),
/// so `'… current_snapshot() …'` stays verbatim — almost certainly not
/// what the programmer meant. Flagged on the literal's span.
fn check_string_literals(src: &str, source: SourceKind, diags: &mut Vec<Diagnostic>) {
    let Ok(tokens) = tokenize_spanned(src) else {
        return;
    };
    for t in tokens {
        let Token::Str(s) = &t.token else { continue };
        let lower = s.to_ascii_lowercase();
        if lower.contains(CURRENT_SNAPSHOT) {
            diags.push(Diagnostic::new(
                Code::CurrentSnapshotInStringLiteral,
                "string literal contains 'current_snapshot'; substitution \
                 never rewrites literal text",
                source,
                Some(t.span),
            ));
        }
        if lower.contains("as of") {
            diags.push(Diagnostic::new(
                Code::AsOfInStringLiteral,
                "string literal contains 'AS OF'; the rewrite injects AS OF \
                 into the AST, not into literal text",
                source,
                Some(t.span),
            ));
        }
    }
}

/// Span of the `AS OF` keywords (the `OF` word anchors it).
fn find_as_of_span(src: &str) -> Option<Span> {
    let tokens = tokenize_spanned(src).ok()?;
    tokens
        .windows(2)
        .find_map(|w| match (&w[0].token, &w[1].token) {
            (Token::Word(a), Token::Word(b))
                if a.eq_ignore_ascii_case("as") && b.eq_ignore_ascii_case("of") =>
            {
                Some(Span::new(w[0].span.start, w[1].span.end))
            }
            _ => None,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_sqlengine::parse_select;

    fn qq_diags(sql: &str) -> Vec<Diagnostic> {
        let select = parse_select(sql).unwrap();
        let mut diags = Vec::new();
        check_qq(&select, sql, SourceKind::Qq, &mut diags);
        diags
    }

    fn codes(diags: &[Diagnostic]) -> Vec<Code> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn as_of_in_qq() {
        let sql = "SELECT AS OF 3 l_userid FROM LoggedIn";
        let diags = qq_diags(sql);
        assert_eq!(codes(&diags), vec![Code::AsOfInQq]);
        let span = diags[0].span.unwrap();
        assert_eq!(&sql[span.start..span.end], "AS OF");
    }

    #[test]
    fn current_snapshot_arity() {
        let diags = qq_diags("SELECT current_snapshot(1) FROM t");
        assert_eq!(codes(&diags), vec![Code::CurrentSnapshotArity]);
        let diags = qq_diags("SELECT current_snapshot() FROM t");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn string_literal_traps() {
        let diags = qq_diags("SELECT 'current_snapshot()' FROM t");
        assert_eq!(codes(&diags), vec![Code::CurrentSnapshotInStringLiteral]);
        let diags = qq_diags("SELECT x FROM t WHERE y = 'as of 3'");
        assert_eq!(codes(&diags), vec![Code::AsOfInStringLiteral]);
        // An innocent literal stays quiet.
        let diags = qq_diags("SELECT 'hello' FROM t");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn outside_loop() {
        let sql = "SELECT current_snapshot() FROM SnapIds";
        let select = parse_select(sql).unwrap();
        let mut diags = Vec::new();
        check_outside_loop(&select, sql, SourceKind::Program, &mut diags);
        assert_eq!(codes(&diags), vec![Code::CurrentSnapshotOutsideLoop]);
    }

    #[test]
    fn detects_in_every_clause() {
        for sql in [
            "SELECT current_snapshot() FROM t",
            "SELECT a FROM t WHERE a = current_snapshot()",
            "SELECT a FROM t GROUP BY a HAVING COUNT(*) > current_snapshot()",
            "SELECT a FROM t ORDER BY current_snapshot()",
        ] {
            let select = parse_select(sql).unwrap();
            assert!(select_uses_current_snapshot(&select), "{sql}");
        }
        let select = parse_select("SELECT a FROM t").unwrap();
        assert!(!select_uses_current_snapshot(&select));
    }
}
