//! SARIF 2.1.0 output for `rqlcheck --format sarif`.
//!
//! Hand-rolled JSON (the workspace has no serde): one `run` whose tool
//! driver lists the full diagnostic registry ([`Code::ALL`]) as rules,
//! one `artifact` per linted file, one `result` per diagnostic, and —
//! when a diagnostic carries a [`Fix`] in program coordinates — a SARIF
//! `fix` with a single `replacement` (deletedRegion + insertedContent).
//! Regions carry both `charOffset`/`charLength` (byte offsets, matching
//! the analyzer's spans) and 1-based line/column, which is what CI
//! annotation UIs consume.
//!
//! `scripts/validate_sarif.py` checks this output against the vendored
//! minimal schema in CI.

use rql_sqlengine::Span;

use crate::analyze::diag::{Code, Diagnostic, Severity, SourceKind};

/// One linted file: path, source text, and its diagnostics (spans in
/// program coordinates).
#[derive(Debug, Clone, Copy)]
pub struct SarifFile<'a> {
    /// Path as reported (artifact URI).
    pub path: &'a str,
    /// The program source the spans index into.
    pub src: &'a str,
    /// Findings for this file.
    pub diagnostics: &'a [Diagnostic],
}

/// Render a complete SARIF 2.1.0 log for a set of linted files.
pub fn render_sarif(files: &[SarifFile<'_>]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",");
    out.push_str("\"version\":\"2.1.0\",\"runs\":[{");
    out.push_str("\"tool\":{\"driver\":{\"name\":\"rqlcheck\",");
    out.push_str("\"informationUri\":\"https://example.invalid/rqlcheck\",");
    out.push_str(&format!(
        "\"version\":{},",
        json_str(env!("CARGO_PKG_VERSION"))
    ));
    out.push_str("\"rules\":[");
    for (i, code) in Code::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"defaultConfiguration\":{{\"level\":{}}}}}",
            json_str(code.as_str()),
            json_str(code.description()),
            json_str(level(code.severity())),
        ));
    }
    out.push_str("]}},\"artifacts\":[");
    for (i, f) in files.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"location\":{{\"uri\":{}}}}}",
            json_str(f.path)
        ));
    }
    out.push_str("],\"results\":[");
    let mut first = true;
    for (file_idx, f) in files.iter().enumerate() {
        for d in f.diagnostics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&render_result(d, file_idx, f));
        }
    }
    out.push_str("]}]}");
    out
}

fn render_result(d: &Diagnostic, file_idx: usize, f: &SarifFile<'_>) -> String {
    let rule_index = Code::ALL
        .iter()
        .position(|c| *c == d.code)
        .unwrap_or_default();
    let mut out = format!(
        "{{\"ruleId\":{},\"ruleIndex\":{rule_index},\"level\":{},\
         \"message\":{{\"text\":{}}}",
        json_str(d.code.as_str()),
        json_str(level(d.severity)),
        json_str(&d.message),
    );
    out.push_str(&format!(
        ",\"locations\":[{{\"physicalLocation\":{{\
         \"artifactLocation\":{{\"uri\":{},\"index\":{file_idx}}}",
        json_str(f.path)
    ));
    if let Some(span) = d.span {
        out.push_str(&format!(",\"region\":{}", region(span, f.src)));
    }
    out.push_str("}}]");
    // Only fixes whose span indexes the program text are emitted: SARIF
    // replacements edit the artifact, and Qs/Qq-coordinate spans index
    // argument strings, not the file.
    if let Some(fix) = d.fix.as_ref().filter(|_| d.source == SourceKind::Program) {
        out.push_str(&format!(
            ",\"fixes\":[{{\"description\":{{\"text\":{}}},\
             \"artifactChanges\":[{{\"artifactLocation\":{{\"uri\":{},\"index\":{file_idx}}},\
             \"replacements\":[{{\"deletedRegion\":{},\
             \"insertedContent\":{{\"text\":{}}}}}]}}]}}]",
            json_str(&format!(
                "{} ({})",
                d.code.description(),
                fix.applicability.as_str()
            )),
            json_str(f.path),
            region(fix.span, f.src),
            json_str(&fix.replacement),
        ));
    }
    out.push('}');
    out
}

/// A SARIF region: byte offsets plus 1-based line/column endpoints.
fn region(span: Span, src: &str) -> String {
    let (sl, sc) = line_col(src, span.start);
    let (el, ec) = line_col(src, span.end);
    format!(
        "{{\"charOffset\":{},\"charLength\":{},\"startLine\":{sl},\
         \"startColumn\":{sc},\"endLine\":{el},\"endColumn\":{ec}}}",
        span.start,
        span.end.saturating_sub(span.start),
    )
}

/// 1-based line/column of a byte offset (clamped to the source length).
fn line_col(src: &str, offset: usize) -> (usize, usize) {
    let offset = offset.min(src.len());
    let before = &src[..offset];
    let line = before.matches('\n').count() + 1;
    let col = before
        .rfind('\n')
        .map_or(offset, |nl| offset - nl - 1)
        .saturating_add(1);
    (line, col)
}

/// SARIF levels: `error`, `warning`, `note`.
fn level(sev: Severity) -> &'static str {
    match sev {
        Severity::Error => "error",
        Severity::Warning => "warning",
        Severity::Info => "note",
    }
}

/// JSON string literal with full escaping.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::analyze::diag::Applicability;

    #[test]
    fn sarif_structure_and_escaping() {
        let src = "SELECT \"x\"\nFROM t;\n";
        let d = Diagnostic::new(
            Code::UnknownTable,
            "unknown table \"t\"",
            SourceKind::Program,
            Some(Span::new(16, 17)),
        )
        .with_fix(Span::new(16, 17), "u", Applicability::MachineApplicable);
        let log = render_sarif(&[SarifFile {
            path: "a.rql",
            src,
            diagnostics: std::slice::from_ref(&d),
        }]);
        assert!(log.contains("\"version\":\"2.1.0\""), "{log}");
        assert!(log.contains("\"ruleId\":\"RQL001\""), "{log}");
        assert!(log.contains("\\\"t\\\""), "escaped quotes: {log}");
        assert!(log.contains("\"startLine\":2"), "{log}");
        assert!(log.contains("\"deletedRegion\""), "{log}");
        // Every rule in the registry is listed.
        for code in Code::ALL {
            assert!(log.contains(code.as_str()), "missing rule {code}");
        }
    }

    #[test]
    fn line_col_basics() {
        let src = "ab\ncd";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 3), (2, 1));
        assert_eq!(line_col(src, 4), (2, 2));
    }
}
