//! Delta-driven snapshot iteration — the perf extension to the paper's
//! mechanisms (§3) for closely-spaced snapshot sets.
//!
//! The sequential mechanisms re-execute Qq from scratch per snapshot, so
//! an iteration's cost is proportional to the *table* size even when the
//! snapshots differ by a handful of rows. The delta drivers here open the
//! whole snapshot set as a chain
//! ([`rql_retro::RetroStore::open_snapshot_chain`]), build each SPT
//! incrementally from its predecessor, and evaluate Qq through the
//! engine's delta-aware scan ([`rql_sqlengine::DeltaSelectRunner`]),
//! which re-reads only the heap pages in the changed set between
//! consecutive snapshots.
//!
//! Two evaluation modes, both byte-identical to the sequential result:
//!
//! * **pipeline** — re-run Qq's post-scan stages (the same
//!   `finish_select` code the ordinary plan uses) over the cached
//!   filtered base rows. Saves the page I/O, pays O(rows) CPU.
//!   `CollateData` always uses this mode.
//! * **incremental** — for `AggregateDataInVariable` whose Qq is a bare
//!   inner aggregate (`SELECT SUM(x) FROM t [WHERE …]`), maintain the
//!   inner aggregate across iterations and fold only the added/removed
//!   rows: O(delta) CPU. Exactness guards (below) degrade permanently to
//!   pipeline mode whenever bit-identical output cannot be proven.
//!
//! Exactness guards for the incremental inner aggregate:
//!
//! * `COUNT` — always exact (integer add/subtract).
//! * `SUM` — only while every non-NULL input is an `Integer` and the sum
//!   of absolute values stays ≤ `i64::MAX`: then no scan-order prefix of
//!   the sequential fold can overflow `i64`, so the sequential result is
//!   `Integer(total)` in every order.
//! * `AVG` — only all-`Integer` with the absolute sum ≤ 2⁵³: every
//!   scan-order partial sum of the sequential `f64` accumulation is then
//!   an exactly-representable integer, so the accumulated `f64` equals
//!   the true integer sum bit-for-bit.
//! * `MIN`/`MAX` — kept incrementally under strict comparisons; any
//!   removal that could displace the current best, or an added value that
//!   *ties* it (the sequential fold keeps the first-in-scan-order
//!   representative, which the running value cannot know), triggers a
//!   re-fold over the current rows — still no page I/O.
//!
//! A schema change invalidates the compiled aggregate argument, but this
//! dialect has no `ALTER TABLE`: a schema can only change via
//! `DROP`+`CREATE`, which allocates a fresh root page, which the scanner
//! detects (root moved → rebuild) and the driver answers by re-seeding
//! from the rebuilt row set.
//!
//! `AggregateDataInTable` adds a third mode on top of the pipeline scan:
//! a **write-skipping in-table fold** ([`AggTableFold`]). The fold state
//! remembers each group's record sublist and whether its last fold pass
//! wrote anything; a group that is stable *and* was write-free is
//! skipped without even a probe (provably a no-op — see the type's
//! byte-identity argument), which eliminates the per-record index probes
//! for the stable majority of groups while keeping the result table
//! byte-identical to the sequential mechanism.
//!
//! Shapes the delta scan cannot reproduce byte-for-byte (joins, indexed
//! probes, UDFs in WHERE, `current_snapshot()` in WHERE) fall back to
//! the ordinary plan per [`DeltaPolicy`]: `Auto` silently, `Forced` with
//! an error. `CollateDataIntoIntervals` still runs sequentially under
//! `Auto` (lifetime extension probes the result table per record —
//! extending deltas to it remains a ROADMAP open item).

use std::cmp::Ordering;
use std::time::Instant;

use rql_retro::SnapshotReader;
use rql_sqlengine::ast::{Expr, SelectItem, Stmt};
use rql_sqlengine::cexpr::{compile, eval, CExpr, Scope};
use rql_sqlengine::{
    parse_select, Catalog, Database, DeltaScan, DeltaSelectRunner, ExecStats, QueryResult, Result,
    Row, SelectStmt, SkipReason, SqlError, UdfRegistry, Value,
};

use crate::aggregate::AggOp;
use crate::mechanism::{self, MemoHandle};
use crate::memoize::QqMemo;
use crate::report::{IterationReport, RqlReport};
use crate::rewrite::{rewrite_select, uses_current_snapshot};

/// When to take the delta-aware iteration path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DeltaPolicy {
    /// Never: delegate to the sequential mechanism unconditionally.
    Off,
    /// Delta when the Qq shape allows it, sequential fallback otherwise
    /// (per computation *and* per iteration).
    #[default]
    Auto,
    /// Delta or error — for tests and benchmarks that must not silently
    /// measure the ordinary path.
    Forced,
}

/// Parse Qq and reject `AS OF` (same contract as the sequential loop).
fn parse_qq(qq: &str) -> Result<SelectStmt> {
    let parsed = parse_select(qq)?;
    if parsed.as_of.is_some() {
        return Err(SqlError::Invalid(
            "Qq must not contain AS OF; RQL binds the snapshot per iteration".into(),
        ));
    }
    Ok(parsed)
}

/// Static (per-computation) eligibility: a single-table scan shape whose
/// WHERE clause is iteration-invariant. `current_snapshot()` elsewhere
/// (projection, GROUP BY, …) is fine — those stages re-run per iteration
/// over the cached base rows with the substituted literal.
fn shape_eligible(parsed: &SelectStmt) -> bool {
    DeltaSelectRunner::eligible_shape(parsed)
        && !parsed
            .where_clause
            .as_ref()
            .is_some_and(uses_current_snapshot)
}

/// Analyzer mirror of [`inner_agg_shape`]: whether Qq is the bare inner
/// aggregate the incremental `AggregateDataInVariable` path maintains.
pub(crate) fn has_inner_agg_shape(parsed: &SelectStmt) -> bool {
    inner_agg_shape(parsed).is_some()
}

fn forced_shape_error() -> SqlError {
    SqlError::Invalid(
        "DeltaPolicy::Forced requires a delta-eligible Qq: a single FROM table, \
         no joins, and no current_snapshot() in WHERE"
            .into(),
    )
}

fn forced_runtime_error(sid: u64) -> SqlError {
    SqlError::Invalid(format!(
        "DeltaPolicy::Forced, but snapshot {sid} requires the ordinary plan \
         (indexed equality probe or UDF in WHERE)"
    ))
}

fn table_exists_error(table: &str) -> SqlError {
    SqlError::Constraint(format!("result table {table} already exists"))
}

// ======================================================================
// DeltaQqStream — shared per-snapshot Qq evaluation
// ======================================================================

/// Per-snapshot Qq evaluation over a delta chain: runner state, memo
/// lookups, output reuse on whole-snapshot skips, and the
/// `DeltaPolicy::Forced` contract, factored out so `CollateData`,
/// `AggregateDataInTable`, and the standing-query maintainer drive one
/// implementation. Call [`advance`](Self::advance) once per snapshot in
/// chain order, then read [`current`](Self::current).
pub(crate) struct DeltaQqStream {
    parsed: SelectStmt,
    memo: Option<QqMemo>,
    runner: DeltaSelectRunner,
    policy: DeltaPolicy,
    /// Whether a whole-snapshot skip may reuse the previous output
    /// outright (deterministic, snapshot-invariant post-scan stages).
    reusable: bool,
    /// Shape-ineligible Qq (joins, or `current_snapshot()` in WHERE —
    /// the scanner's cached filter would be wrong): never attempt the
    /// delta scan, evaluate sequentially every snapshot. The batch
    /// drivers pre-check and route to the sequential mechanism instead;
    /// this guard keeps the stream correct for callers that cannot
    /// (the standing-query maintainer takes whatever Qq was registered).
    seq_only: bool,
    current: Option<QueryResult>,
}

impl DeltaQqStream {
    pub(crate) fn new(
        snap: &Database,
        parsed: SelectStmt,
        policy: DeltaPolicy,
        memo: MemoHandle,
    ) -> Self {
        let memo = QqMemo::attach(memo, snap, &parsed);
        // A snapshot whose scan fetched zero pages and produced no row
        // delta may reuse the previous iteration's output outright — but
        // only when the post-scan stages are deterministic (no UDF
        // anywhere) and snapshot-invariant (no current_snapshot() outside
        // WHERE; the rewrite probe differs between two sids exactly when
        // the substituted literal appears somewhere).
        let reusable = crate::memoize::memo_eligible(&parsed)
            && rewrite_select(&parsed, 0) == rewrite_select(&parsed, 1);
        let seq_only = !shape_eligible(&parsed);
        DeltaQqStream {
            parsed,
            memo,
            runner: DeltaSelectRunner::new(),
            policy,
            reusable,
            seq_only,
            current: None,
        }
    }

    /// This snapshot's Qq output (valid after [`advance`](Self::advance)).
    pub(crate) fn current(&self) -> &QueryResult {
        self.current.as_ref().expect("advance() before current()")
    }

    /// Evaluate Qq at `sid` through the delta-aware scan, consuming the
    /// chain delta carried by `reader`. Returns whether the memo served
    /// the result.
    pub(crate) fn advance(
        &mut self,
        snap: &Database,
        reader: &SnapshotReader,
        sid: u64,
    ) -> Result<bool> {
        snap.cancel_token().check()?;
        let rewritten = rewrite_select(&self.parsed, sid);
        let cached = self
            .memo
            .as_ref()
            .and_then(|m| m.lookup_result(reader, &self.parsed, sid));
        let memo_hit = cached.is_some();
        if memo_hit {
            rql_trace::instant_arg(rql_trace::SpanId::MemoHit, sid);
        } else if self.memo.is_some() {
            rql_trace::instant_arg(rql_trace::SpanId::MemoMiss, sid);
        }
        let result = match cached {
            Some(r) => {
                // Keep the chain delta across the skipped execution: the
                // memoized seed is the scanner state as of `sid`, so the
                // next iteration's changed-set (relative to `sid`) still
                // applies. No seed → invalidate and let it rebuild.
                match self
                    .memo
                    .as_ref()
                    .and_then(|m| m.lookup_seed(reader, &self.parsed, sid))
                {
                    Some(seed) => self.runner.import_seed(seed),
                    None => self.runner.invalidate(),
                }
                r
            }
            None => match if self.seq_only {
                None
            } else {
                snap.delta_scan(reader, &rewritten, &mut self.runner)?
            } {
                Some((scan, mut stats)) => {
                    rql_trace::instant_arg(rql_trace::SpanId::DeltaPath, sid);
                    let skip = scan.snapshot_skip();
                    if skip == Some(SkipReason::Pruned) {
                        // The store-level counter feeds METRICS; the local
                        // snapshot was taken inside delta_scan, before this
                        // decision, so the iteration's stats need the bump
                        // too or the report under-counts.
                        snap.io_stats().count_snapshot_pruned();
                        stats.io.snapshots_pruned += 1;
                        rql_trace::instant_arg(rql_trace::SpanId::SnapshotPruned, sid);
                    }
                    let r = match &self.current {
                        Some(prev) if self.reusable && skip.is_some() => {
                            // Zero heap fetches and an empty row delta:
                            // the filtered base rows are byte-identical to
                            // the previous iteration's, so its output is
                            // this iteration's output — skip the post-scan
                            // stages entirely.
                            stats.rows = prev.rows.len() as u64;
                            QueryResult {
                                columns: prev.columns.clone(),
                                rows: prev.rows.clone(),
                                stats,
                                plan: vec![format!(
                                    "{}: delta seq scan (output reused)",
                                    rewritten.from[0].name
                                )],
                            }
                        }
                        _ => {
                            let fin = snap.delta_finish(reader, &rewritten, scan.rows)?;
                            stats.eval += fin.stats.eval;
                            stats.io.accumulate(&fin.stats.io);
                            stats.rows = fin.stats.rows;
                            QueryResult { stats, ..fin }
                        }
                    };
                    if let Some(m) = &self.memo {
                        m.record_result(reader, &self.parsed, sid, &r);
                        if let Some(seed) = self.runner.export_seed() {
                            m.record_seed(reader, &self.parsed, sid, seed);
                        }
                    }
                    r
                }
                None => {
                    if self.policy == DeltaPolicy::Forced {
                        return Err(forced_runtime_error(sid));
                    }
                    rql_trace::instant_arg(rql_trace::SpanId::SeqPath, sid);
                    let outcome = snap.execute_stmt(&Stmt::Select(rewritten))?;
                    let r = outcome.rows().expect("SELECT yields rows");
                    if let Some(m) = &self.memo {
                        m.record_result(reader, &self.parsed, sid, &r);
                    }
                    r
                }
            },
        };
        self.current = Some(result);
        Ok(memo_hit)
    }
}

// ======================================================================
// CollateData
// ======================================================================

/// Delta-driven `CollateData(Qs, Qq, T)`: identical folding to
/// [`mechanism::collate_data`], but Qq runs through the delta-aware scan
/// when `policy` and the Qq shape allow it.
pub fn collate_data_delta(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    policy: DeltaPolicy,
) -> Result<RqlReport> {
    collate_data_delta_with_memo(snap, aux, qs, qq, table, policy, None)
}

/// [`collate_data_delta`] with an optional memo store attached. A memo
/// hit at snapshot `i` skips both the page reads *and* the chain break:
/// the runner is re-primed from the memoized scanner seed, so snapshot
/// `i+1` still scans only its changed pages.
pub(crate) fn collate_data_delta_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    policy: DeltaPolicy,
    memo: MemoHandle,
) -> Result<RqlReport> {
    if policy == DeltaPolicy::Off {
        return mechanism::collate_data_with_memo(snap, aux, qs, qq, table, memo);
    }
    if aux.table_row_count(table).is_ok() {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists (CollateData creates it)"
        )));
    }
    let parsed = parse_qq(qq)?;
    if !shape_eligible(&parsed) {
        return match policy {
            DeltaPolicy::Forced => Err(forced_shape_error()),
            _ => mechanism::collate_data_with_memo(snap, aux, qs, qq, table, memo),
        };
    }
    let (ids, qs_time) = mechanism::snapshot_set(aux, qs)?;
    let readers = snap.store().open_snapshot_chain(&ids)?;
    let mut stream = DeltaQqStream::new(snap, parsed, policy, memo);
    let mut report = RqlReport {
        qs_time,
        ..Default::default()
    };
    let mut exists = false;
    for (&sid, reader) in ids.iter().zip(readers.iter()) {
        let _qq_span = rql_trace::span_arg(rql_trace::SpanId::QqIteration, sid);
        let iter_started = Instant::now();
        let memo_hit = stream.advance(snap, reader, sid)?;
        let result = stream.current();
        let udf_started = Instant::now();
        if !exists {
            mechanism::create_result_table_pub(aux, table, &result.columns)?;
            exists = true;
        }
        let (inserts, updates) = aux.with_table_writer(table, |w| {
            for row in &result.rows {
                w.insert(row.clone())?;
            }
            Ok((w.inserted(), w.updated()))
        })?;
        report.iterations.push(IterationReport {
            snap_id: sid,
            qq_stats: result.stats,
            udf_time: udf_started.elapsed(),
            qq_rows: result.rows.len() as u64,
            result_inserts: inserts,
            result_updates: updates,
            memo_hit,
            wall: iter_started.elapsed(),
        });
    }
    Ok(report)
}

// ======================================================================
// AggregateDataInVariable — incremental inner aggregate
// ======================================================================

/// The recognized incremental shape: `SELECT <agg>(<arg>|*) FROM t
/// [WHERE …]` with no DISTINCT/GROUP BY/HAVING/ORDER BY/LIMIT and an
/// iteration-invariant argument.
struct InnerSpec {
    op: AggOp,
    /// `None` = `COUNT(*)`.
    arg: Option<Expr>,
}

fn inner_agg_shape(select: &SelectStmt) -> Option<InnerSpec> {
    if select.distinct
        || !select.group_by.is_empty()
        || select.having.is_some()
        || !select.order_by.is_empty()
        || select.limit.is_some()
        || select.items.len() != 1
    {
        return None;
    }
    let SelectItem::Expr {
        expr: Expr::Function {
            name,
            args,
            distinct,
        },
        ..
    } = &select.items[0]
    else {
        return None;
    };
    if *distinct {
        return None;
    }
    let op = AggOp::parse(name).ok()?;
    match args.as_slice() {
        [Expr::Star] => (op == AggOp::Count).then_some(InnerSpec { op, arg: None }),
        [e] => {
            if e.contains_aggregate() || uses_current_snapshot(e) {
                return None;
            }
            Some(InnerSpec {
                op,
                arg: Some(e.clone()),
            })
        }
        _ => None,
    }
}

/// Upper bound on |sum| such that every scan-order partial sum of an
/// all-integer input is exactly representable in `f64`.
const MAX_EXACT_F64: i128 = 1 << 53;

/// Running inner-aggregate value with its exactness bookkeeping.
enum InnerAcc {
    Count { n: i64 },
    SumInt { sum: i128, abs: i128, nonnull: i64 },
    AvgInt { sum: i128, abs: i128, count: i64 },
    MinMax { max: bool, best: Option<Value> },
}

impl InnerAcc {
    fn new(op: AggOp) -> InnerAcc {
        match op {
            AggOp::Count => InnerAcc::Count { n: 0 },
            AggOp::Sum => InnerAcc::SumInt {
                sum: 0,
                abs: 0,
                nonnull: 0,
            },
            AggOp::Avg => InnerAcc::AvgInt {
                sum: 0,
                abs: 0,
                count: 0,
            },
            AggOp::Min => InnerAcc::MinMax {
                max: false,
                best: None,
            },
            AggOp::Max => InnerAcc::MinMax {
                max: true,
                best: None,
            },
        }
    }

    /// Fold one value in scan order (strict first-wins for MIN/MAX —
    /// exactly [`AggAcc::update`]'s rule). Returns `false` when the value
    /// is not incrementally representable (degrade to pipeline mode).
    ///
    /// [`AggAcc::update`]: rql_sqlengine::exec
    fn fold(&mut self, v: Option<Value>) -> bool {
        match self {
            InnerAcc::Count { n } => {
                if v.as_ref().is_none_or(|v| !v.is_null()) {
                    *n += 1;
                }
                true
            }
            InnerAcc::SumInt { sum, abs, nonnull } => match v {
                Some(Value::Null) => true,
                Some(Value::Integer(i)) => {
                    *sum += i128::from(i);
                    *abs += i128::from(i).abs();
                    *nonnull += 1;
                    true
                }
                _ => false,
            },
            InnerAcc::AvgInt { sum, abs, count } => match v {
                Some(Value::Null) => true,
                Some(Value::Integer(i)) => {
                    *sum += i128::from(i);
                    *abs += i128::from(i).abs();
                    *count += 1;
                    true
                }
                _ => false,
            },
            InnerAcc::MinMax { max, best } => {
                let Some(v) = v else { return false };
                if !v.is_null() {
                    let better = best.as_ref().is_none_or(|b| {
                        let ord = v.total_cmp(b);
                        ord != Ordering::Equal && (ord == Ordering::Greater) == *max
                    });
                    if better {
                        *best = Some(v);
                    }
                }
                true
            }
        }
    }

    /// Subtract one removed value. MIN/MAX removals are handled by the
    /// caller's re-fold, never here.
    fn unfold(&mut self, v: Option<Value>) -> bool {
        match self {
            InnerAcc::Count { n } => {
                if v.as_ref().is_none_or(|v| !v.is_null()) {
                    *n -= 1;
                }
                true
            }
            InnerAcc::SumInt { sum, abs, nonnull } => match v {
                Some(Value::Null) => true,
                Some(Value::Integer(i)) => {
                    *sum -= i128::from(i);
                    *abs -= i128::from(i).abs();
                    *nonnull -= 1;
                    true
                }
                _ => false,
            },
            InnerAcc::AvgInt { sum, abs, count } => match v {
                Some(Value::Null) => true,
                Some(Value::Integer(i)) => {
                    *sum -= i128::from(i);
                    *abs -= i128::from(i).abs();
                    *count -= 1;
                    true
                }
                _ => false,
            },
            InnerAcc::MinMax { .. } => false,
        }
    }

    /// Whether the exactness guard still holds after the latest folds.
    fn guard_ok(&self) -> bool {
        match self {
            InnerAcc::SumInt { abs, .. } => *abs <= i128::from(i64::MAX),
            InnerAcc::AvgInt { abs, .. } => *abs <= MAX_EXACT_F64,
            _ => true,
        }
    }

    /// The aggregate value, matching the engine's `AggAcc::finish`.
    fn finish(&self) -> Value {
        match self {
            InnerAcc::Count { n } => Value::Integer(*n),
            InnerAcc::SumInt { sum, nonnull, .. } => {
                if *nonnull == 0 {
                    Value::Null
                } else {
                    Value::Integer(*sum as i64)
                }
            }
            InnerAcc::AvgInt { sum, count, .. } => {
                if *count == 0 {
                    Value::Null
                } else {
                    Value::Real(*sum as f64 / *count as f64)
                }
            }
            InnerAcc::MinMax { best, .. } => best.clone().unwrap_or(Value::Null),
        }
    }
}

fn arg_value(arg: &Option<CExpr>, row: &Row) -> Result<Option<Value>> {
    match arg {
        None => Ok(None),
        Some(c) => eval(c, row, &[]).map(Some),
    }
}

/// Outcome of folding one iteration's delta into the running aggregate.
enum Applied {
    /// The iteration's Qq value, bit-identical to a fresh evaluation.
    Value(Value),
    /// Exactness lost — the caller must recompute via the pipeline and
    /// stay there.
    Degrade,
}

/// Incremental inner-aggregate state: the compiled argument plus the
/// running accumulator.
struct InnerAgg {
    /// `None` = `COUNT(*)`.
    arg: Option<CExpr>,
    acc: InnerAcc,
}

impl InnerAgg {
    /// Compile the argument against the snapshot's catalog and fold the
    /// full row set (a rebuilt scan). `Ok(None)` = shape or values not
    /// incrementally representable; use pipeline mode.
    fn seed(
        spec: &InnerSpec,
        select: &SelectStmt,
        catalog: &Catalog,
        rows: &[Row],
    ) -> Result<Option<InnerAgg>> {
        let arg = match &spec.arg {
            None => None,
            Some(e) => {
                let Ok(info) = catalog.require_table(&select.from[0].name) else {
                    return Ok(None);
                };
                let alias = select.from[0].binding().to_ascii_lowercase();
                let mut scope = Scope::empty();
                scope.push(
                    &alias,
                    info.schema.columns.iter().map(|c| c.name.clone()).collect(),
                );
                // An empty registry rejects UDF calls at compile time —
                // a UDF argument is never folded incrementally.
                match compile(e, &scope, &UdfRegistry::new(), None) {
                    Ok(c) => Some(c),
                    Err(_) => return Ok(None),
                }
            }
        };
        let mut agg = InnerAgg {
            arg,
            acc: InnerAcc::new(spec.op),
        };
        for row in rows {
            let v = arg_value(&agg.arg, row)?;
            if !agg.acc.fold(v) {
                return Ok(None);
            }
        }
        if !agg.acc.guard_ok() {
            return Ok(None);
        }
        Ok(Some(agg))
    }

    /// Fold one non-rebuilt scan's delta and return the iteration value.
    fn apply(&mut self, scan: &DeltaScan) -> Result<Applied> {
        let arg = &self.arg;
        if let InnerAcc::MinMax { max, best } = &mut self.acc {
            let max = *max;
            let mut refold = false;
            for row in &scan.removed {
                let Some(v) = arg_value(arg, row)? else {
                    refold = true;
                    break;
                };
                if v.is_null() {
                    continue;
                }
                // Safe only when the removed value is strictly worse than
                // the running best; anything else could displace it or
                // tie its representative.
                let strictly_worse = best.as_ref().is_some_and(|b| {
                    let ord = v.total_cmp(b);
                    if max {
                        ord == Ordering::Less
                    } else {
                        ord == Ordering::Greater
                    }
                });
                if !strictly_worse {
                    refold = true;
                    break;
                }
            }
            if !refold {
                for row in &scan.added {
                    let Some(v) = arg_value(arg, row)? else {
                        refold = true;
                        break;
                    };
                    if v.is_null() {
                        continue;
                    }
                    match best.as_ref() {
                        None => *best = Some(v),
                        Some(b) => match v.total_cmp(b) {
                            // A tie-in-value may precede the running best
                            // in scan order with a different
                            // representation; the sequential fold keeps
                            // the first, so re-derive it.
                            Ordering::Equal => {
                                refold = true;
                                break;
                            }
                            ord => {
                                if (ord == Ordering::Greater) == max {
                                    *best = Some(v);
                                }
                            }
                        },
                    }
                }
            }
            if refold {
                *best = None;
                for row in &scan.rows {
                    let Some(v) = arg_value(arg, row)? else {
                        return Ok(Applied::Degrade);
                    };
                    if v.is_null() {
                        continue;
                    }
                    let better = best.as_ref().is_none_or(|b| {
                        let ord = v.total_cmp(b);
                        ord != Ordering::Equal && (ord == Ordering::Greater) == max
                    });
                    if better {
                        *best = Some(v);
                    }
                }
            }
            return Ok(Applied::Value(self.acc.finish()));
        }
        for row in &scan.added {
            let v = arg_value(arg, row)?;
            if !self.acc.fold(v) {
                return Ok(Applied::Degrade);
            }
        }
        for row in &scan.removed {
            let v = arg_value(arg, row)?;
            if !self.acc.unfold(v) {
                return Ok(Applied::Degrade);
            }
        }
        if !self.acc.guard_ok() {
            return Ok(Applied::Degrade);
        }
        Ok(Applied::Value(self.acc.finish()))
    }
}

/// Extract the single value of an AggregateDataInVariable Qq result —
/// mirrors the sequential mechanism's contract.
fn single_value(result: &QueryResult) -> Result<Option<Value>> {
    if result.columns.len() != 1 {
        return Err(SqlError::Invalid(format!(
            "AggregateDataInVariable expects Qq to return one column, got {}",
            result.columns.len()
        )));
    }
    match result.rows.len() {
        0 => Ok(None),
        1 => Ok(Some(result.rows[0][0].clone())),
        n => Err(SqlError::Invalid(format!(
            "AggregateDataInVariable expects Qq to return at most one row, got {n}"
        ))),
    }
}

/// Delta-driven `AggregateDataInVariable(Qs, Qq, T, AggFunc)`.
///
/// When Qq is a bare inner aggregate the per-iteration work after the
/// first snapshot is O(changed rows); otherwise the pipeline mode still
/// saves the page reads of unchanged heap pages.
pub fn aggregate_data_in_variable_delta(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    func: AggOp,
    policy: DeltaPolicy,
) -> Result<RqlReport> {
    aggregate_data_in_variable_delta_with_memo(snap, aux, qs, qq, table, func, policy, None)
}

/// [`aggregate_data_in_variable_delta`] with an optional memo store. A
/// memo hit yields the iteration's Qq value directly; the runner is
/// re-primed from the memoized seed (keeping the chain delta) and the
/// running inner aggregate — stale after the skip — re-seeds from the
/// next live scan's row set.
#[allow(clippy::too_many_arguments)]
pub(crate) fn aggregate_data_in_variable_delta_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    func: AggOp,
    policy: DeltaPolicy,
    memo: MemoHandle,
) -> Result<RqlReport> {
    if policy == DeltaPolicy::Off {
        return mechanism::aggregate_data_in_variable_with_memo(
            snap, aux, qs, qq, table, func, memo,
        );
    }
    if aux.table_row_count(table).is_ok() {
        return Err(table_exists_error(table));
    }
    let parsed = parse_qq(qq)?;
    if !shape_eligible(&parsed) {
        return match policy {
            DeltaPolicy::Forced => Err(forced_shape_error()),
            _ => mechanism::aggregate_data_in_variable_with_memo(
                snap, aux, qs, qq, table, func, memo,
            ),
        };
    }
    let memo = QqMemo::attach(memo, snap, &parsed);
    let (ids, qs_time) = mechanism::snapshot_set(aux, qs)?;
    let readers = snap.store().open_snapshot_chain(&ids)?;
    let mut runner = DeltaSelectRunner::new();
    let inner_spec = inner_agg_shape(&parsed);
    let mut inner: Option<InnerAgg> = None;
    let mut degraded = inner_spec.is_none();
    let mut state = func.init();
    let mut column: Option<String> = None;
    let mut report = RqlReport {
        qs_time,
        ..Default::default()
    };
    for (&sid, reader) in ids.iter().zip(readers.iter()) {
        let _qq_span = rql_trace::span_arg(rql_trace::SpanId::QqIteration, sid);
        let iter_started = Instant::now();
        snap.cancel_token().check()?;
        let rewritten = rewrite_select(&parsed, sid);
        if let Some(result) = memo
            .as_ref()
            .and_then(|m| m.lookup_result(reader, &parsed, sid))
        {
            rql_trace::instant_arg(rql_trace::SpanId::MemoHit, sid);
            // Memo hit: chain continuity as in CollateData — re-prime the
            // runner from the memoized seed. The running inner aggregate
            // cannot absorb a skipped iteration, so it goes stale and
            // re-seeds from the next live scan's row set.
            match memo
                .as_ref()
                .and_then(|m| m.lookup_seed(reader, &parsed, sid))
            {
                Some(seed) => runner.import_seed(seed),
                None => runner.invalidate(),
            }
            inner = None;
            if column.is_none() {
                column = Some(result.columns.first().cloned().unwrap_or_default());
            }
            let v = single_value(&result)?;
            let udf_started = Instant::now();
            if let Some(v) = &v {
                func.absorb(&mut state, v);
            }
            report.iterations.push(IterationReport {
                snap_id: sid,
                qq_stats: result.stats,
                udf_time: udf_started.elapsed(),
                qq_rows: result.rows.len() as u64,
                result_inserts: 0,
                result_updates: 0,
                memo_hit: true,
                wall: iter_started.elapsed(),
            });
            continue;
        }
        if memo.is_some() {
            rql_trace::instant_arg(rql_trace::SpanId::MemoMiss, sid);
        }
        let (value, qq_stats, qq_rows) = match snap.delta_scan(reader, &rewritten, &mut runner)? {
            None => {
                if policy == DeltaPolicy::Forced {
                    return Err(forced_runtime_error(sid));
                }
                // Ordinary plan; the runner has self-invalidated, so the
                // next successful scan rebuilds and re-seeds.
                rql_trace::instant_arg(rql_trace::SpanId::SeqPath, sid);
                inner = None;
                let outcome = snap.execute_stmt(&Stmt::Select(rewritten))?;
                let result = outcome.rows().expect("SELECT yields rows");
                if let Some(m) = &memo {
                    m.record_result(reader, &parsed, sid, &result);
                }
                if column.is_none() {
                    column = Some(result.columns.first().cloned().unwrap_or_default());
                }
                let v = single_value(&result)?;
                (v, result.stats, result.rows.len() as u64)
            }
            Some((scan, mut stats)) => {
                rql_trace::instant_arg(rql_trace::SpanId::DeltaPath, sid);
                if scan.snapshot_skip() == Some(SkipReason::Pruned) {
                    snap.io_stats().count_snapshot_pruned();
                    stats.io.snapshots_pruned += 1;
                    rql_trace::instant_arg(rql_trace::SpanId::SnapshotPruned, sid);
                }
                let incremental = !degraded && !scan.rebuilt && inner.is_some();
                let mut applied = None;
                if incremental {
                    match inner.as_mut().expect("checked").apply(&scan)? {
                        Applied::Value(v) => applied = Some(v),
                        Applied::Degrade => {
                            degraded = true;
                            inner = None;
                        }
                    }
                }
                match applied {
                    Some(v) => {
                        stats.rows = 1;
                        if let Some(m) = &memo {
                            // The value a fresh execution would return is
                            // exactly this one row; memoize it in that
                            // shape so hits feed `single_value` unchanged.
                            let col = column.clone().unwrap_or_else(|| "value".to_owned());
                            m.record_result(
                                reader,
                                &parsed,
                                sid,
                                &QueryResult {
                                    columns: vec![col],
                                    rows: vec![vec![v.clone()]],
                                    stats: ExecStats::default(),
                                    plan: Vec::new(),
                                },
                            );
                            if let Some(seed) = runner.export_seed() {
                                m.record_seed(reader, &parsed, sid, seed);
                            }
                        }
                        (Some(v), stats, 1)
                    }
                    None => {
                        // Pipeline: same post-scan stages as the ordinary
                        // plan over the cached base rows.
                        let result = snap.delta_finish(reader, &rewritten, scan.rows.clone())?;
                        stats.eval += result.stats.eval;
                        stats.io.accumulate(&result.stats.io);
                        stats.rows = result.stats.rows;
                        if column.is_none() {
                            column = Some(result.columns.first().cloned().unwrap_or_default());
                        }
                        if !degraded {
                            let catalog = Catalog::load(reader)?;
                            match InnerAgg::seed(
                                inner_spec.as_ref().expect("degraded is false"),
                                &parsed,
                                &catalog,
                                &scan.rows,
                            )? {
                                Some(agg) => inner = Some(agg),
                                None => {
                                    degraded = true;
                                    inner = None;
                                }
                            }
                        }
                        if let Some(m) = &memo {
                            m.record_result(reader, &parsed, sid, &result);
                            if let Some(seed) = runner.export_seed() {
                                m.record_seed(reader, &parsed, sid, seed);
                            }
                        }
                        let v = single_value(&result)?;
                        (v, stats, result.rows.len() as u64)
                    }
                }
            }
        };
        let udf_started = Instant::now();
        if let Some(v) = &value {
            func.absorb(&mut state, v);
        }
        report.iterations.push(IterationReport {
            snap_id: sid,
            qq_stats,
            udf_time: udf_started.elapsed(),
            qq_rows,
            result_inserts: 0,
            result_updates: 0,
            memo_hit: false,
            wall: iter_started.elapsed(),
        });
    }
    let _fin_span = rql_trace::span(rql_trace::SpanId::Finalize);
    let finalize_started = Instant::now();
    let column = column.unwrap_or_else(|| "value".to_owned());
    mechanism::create_result_table_pub(aux, table, &[column])?;
    aux.with_table_writer(table, |w| {
        w.insert(vec![func.finish(&state)])?;
        Ok(())
    })?;
    report.finalize_time = finalize_started.elapsed();
    Ok(report)
}

// ======================================================================
// AggregateDataInTable — write-skipping in-table fold
// ======================================================================

/// Grouping key under result-table probe equivalence: two keys are equal
/// iff [`TableWriter::probe`](rql_sqlengine::TableWriter) would land
/// them on the same result row (`total_cmp == Equal`, so `2` ≡ `2.0`
/// and NULL ≡ NULL).
#[derive(Clone)]
pub(crate) struct GroupKey(pub(crate) Vec<Value>);

impl GroupKey {
    fn of(layout: &mechanism::AggTableLayout, record: &Row) -> GroupKey {
        GroupKey(
            layout
                .group_positions
                .iter()
                .map(|&p| record[p].clone())
                .collect(),
        )
    }
}

impl PartialEq for GroupKey {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for GroupKey {}
impl PartialOrd for GroupKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GroupKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0
            .iter()
            .zip(other.0.iter())
            .map(|(a, b)| a.total_cmp(b))
            .find(|o| *o != Ordering::Equal)
            .unwrap_or_else(|| self.0.len().cmp(&other.0.len()))
    }
}

struct GroupState {
    /// The group's record sublist, in Qq output order.
    records: Vec<Row>,
    /// Whether this group's last fold pass provably wrote nothing.
    noop: bool,
    /// Whether this pass's fold wrote (insert or update).
    wrote: bool,
}

/// One fold pass's outcome — writer counters plus the row-level effects
/// the standing-query maintainer turns into push frames.
pub(crate) struct FoldReport {
    pub(crate) inserts: u64,
    pub(crate) updates: u64,
    /// Groups skipped without even a probe (stable records, proven
    /// write-free by the previous pass).
    pub(crate) groups_skipped: u64,
    /// Row-level effects, populated only when requested.
    pub(crate) effects: Vec<mechanism::FoldEffect>,
}

/// Incremental `AggregateDataInTable` fold state, persistent across
/// iterations (and, for standing queries, across commits).
///
/// Byte-identity argument: the result table's bytes depend only on the
/// *write* sequence against it (probes are read-only, and
/// `heap.update` = delete+insert relocates on every write). A group
/// whose record sublist is unchanged since the previous pass AND whose
/// previous pass wrote nothing would fold to the same no-op again — the
/// fold is deterministic in (stored row, records), and no other group's
/// writes touch its stored row. Skipping exactly those groups therefore
/// preserves the sequential mechanism's write sequence byte-for-byte
/// while eliminating the probes for the stable majority (MAX groups in
/// Figure 13's hot iterations). Everything else replays
/// [`AggTableLayout::fold`](mechanism::AggTableLayout) per record in Qq
/// output order, exactly like the sequential loop.
pub(crate) struct AggTableFold {
    table: String,
    pairs: Vec<(String, AggOp)>,
    layout: Option<mechanism::AggTableLayout>,
    /// Next pass blind-inserts (the table was just created; the paper's
    /// first iteration over a fresh table skips the probes).
    blind_next: bool,
    prev: std::collections::BTreeMap<GroupKey, GroupState>,
}

impl AggTableFold {
    pub(crate) fn new(table: &str, pairs: &[(String, AggOp)]) -> Self {
        AggTableFold {
            table: table.to_string(),
            pairs: pairs.to_vec(),
            layout: None,
            blind_next: false,
            prev: std::collections::BTreeMap::new(),
        }
    }

    /// Fold one iteration's Qq output into the result table, creating
    /// table + grouping index on first use (same DDL as the sequential
    /// step form).
    pub(crate) fn apply(
        &mut self,
        aux: &Database,
        result: &QueryResult,
        collect_effects: bool,
    ) -> Result<FoldReport> {
        if self.layout.is_none() {
            let l = mechanism::agg_table_layout(&result.columns, &self.pairs)?;
            if !mechanism::table_exists(aux, &self.table) {
                mechanism::create_result_table_pub(aux, &self.table, &l.table_columns)?;
                // Paper §3: "we also create an index on Result using as
                // key the values in non-aggregating columns".
                let group_cols: Vec<String> = l
                    .group_positions
                    .iter()
                    .map(|&p| format!("\"{}\"", result.columns[p].to_ascii_lowercase()))
                    .collect();
                aux.execute(&format!(
                    "CREATE INDEX __rql_idx_{} ON {} ({})",
                    self.table.to_ascii_lowercase(),
                    self.table,
                    group_cols.join(", ")
                ))?;
                self.blind_next = true;
            }
            self.layout = Some(l);
        }
        let layout = self.layout.as_ref().expect("layout initialized");
        let blind = self.blind_next;
        self.blind_next = false;

        // Group this iteration's records under probe equivalence.
        let mut cur: std::collections::BTreeMap<GroupKey, GroupState> =
            std::collections::BTreeMap::new();
        for record in &result.rows {
            cur.entry(GroupKey::of(layout, record))
                .or_insert_with(|| GroupState {
                    records: Vec::new(),
                    noop: false,
                    wrote: false,
                })
                .records
                .push(record.clone());
        }
        // Decide skips against the previous pass.
        let mut groups_skipped = 0u64;
        if !blind {
            for (key, state) in cur.iter_mut() {
                if let Some(prev) = self.prev.get(key) {
                    if prev.noop && prev.records == state.records {
                        state.noop = true;
                        groups_skipped += 1;
                    }
                }
            }
        }

        let mut effects = Vec::new();
        let (inserts, updates) = aux.with_table_writer(&self.table, |w| {
            if blind {
                // First pass over a fresh table inserts blindly (the Qq
                // output is unique on the grouping columns).
                for record in &result.rows {
                    let fresh = layout.fresh_row(record);
                    if collect_effects {
                        effects.push(mechanism::FoldEffect::Inserted(fresh.clone()));
                    }
                    w.insert(fresh)?;
                }
            } else {
                for record in &result.rows {
                    let key = GroupKey::of(layout, record);
                    let state = cur.get_mut(&key).expect("record grouped above");
                    if state.noop {
                        continue;
                    }
                    match layout.fold(w, record)? {
                        mechanism::FoldEffect::Unchanged => {}
                        effect => {
                            state.wrote = true;
                            if collect_effects {
                                effects.push(effect);
                            }
                        }
                    }
                }
            }
            Ok((w.inserted(), w.updated()))
        })?;

        for state in cur.values_mut() {
            if blind {
                state.noop = false;
            } else if !state.noop {
                state.noop = !state.wrote;
            }
            state.wrote = false;
        }
        self.prev = cur;
        Ok(FoldReport {
            inserts,
            updates,
            groups_skipped,
            effects,
        })
    }
}

/// Delta-driven `AggregateDataInTable(Qs, Qq, T, pairs)`: identical
/// result-table bytes to [`mechanism::aggregate_data_in_table`], but Qq
/// runs through the delta-aware scan and the in-table fold skips probes
/// for groups proven write-free by the previous iteration.
pub fn aggregate_data_in_table_delta(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    pairs: &[(String, AggOp)],
    policy: DeltaPolicy,
) -> Result<RqlReport> {
    aggregate_data_in_table_delta_with_memo(snap, aux, qs, qq, table, pairs, policy, None)
}

/// [`aggregate_data_in_table_delta`] with an optional memo store.
#[allow(clippy::too_many_arguments)]
pub(crate) fn aggregate_data_in_table_delta_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    pairs: &[(String, AggOp)],
    policy: DeltaPolicy,
    memo: MemoHandle,
) -> Result<RqlReport> {
    if policy == DeltaPolicy::Off {
        return mechanism::aggregate_data_in_table_with_memo(snap, aux, qs, qq, table, pairs, memo);
    }
    if mechanism::table_exists(aux, table) {
        return Err(table_exists_error(table));
    }
    let parsed = parse_qq(qq)?;
    if !shape_eligible(&parsed) {
        return match policy {
            DeltaPolicy::Forced => Err(forced_shape_error()),
            _ => {
                mechanism::aggregate_data_in_table_with_memo(snap, aux, qs, qq, table, pairs, memo)
            }
        };
    }
    let (ids, qs_time) = mechanism::snapshot_set(aux, qs)?;
    let readers = snap.store().open_snapshot_chain(&ids)?;
    let mut stream = DeltaQqStream::new(snap, parsed, policy, memo);
    let mut fold = AggTableFold::new(table, pairs);
    let mut report = RqlReport {
        qs_time,
        ..Default::default()
    };
    for (&sid, reader) in ids.iter().zip(readers.iter()) {
        let _qq_span = rql_trace::span_arg(rql_trace::SpanId::QqIteration, sid);
        let iter_started = Instant::now();
        let memo_hit = stream.advance(snap, reader, sid)?;
        let result = stream.current();
        let udf_started = Instant::now();
        let folded = fold.apply(aux, result, false)?;
        report.iterations.push(IterationReport {
            snap_id: sid,
            qq_stats: result.stats,
            udf_time: udf_started.elapsed(),
            qq_rows: result.rows.len() as u64,
            result_inserts: folded.inserts,
            result_updates: folded.updates,
            memo_hit,
            wall: iter_started.elapsed(),
        });
    }
    Ok(report)
}

/// `CollateDataIntoIntervals` has no delta path yet (lifetime extension
/// probes the result table per record); `Auto`/`Off` run the sequential
/// mechanism, `Forced` errors.
pub fn collate_data_into_intervals_delta(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    policy: DeltaPolicy,
) -> Result<RqlReport> {
    collate_data_into_intervals_delta_with_memo(snap, aux, qs, qq, table, policy, None)
}

/// [`collate_data_into_intervals_delta`] with an optional memo store.
pub(crate) fn collate_data_into_intervals_delta_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    policy: DeltaPolicy,
    memo: MemoHandle,
) -> Result<RqlReport> {
    if policy == DeltaPolicy::Forced {
        return Err(SqlError::Invalid(
            "DeltaPolicy::Forced is not supported for CollateDataIntoIntervals \
             (no delta path yet; see ROADMAP open items)"
                .into(),
        ));
    }
    mechanism::collate_data_into_intervals_with_memo(snap, aux, qs, qq, table, memo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parsed(sql: &str) -> SelectStmt {
        parse_select(sql).unwrap()
    }

    #[test]
    fn inner_shape_detection() {
        assert!(inner_agg_shape(&parsed("SELECT SUM(v) FROM t")).is_some());
        assert!(inner_agg_shape(&parsed("SELECT COUNT(*) FROM t WHERE v > 3")).is_some());
        assert!(inner_agg_shape(&parsed("SELECT MIN(v + 1) FROM t")).is_some());
        // Wrapped, multi-item, grouped, distinct, or snapshot-dependent
        // shapes fold via the pipeline instead.
        assert!(inner_agg_shape(&parsed("SELECT SUM(v) + 1 FROM t")).is_none());
        assert!(inner_agg_shape(&parsed("SELECT SUM(v), COUNT(*) FROM t")).is_none());
        assert!(inner_agg_shape(&parsed("SELECT SUM(v) FROM t GROUP BY g")).is_none());
        assert!(inner_agg_shape(&parsed("SELECT COUNT(DISTINCT v) FROM t")).is_none());
        assert!(inner_agg_shape(&parsed("SELECT SUM(v) FROM t LIMIT 1")).is_none());
        assert!(inner_agg_shape(&parsed("SELECT SUM(current_snapshot()) FROM t")).is_none());
        assert!(inner_agg_shape(&parsed("SELECT v FROM t")).is_none());
    }

    #[test]
    fn shape_eligibility_rules() {
        assert!(shape_eligible(&parsed("SELECT v FROM t")));
        assert!(shape_eligible(&parsed(
            "SELECT current_snapshot(), v FROM t WHERE v > 0"
        )));
        assert!(!shape_eligible(&parsed("SELECT a FROM t, u")));
        assert!(!shape_eligible(&parsed(
            "SELECT v FROM t WHERE v = current_snapshot()"
        )));
    }

    #[test]
    fn sum_folds_and_degrades() {
        let mut acc = InnerAcc::new(AggOp::Sum);
        assert!(acc.fold(Some(Value::Integer(5))));
        assert!(acc.fold(Some(Value::Null)));
        assert!(acc.fold(Some(Value::Integer(-2))));
        assert_eq!(acc.finish(), Value::Integer(3));
        assert!(acc.unfold(Some(Value::Integer(5))));
        assert_eq!(acc.finish(), Value::Integer(-2));
        // A Real input is order-dependent under f64 addition → degrade.
        assert!(!acc.fold(Some(Value::Real(1.5))));
        // Empty sum is NULL, like the engine's aggregate.
        let mut empty = InnerAcc::new(AggOp::Sum);
        assert!(empty.fold(Some(Value::Null)));
        assert_eq!(empty.finish(), Value::Null);
    }

    #[test]
    fn sum_guard_trips_on_abs_overflow() {
        let mut acc = InnerAcc::new(AggOp::Sum);
        assert!(acc.fold(Some(Value::Integer(i64::MAX))));
        assert!(acc.guard_ok());
        // Net sum stays small, but |·|-mass exceeds i64::MAX: a sequential
        // scan-order prefix could overflow, so exactness is gone.
        assert!(acc.fold(Some(Value::Integer(i64::MIN))));
        assert!(!acc.guard_ok());
    }

    #[test]
    fn avg_guard_is_tighter() {
        let mut acc = InnerAcc::new(AggOp::Avg);
        assert!(acc.fold(Some(Value::Integer(1 << 52))));
        assert!(acc.fold(Some(Value::Integer(1 << 52))));
        // |sum| = 2^53 exactly: still representable, still exact.
        assert!(acc.guard_ok());
        assert!(acc.fold(Some(Value::Integer(1))));
        assert!(!acc.guard_ok());
        // The SUM guard would tolerate the same mass.
        let mut sum = InnerAcc::new(AggOp::Sum);
        assert!(sum.fold(Some(Value::Integer(1 << 53))));
        assert!(sum.guard_ok());
    }

    #[test]
    fn count_star_vs_count_arg() {
        let mut star = InnerAcc::new(AggOp::Count);
        assert!(star.fold(None));
        assert!(star.fold(None));
        assert_eq!(star.finish(), Value::Integer(2));
        let mut arg = InnerAcc::new(AggOp::Count);
        assert!(arg.fold(Some(Value::Null)));
        assert!(arg.fold(Some(Value::text("x"))));
        assert_eq!(arg.finish(), Value::Integer(1));
        assert!(arg.unfold(Some(Value::text("x"))));
        assert_eq!(arg.finish(), Value::Integer(0));
    }

    #[test]
    fn minmax_strict_first_wins() {
        let mut acc = InnerAcc::new(AggOp::Min);
        assert!(acc.fold(Some(Value::Integer(2))));
        // Real(2.0) ties Integer(2) under the SQL order; the strict rule
        // keeps the first-seen representation, like the engine.
        assert!(acc.fold(Some(Value::Real(2.0))));
        assert_eq!(acc.finish(), Value::Integer(2));
        assert!(acc.fold(Some(Value::Integer(1))));
        assert_eq!(acc.finish(), Value::Integer(1));
    }
}
