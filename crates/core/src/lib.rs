//! # rql
//!
//! RQL — the Retrospective Query Language of *"RQL: Retrospective
//! Computations over Snapshot Sets"* (Tsikoudis, Shrira, Cohen; EDBT
//! 2018) — reimplemented in Rust over a from-scratch Retro snapshot
//! system and SQLite-like engine.
//!
//! RQL lets a SQL programmer run computations over *sets* of past-state
//! snapshots with four mechanisms, each a composition of familiar
//! relational constructs:
//!
//! * [`mechanism::collate_data`] — `CollateData(Qs, Qq, T)`: run Qq on
//!   every snapshot in the set Qs selects, collecting all rows in `T`;
//! * [`mechanism::aggregate_data_in_variable`] —
//!   `AggregateDataInVariable(Qs, Qq, T, AggFunc)`: fold Qq's single
//!   value across snapshots;
//! * [`mechanism::aggregate_data_in_table`] —
//!   `AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)`: an
//!   across-time GROUP BY with per-column aggregate functions;
//! * [`mechanism::collate_data_into_intervals`] —
//!   `CollateDataIntoIntervals(Qs, Qq, T)`: the compact record-lifetime
//!   representation with `start_snapshot`/`end_snapshot`.
//!
//! The entry point is [`session::RqlSession`], which owns the
//! snapshotable application database and the auxiliary database holding
//! the [`snapids`] table and result tables, maintains `SnapIds` on every
//! `COMMIT WITH SNAPSHOT`, and exposes the mechanisms both as a Rust API
//! and as SQL UDFs (`SELECT CollateData(snap_id, …) FROM SnapIds`).
//!
//! # Quick start
//!
//! ```
//! use rql::{AggOp, RqlSession};
//!
//! let session = RqlSession::with_defaults().unwrap();
//! session
//!     .execute("CREATE TABLE loggedin (l_userid TEXT, l_country TEXT)")
//!     .unwrap();
//! session
//!     .execute("INSERT INTO loggedin VALUES ('UserA', 'USA'), ('UserB', 'UK')")
//!     .unwrap();
//! session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
//! session
//!     .execute("BEGIN; DELETE FROM loggedin WHERE l_userid = 'UserA'; COMMIT WITH SNAPSHOT;")
//!     .unwrap();
//!
//! // Count the snapshots in which UserA appears.
//! session
//!     .aggregate_data_in_variable(
//!         "SELECT snap_id FROM SnapIds",
//!         "SELECT DISTINCT 1 FROM loggedin WHERE l_userid = 'UserA'",
//!         "result",
//!         AggOp::Sum,
//!     )
//!     .unwrap();
//! let r = session.query_aux("SELECT * FROM result").unwrap();
//! assert_eq!(r.rows[0][0], rql::Value::Integer(1));
//! ```

#![warn(missing_docs)]

pub mod aggregate;
pub mod analyze;
pub mod delta;
pub mod maintain;
pub mod mechanism;
pub mod memoize;
pub mod parallel;
pub mod profile;
pub mod report;
pub mod rewrite;
pub mod session;
pub mod snapids;

pub use aggregate::{parse_col_func_pairs, AggOp, AggState};
pub use analyze::{
    analyze_mechanism_call, analyze_program, apply_fixes, fix_program, machine_applicable,
    parse_program, render_sarif, run_program, run_program_with_reports, Analysis, Applicability,
    Code, DeltaExplain, Diagnostic, Fix, FixOutcome, MechanismCall, MechanismKind, PredictedPath,
    Program, ProgramAnalysis, ProgramRun, SarifFile, SchemaEnv, Severity, SourceKind,
};
pub use delta::{
    aggregate_data_in_table_delta, aggregate_data_in_variable_delta, collate_data_delta,
    collate_data_into_intervals_delta, DeltaPolicy,
};
pub use maintain::{
    maintain_ineligibility, maintain_prefix, parse_maintain, MaintainSpec, MaintainStats,
    Maintainer, ResultDelta,
};
pub use mechanism::{END_SNAPSHOT_COL, START_SNAPSHOT_COL};
pub use memoize::{memo_eligible, page_version_vector, qq_fingerprint};
pub use parallel::{aggregate_data_in_variable_parallel, collate_data_parallel};
pub use profile::{MechanismProfile, QueryProfile, SnapshotCost};
pub use report::{IterationReport, RqlReport};
pub use rewrite::{
    render_select, rewrite_select, rewrite_sql, uses_current_snapshot, CURRENT_SNAPSHOT,
};
pub use session::RqlSession;
pub use snapids::{all_snapshots, snapshot_by_name, SNAPIDS_TABLE};

// Re-export the layers below for downstream users of the full system.
pub use rql_sqlengine::{
    CancelCause, CancelToken, Database, ExecOutcome, QueryResult, Result, SqlError, Value,
};
