//! Standing retrospective queries: `MAINTAIN QUERY` registration and
//! per-commit incremental maintenance.
//!
//! A standing query is a mechanism call whose result table outlives the
//! batch pass: registration runs one batch over the backlog (the
//! snapshot set Qs selects at registration time) to *seed* the result
//! table, then every snapshot committed afterwards is folded in
//! incrementally. The maintained table is byte-identical, at every
//! point, to what a fresh batch run over the same snapshot id sequence
//! would produce — the differential proptest in
//! `tests/standing_differential.rs` asserts exactly that.
//!
//! Per-commit cost is proportional to changed pages, not database size:
//! the [`Maintainer`] keeps the delta machinery alive across commits —
//! a [`DeltaQqStream`] whose scanner cache holds the previous snapshot's
//! filtered rows, plus the mechanism's fold state
//! ([`AggTableFold`](crate::delta) for `AggregateDataInTable`, the
//! running [`AggState`] for `AggregateDataInVariable`, the previous
//! snapshot id for `CollateDataIntoIntervals`). On each commit it opens
//! the two-snapshot chain `[last, new]`, so the SPT is built
//! incrementally and the scan touches only the pages that changed.
//!
//! Statement form:
//!
//! ```sql
//! MAINTAIN QUERY top_balances AS
//!   SELECT AggregateDataInTable(snap_id, 'SELECT cn, l_time FROM lineitem',
//!                               'Result', '(l_time,max)')
//!   FROM SnapIds;
//! ```
//!
//! Eligibility (enforced at registration, surfaced at PREPARE as
//! `RQL210`): the mechanism arguments must be string literals, and Qq
//! must be deterministic (no UDF calls) — a standing query's pushed
//! result deltas must be reproducible from the snapshot stream alone.

use std::sync::Arc;
use std::time::Instant;

use rql_memo::MemoStore;
use rql_sqlengine::lexer::Token;
use rql_sqlengine::{parse_select, tokenize_spanned, Database, QueryResult, Result, Row, SqlError};

use crate::aggregate::{parse_col_func_pairs, AggOp, AggState};
use crate::analyze::program::extract_call_texts;
use crate::analyze::MechanismKind;
use crate::delta::{AggTableFold, DeltaPolicy, DeltaQqStream, GroupKey};
use crate::mechanism::{self, FoldEffect};
use crate::report::RqlReport;
use crate::session::RqlSession;

/// A parsed `MAINTAIN QUERY name AS <mechanism call>` statement.
#[derive(Debug, Clone)]
pub struct MaintainSpec {
    /// The standing query's registered name.
    pub name: String,
    /// Which mechanism maintains the result table.
    pub kind: MechanismKind,
    /// The backlog Qs (evaluated once, at registration).
    pub qs: String,
    /// The per-snapshot Qq.
    pub qq: String,
    /// The maintained result table.
    pub table: String,
    /// Aggregate spec (AggVar / AggTable forms).
    pub spec: Option<String>,
    /// The inner mechanism statement as written (for `check_program`).
    pub call_text: String,
}

/// Detect the `MAINTAIN QUERY <name> AS` prefix. Returns the query name
/// and the byte offset of the inner statement within `text`.
pub fn maintain_prefix(text: &str) -> Option<(String, usize)> {
    let tokens = tokenize_spanned(text).ok()?;
    let word = |i: usize| -> Option<&str> {
        match &tokens.get(i)?.token {
            Token::Word(w) => Some(w.as_str()),
            _ => None,
        }
    };
    if !word(0)?.eq_ignore_ascii_case("maintain") || !word(1)?.eq_ignore_ascii_case("query") {
        return None;
    }
    let name = word(2)?.to_owned();
    if !word(3)?.eq_ignore_ascii_case("as") {
        return None;
    }
    let inner_start = tokens.get(4)?.span.start;
    Some((name, inner_start))
}

/// Parse a full `MAINTAIN QUERY` statement. `Ok(None)` when `text` is
/// not a MAINTAIN statement at all; `Err` when it is one but malformed
/// or ineligible.
pub fn parse_maintain(text: &str) -> Result<Option<MaintainSpec>> {
    let Some((name, inner_start)) = maintain_prefix(text) else {
        return Ok(None);
    };
    let call_text = text[inner_start..].trim().trim_end_matches(';').to_owned();
    let Some(call) = extract_call_texts(&call_text) else {
        return Err(SqlError::Invalid(format!(
            "[RQL210] MAINTAIN QUERY {name}: the body must be a mechanism call with \
             literal Qq/T/spec arguments (dynamic arguments cannot be re-evaluated \
             per commit)"
        )));
    };
    let spec = MaintainSpec {
        name,
        kind: call.kind,
        qs: call.qs,
        qq: call.qq,
        table: call.table,
        spec: call.spec,
        call_text,
    };
    if let Some(reason) = maintain_ineligibility(&spec.qq) {
        return Err(SqlError::Invalid(format!(
            "[RQL210] MAINTAIN QUERY {}: {reason}",
            spec.name
        )));
    }
    Ok(Some(spec))
}

/// Why a Qq cannot back a standing query, or `None` when it can.
/// Mirrored by the `RQL210` analyzer diagnostic.
pub fn maintain_ineligibility(qq: &str) -> Option<String> {
    let parsed = match parse_select(qq) {
        Ok(p) => p,
        Err(e) => return Some(format!("Qq does not parse: {e}")),
    };
    if parsed.as_of.is_some() {
        return Some(
            "Qq must not contain AS OF; the maintainer binds the snapshot per commit".into(),
        );
    }
    if !crate::memoize::memo_eligible(&parsed) {
        return Some(
            "Qq calls a user-defined function; a standing query's pushed result \
             deltas must be reproducible from the snapshot stream alone"
                .into(),
        );
    }
    None
}

/// The per-snapshot change to a maintained result table — what gets
/// framed and pushed to subscribers.
#[derive(Debug, Clone, Default)]
pub struct ResultDelta {
    /// The snapshot that caused the change.
    pub snap_id: u64,
    /// Rows now present that were not before (multiset semantics).
    pub added: Vec<Row>,
    /// Rows removed (multiset semantics).
    pub removed: Vec<Row>,
}

/// Maintenance counters, exported through METRICS per registered query.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaintainStats {
    /// Snapshots folded by the registration batch pass.
    pub snapshots_seeded: u64,
    /// Snapshots folded incrementally since registration.
    pub snapshots_maintained: u64,
    /// Pagelog page fetches across all maintenance passes.
    pub pages_scanned: u64,
    /// Pages served from the delta cache or pruned instead of fetched.
    pub pages_skipped: u64,
    /// Rows shipped in result-delta frames (added + removed).
    pub rows_pushed: u64,
    /// AggTable groups skipped by the write-skipping fold (records and
    /// stored row both unchanged since the previous pass).
    pub groups_skipped: u64,
}

/// Per-mechanism maintenance state.
enum MechState {
    Collate {
        stream: DeltaQqStream,
        table_created: bool,
    },
    AggTable {
        stream: DeltaQqStream,
        fold: AggTableFold,
    },
    AggVar {
        stream: DeltaQqStream,
        func: AggOp,
        state: AggState,
        column: Option<String>,
        /// The single result row as last written (for delta frames).
        last_row: Option<Row>,
    },
    Intervals {
        prev_sid: Option<u64>,
    },
}

/// One registered standing query's live maintenance state.
///
/// Not `Sync`: a maintainer belongs to whoever processes commits for it
/// (the standing engine serializes advances per query).
pub struct Maintainer {
    snap: Arc<Database>,
    aux: Arc<Database>,
    memo: Option<Arc<MemoStore>>,
    spec: MaintainSpec,
    state: MechState,
    last_sid: Option<u64>,
    stats: MaintainStats,
}

impl Maintainer {
    /// Register a standing query on a session: validate via
    /// [`RqlSession::check_program`], refuse an existing result table,
    /// run the seeding batch pass over the backlog Qs, and return the
    /// live maintainer plus the seed report.
    pub fn register(session: &RqlSession, spec: MaintainSpec) -> Result<(Maintainer, RqlReport)> {
        let _span = rql_trace::span(rql_trace::SpanId::StandingSeed);
        if let Some(reason) = maintain_ineligibility(&spec.qq) {
            return Err(SqlError::Invalid(format!(
                "[RQL210] MAINTAIN QUERY {}: {reason}",
                spec.name
            )));
        }
        let program_src = format!("{};", spec.call_text);
        let program = crate::analyze::parse_program(&program_src).map_err(|d| {
            SqlError::Invalid(format!("MAINTAIN QUERY {}: {}", spec.name, d.message))
        })?;
        let analysis = session.check_program(&program)?;
        if analysis.has_errors() {
            return Err(SqlError::Invalid(format!(
                "MAINTAIN QUERY {} failed validation:\n{}",
                spec.name,
                analysis.render("maintain", &program_src)
            )));
        }
        let snap = Arc::clone(session.snap_db());
        let aux = Arc::clone(session.aux_db());
        if mechanism::table_exists(&aux, &spec.table) {
            return Err(SqlError::Constraint(format!(
                "result table {} already exists",
                spec.table
            )));
        }
        let memo = session.memo();
        let mut maintainer = Maintainer {
            snap,
            aux,
            memo,
            spec,
            state: MechState::Intervals { prev_sid: None }, // replaced below
            last_sid: None,
            stats: MaintainStats::default(),
        };
        let report = maintainer.seed()?;
        Ok((maintainer, report))
    }

    /// The registered spec.
    pub fn spec(&self) -> &MaintainSpec {
        &self.spec
    }

    /// Maintenance counters so far.
    pub fn stats(&self) -> MaintainStats {
        self.stats
    }

    /// The last snapshot folded into the result table.
    pub fn last_sid(&self) -> Option<u64> {
        self.last_sid
    }

    /// Full current result table content, in scan order (what SUBSCRIBE
    /// sends before the delta stream starts).
    pub fn current_result(&self) -> Result<QueryResult> {
        self.aux
            .query(&format!("SELECT * FROM {}", self.spec.table))
    }

    fn parsed_qq(&self) -> Result<rql_sqlengine::SelectStmt> {
        let parsed = parse_select(&self.spec.qq)?;
        if parsed.as_of.is_some() {
            return Err(SqlError::Invalid(
                "Qq must not contain AS OF; RQL binds the snapshot per iteration".into(),
            ));
        }
        Ok(parsed)
    }

    fn pairs(&self) -> Result<Vec<(String, AggOp)>> {
        parse_col_func_pairs(self.spec.spec.as_deref().unwrap_or_default())
    }

    /// The registration batch pass: fold the backlog, leaving the delta
    /// machinery primed at the last seeded snapshot.
    fn seed(&mut self) -> Result<RqlReport> {
        let (ids, qs_time) = mechanism::snapshot_set(&self.aux, &self.spec.qs)?;
        let mut report = RqlReport {
            qs_time,
            ..Default::default()
        };
        self.state = match self.spec.kind {
            MechanismKind::Collate => MechState::Collate {
                stream: DeltaQqStream::new(
                    &self.snap,
                    self.parsed_qq()?,
                    DeltaPolicy::Auto,
                    self.memo.clone(),
                ),
                table_created: false,
            },
            MechanismKind::AggTable => MechState::AggTable {
                stream: DeltaQqStream::new(
                    &self.snap,
                    self.parsed_qq()?,
                    DeltaPolicy::Auto,
                    self.memo.clone(),
                ),
                fold: AggTableFold::new(&self.spec.table, &self.pairs()?),
            },
            MechanismKind::AggVar => {
                let func = AggOp::parse(self.spec.spec.as_deref().unwrap_or_default())?;
                MechState::AggVar {
                    stream: DeltaQqStream::new(
                        &self.snap,
                        self.parsed_qq()?,
                        DeltaPolicy::Auto,
                        self.memo.clone(),
                    ),
                    state: func.init(),
                    func,
                    column: None,
                    last_row: None,
                }
            }
            MechanismKind::Intervals => MechState::Intervals { prev_sid: None },
        };
        if let MechState::Intervals { prev_sid } = &mut self.state {
            // The interval fold is inherently sequential (it probes the
            // result table per record); seed via the step mechanism and
            // remember where it left off.
            let (rep, last) = mechanism::collate_data_into_intervals_step_with_memo(
                &self.snap,
                &self.aux,
                &self.spec.qs,
                &self.spec.qq,
                &self.spec.table,
                None,
                self.memo.clone(),
            )?;
            *prev_sid = last;
            self.last_sid = ids.last().copied();
            self.account(&rep);
            self.stats.snapshots_seeded = rep.iterations.len() as u64;
            return Ok(rep);
        }
        let readers = self.snap.store().open_snapshot_chain(&ids)?;
        for (&sid, reader) in ids.iter().zip(readers.iter()) {
            let _qq_span = rql_trace::span_arg(rql_trace::SpanId::QqIteration, sid);
            let iter_started = Instant::now();
            let (memo_hit, delta) = self.fold_one(sid, reader)?;
            let _ = delta;
            let result_stats = self.current_stream_stats();
            report.iterations.push(crate::report::IterationReport {
                snap_id: sid,
                qq_stats: result_stats,
                udf_time: std::time::Duration::ZERO,
                qq_rows: result_stats.rows,
                result_inserts: 0,
                result_updates: 0,
                memo_hit,
                wall: iter_started.elapsed(),
            });
            self.last_sid = Some(sid);
        }
        // AggVar materializes its single-row table only at the end of
        // the batch pass — and the maintainer re-materializes it per
        // commit, so the table always equals the batch-final state.
        if let MechState::AggVar { .. } = &self.state {
            self.rewrite_aggvar_table()?;
        }
        self.account(&report);
        self.stats.snapshots_seeded = report.iterations.len() as u64;
        Ok(report)
    }

    /// Fold one committed snapshot into the result table and return the
    /// result-table delta it caused. Out-of-order or duplicate commits
    /// (sid ≤ last maintained) are ignored.
    pub fn advance(&mut self, sid: u64) -> Result<ResultDelta> {
        let _span = rql_trace::span_arg(rql_trace::SpanId::StandingMaintain, sid);
        if self.last_sid.is_some_and(|last| sid <= last) {
            return Ok(ResultDelta {
                snap_id: sid,
                ..Default::default()
            });
        }
        let delta = if let MechState::Intervals { prev_sid } = &mut self.state {
            let before = self
                .aux
                .query(&format!("SELECT * FROM {}", self.spec.table));
            let prev = *prev_sid;
            let (rep, last) = mechanism::collate_data_into_intervals_step_with_memo(
                &self.snap,
                &self.aux,
                &format!("SELECT {sid}"),
                &self.spec.qq,
                &self.spec.table,
                prev,
                self.memo.clone(),
            )?;
            if let MechState::Intervals { prev_sid } = &mut self.state {
                *prev_sid = last;
            }
            self.account(&rep);
            let after = self
                .aux
                .query(&format!("SELECT * FROM {}", self.spec.table))?;
            let before_rows = before.map(|r| r.rows).unwrap_or_default();
            let (added, removed) = diff_multiset(&before_rows, &after.rows);
            ResultDelta {
                snap_id: sid,
                added,
                removed,
            }
        } else {
            let chain: Vec<u64> = match self.last_sid {
                Some(last) => vec![last, sid],
                None => vec![sid],
            };
            let readers = self.snap.store().open_snapshot_chain(&chain)?;
            let reader = readers.last().expect("chain is non-empty");
            let (_, delta) = self.fold_one(sid, reader)?;
            let stats = self.current_stream_stats();
            self.stats.pages_scanned += stats.io.pagelog_reads + stats.io.db_reads;
            self.stats.pages_skipped += stats.pages_skipped_delta + stats.pages_pruned_filter;
            delta
        };
        self.last_sid = Some(sid);
        self.stats.snapshots_maintained += 1;
        self.stats.rows_pushed += (delta.added.len() + delta.removed.len()) as u64;
        Ok(delta)
    }

    /// Fold the Qq output at `sid` (read through `reader`) into the
    /// result table. Shared by the seed pass and `advance`.
    fn fold_one(
        &mut self,
        sid: u64,
        reader: &rql_retro::SnapshotReader,
    ) -> Result<(bool, ResultDelta)> {
        let snap = Arc::clone(&self.snap);
        let aux = Arc::clone(&self.aux);
        let table = self.spec.table.clone();
        match &mut self.state {
            MechState::Collate {
                stream,
                table_created,
            } => {
                let memo_hit = stream.advance(&snap, reader, sid)?;
                let result = stream.current();
                if !*table_created {
                    mechanism::create_result_table_pub(&aux, &table, &result.columns)?;
                    *table_created = true;
                }
                aux.with_table_writer(&table, |w| {
                    for row in &result.rows {
                        w.insert(row.clone())?;
                    }
                    Ok(())
                })?;
                Ok((
                    memo_hit,
                    ResultDelta {
                        snap_id: sid,
                        added: result.rows.clone(),
                        removed: Vec::new(),
                    },
                ))
            }
            MechState::AggTable { stream, fold } => {
                let memo_hit = stream.advance(&snap, reader, sid)?;
                let folded = fold.apply(&aux, stream.current(), true)?;
                self.stats.groups_skipped += folded.groups_skipped;
                let mut delta = ResultDelta {
                    snap_id: sid,
                    ..Default::default()
                };
                for effect in folded.effects {
                    match effect {
                        FoldEffect::Inserted(row) => delta.added.push(row),
                        FoldEffect::Updated { old, new } => {
                            delta.removed.push(old);
                            delta.added.push(new);
                        }
                        FoldEffect::Unchanged => {}
                    }
                }
                Ok((memo_hit, delta))
            }
            MechState::AggVar {
                stream,
                func,
                state,
                column,
                ..
            } => {
                let memo_hit = stream.advance(&snap, reader, sid)?;
                let result = stream.current();
                if column.is_none() {
                    column.replace(result.columns.first().cloned().unwrap_or_default());
                }
                if result.columns.len() != 1 {
                    return Err(SqlError::Invalid(format!(
                        "AggregateDataInVariable expects Qq to return one column, got {}",
                        result.columns.len()
                    )));
                }
                let value = match result.rows.len() {
                    0 => None,
                    1 => Some(result.rows[0][0].clone()),
                    n => {
                        return Err(SqlError::Invalid(format!(
                            "AggregateDataInVariable expects Qq to return at most one row, got {n}"
                        )))
                    }
                };
                if let Some(v) = value {
                    func.absorb(state, &v);
                }
                // During seeding the table is rewritten once at the end;
                // advance() rewrites per commit.
                let delta = if self.last_sid.is_some() {
                    let old = match &self.state {
                        MechState::AggVar { last_row, .. } => last_row.clone(),
                        _ => unreachable!(),
                    };
                    self.rewrite_aggvar_table()?;
                    let new = match &self.state {
                        MechState::AggVar { last_row, .. } => last_row.clone(),
                        _ => unreachable!(),
                    };
                    ResultDelta {
                        snap_id: sid,
                        added: new.into_iter().collect(),
                        removed: old.into_iter().collect(),
                    }
                } else {
                    ResultDelta {
                        snap_id: sid,
                        ..Default::default()
                    }
                };
                Ok((memo_hit, delta))
            }
            MechState::Intervals { .. } => unreachable!("intervals fold via step mechanism"),
        }
    }

    /// Drop and re-materialize the AggVar single-row result table from
    /// the running state — byte-identical to what a fresh batch run's
    /// finalize would create.
    fn rewrite_aggvar_table(&mut self) -> Result<()> {
        let MechState::AggVar {
            func,
            state,
            column,
            last_row,
            ..
        } = &mut self.state
        else {
            unreachable!("rewrite_aggvar_table on non-AggVar state");
        };
        let column = column.clone().unwrap_or_else(|| "value".to_owned());
        self.aux
            .execute(&format!("DROP TABLE IF EXISTS {}", self.spec.table))?;
        mechanism::create_result_table_pub(&self.aux, &self.spec.table, &[column])?;
        let row = vec![func.finish(state)];
        *last_row = Some(row.clone());
        self.aux.with_table_writer(&self.spec.table, |w| {
            w.insert(row.clone())?;
            Ok(())
        })?;
        Ok(())
    }

    fn current_stream_stats(&self) -> rql_sqlengine::ExecStats {
        match &self.state {
            MechState::Collate { stream, .. }
            | MechState::AggTable { stream, .. }
            | MechState::AggVar { stream, .. } => stream.current().stats,
            MechState::Intervals { .. } => rql_sqlengine::ExecStats::default(),
        }
    }

    fn account(&mut self, report: &RqlReport) {
        for it in &report.iterations {
            self.stats.pages_scanned += it.qq_stats.io.pagelog_reads + it.qq_stats.io.db_reads;
            self.stats.pages_skipped +=
                it.qq_stats.pages_skipped_delta + it.qq_stats.pages_pruned_filter;
        }
    }
}

/// Multiset difference between two row lists under [`GroupKey`]
/// equivalence: `(in b but not a, in a but not b)`.
fn diff_multiset(a: &[Row], b: &[Row]) -> (Vec<Row>, Vec<Row>) {
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<GroupKey, i64> = BTreeMap::new();
    for row in b {
        *counts.entry(GroupKey(row.clone())).or_insert(0) += 1;
    }
    for row in a {
        *counts.entry(GroupKey(row.clone())).or_insert(0) -= 1;
    }
    let mut added = Vec::new();
    let mut removed = Vec::new();
    for row in b {
        let c = counts.get_mut(&GroupKey(row.clone())).expect("counted");
        if *c > 0 {
            added.push(row.clone());
            *c -= 1;
        }
    }
    // Reset positives consumed; negatives mark removals.
    for row in a {
        let c = counts.get_mut(&GroupKey(row.clone())).expect("counted");
        if *c < 0 {
            removed.push(row.clone());
            *c += 1;
        }
    }
    (added, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_sqlengine::Value;

    #[test]
    fn maintain_prefix_detection() {
        let (name, off) =
            maintain_prefix("MAINTAIN QUERY top AS SELECT CollateData(1, 'q', 't') FROM snapids")
                .unwrap();
        assert_eq!(name, "top");
        assert!(off > 0);
        assert!(maintain_prefix("SELECT 1").is_none());
        assert!(maintain_prefix("maintain query x as select 1").is_some());
    }

    #[test]
    fn parse_rejects_dynamic_args() {
        let err = parse_maintain(
            "MAINTAIN QUERY q AS SELECT CollateData(snap_id, qq_col, 'T') FROM snapids",
        )
        .unwrap_err();
        assert!(err.to_string().contains("RQL210"), "{err}");
    }

    #[test]
    fn parse_rejects_udf_qq() {
        let err = parse_maintain(
            "MAINTAIN QUERY q AS SELECT CollateData(snap_id, 'SELECT my_udf(v) FROM t', 'T') \
             FROM snapids",
        )
        .unwrap_err();
        assert!(err.to_string().contains("RQL210"), "{err}");
    }

    #[test]
    fn parse_accepts_literal_call() {
        let spec = parse_maintain(
            "MAINTAIN QUERY balances AS SELECT AggregateDataInTable(snap_id, \
             'SELECT cn, v FROM t', 'Result', '(v,max)') FROM snapids",
        )
        .unwrap()
        .unwrap();
        assert_eq!(spec.name, "balances");
        assert_eq!(spec.kind, MechanismKind::AggTable);
        assert_eq!(spec.table, "Result");
        assert_eq!(spec.spec.as_deref(), Some("(v,max)"));
    }

    #[test]
    fn diff_multiset_basics() {
        let a = vec![vec![Value::Integer(1)], vec![Value::Integer(2)]];
        let b = vec![vec![Value::Integer(2)], vec![Value::Integer(3)]];
        let (added, removed) = diff_multiset(&a, &b);
        assert_eq!(added, vec![vec![Value::Integer(3)]]);
        assert_eq!(removed, vec![vec![Value::Integer(1)]]);
    }
}
