//! The four RQL mechanisms (paper §2), implemented operationally as
//! described in §3.
//!
//! Every mechanism is the same loop: run Qs on the auxiliary database
//! to obtain the snapshot set, then for each snapshot id rewrite Qq
//! (`AS OF` plus `current_snapshot()` substitution), execute it on the
//! snapshotable database, and fold its rows into the result table `T`
//! in the auxiliary database: blind inserts for `CollateData`; a
//! running variable for `AggregateDataInVariable`; probe-then-update
//! for `AggregateDataInTable`; lifetime maintenance for
//! `CollateDataIntoIntervals`.
//!
//! Each mechanism exists in two forms with identical folding logic:
//!
//! * the **whole-computation form** (e.g. [`collate_data`]) drives the
//!   full Qs loop in one call — what the experiment harness uses;
//! * the **step form** (e.g. [`collate_data_step`]) performs the
//!   iterations for whatever Qs returns *against a possibly pre-existing
//!   result table*, detecting "first iteration" by the table's absence.
//!   The session's SQL UDFs (`SELECT CollateData(snap_id, …) FROM
//!   SnapIds`) call it once per `SnapIds` row, which is exactly how the
//!   paper's SQLite UDF callback gets invoked.

use std::sync::Arc;
use std::time::Instant;

use rql_memo::MemoStore;
use rql_sqlengine::ast::Stmt;
use rql_sqlengine::{
    parse_select, ColumnType, Database, QueryResult, Result, Row, SelectStmt, SqlError,
    TableSchema, TableWriter, Value,
};

use crate::aggregate::{AggOp, AggState};
use crate::memoize::QqMemo;
use crate::report::{IterationReport, RqlReport};
use crate::rewrite::rewrite_select;

/// Optional shared memo store threaded from the session into the
/// mechanism loops (`None` = memoization off).
pub(crate) type MemoHandle = Option<Arc<MemoStore>>;

/// Start-of-lifetime column added by `CollateDataIntoIntervals`.
pub const START_SNAPSHOT_COL: &str = "start_snapshot";
/// End-of-lifetime column added by `CollateDataIntoIntervals`.
pub const END_SNAPSHOT_COL: &str = "end_snapshot";

/// Run Qs on the auxiliary database and return the snapshot ids.
pub(crate) fn snapshot_set(aux: &Database, qs: &str) -> Result<(Vec<u64>, std::time::Duration)> {
    let started = Instant::now();
    let result = aux.query(qs)?;
    let elapsed = started.elapsed();
    if result.columns.len() != 1 {
        return Err(SqlError::Invalid(format!(
            "Qs must return a single snapshot-id column, got {}",
            result.columns.len()
        )));
    }
    let mut ids = Vec::with_capacity(result.rows.len());
    for row in &result.rows {
        let Some(id) = row[0].as_i64() else {
            return Err(SqlError::Invalid(format!(
                "Qs returned a non-integer snapshot id: {}",
                row[0]
            )));
        };
        ids.push(id as u64);
    }
    Ok((ids, elapsed))
}

/// Shared iteration driver: parse Qq once, then per snapshot rewrite,
/// execute, and hand the result to `body` (whose time is the "RQL UDF"
/// component of the paper's cost breakdowns).
fn run_loop(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    memo: MemoHandle,
    mut body: impl FnMut(usize, u64, &QueryResult) -> Result<(u64, u64)>,
) -> Result<RqlReport> {
    let _qs_span = rql_trace::span(rql_trace::SpanId::QsLoop);
    let (ids, qs_time) = snapshot_set(aux, qs)?;
    let parsed: SelectStmt = parse_select(qq)?;
    if parsed.as_of.is_some() {
        return Err(SqlError::Invalid(
            "Qq must not contain AS OF; RQL binds the snapshot per iteration".into(),
        ));
    }
    let memo = QqMemo::attach(memo, snap, &parsed);
    let mut report = RqlReport {
        qs_time,
        ..Default::default()
    };
    for (i, &sid) in ids.iter().enumerate() {
        let _qq_span = rql_trace::span_arg(rql_trace::SpanId::QqIteration, sid);
        let iter_started = Instant::now();
        // Cancellation checkpoint between snapshots: a `CANCEL` that
        // lands mid-loop stops before the next Qq opens its snapshot
        // (row-batch checkpoints inside the executor cover the rest).
        snap.cancel_token().check()?;
        // Snapshots are immutable, so a memoized Qq result at `sid` is
        // byte-identical to re-execution; hits skip the executor (and
        // report zeroed Qq stats — no pages read, nothing evaluated).
        let (result, memo_hit) = match memo
            .as_ref()
            .and_then(|m| m.lookup_result_seq(snap, &parsed, sid))
        {
            Some(cached) => {
                rql_trace::instant_arg(rql_trace::SpanId::MemoHit, sid);
                (cached, true)
            }
            None => {
                if memo.is_some() {
                    rql_trace::instant_arg(rql_trace::SpanId::MemoMiss, sid);
                }
                let rewritten = rewrite_select(&parsed, sid);
                let outcome = snap.execute_stmt(&Stmt::Select(rewritten))?;
                let result = outcome.rows().expect("SELECT yields rows");
                if let Some(m) = &memo {
                    m.record_result_seq(snap, &parsed, sid, &result);
                }
                (result, false)
            }
        };
        let udf_started = Instant::now();
        let (result_inserts, result_updates) = body(i, sid, &result)?;
        rql_trace::instant_arg(rql_trace::SpanId::RowsFolded, result.rows.len() as u64);
        report.iterations.push(IterationReport {
            snap_id: sid,
            qq_stats: result.stats,
            udf_time: udf_started.elapsed(),
            qq_rows: result.rows.len() as u64,
            result_inserts,
            result_updates,
            memo_hit,
            wall: iter_started.elapsed(),
        });
    }
    Ok(report)
}

/// Whether `table` exists in the auxiliary database.
pub(crate) fn table_exists(aux: &Database, table: &str) -> bool {
    aux.table_row_count(table).is_ok()
}

fn create_result_table(aux: &Database, table: &str, columns: &[String]) -> Result<()> {
    let schema = TableSchema::new(
        table,
        columns
            .iter()
            .map(|c| (c.clone(), ColumnType::Any))
            .collect(),
    );
    for (i, c) in schema.columns.iter().enumerate() {
        if schema.columns[..i].iter().any(|o| o.name == c.name) {
            return Err(SqlError::Invalid(format!(
                "Qq output has duplicate column name {}",
                c.name
            )));
        }
    }
    // Quote names so literal-derived columns ("SELECT DISTINCT 1 …"
    // yields a column named "1", as in the paper's §2.2 example) parse.
    let cols_sql: Vec<String> = schema
        .columns
        .iter()
        .map(|c| format!("\"{}\" ANY", c.name))
        .collect();
    aux.execute(&format!(
        "CREATE TABLE {} ({})",
        schema.name,
        cols_sql.join(", ")
    ))?;
    Ok(())
}

/// Public wrapper for [`create_result_table`] used by the parallel
/// extension module.
pub(crate) fn create_result_table_pub(
    aux: &Database,
    table: &str,
    columns: &[String],
) -> Result<()> {
    create_result_table(aux, table, columns)
}

// ======================================================================
// CollateData
// ======================================================================

/// `CollateData(Qs, Qq, T)` — collect records from multiple snapshots
/// into a table (paper §2.1): first iteration `CREATE TABLE T AS Qq`,
/// subsequent iterations `INSERT INTO T Qq`.
pub fn collate_data(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
) -> Result<RqlReport> {
    collate_data_with_memo(snap, aux, qs, qq, table, None)
}

/// [`collate_data`] with an optional memo store attached.
pub(crate) fn collate_data_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    memo: MemoHandle,
) -> Result<RqlReport> {
    if table_exists(aux, table) {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists (CollateData creates it)"
        )));
    }
    collate_data_step_with_memo(snap, aux, qs, qq, table, memo)
}

/// Step form of [`collate_data`]: appends to `T` if it already exists.
pub fn collate_data_step(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
) -> Result<RqlReport> {
    collate_data_step_with_memo(snap, aux, qs, qq, table, None)
}

/// [`collate_data_step`] with an optional memo store attached.
pub(crate) fn collate_data_step_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    memo: MemoHandle,
) -> Result<RqlReport> {
    let mut exists = table_exists(aux, table);
    run_loop(snap, aux, qs, qq, memo, |_i, _sid, result| {
        if !exists {
            create_result_table(aux, table, &result.columns)?;
            exists = true;
        }
        aux.with_table_writer(table, |w| {
            for row in &result.rows {
                w.insert(row.clone())?;
            }
            Ok((w.inserted(), w.updated()))
        })
    })
}

// ======================================================================
// AggregateDataInVariable
// ======================================================================

/// Extract the single value of an `AggregateDataInVariable` Qq result
/// (`None` when the snapshot contributed nothing).
fn single_value(result: &QueryResult) -> Result<Option<&Value>> {
    if result.columns.len() != 1 {
        return Err(SqlError::Invalid(format!(
            "AggregateDataInVariable expects Qq to return one column, got {}",
            result.columns.len()
        )));
    }
    match result.rows.len() {
        0 => Ok(None),
        1 => Ok(Some(&result.rows[0][0])),
        n => Err(SqlError::Invalid(format!(
            "AggregateDataInVariable expects Qq to return at most one row, got {n}"
        ))),
    }
}

/// `AggregateDataInVariable(Qs, Qq, T, AggFunc)` — fold a single value
/// across snapshots in a variable, storing the result in `T` at the end
/// (paper §2.2).
pub fn aggregate_data_in_variable(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    func: AggOp,
) -> Result<RqlReport> {
    aggregate_data_in_variable_with_memo(snap, aux, qs, qq, table, func, None)
}

/// [`aggregate_data_in_variable`] with an optional memo store attached.
pub(crate) fn aggregate_data_in_variable_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    func: AggOp,
    memo: MemoHandle,
) -> Result<RqlReport> {
    if table_exists(aux, table) {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists"
        )));
    }
    let mut state: AggState = func.init();
    let mut column: Option<String> = None;
    let mut report = run_loop(snap, aux, qs, qq, memo, |_i, _sid, result| {
        if column.is_none() {
            column = Some(result.columns.first().cloned().unwrap_or_default());
        }
        if let Some(v) = single_value(result)? {
            func.absorb(&mut state, v);
        }
        Ok((0, 0))
    })?;
    let _fin_span = rql_trace::span(rql_trace::SpanId::Finalize);
    let finalize_started = Instant::now();
    let column = column.unwrap_or_else(|| "value".to_owned());
    create_result_table(aux, table, &[column])?;
    aux.with_table_writer(table, |w| {
        w.insert(vec![func.finish(&state)])?;
        Ok(())
    })?;
    report.finalize_time = finalize_started.elapsed();
    Ok(report)
}

/// Step form of [`aggregate_data_in_variable`]: the running variable is
/// persisted as `T`'s single row (with `(sum, count)` companions for the
/// AVG special case), so independent per-snapshot invocations — the UDF
/// calling pattern — accumulate correctly.
pub fn aggregate_data_in_variable_step(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    func: AggOp,
) -> Result<RqlReport> {
    aggregate_data_in_variable_step_with_memo(snap, aux, qs, qq, table, func, None)
}

/// [`aggregate_data_in_variable_step`] with an optional memo store.
pub(crate) fn aggregate_data_in_variable_step_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    func: AggOp,
    memo: MemoHandle,
) -> Result<RqlReport> {
    run_loop(snap, aux, qs, qq, memo, |_i, _sid, result| {
        let v = single_value(result)?.cloned();
        let column = result.columns.first().cloned().unwrap_or_default();
        if !table_exists(aux, table) {
            let mut cols = vec![column.clone()];
            if func.needs_companions() {
                cols.push(format!("{column}__avg_sum"));
                cols.push(format!("{column}__avg_cnt"));
            }
            create_result_table(aux, table, &cols)?;
            aux.with_table_writer(table, |w| {
                let mut state = func.init();
                if let Some(v) = &v {
                    func.absorb(&mut state, v);
                }
                let mut row = vec![func.finish(&state)];
                if func.needs_companions() {
                    let (sum, cnt) = match state {
                        AggState::Avg { sum, count } => (sum, count),
                        _ => (0.0, 0),
                    };
                    row.push(Value::Real(sum));
                    row.push(Value::Integer(cnt));
                }
                w.insert(row)?;
                Ok(())
            })?;
            return Ok((1, 0));
        }
        let Some(v) = v else { return Ok((0, 0)) };
        aux.with_table_writer(table, |w| {
            // T has exactly one row: read, combine, write back.
            let existing = w.probe_all()?;
            let Some((rid, old)) = existing.into_iter().next() else {
                return Err(SqlError::Invalid(format!(
                    "result table {table} unexpectedly empty"
                )));
            };
            let mut new_row = old.clone();
            if func.needs_companions() {
                let mut sum = old[1].as_f64().unwrap_or(0.0);
                let mut cnt = old[2].as_i64().unwrap_or(0);
                if let Some(x) = v.as_f64() {
                    sum += x;
                    cnt += 1;
                }
                new_row[0] = if cnt == 0 {
                    Value::Null
                } else {
                    Value::Real(sum / cnt as f64)
                };
                new_row[1] = Value::Real(sum);
                new_row[2] = Value::Integer(cnt);
            } else {
                new_row[0] = func.combine(&old[0], &v);
            }
            w.update(rid, &old, new_row)?;
            Ok((0, 1))
        })
    })
}

// ======================================================================
// AggregateDataInTable
// ======================================================================

/// Internal layout of an `AggregateDataInTable` result table.
pub(crate) struct AggTableLayout {
    /// Positions of grouping columns within the Qq output.
    pub(crate) group_positions: Vec<usize>,
    /// `(qq_position, op, companion_base)` per aggregated column;
    /// `companion_base` indexes the `(sum, count)` pair for AVG columns.
    pub(crate) agg_columns: Vec<(usize, AggOp, Option<usize>)>,
    /// All result-table column names (Qq columns + AVG companions).
    pub(crate) table_columns: Vec<String>,
}

/// What one [`AggTableLayout::fold`] did to the result table — consumed
/// by the delta driver (write-skipping) and the standing-query
/// maintainer (result-delta frames).
pub(crate) enum FoldEffect {
    /// A fresh row was inserted for a new grouping key.
    Inserted(Row),
    /// The group's row was rewritten.
    Updated {
        /// The row before the fold.
        old: Row,
        /// The row after the fold.
        new: Row,
    },
    /// The aggregate did not change; nothing was written.
    Unchanged,
}

pub(crate) fn agg_table_layout(
    qq_columns: &[String],
    pairs: &[(String, AggOp)],
) -> Result<AggTableLayout> {
    let mut agg_columns = Vec::new();
    let mut table_columns: Vec<String> = qq_columns.to_vec();
    for (col, op) in pairs {
        let pos = qq_columns
            .iter()
            .position(|c| c.eq_ignore_ascii_case(col))
            .ok_or_else(|| {
                SqlError::Unknown(format!("aggregated column {col} not in Qq output"))
            })?;
        let companion = if op.needs_companions() {
            let base = table_columns.len();
            table_columns.push(format!("{col}__avg_sum"));
            table_columns.push(format!("{col}__avg_cnt"));
            Some(base)
        } else {
            None
        };
        agg_columns.push((pos, *op, companion));
    }
    let group_positions: Vec<usize> = (0..qq_columns.len())
        .filter(|i| !agg_columns.iter().any(|(p, _, _)| p == i))
        .collect();
    if group_positions.is_empty() {
        return Err(SqlError::Invalid(
            "every Qq column is aggregated; use AggregateDataInVariable instead".into(),
        ));
    }
    Ok(AggTableLayout {
        group_positions,
        agg_columns,
        table_columns,
    })
}

impl AggTableLayout {
    /// Result-table row for a record's first appearance.
    pub(crate) fn fresh_row(&self, record: &Row) -> Row {
        let mut row = Vec::with_capacity(self.table_columns.len());
        row.extend(record.iter().cloned());
        for (pos, op, companion) in &self.agg_columns {
            if companion.is_some() && *op == AggOp::Avg {
                let x = record[*pos].as_f64().unwrap_or(0.0);
                let present = !record[*pos].is_null();
                row.push(Value::Real(x));
                row.push(Value::Integer(i64::from(present)));
            }
        }
        row
    }

    /// Fold one record into the result table: probe on the grouping
    /// columns, then update the hit or insert fresh (paper §3).
    pub(crate) fn fold(&self, w: &mut TableWriter, record: &Row) -> Result<FoldEffect> {
        let key: Vec<Value> = self
            .group_positions
            .iter()
            .map(|&p| record[p].clone())
            .collect();
        let mut hits = w.probe(0, &key)?;
        match hits.len() {
            0 => {
                let fresh = self.fresh_row(record);
                w.insert(fresh.clone())?;
                Ok(FoldEffect::Inserted(fresh))
            }
            1 => {
                let (rid, old) = hits.pop().unwrap();
                let mut new_row = old.clone();
                for (pos, op, companion) in &self.agg_columns {
                    match companion {
                        Some(base) => {
                            let mut sum = old[*base].as_f64().unwrap_or(0.0);
                            let mut cnt = old[*base + 1].as_i64().unwrap_or(0);
                            if let Some(x) = record[*pos].as_f64() {
                                sum += x;
                                cnt += 1;
                            }
                            new_row[*base] = Value::Real(sum);
                            new_row[*base + 1] = Value::Integer(cnt);
                            new_row[*pos] = if cnt == 0 {
                                Value::Null
                            } else {
                                Value::Real(sum / cnt as f64)
                            };
                        }
                        None => {
                            new_row[*pos] = op.combine(&old[*pos], &record[*pos]);
                        }
                    }
                }
                // Skip the write when the aggregate did not change (MAX
                // rarely changes; SUM changes on every contribution —
                // the asymmetry of Figure 13's hot iterations).
                if new_row != old {
                    w.update(rid, &old, new_row.clone())?;
                    Ok(FoldEffect::Updated { old, new: new_row })
                } else {
                    Ok(FoldEffect::Unchanged)
                }
            }
            n => Err(SqlError::Invalid(format!(
                "aggregation ill-defined: {n} result rows share one grouping key \
                 (Qq must be unique on its grouping columns)"
            ))),
        }
    }
}

/// `AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)` — an
/// across-time GROUP BY (paper §2.3): group on the Qq columns *not*
/// listed in the pairs, combining the listed columns across snapshots.
pub fn aggregate_data_in_table(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    pairs: &[(String, AggOp)],
) -> Result<RqlReport> {
    aggregate_data_in_table_with_memo(snap, aux, qs, qq, table, pairs, None)
}

/// [`aggregate_data_in_table`] with an optional memo store attached.
pub(crate) fn aggregate_data_in_table_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    pairs: &[(String, AggOp)],
    memo: MemoHandle,
) -> Result<RqlReport> {
    if table_exists(aux, table) {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists"
        )));
    }
    aggregate_data_in_table_step_with_memo(snap, aux, qs, qq, table, pairs, memo)
}

/// Step form of [`aggregate_data_in_table`]: folds into a pre-existing
/// result table (probing from the first record) or creates it.
pub fn aggregate_data_in_table_step(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    pairs: &[(String, AggOp)],
) -> Result<RqlReport> {
    aggregate_data_in_table_step_with_memo(snap, aux, qs, qq, table, pairs, None)
}

/// [`aggregate_data_in_table_step`] with an optional memo store.
pub(crate) fn aggregate_data_in_table_step_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    pairs: &[(String, AggOp)],
    memo: MemoHandle,
) -> Result<RqlReport> {
    let mut layout: Option<AggTableLayout> = None;
    let mut blind_first = false;
    run_loop(snap, aux, qs, qq, memo, |i, _sid, result| {
        if layout.is_none() {
            let l = agg_table_layout(&result.columns, pairs)?;
            if !table_exists(aux, table) {
                create_result_table(aux, table, &l.table_columns)?;
                // Paper §3: "we also create an index on Result using as
                // key the values in non-aggregating columns".
                let group_cols: Vec<String> = l
                    .group_positions
                    .iter()
                    .map(|&p| format!("\"{}\"", result.columns[p].to_ascii_lowercase()))
                    .collect();
                aux.execute(&format!(
                    "CREATE INDEX __rql_idx_{} ON {} ({})",
                    table.to_ascii_lowercase(),
                    table,
                    group_cols.join(", ")
                ))?;
                blind_first = true;
            }
            layout = Some(l);
        }
        let layout = layout.as_ref().expect("layout initialized");
        aux.with_table_writer(table, |w| {
            for record in &result.rows {
                if blind_first && i == 0 {
                    // First iteration over a fresh table inserts blindly
                    // (the Qq output is unique on the grouping columns).
                    w.insert(layout.fresh_row(record))?;
                } else {
                    layout.fold(w, record)?;
                }
            }
            Ok((w.inserted(), w.updated()))
        })
    })
}

/// Sort-merge variant of [`aggregate_data_in_table`] — the alternative
/// the paper's authors "experimented with … that turned out to be
/// costlier" (§3), kept here as an ablation.
///
/// Instead of probing the result-table index per record, each iteration
/// sorts the Qq output by grouping key and merges it against a full
/// key-ordered scan of the result table. The merge touches every result
/// row every iteration, which is what makes it lose to the index-probe
/// plan whenever the result table outgrows the per-snapshot output.
pub fn aggregate_data_in_table_sortmerge(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    pairs: &[(String, AggOp)],
) -> Result<RqlReport> {
    if table_exists(aux, table) {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists"
        )));
    }
    let mut layout: Option<AggTableLayout> = None;
    // The sort-merge ablation stays memo-free: it exists to measure the
    // paper's costlier alternative, and a cache would mask that cost.
    run_loop(snap, aux, qs, qq, None, |_i, _sid, result| {
        if layout.is_none() {
            let l = agg_table_layout(&result.columns, pairs)?;
            create_result_table(aux, table, &l.table_columns)?;
            layout = Some(l);
        }
        let layout = layout.as_ref().expect("layout initialized");
        // Sort this iteration's records by grouping key.
        let mut records: Vec<&Row> = result.rows.iter().collect();
        let positions = &layout.group_positions;
        let cmp_keys = move |a: &Row, b: &Row| {
            positions
                .iter()
                .map(|&p| a[p].total_cmp(&b[p]))
                .find(|o| *o != std::cmp::Ordering::Equal)
                .unwrap_or(std::cmp::Ordering::Equal)
        };
        records.sort_by(|a, b| cmp_keys(a, b));
        aux.with_table_writer(table, |w| {
            // Full scan of the result table, sorted the same way.
            let mut existing = w.probe_all()?;
            existing.sort_by(|(_, a), (_, b)| cmp_keys(a, b));
            let mut e = existing.iter();
            let mut cursor = e.next();
            for record in records {
                // Advance the merge cursor to the record's key.
                while let Some((_, row)) = cursor {
                    if cmp_keys(row, record) == std::cmp::Ordering::Less {
                        cursor = e.next();
                    } else {
                        break;
                    }
                }
                match cursor {
                    Some((rid, old)) if cmp_keys(old, record) == std::cmp::Ordering::Equal => {
                        let mut new_row = old.clone();
                        for (pos, op, companion) in &layout.agg_columns {
                            match companion {
                                Some(base) => {
                                    let mut sum = old[*base].as_f64().unwrap_or(0.0);
                                    let mut cnt = old[*base + 1].as_i64().unwrap_or(0);
                                    if let Some(x) = record[*pos].as_f64() {
                                        sum += x;
                                        cnt += 1;
                                    }
                                    new_row[*base] = Value::Real(sum);
                                    new_row[*base + 1] = Value::Integer(cnt);
                                    new_row[*pos] = if cnt == 0 {
                                        Value::Null
                                    } else {
                                        Value::Real(sum / cnt as f64)
                                    };
                                }
                                None => {
                                    new_row[*pos] = op.combine(&old[*pos], &record[*pos]);
                                }
                            }
                        }
                        if new_row != *old {
                            w.update(*rid, old, new_row)?;
                        }
                        cursor = e.next();
                    }
                    _ => {
                        w.insert(layout.fresh_row(record))?;
                    }
                }
            }
            Ok((w.inserted(), w.updated()))
        })
    })
}

// ======================================================================
// CollateDataIntoIntervals
// ======================================================================

/// `CollateDataIntoIntervals(Qs, Qq, T)` — the record-lifetime
/// representation (paper §2.4): `T` carries `start_snapshot` /
/// `end_snapshot`; a record also present in the previous iteration has
/// its lifetime extended, otherwise a new lifetime row starts.
pub fn collate_data_into_intervals(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
) -> Result<RqlReport> {
    collate_data_into_intervals_with_memo(snap, aux, qs, qq, table, None)
}

/// [`collate_data_into_intervals`] with an optional memo store.
pub(crate) fn collate_data_into_intervals_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    memo: MemoHandle,
) -> Result<RqlReport> {
    if table_exists(aux, table) {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists"
        )));
    }
    collate_data_into_intervals_step_with_memo(snap, aux, qs, qq, table, None, memo).map(|(r, _)| r)
}

/// Step form of [`collate_data_into_intervals`]. `prev_sid` is the
/// snapshot id of the iteration that preceded this call (the UDF driver
/// threads it between invocations); returns the report and the last
/// snapshot id processed.
pub fn collate_data_into_intervals_step(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    prev_sid: Option<u64>,
) -> Result<(RqlReport, Option<u64>)> {
    collate_data_into_intervals_step_with_memo(snap, aux, qs, qq, table, prev_sid, None)
}

/// [`collate_data_into_intervals_step`] with an optional memo store.
pub(crate) fn collate_data_into_intervals_step_with_memo(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    prev_sid: Option<u64>,
    memo: MemoHandle,
) -> Result<(RqlReport, Option<u64>)> {
    let mut prev = prev_sid;
    let mut qq_arity = 0usize;
    let report = run_loop(snap, aux, qs, qq, memo, |_i, sid, result| {
        qq_arity = result.columns.len();
        let first = !table_exists(aux, table);
        if first {
            let mut columns = result.columns.clone();
            columns.push(START_SNAPSHOT_COL.to_owned());
            columns.push(END_SNAPSHOT_COL.to_owned());
            create_result_table(aux, table, &columns)?;
            let key_cols: Vec<String> = result
                .columns
                .iter()
                .map(|c| format!("\"{}\"", c.to_ascii_lowercase()))
                .collect();
            aux.execute(&format!(
                "CREATE INDEX __rql_idx_{} ON {} ({})",
                table.to_ascii_lowercase(),
                table,
                key_cols.join(", ")
            ))?;
        }
        let prev_here = prev;
        let counts = aux.with_table_writer(table, |w| {
            for record in &result.rows {
                let extend = if first {
                    None
                } else {
                    // Find the lifetime row that ended exactly at the
                    // previous iteration's snapshot.
                    w.probe(0, record)?.into_iter().find(|(_, row)| {
                        prev_here.is_some_and(|p| row[qq_arity + 1].as_i64() == Some(p as i64))
                    })
                };
                match extend {
                    Some((rid, old)) => {
                        let mut new_row = old.clone();
                        new_row[qq_arity + 1] = Value::Integer(sid as i64);
                        w.update(rid, &old, new_row)?;
                    }
                    None => {
                        let mut row = record.clone();
                        row.push(Value::Integer(sid as i64));
                        row.push(Value::Integer(sid as i64));
                        w.insert(row)?;
                    }
                }
            }
            Ok((w.inserted(), w.updated()))
        })?;
        prev = Some(sid);
        Ok(counts)
    })?;
    Ok((report, prev))
}
