//! Qq memoization: content-addressed reuse of per-snapshot results.
//!
//! Retro snapshots are immutable, so a Qq result at snapshot `S` can
//! never change — the mechanisms may therefore skip re-executing Qq
//! whenever a [`MemoStore`] holds its result for `(Qq, S)`. This module
//! is the glue between the mechanisms and the store:
//!
//! * [`qq_fingerprint`] — FNV-1a over the *canonical pre-rewrite* Qq
//!   rendering ([`crate::rewrite::render_select`]), so whitespace and
//!   keyword-case differences collapse and the per-iteration `AS OF`
//!   injection never fragments keys. Identifier case is kept (string
//!   literals are case-sensitive; a case variant only costs a spurious
//!   miss). The fingerprint deliberately excludes the mechanism: a Qq's
//!   per-snapshot rows are mechanism-independent, so `CollateData` and
//!   `AggregateDataInTable` over the same Qq share entries.
//! * [`memo_eligible`] — a Qq calling a user-defined function anywhere
//!   is not memoizable (UDFs may close over external state); builtins,
//!   aggregates and `current_snapshot()` are engine-evaluated and fine.
//!   The rqlcheck diagnostic `RQL207` explains this statically.
//! * [`page_version_vector`] — hash of the snapshot's SPT mapping plus
//!   the touched tables' roots and index sets, verified on every cache
//!   hit. Snapshot bytes are immutable, so this is defensive: it guards
//!   ad-hoc index drift and page-archival movement at the cost of a
//!   spurious miss, never a wrong answer.
//! * [`QqMemo`] — the per-computation handle the mechanism loops use to
//!   look up and record results ([`EntryKind::Result`]) and delta-chain
//!   seeds ([`EntryKind::Seed`]).

use std::sync::Arc;

use rql_memo::{EntryKind, MemoKey, MemoStore, MemoValue};
use rql_retro::SnapshotReader;
use rql_sqlengine::ast::{is_aggregate_name, Expr, SelectItem, SelectStmt};
use rql_sqlengine::{Catalog, Database, ExecStats, QueryResult, ScannerSeed};

use crate::rewrite::{render_select, CURRENT_SNAPSHOT};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Content fingerprint of a Qq: FNV-1a of its canonical rendering
/// *before* any per-iteration rewrite, so every snapshot of every
/// session keys the same query text identically.
pub fn qq_fingerprint(parsed: &SelectStmt) -> u64 {
    fnv1a(render_select(parsed).as_bytes())
}

/// Does the expression call a user-defined function anywhere? Mirrors
/// the delta scanner's rule: builtins, aggregates and
/// `current_snapshot()` are engine-evaluated; anything else resolves to
/// a UDF whose output may vary between invocations.
pub(crate) fn expr_calls_udf(e: &Expr) -> bool {
    match e {
        Expr::Function { name, args, .. } => {
            let builtin = matches!(
                name.as_str(),
                "abs"
                    | "length"
                    | "lower"
                    | "upper"
                    | "typeof"
                    | "ifnull"
                    | "nullif"
                    | "round"
                    | "substr"
                    | "coalesce"
            );
            (!builtin && !is_aggregate_name(name) && name != CURRENT_SNAPSHOT)
                || args.iter().any(expr_calls_udf)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => expr_calls_udf(expr),
        Expr::Binary { lhs, rhs, .. } => expr_calls_udf(lhs) || expr_calls_udf(rhs),
        Expr::InList { expr, list, .. } => expr_calls_udf(expr) || list.iter().any(expr_calls_udf),
        Expr::Between { expr, lo, hi, .. } => {
            expr_calls_udf(expr) || expr_calls_udf(lo) || expr_calls_udf(hi)
        }
        Expr::Like { expr, pattern, .. } => expr_calls_udf(expr) || expr_calls_udf(pattern),
        Expr::Case {
            operand,
            arms,
            else_branch,
        } => {
            operand.as_deref().is_some_and(expr_calls_udf)
                || arms
                    .iter()
                    .any(|(w, t)| expr_calls_udf(w) || expr_calls_udf(t))
                || else_branch.as_deref().is_some_and(expr_calls_udf)
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Star => false,
    }
}

/// Whether a Qq's per-snapshot result is safe to memoize: deterministic
/// given the snapshot alone, i.e. no user-defined function call in any
/// clause. `current_snapshot()` is fine — the fingerprint keys the
/// pre-rewrite text and the snapshot id is part of the cache key.
pub fn memo_eligible(parsed: &SelectStmt) -> bool {
    let item_udf = parsed.items.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr_calls_udf(expr),
        SelectItem::Wildcard | SelectItem::TableWildcard(_) => false,
    });
    !(item_udf
        || parsed.joins.iter().any(|j| expr_calls_udf(&j.on))
        || parsed.where_clause.as_ref().is_some_and(expr_calls_udf)
        || parsed.group_by.iter().any(expr_calls_udf)
        || parsed.having.as_ref().is_some_and(expr_calls_udf)
        || parsed.order_by.iter().any(|(e, _)| expr_calls_udf(e))
        || parsed.limit.as_ref().is_some_and(expr_calls_udf))
}

/// Page-version vector of `parsed`'s footprint at one snapshot: the
/// SPT's [`version_hash`](rql_retro::Spt::version_hash) combined with
/// every touched table's name, heap root, and (sorted) index set.
/// `None` when a touched table is absent from the snapshot's catalog —
/// such an execution errors anyway, so nothing is memoized for it.
pub fn page_version_vector(reader: &SnapshotReader, parsed: &SelectStmt) -> Option<u64> {
    let catalog = Catalog::load(reader).ok()?;
    let mut h = reader.spt().version_hash();
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let mut names: Vec<String> = parsed
        .from
        .iter()
        .map(|t| t.name.to_ascii_lowercase())
        .chain(
            parsed
                .joins
                .iter()
                .map(|j| j.table.name.to_ascii_lowercase()),
        )
        .collect();
    names.sort();
    names.dedup();
    for name in &names {
        let info = catalog.require_table(name).ok()?;
        fold(name.as_bytes());
        fold(&info.root.0.to_le_bytes());
        for idx in catalog.indexes_on(name) {
            fold(idx.schema.name.as_bytes());
            fold(&idx.root.0.to_le_bytes());
        }
    }
    Some(h)
}

/// Per-computation memoization handle: one fingerprint, many snapshots.
/// Constructed once per mechanism loop; `None` when no store is
/// attached or the Qq is not memo-eligible, which callers treat as
/// "memoization off" with zero overhead.
pub(crate) struct QqMemo {
    store: Arc<MemoStore>,
    fingerprint: u64,
    /// The database's pruning-sidecar configuration hash
    /// ([`Database::filter_config_hash`]), XOR-folded into every page
    /// version vector. Sound pruning never changes a result, so this is
    /// defensive versioning: changing the filter-column set (or the
    /// sidecar format) invalidates entries recorded under the old
    /// configuration instead of trusting them across the boundary.
    config_salt: u64,
}

impl QqMemo {
    /// Attach to `store` for one parsed Qq, if eligible. `snap` is the
    /// snapshot-side database whose pruning configuration salts the page
    /// version vectors.
    pub(crate) fn attach(
        store: Option<Arc<MemoStore>>,
        snap: &Database,
        parsed: &SelectStmt,
    ) -> Option<QqMemo> {
        let store = store?;
        if !memo_eligible(parsed) {
            return None;
        }
        Some(QqMemo {
            fingerprint: qq_fingerprint(parsed),
            config_salt: snap.filter_config_hash(),
            store,
        })
    }

    /// Page version vector salted with the pruning configuration.
    fn pvv(&self, reader: &SnapshotReader, parsed: &SelectStmt) -> Option<u64> {
        page_version_vector(reader, parsed).map(|h| h ^ self.config_salt)
    }

    fn key(&self, sid: u64, kind: EntryKind) -> MemoKey {
        MemoKey {
            fingerprint: self.fingerprint,
            snap_id: sid,
            kind,
        }
    }

    fn hit_result(columns: Vec<String>, rows: Vec<rql_sqlengine::Row>) -> QueryResult {
        QueryResult {
            columns,
            rows,
            // A hit costs no page reads and no evaluation; zeroed stats
            // are what make the warm-path cost model reflect that.
            stats: ExecStats::default(),
            plan: vec!["memo hit".to_owned()],
        }
    }

    /// Look up the memoized Qq result at `sid`, verifying the page
    /// version through an already-open snapshot reader (the delta path
    /// has one at hand, so verification is nearly free).
    pub(crate) fn lookup_result(
        &self,
        reader: &SnapshotReader,
        parsed: &SelectStmt,
        sid: u64,
    ) -> Option<QueryResult> {
        let key = self.key(sid, EntryKind::Result);
        match self.store.lookup(&key, || self.pvv(reader, parsed)) {
            Some(MemoValue::Result { columns, rows }) => Some(Self::hit_result(columns, rows)),
            _ => None,
        }
    }

    /// Record a Qq result computed at `sid` (delta path).
    pub(crate) fn record_result(
        &self,
        reader: &SnapshotReader,
        parsed: &SelectStmt,
        sid: u64,
        result: &QueryResult,
    ) {
        if let Some(pvv) = self.pvv(reader, parsed) {
            self.store.insert(
                self.key(sid, EntryKind::Result),
                pvv,
                MemoValue::Result {
                    columns: result.columns.clone(),
                    rows: result.rows.clone(),
                },
            );
        }
    }

    /// Look up the delta-chain seed exported at `sid`.
    pub(crate) fn lookup_seed(
        &self,
        reader: &SnapshotReader,
        parsed: &SelectStmt,
        sid: u64,
    ) -> Option<ScannerSeed> {
        let key = self.key(sid, EntryKind::Seed);
        match self.store.lookup(&key, || self.pvv(reader, parsed)) {
            Some(MemoValue::Seed(seed)) => Some(seed),
            _ => None,
        }
    }

    /// Record the delta scanner's post-scan state at `sid`, so a future
    /// run whose chain passes through `sid` stays on the delta path.
    pub(crate) fn record_seed(
        &self,
        reader: &SnapshotReader,
        parsed: &SelectStmt,
        sid: u64,
        seed: ScannerSeed,
    ) {
        if let Some(pvv) = self.pvv(reader, parsed) {
            self.store
                .insert(self.key(sid, EntryKind::Seed), pvv, MemoValue::Seed(seed));
        }
    }

    /// Sequential-loop variant of [`Self::lookup_result`]: opens the
    /// snapshot only inside the verification closure, so a cold miss
    /// never builds an SPT.
    pub(crate) fn lookup_result_seq(
        &self,
        snap: &Database,
        parsed: &SelectStmt,
        sid: u64,
    ) -> Option<QueryResult> {
        let key = self.key(sid, EntryKind::Result);
        let pvv = || {
            let reader = snap.store().open_snapshot(sid).ok()?;
            self.pvv(&reader, parsed)
        };
        match self.store.lookup(&key, pvv) {
            Some(MemoValue::Result { columns, rows }) => Some(Self::hit_result(columns, rows)),
            _ => None,
        }
    }

    /// Sequential-loop variant of [`Self::record_result`].
    pub(crate) fn record_result_seq(
        &self,
        snap: &Database,
        parsed: &SelectStmt,
        sid: u64,
        result: &QueryResult,
    ) {
        let Ok(reader) = snap.store().open_snapshot(sid) else {
            return;
        };
        self.record_result(&reader, parsed, sid, result);
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use rql_sqlengine::parse_select;

    fn parsed(sql: &str) -> SelectStmt {
        parse_select(sql).unwrap()
    }

    #[test]
    fn fingerprint_canonicalizes_text() {
        let a = qq_fingerprint(&parsed("SELECT a FROM t WHERE a > 1"));
        let b = qq_fingerprint(&parsed("select  a \n from  t  where a > 1"));
        assert_eq!(a, b, "keyword case and whitespace must not fragment keys");
        let c = qq_fingerprint(&parsed("SELECT a FROM t WHERE a > 2"));
        assert_ne!(a, c);
        // String literals are case-sensitive, so the fingerprint must be
        // too (identifier-case variants only cost a spurious miss).
        let lit_a = qq_fingerprint(&parsed("SELECT a FROM t WHERE a = 'X'"));
        let lit_b = qq_fingerprint(&parsed("SELECT a FROM t WHERE a = 'x'"));
        assert_ne!(lit_a, lit_b);
    }

    #[test]
    fn eligibility_rejects_udfs_in_any_clause() {
        assert!(memo_eligible(&parsed("SELECT a FROM t WHERE a > 1")));
        assert!(memo_eligible(&parsed(
            "SELECT current_snapshot(), COUNT(*) FROM t GROUP BY a HAVING SUM(b) > 0"
        )));
        assert!(memo_eligible(&parsed("SELECT upper(a) FROM t")));
        assert!(!memo_eligible(&parsed("SELECT my_udf(a) FROM t")));
        assert!(!memo_eligible(&parsed("SELECT a FROM t WHERE my_udf(a)")));
        assert!(!memo_eligible(&parsed(
            "SELECT a FROM t GROUP BY my_udf(a)"
        )));
        assert!(!memo_eligible(&parsed(
            "SELECT a FROM t GROUP BY a HAVING my_udf(a) > 0"
        )));
        assert!(!memo_eligible(&parsed(
            "SELECT a FROM t ORDER BY my_udf(a)"
        )));
        assert!(!memo_eligible(&parsed(
            "SELECT a FROM t JOIN u ON my_udf(t.a) = u.b"
        )));
    }
}
