//! Parallel snapshot iteration — the paper's future work, implemented.
//!
//! "Our future work includes performance optimizations for RQL programs
//! exploring how computations can be shared across multiple snapshots and
//! whether parallelization can be applied" (paper §7).
//!
//! Parallelization is natural in this architecture: snapshot readers are
//! read-only MVCC transactions over immutable SPTs and `Arc`-published
//! pages, so any number of iterations can execute Qq concurrently. Only
//! the fold into the result table is serialized (the auxiliary store is
//! single-writer). [`collate_data_parallel`] and
//! [`aggregate_data_in_variable_parallel`] run the Qq phase on a thread
//! pool and fold results in Qs order, so their output is byte-identical
//! to the sequential mechanisms.
//!
//! The shared buffer cache makes this *cooperative*: threads working on
//! nearby snapshots warm each other's shared pre-states, so the total
//! Pagelog I/O stays close to the sequential run's.

use std::sync::Mutex;
use std::time::Instant;

use rql_sqlengine::ast::Stmt;
use rql_sqlengine::{parse_select, Database, QueryResult, Result, SqlError};

use crate::aggregate::{AggOp, AggState};
use crate::mechanism;
use crate::report::{IterationReport, RqlReport};
use crate::rewrite::rewrite_select;

/// Run Qq over every snapshot in `qs` using `threads` worker threads,
/// returning per-snapshot results in Qs order.
fn parallel_qq(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    threads: usize,
) -> Result<(Vec<(u64, QueryResult)>, std::time::Duration)> {
    let qs_started = Instant::now();
    let qs_result = aux.query(qs)?;
    let qs_time = qs_started.elapsed();
    if qs_result.columns.len() != 1 {
        return Err(SqlError::Invalid(
            "Qs must return a single snapshot-id column".into(),
        ));
    }
    let ids: Vec<u64> = qs_result
        .rows
        .iter()
        .filter_map(|r| r[0].as_i64())
        .map(|i| i as u64)
        .collect();
    let parsed = parse_select(qq)?;
    if parsed.as_of.is_some() {
        return Err(SqlError::Invalid(
            "Qq must not contain AS OF; RQL binds the snapshot per iteration".into(),
        ));
    }
    let threads = threads.max(1).min(ids.len().max(1));
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<QueryResult>>>> =
        ids.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&sid) = ids.get(i) else { break };
                // Cancellation checkpoint between Qq executions: once the
                // token trips, remaining snapshots fail fast instead of
                // running their queries to completion.
                if let Err(e) = snap.cancel_token().check() {
                    *slots[i].lock().unwrap() = Some(Err(e));
                    continue;
                }
                // A panic inside Qq execution must not poison the scope
                // (which would abort the whole process via the scoped
                // thread's unwind): surface it as a per-snapshot error.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let rewritten = rewrite_select(&parsed, sid);
                    snap.execute_stmt(&Stmt::Select(rewritten))
                        .map(|o| o.rows().expect("SELECT yields rows"))
                }))
                .unwrap_or_else(|payload| {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_owned());
                    Err(SqlError::Invalid(format!(
                        "Qq panicked on snapshot {sid}: {msg}"
                    )))
                });
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });
    let mut out = Vec::with_capacity(ids.len());
    for (sid, slot) in ids.iter().zip(slots) {
        let result = slot
            .into_inner()
            .unwrap()
            .expect("worker filled every slot")?;
        out.push((*sid, result));
    }
    Ok((out, qs_time))
}

fn reports_from(results: &[(u64, QueryResult)]) -> Vec<IterationReport> {
    results
        .iter()
        .map(|(sid, r)| IterationReport {
            snap_id: *sid,
            qq_stats: r.stats,
            udf_time: std::time::Duration::ZERO,
            qq_rows: r.rows.len() as u64,
            result_inserts: 0,
            result_updates: 0,
            memo_hit: false,
            wall: std::time::Duration::ZERO,
        })
        .collect()
}

/// Parallel `CollateData`: Qq executes concurrently; results are folded
/// into `T` in Qs order, so the output matches the sequential mechanism.
pub fn collate_data_parallel(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    threads: usize,
) -> Result<RqlReport> {
    if aux.table_row_count(table).is_ok() {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists"
        )));
    }
    let (results, qs_time) = parallel_qq(snap, aux, qs, qq, threads)?;
    let mut report = RqlReport {
        qs_time,
        iterations: reports_from(&results),
        ..Default::default()
    };
    let fold_started = Instant::now();
    for (i, (_, result)) in results.iter().enumerate() {
        if i == 0 {
            mechanism::create_result_table_pub(aux, table, &result.columns)?;
        }
        let (ins, upd) = aux.with_table_writer(table, |w| {
            for row in &result.rows {
                w.insert(row.clone())?;
            }
            Ok((w.inserted(), w.updated()))
        })?;
        report.iterations[i].result_inserts = ins;
        report.iterations[i].result_updates = upd;
    }
    report.finalize_time = fold_started.elapsed();
    Ok(report)
}

/// Parallel `AggregateDataInVariable`: Qq executes concurrently; the
/// monoid fold order is irrelevant by definition (§2.3's abelian-monoid
/// requirement is exactly what makes this safe).
pub fn aggregate_data_in_variable_parallel(
    snap: &Database,
    aux: &Database,
    qs: &str,
    qq: &str,
    table: &str,
    func: AggOp,
    threads: usize,
) -> Result<RqlReport> {
    if aux.table_row_count(table).is_ok() {
        return Err(SqlError::Constraint(format!(
            "result table {table} already exists"
        )));
    }
    let (results, qs_time) = parallel_qq(snap, aux, qs, qq, threads)?;
    let mut report = RqlReport {
        qs_time,
        iterations: reports_from(&results),
        ..Default::default()
    };
    let fold_started = Instant::now();
    let mut state: AggState = func.init();
    let mut column: Option<String> = None;
    for (_, result) in &results {
        if result.columns.len() != 1 {
            return Err(SqlError::Invalid(
                "AggregateDataInVariable expects Qq to return one column".into(),
            ));
        }
        if column.is_none() {
            column = Some(result.columns[0].clone());
        }
        match result.rows.len() {
            0 => {}
            1 => func.absorb(&mut state, &result.rows[0][0]),
            n => {
                return Err(SqlError::Invalid(format!(
                    "AggregateDataInVariable expects at most one row, got {n}"
                )))
            }
        }
    }
    let column = column.unwrap_or_else(|| "value".to_owned());
    mechanism::create_result_table_pub(aux, table, &[column])?;
    aux.with_table_writer(table, |w| {
        w.insert(vec![func.finish(&state)])?;
        Ok(())
    })?;
    report.finalize_time = fold_started.elapsed();
    Ok(report)
}
