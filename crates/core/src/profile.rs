//! Per-query profile reports — the human/JSON rendering of the cost
//! records every mechanism run already produces.
//!
//! The profile is *derived from* [`RqlReport`], the same structure the
//! experiment harness and the `rqld` METRICS registry consume, so the
//! per-snapshot cost table always reconciles with the server's counters:
//! there is one measurement source, rendered three ways (DESIGN.md §9).
//!
//! Surfaced as `rql --profile`, the embedded session API
//! ([`QueryProfile::from_run`]) and the wire `PROFILE` opcode.

use std::fmt::Write as _;
use std::time::Duration;

use crate::analyze::ProgramRun;
use crate::report::RqlReport;

/// One row of the per-snapshot cost table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotCost {
    /// Snapshot id the iteration ran on.
    pub snap_id: u64,
    /// Pages fetched from any source (db + cache + Pagelog).
    pub pages_read: u64,
    /// Pages fetched from the Pagelog archive (the disk-I/O component).
    pub pagelog_reads: u64,
    /// Pages a delta-aware scan skipped because they were shared with
    /// the previous snapshot in the chain.
    pub pages_shared_skipped: u64,
    /// Pages skipped because a zone-map/bloom sidecar refuted the Qq
    /// WHERE clause.
    pub pages_pruned: u64,
    /// Whether the Qq result came from the memo store.
    pub memo_hit: bool,
    /// Whether the iteration took the delta-aware scan path.
    pub delta_path: bool,
    /// Rows Qq produced.
    pub qq_rows: u64,
    /// Wall-clock time of the whole iteration.
    pub wall: Duration,
    /// Measured CPU components: SPT build + index creation + eval + UDF.
    pub cpu: Duration,
}

/// Profile of one mechanism invocation.
#[derive(Debug, Clone)]
pub struct MechanismProfile {
    /// Result table the mechanism wrote.
    pub table: String,
    /// Time running Qs on the auxiliary database.
    pub qs_time: Duration,
    /// Time in the final step (e.g. materializing the variable).
    pub finalize_time: Duration,
    /// Per-snapshot cost rows, in Qs order.
    pub snapshots: Vec<SnapshotCost>,
}

impl MechanismProfile {
    /// Build from one mechanism's report.
    pub fn from_report(table: &str, report: &RqlReport) -> Self {
        let snapshots = report
            .iterations
            .iter()
            .map(|it| SnapshotCost {
                snap_id: it.snap_id,
                pages_read: it.qq_stats.io.total_fetches(),
                pagelog_reads: it.qq_stats.io.pagelog_reads,
                pages_shared_skipped: it.qq_stats.pages_skipped_delta,
                pages_pruned: it.qq_stats.pages_pruned_filter,
                memo_hit: it.memo_hit,
                delta_path: it.qq_stats.delta_eligible > 0,
                qq_rows: it.qq_rows,
                wall: it.wall,
                cpu: it.qq_stats.spt_build
                    + it.qq_stats.index_creation
                    + it.qq_stats.eval
                    + it.udf_time,
            })
            .collect();
        MechanismProfile {
            table: table.to_owned(),
            qs_time: report.qs_time,
            finalize_time: report.finalize_time,
            snapshots,
        }
    }

    /// Sum of a per-snapshot field across the table.
    fn total(&self, f: impl Fn(&SnapshotCost) -> u64) -> u64 {
        self.snapshots.iter().map(f).sum()
    }

    fn total_wall(&self) -> Duration {
        self.snapshots.iter().map(|s| s.wall).sum()
    }

    fn total_cpu(&self) -> Duration {
        self.snapshots.iter().map(|s| s.cpu).sum()
    }

    fn memo_hits(&self) -> u64 {
        self.snapshots.iter().filter(|s| s.memo_hit).count() as u64
    }
}

/// Profile of one whole program/query execution.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// One entry per mechanism invocation, in order.
    pub mechanisms: Vec<MechanismProfile>,
    /// Rows returned by plain (non-mechanism) SELECTs.
    pub select_rows: u64,
    /// Snapshots the program declared while running.
    pub snapshots_declared: u64,
}

impl QueryProfile {
    /// Build from a captured program run.
    pub fn from_run(run: &ProgramRun) -> Self {
        let mut p = Self::from_reports(&run.reports);
        p.select_rows = run.tables.iter().map(|t| t.rows.len() as u64).sum();
        p.snapshots_declared = run.snapshots.len() as u64;
        p
    }

    /// Build from bare `(result_table, report)` pairs (the embedded
    /// session path, where no `ProgramRun` exists).
    pub fn from_reports(reports: &[(String, RqlReport)]) -> Self {
        QueryProfile {
            mechanisms: reports
                .iter()
                .map(|(t, r)| MechanismProfile::from_report(t, r))
                .collect(),
            select_rows: 0,
            snapshots_declared: 0,
        }
    }

    /// Human tree rendering. With `redact_times` every duration renders
    /// as `-`, making the output stable for golden tests while keeping
    /// the counter columns exact.
    pub fn render_human(&self, redact_times: bool) -> String {
        let ms = |d: Duration| -> String {
            if redact_times {
                "-".to_owned()
            } else {
                format!("{:.3}ms", d.as_secs_f64() * 1e3)
            }
        };
        let mut out = format!(
            "profile: {} mechanism call(s), {} plain select row(s), {} snapshot(s) declared\n",
            self.mechanisms.len(),
            self.select_rows,
            self.snapshots_declared,
        );
        for (mi, m) in self.mechanisms.iter().enumerate() {
            let last = mi + 1 == self.mechanisms.len();
            let branch = if last { "└─" } else { "├─" };
            let pad = if last { "   " } else { "│  " };
            let _ = writeln!(
                out,
                "{branch} {} ({} snapshot(s), {} memo hit(s), Qs {}, finalize {})",
                m.table,
                m.snapshots.len(),
                m.memo_hits(),
                ms(m.qs_time),
                ms(m.finalize_time),
            );
            let _ = writeln!(
                out,
                "{pad}{:>8} {:>7} {:>7} {:>8} {:>7} {:>5} {:>6} {:>8} {:>10} {:>10}",
                "snap",
                "pages",
                "pagelog",
                "skipped",
                "pruned",
                "memo",
                "path",
                "rows",
                "wall",
                "cpu"
            );
            for s in &m.snapshots {
                let _ = writeln!(
                    out,
                    "{pad}{:>8} {:>7} {:>7} {:>8} {:>7} {:>5} {:>6} {:>8} {:>10} {:>10}",
                    s.snap_id,
                    s.pages_read,
                    s.pagelog_reads,
                    s.pages_shared_skipped,
                    s.pages_pruned,
                    if s.memo_hit { "hit" } else { "miss" },
                    if s.delta_path { "delta" } else { "seq" },
                    s.qq_rows,
                    ms(s.wall),
                    ms(s.cpu),
                );
            }
            let _ = writeln!(
                out,
                "{pad}{:>8} {:>7} {:>7} {:>8} {:>7} {:>5} {:>6} {:>8} {:>10} {:>10}",
                "total",
                m.total(|s| s.pages_read),
                m.total(|s| s.pagelog_reads),
                m.total(|s| s.pages_shared_skipped),
                m.total(|s| s.pages_pruned),
                m.memo_hits(),
                m.total(|s| u64::from(s.delta_path)),
                m.total(|s| s.qq_rows),
                ms(m.total_wall()),
                ms(m.total_cpu()),
            );
        }
        out
    }

    /// JSON rendering (hand-rolled; the workspace is dependency-free).
    /// With `redact_times` durations render as `null`.
    pub fn render_json(&self, redact_times: bool) -> String {
        let us = |d: Duration| -> String {
            if redact_times {
                "null".to_owned()
            } else {
                format!("{}", d.as_micros())
            }
        };
        let mut out = String::from("{");
        let _ = write!(
            out,
            "\"select_rows\":{},\"snapshots_declared\":{},\"mechanisms\":[",
            self.select_rows, self.snapshots_declared
        );
        for (mi, m) in self.mechanisms.iter().enumerate() {
            if mi > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"table\":\"{}\",\"qs_micros\":{},\"finalize_micros\":{},\"snapshots\":[",
                json_escape(&m.table),
                us(m.qs_time),
                us(m.finalize_time),
            );
            for (si, s) in m.snapshots.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"snap_id\":{},\"pages_read\":{},\"pagelog_reads\":{},\
                     \"pages_shared_skipped\":{},\"pages_pruned\":{},\"memo_hit\":{},\
                     \"delta_path\":{},\
                     \"qq_rows\":{},\"wall_micros\":{},\"cpu_micros\":{}}}",
                    s.snap_id,
                    s.pages_read,
                    s.pagelog_reads,
                    s.pages_shared_skipped,
                    s.pages_pruned,
                    s.memo_hit,
                    s.delta_path,
                    s.qq_rows,
                    us(s.wall),
                    us(s.cpu),
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use crate::report::IterationReport;
    use rql_pagestore::IoStatsSnapshot;
    use rql_sqlengine::ExecStats;

    fn report() -> RqlReport {
        RqlReport {
            iterations: vec![
                IterationReport {
                    snap_id: 1,
                    qq_stats: ExecStats {
                        io: IoStatsSnapshot {
                            db_reads: 3,
                            cache_hits: 1,
                            pagelog_reads: 2,
                            ..Default::default()
                        },
                        pages_skipped_delta: 0,
                        ..Default::default()
                    },
                    udf_time: Duration::from_millis(1),
                    qq_rows: 10,
                    result_inserts: 10,
                    result_updates: 0,
                    memo_hit: false,
                    wall: Duration::from_millis(4),
                },
                IterationReport {
                    snap_id: 2,
                    qq_stats: ExecStats {
                        pages_skipped_delta: 5,
                        pages_pruned_filter: 2,
                        delta_eligible: 1,
                        ..Default::default()
                    },
                    udf_time: Duration::ZERO,
                    qq_rows: 10,
                    result_inserts: 10,
                    result_updates: 0,
                    memo_hit: true,
                    wall: Duration::from_millis(1),
                },
            ],
            qs_time: Duration::from_millis(2),
            finalize_time: Duration::ZERO,
        }
    }

    #[test]
    fn human_table_has_a_row_per_snapshot_plus_total() {
        let p = QueryProfile::from_reports(&[("t".to_owned(), report())]);
        let human = p.render_human(true);
        assert!(human.contains("1 mechanism call(s)"));
        assert!(human.contains("hit"));
        assert!(human.contains("miss"));
        assert!(human.contains("delta"));
        assert!(human.contains("total"));
        // Redacted times never leak digits.
        assert!(!human.contains("ms"));
    }

    #[test]
    fn counters_reconcile_with_the_report() {
        let r = report();
        let p = QueryProfile::from_reports(&[("t".to_owned(), r.clone())]);
        let m = &p.mechanisms[0];
        assert_eq!(
            m.total(|s| s.pages_read),
            r.accumulated_stats().io.total_fetches()
        );
        assert_eq!(
            m.total(|s| s.pages_shared_skipped),
            r.accumulated_stats().pages_skipped_delta
        );
        assert_eq!(
            m.total(|s| s.pages_pruned),
            r.accumulated_stats().pages_pruned_filter
        );
        assert_eq!(m.memo_hits(), r.memo_hits());
        assert_eq!(m.total(|s| s.qq_rows), r.total_qq_rows());
    }

    #[test]
    fn json_is_structurally_sound() {
        let p = QueryProfile::from_reports(&[("t".to_owned(), report())]);
        let json = p.render_json(false);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json.contains("\"memo_hit\":true"));
        assert!(json.contains("\"pages_shared_skipped\":5"));
        assert!(json.contains("\"pages_pruned\":2"));
        let redacted = p.render_json(true);
        assert!(redacted.contains("\"wall_micros\":null"));
    }
}
