//! Per-iteration cost reports for RQL computations.
//!
//! The experiment harness reproduces the paper's figures from these:
//! each iteration carries the engine's cost split (I/O counters, SPT
//! build, ad-hoc index creation, query evaluation) plus the RQL UDF time
//! (result processing) — the five stacked components of Figures 8–13.

use std::time::Duration;

use rql_pagestore::IoCostModel;
use rql_sqlengine::ExecStats;

/// Cost record for one RQL iteration (one snapshot).
#[derive(Debug, Clone)]
pub struct IterationReport {
    /// Snapshot this iteration ran on.
    pub snap_id: u64,
    /// The engine's breakdown for the rewritten Qq execution.
    pub qq_stats: ExecStats,
    /// Time the mechanism spent processing Qq's output ("RQL UDF" in the
    /// paper's figures).
    pub udf_time: Duration,
    /// Rows Qq returned in this iteration.
    pub qq_rows: u64,
    /// Rows inserted into the result table this iteration.
    pub result_inserts: u64,
    /// Rows updated in the result table this iteration (§5.2: SUM updates
    /// every group, MAX only the groups whose maximum changed).
    pub result_updates: u64,
    /// Whether the Qq result came from the memo store (hits skip the
    /// executor, so `qq_stats` is zeroed for them).
    pub memo_hit: bool,
    /// Wall-clock time of the whole iteration: Qq execution (or memo
    /// lookup) plus result folding. The profile report's per-snapshot
    /// cost table is built from this.
    pub wall: Duration,
}

impl IterationReport {
    /// Modeled total latency of this iteration.
    pub fn total_cost(&self, model: &IoCostModel) -> Duration {
        self.qq_stats.total_cost(model) + self.udf_time
    }
}

/// Report for one whole RQL computation.
#[derive(Debug, Clone, Default)]
pub struct RqlReport {
    /// Per-iteration records, in Qs order.
    pub iterations: Vec<IterationReport>,
    /// Time spent running Qs itself (on the auxiliary database).
    pub qs_time: Duration,
    /// Time spent on any final step (e.g. materializing the
    /// `AggregateDataInVariable` result table).
    pub finalize_time: Duration,
}

impl RqlReport {
    /// Number of iterations (snapshots visited).
    pub fn iteration_count(&self) -> usize {
        self.iterations.len()
    }

    /// Total rows Qq produced across all iterations.
    pub fn total_qq_rows(&self) -> u64 {
        self.iterations.iter().map(|i| i.qq_rows).sum()
    }

    /// Modeled total latency of the whole computation.
    pub fn total_cost(&self, model: &IoCostModel) -> Duration {
        self.qs_time
            + self.finalize_time
            + self
                .iterations
                .iter()
                .map(|i| i.total_cost(model))
                .sum::<Duration>()
    }

    /// Accumulated engine stats across iterations.
    pub fn accumulated_stats(&self) -> ExecStats {
        let mut acc = ExecStats::default();
        for it in &self.iterations {
            acc.accumulate(&it.qq_stats);
        }
        acc
    }

    /// Total UDF time across iterations.
    pub fn total_udf_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.udf_time).sum()
    }

    /// Total result-table inserts across iterations.
    pub fn total_result_inserts(&self) -> u64 {
        self.iterations.iter().map(|i| i.result_inserts).sum()
    }

    /// Total result-table updates across iterations.
    pub fn total_result_updates(&self) -> u64 {
        self.iterations.iter().map(|i| i.result_updates).sum()
    }

    /// Iterations whose Qq result was served from the memo store.
    pub fn memo_hits(&self) -> u64 {
        self.iterations.iter().filter(|i| i.memo_hit).count() as u64
    }

    /// The first (cold) iteration, if any.
    pub fn cold(&self) -> Option<&IterationReport> {
        self.iterations.first()
    }

    /// Mean over the hot (non-first) iterations of `f`.
    pub fn hot_mean(&self, f: impl Fn(&IterationReport) -> f64) -> Option<f64> {
        let hot = &self.iterations.get(1..)?;
        if hot.is_empty() {
            return None;
        }
        Some(hot.iter().map(&f).sum::<f64>() / hot.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_pagestore::IoStatsSnapshot;

    fn iter(snap_id: u64, pagelog_reads: u64, eval_ms: u64, udf_ms: u64) -> IterationReport {
        IterationReport {
            snap_id,
            qq_stats: ExecStats {
                eval: Duration::from_millis(eval_ms),
                io: IoStatsSnapshot {
                    pagelog_reads,
                    ..Default::default()
                },
                ..Default::default()
            },
            udf_time: Duration::from_millis(udf_ms),
            qq_rows: 10,
            result_inserts: 0,
            result_updates: 0,
            memo_hit: false,
            wall: Duration::from_millis(eval_ms + udf_ms),
        }
    }

    #[test]
    fn totals_and_means() {
        let report = RqlReport {
            iterations: vec![iter(1, 100, 10, 1), iter(2, 10, 10, 1), iter(3, 10, 10, 1)],
            qs_time: Duration::from_millis(2),
            finalize_time: Duration::ZERO,
        };
        assert_eq!(report.iteration_count(), 3);
        assert_eq!(report.total_qq_rows(), 30);
        let model = IoCostModel::default();
        // 120 pagelog reads à 100µs = 12ms, +30ms eval +3ms udf +2ms qs.
        assert_eq!(report.total_cost(&model), Duration::from_millis(47));
        assert_eq!(report.cold().unwrap().snap_id, 1);
        let hot_io = report
            .hot_mean(|i| i.qq_stats.io.pagelog_reads as f64)
            .unwrap();
        assert!((hot_io - 10.0).abs() < 1e-9);
        assert_eq!(report.accumulated_stats().io.pagelog_reads, 120);
        assert_eq!(report.total_udf_time(), Duration::from_millis(3));
    }

    #[test]
    fn empty_report() {
        let report = RqlReport::default();
        assert!(report.cold().is_none());
        assert!(report.hot_mean(|_| 0.0).is_none());
        assert_eq!(report.iteration_count(), 0);
    }
}
