//! Qq rewriting: binding the per-snapshot query to the loop index.
//!
//! Paper §3: "as a first step, our 'loop body' UDF rewrites the Qq,
//! binding it to the value of 'loop index' snap_id. The rewriting
//! involves adding the 'AS OF snap_id' extension, and replacing every
//! occurrence of current_snapshot() function with the value of snap_id."
//!
//! The paper rewrites the SQL string; we rewrite the parsed AST, which is
//! semantically identical and immune to quoting pitfalls, and also
//! provide the string form for display and fidelity tests.

use rql_sqlengine::ast::{Expr, SelectItem, SelectStmt};
use rql_sqlengine::{parse_select, Result, SqlError, Value};

/// The function name the programmer writes in Qq.
pub const CURRENT_SNAPSHOT: &str = "current_snapshot";

/// Rewrite a parsed Qq for iteration `snap_id`: set `AS OF` and replace
/// `current_snapshot()` with the literal id.
pub fn rewrite_select(select: &SelectStmt, snap_id: u64) -> SelectStmt {
    let mut out = select.clone();
    out.as_of = Some(Expr::int(snap_id as i64));
    let subst = |e: &mut Expr| substitute_current_snapshot(e, snap_id);
    for item in &mut out.items {
        if let SelectItem::Expr { expr, alias } = item {
            // Keep the derived output name when a bare current_snapshot()
            // projection turns into a literal.
            if alias.is_none() {
                if let Expr::Function { name, .. } = expr {
                    if name == CURRENT_SNAPSHOT {
                        *alias = Some(CURRENT_SNAPSHOT.to_owned());
                    }
                }
            }
            subst(expr);
        }
    }
    if let Some(w) = &mut out.where_clause {
        subst(w);
    }
    for j in &mut out.joins {
        subst(&mut j.on);
    }
    for g in &mut out.group_by {
        subst(g);
    }
    if let Some(h) = &mut out.having {
        subst(h);
    }
    for (e, _) in &mut out.order_by {
        subst(e);
    }
    out
}

/// Parse and rewrite a Qq string.
pub fn rewrite_sql(qq: &str, snap_id: u64) -> Result<SelectStmt> {
    let select = parse_select(qq)?;
    if select.as_of.is_some() {
        return Err(SqlError::Invalid(
            "Qq must not contain AS OF; RQL binds the snapshot per iteration".into(),
        ));
    }
    Ok(rewrite_select(&select, snap_id))
}

/// Replace `current_snapshot()` calls inside an expression tree.
fn substitute_current_snapshot(expr: &mut Expr, snap_id: u64) {
    match expr {
        Expr::Function { name, args, .. } => {
            if name == CURRENT_SNAPSHOT {
                *expr = Expr::Literal(Value::Integer(snap_id as i64));
            } else {
                for a in args {
                    substitute_current_snapshot(a, snap_id);
                }
            }
        }
        Expr::Unary { expr, .. } => substitute_current_snapshot(expr, snap_id),
        Expr::Binary { lhs, rhs, .. } => {
            substitute_current_snapshot(lhs, snap_id);
            substitute_current_snapshot(rhs, snap_id);
        }
        Expr::IsNull { expr, .. } => substitute_current_snapshot(expr, snap_id),
        Expr::InList { expr, list, .. } => {
            substitute_current_snapshot(expr, snap_id);
            for e in list {
                substitute_current_snapshot(e, snap_id);
            }
        }
        Expr::Between { expr, lo, hi, .. } => {
            substitute_current_snapshot(expr, snap_id);
            substitute_current_snapshot(lo, snap_id);
            substitute_current_snapshot(hi, snap_id);
        }
        Expr::Like { expr, pattern, .. } => {
            substitute_current_snapshot(expr, snap_id);
            substitute_current_snapshot(pattern, snap_id);
        }
        Expr::Case {
            operand,
            arms,
            else_branch,
        } => {
            if let Some(o) = operand {
                substitute_current_snapshot(o, snap_id);
            }
            for (w, t) in arms {
                substitute_current_snapshot(w, snap_id);
                substitute_current_snapshot(t, snap_id);
            }
            if let Some(e) = else_branch {
                substitute_current_snapshot(e, snap_id);
            }
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Star => {}
    }
}

/// Does the expression call `current_snapshot()` anywhere?
///
/// The delta iteration driver uses this to decide which clauses vary
/// between iterations: a `current_snapshot()` in the WHERE clause means
/// the scan filter differs per snapshot, which the per-page row cache of
/// a delta scan cannot represent.
pub fn uses_current_snapshot(expr: &Expr) -> bool {
    match expr {
        Expr::Function { name, args, .. } => {
            name == CURRENT_SNAPSHOT || args.iter().any(uses_current_snapshot)
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => uses_current_snapshot(expr),
        Expr::Binary { lhs, rhs, .. } => uses_current_snapshot(lhs) || uses_current_snapshot(rhs),
        Expr::InList { expr, list, .. } => {
            uses_current_snapshot(expr) || list.iter().any(uses_current_snapshot)
        }
        Expr::Between { expr, lo, hi, .. } => {
            uses_current_snapshot(expr) || uses_current_snapshot(lo) || uses_current_snapshot(hi)
        }
        Expr::Like { expr, pattern, .. } => {
            uses_current_snapshot(expr) || uses_current_snapshot(pattern)
        }
        Expr::Case {
            operand,
            arms,
            else_branch,
        } => {
            operand.as_deref().is_some_and(uses_current_snapshot)
                || arms
                    .iter()
                    .any(|(w, t)| uses_current_snapshot(w) || uses_current_snapshot(t))
                || else_branch.as_deref().is_some_and(uses_current_snapshot)
        }
        Expr::Literal(_) | Expr::Column { .. } | Expr::Star => false,
    }
}

/// Render the rewritten query back to SQL text (the paper's presentation
/// of the rewrite: `SELECT AS OF Si DISTINCT Si FROM LoggedIn …`).
pub fn render_select(select: &SelectStmt) -> String {
    let mut s = String::from("SELECT ");
    if let Some(as_of) = &select.as_of {
        s.push_str(&format!("AS OF {} ", render_expr(as_of)));
    }
    if select.distinct {
        s.push_str("DISTINCT ");
    }
    let items: Vec<String> = select
        .items
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_owned(),
            SelectItem::TableWildcard(t) => format!("{t}.*"),
            SelectItem::Expr { expr, alias } => match alias {
                Some(a) => format!("{} AS {a}", render_expr(expr)),
                None => render_expr(expr),
            },
        })
        .collect();
    s.push_str(&items.join(", "));
    if !select.from.is_empty() {
        s.push_str(" FROM ");
        let tables: Vec<String> = select
            .from
            .iter()
            .map(|t| match &t.alias {
                Some(a) => format!("{} {a}", t.name),
                None => t.name.clone(),
            })
            .collect();
        s.push_str(&tables.join(", "));
    }
    for j in &select.joins {
        s.push_str(&format!(" JOIN {} ON {}", j.table.name, render_expr(&j.on)));
    }
    if let Some(w) = &select.where_clause {
        s.push_str(&format!(" WHERE {}", render_expr(w)));
    }
    if !select.group_by.is_empty() {
        let gs: Vec<String> = select.group_by.iter().map(render_expr).collect();
        s.push_str(&format!(" GROUP BY {}", gs.join(", ")));
    }
    if let Some(h) = &select.having {
        s.push_str(&format!(" HAVING {}", render_expr(h)));
    }
    if !select.order_by.is_empty() {
        let os: Vec<String> = select
            .order_by
            .iter()
            .map(|(e, desc)| format!("{}{}", render_expr(e), if *desc { " DESC" } else { "" }))
            .collect();
        s.push_str(&format!(" ORDER BY {}", os.join(", ")));
    }
    if let Some(l) = &select.limit {
        s.push_str(&format!(" LIMIT {}", render_expr(l)));
    }
    s
}

fn render_expr(e: &Expr) -> String {
    use rql_sqlengine::ast::{BinOp, UnaryOp};
    match e {
        Expr::Literal(Value::Text(t)) => format!("'{}'", t.replace('\'', "''")),
        Expr::Literal(v) => v.to_string(),
        Expr::Column { table, name } => match table {
            Some(t) => format!("{t}.{name}"),
            None => name.clone(),
        },
        Expr::Star => "*".to_owned(),
        Expr::Unary { op, expr } => match op {
            UnaryOp::Neg => format!("-{}", render_expr(expr)),
            UnaryOp::Not => format!("NOT {}", render_expr(expr)),
        },
        Expr::Binary { op, lhs, rhs } => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Concat => "||",
                BinOp::Eq => "=",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Le => "<=",
                BinOp::Gt => ">",
                BinOp::Ge => ">=",
                BinOp::And => "AND",
                BinOp::Or => "OR",
            };
            format!("({} {sym} {})", render_expr(lhs), render_expr(rhs))
        }
        Expr::Function {
            name,
            args,
            distinct,
        } => {
            let rendered: Vec<String> = args.iter().map(render_expr).collect();
            format!(
                "{name}({}{})",
                if *distinct { "DISTINCT " } else { "" },
                rendered.join(", ")
            )
        }
        Expr::IsNull { expr, negated } => format!(
            "{} IS {}NULL",
            render_expr(expr),
            if *negated { "NOT " } else { "" }
        ),
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let items: Vec<String> = list.iter().map(render_expr).collect();
            format!(
                "{} {}IN ({})",
                render_expr(expr),
                if *negated { "NOT " } else { "" },
                items.join(", ")
            )
        }
        Expr::Between {
            expr,
            lo,
            hi,
            negated,
        } => format!(
            "{} {}BETWEEN {} AND {}",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(lo),
            render_expr(hi)
        ),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => format!(
            "{} {}LIKE {}",
            render_expr(expr),
            if *negated { "NOT " } else { "" },
            render_expr(pattern)
        ),
        Expr::Case {
            operand,
            arms,
            else_branch,
        } => {
            let mut s = String::from("CASE");
            if let Some(o) = operand {
                s.push_str(&format!(" {}", render_expr(o)));
            }
            for (w, t) in arms {
                s.push_str(&format!(" WHEN {} THEN {}", render_expr(w), render_expr(t)));
            }
            if let Some(e) = else_branch {
                s.push_str(&format!(" ELSE {}", render_expr(e)));
            }
            s.push_str(" END");
            s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rewrite_example() {
        // §3: the programmer's Qq …
        let qq = "SELECT DISTINCT current_snapshot() FROM LoggedIn \
                  WHERE l_userid = 'UserB'";
        // … becomes, for iteration Si = 7:
        let rewritten = rewrite_sql(qq, 7).unwrap();
        assert_eq!(rewritten.as_of, Some(Expr::int(7)));
        let text = render_select(&rewritten);
        // The literal keeps the programmer-visible column name.
        assert_eq!(
            text,
            "SELECT AS OF 7 DISTINCT 7 AS current_snapshot FROM LoggedIn \
             WHERE (l_userid = 'UserB')"
        );
    }

    #[test]
    fn substitutes_in_all_clauses() {
        let qq = "SELECT current_snapshot(), abs(current_snapshot()) FROM t \
                  WHERE a = current_snapshot() \
                  GROUP BY current_snapshot() HAVING COUNT(*) > current_snapshot() \
                  ORDER BY current_snapshot()";
        let r = rewrite_sql(qq, 3).unwrap();
        let text = render_select(&r);
        // No *call* remains (the alias keeps the name, the calls do not).
        assert!(!text.contains("current_snapshot("), "{text}");
        // Every occurrence became the literal.
        assert_eq!(text.matches('3').count(), 7); // AS OF 3 + six occurrences
    }

    #[test]
    fn as_of_in_qq_rejected() {
        assert!(rewrite_sql("SELECT AS OF 1 * FROM t", 2).is_err());
    }

    #[test]
    fn rewrite_preserves_other_functions() {
        let r = rewrite_sql("SELECT COUNT(*), upper(name) FROM t", 5).unwrap();
        let text = render_select(&r);
        assert!(text.contains("count(*)"));
        assert!(text.contains("upper(name)"));
    }

    #[test]
    fn render_round_trips_through_parser() {
        let cases = [
            "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av FROM orders \
             GROUP BY o_custkey",
            "SELECT a FROM t WHERE x IN (1, 2) AND y BETWEEN 1 AND 2 OR z IS NOT NULL \
             ORDER BY a DESC LIMIT 3",
            "SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part \
             WHERE p_partkey = l_partkey AND p_type = 'STANDARD POLISHED TIN'",
        ];
        for sql in cases {
            let first = parse_select(sql).unwrap();
            let text = render_select(&first);
            let second = parse_select(&text).unwrap();
            let text2 = render_select(&second);
            assert_eq!(text, text2, "unstable rendering for {sql}");
        }
    }
}
