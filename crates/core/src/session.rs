//! `RqlSession`: the programmer-facing entry point.
//!
//! Owns the two databases of the paper's architecture — the snapshotable
//! application database and the auxiliary (non-snapshotable) database
//! holding `SnapIds` and result tables — registers the RQL mechanisms as
//! UDFs so they can be invoked in SQL position
//! (`SELECT CollateData(snap_id, …) FROM SnapIds`, paper §3), and keeps
//! `SnapIds` in sync with snapshot declarations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::Mutex;

use rql_memo::MemoStore;
use rql_retro::RetroConfig;
use rql_sqlengine::{CancelCause, Database, ExecOutcome, QueryResult, Result, SqlError, Value};

use crate::aggregate::{parse_col_func_pairs, AggOp};
use crate::analyze::{self, MechanismCall, MechanismKind, SchemaEnv};
use crate::delta::{self, DeltaPolicy};
use crate::mechanism;
use crate::report::RqlReport;
use crate::snapids;

/// An RQL session over a pair of databases.
pub struct RqlSession {
    snap: Arc<Database>,
    aux: Arc<Database>,
    /// Timestamp source for `SnapIds` entries (overridable for
    /// deterministic tests and benchmarks).
    clock: Mutex<Box<dyn Fn() -> String + Send>>,
    /// Reports produced by mechanism UDF invocations, keyed by result
    /// table, retrievable after SQL-driven runs.
    last_reports: Mutex<Vec<(String, RqlReport)>>,
    /// Previous-iteration snapshot id per result table, threaded between
    /// `CollateDataIntoIntervals` UDF invocations.
    prev_sids: Mutex<std::collections::HashMap<String, u64>>,
    /// Whether mechanism calls run the static analyzer as a pre-flight
    /// (on by default; tests exercising mid-loop failure paths turn it
    /// off via [`RqlSession::set_preflight`]).
    preflight: AtomicBool,
    /// Optional Qq memoization store (see `rql-memo`). `None` — the
    /// embedded default — means every Qq executes live; a server that
    /// wants cross-session reuse attaches one shared store via
    /// [`RqlSession::set_memo`].
    memo: Mutex<Option<Arc<MemoStore>>>,
}

impl RqlSession {
    /// Create a session with in-memory stores.
    pub fn new(config: RetroConfig) -> Result<Arc<RqlSession>> {
        let snap = Database::in_memory(config.clone());
        // The auxiliary database never declares snapshots; give it the
        // same page size for comparable size accounting.
        let aux = Database::in_memory(config);
        Self::over_databases(snap, aux)
    }

    /// Assemble a session over existing databases. This is how a server
    /// hands out per-connection sessions that *share* one snapshotable
    /// store (each connection wraps it in its own [`Database`] facade, so
    /// cancellation tokens stay per-connection) while keeping a private
    /// auxiliary database for `SnapIds` and result tables.
    pub fn over_databases(snap: Arc<Database>, aux: Arc<Database>) -> Result<Arc<RqlSession>> {
        snapids::ensure_snapids(&aux)?;
        let session = Arc::new(RqlSession {
            snap,
            aux,
            clock: Mutex::new(Box::new(default_clock)),
            last_reports: Mutex::new(Vec::new()),
            prev_sids: Mutex::new(std::collections::HashMap::new()),
            preflight: AtomicBool::new(true),
            memo: Mutex::new(None),
        });
        session.register_udfs();
        Ok(session)
    }

    /// Default configuration.
    pub fn with_defaults() -> Result<Arc<RqlSession>> {
        Self::new(RetroConfig::new())
    }

    /// The snapshotable application database.
    pub fn snap_db(&self) -> &Arc<Database> {
        &self.snap
    }

    /// The auxiliary (non-snapshotable) database holding `SnapIds` and
    /// result tables.
    pub fn aux_db(&self) -> &Arc<Database> {
        &self.aux
    }

    /// Replace the timestamp source (deterministic tests/benchmarks).
    pub fn set_clock(&self, clock: impl Fn() -> String + Send + 'static) {
        *self.clock.lock() = Box::new(clock);
    }

    // ---- Qq memoization ------------------------------------------------

    /// Attach (or with `None`, detach) a Qq memoization store. Snapshots
    /// are immutable, so the store may be shared across sessions over
    /// the same snapshotable store — that is exactly what the `rqld`
    /// server does, one store behind the whole session pool.
    pub fn set_memo(&self, memo: Option<Arc<MemoStore>>) {
        *self.memo.lock() = memo;
    }

    /// The currently attached memo store, if any.
    pub fn memo(&self) -> Option<Arc<MemoStore>> {
        self.memo.lock().clone()
    }

    // ---- cooperative cancellation --------------------------------------

    /// Trip both databases' interrupt flags: any in-flight statement on
    /// this session unwinds with `[RQL3xx] SqlError::Cancelled` at its
    /// next checkpoint (between snapshots of a mechanism loop, between
    /// Qq row batches inside the executor).
    pub fn cancel(&self, cause: CancelCause) {
        self.snap.cancel_token().cancel(cause);
        self.aux.cancel_token().cancel(cause);
    }

    /// Whether a cancellation is pending (sticky until cleared).
    pub fn is_cancelled(&self) -> bool {
        self.snap.cancel_token().is_cancelled() || self.aux.cancel_token().is_cancelled()
    }

    /// Re-arm after a cancellation so the session can run again.
    pub fn clear_cancel(&self) {
        self.snap.cancel_token().clear();
        self.aux.cancel_token().clear();
    }

    /// Execute application SQL on the snapshotable database, recording
    /// any `COMMIT WITH SNAPSHOT` in `SnapIds`.
    pub fn execute(&self, sql: &str) -> Result<ExecOutcome> {
        self.execute_named(sql, None)
    }

    /// Like [`Self::execute`], attaching a user-friendly name to a
    /// snapshot the script declares.
    pub fn execute_named(&self, sql: &str, snapshot_name: Option<&str>) -> Result<ExecOutcome> {
        let stmts = rql_sqlengine::parse_statements(sql)?;
        let mut last = ExecOutcome::Done;
        for stmt in &stmts {
            last = self.snap.execute_stmt(stmt)?;
            if let ExecOutcome::SnapshotDeclared(sid) = last {
                let ts = (self.clock.lock())();
                snapids::record_snapshot(&self.aux, sid, &ts, snapshot_name)?;
            }
        }
        Ok(last)
    }

    /// Declare a snapshot with an empty transaction and record it.
    pub fn declare_snapshot(&self, name: Option<&str>) -> Result<u64> {
        let sid = self.snap.declare_snapshot()?;
        let ts = (self.clock.lock())();
        snapids::record_snapshot(&self.aux, sid, &ts, name)?;
        Ok(sid)
    }

    /// Query the snapshotable database (supports `AS OF`).
    pub fn query(&self, sql: &str) -> Result<QueryResult> {
        self.snap.query(sql)
    }

    /// Query the auxiliary database (SnapIds, result tables).
    pub fn query_aux(&self, sql: &str) -> Result<QueryResult> {
        self.aux.query(sql)
    }

    /// Drop a result table if it exists (mechanisms refuse to overwrite).
    pub fn drop_result_table(&self, table: &str) -> Result<()> {
        self.aux.execute(&format!("DROP TABLE IF EXISTS {table}"))?;
        Ok(())
    }

    // ---- static-analysis pre-flight ------------------------------------

    /// Enable or disable the mandatory pre-flight analysis on mechanism
    /// calls. It is on by default; tests that deliberately exercise
    /// mid-loop failure paths (or callers that want the old
    /// fail-at-iteration behaviour) can turn it off.
    pub fn set_preflight(&self, enabled: bool) {
        self.preflight.store(enabled, Ordering::Relaxed);
    }

    /// Run the static analyzer over one mechanism call before executing
    /// it. Errors map to the same [`SqlError`] variants the runtime would
    /// raise, so callers matching on variants see no difference — they
    /// just see the failure before any snapshot is opened.
    ///
    /// A Qq may reference tables that only exist in older snapshots (the
    /// per-iteration `AS OF` makes them visible); when the current
    /// catalog lacks a Qq table, the catalog is widened with every
    /// declared snapshot's schema and analysis retried once.
    fn preflight_mechanism(
        &self,
        kind: MechanismKind,
        qs: &str,
        qq: &str,
        table: &str,
        spec: Option<&str>,
        policy: Option<DeltaPolicy>,
    ) -> Result<()> {
        if !self.preflight.load(Ordering::Relaxed) {
            return Ok(());
        }
        let mut snap_env = SchemaEnv::from_database(&self.snap)?;
        let aux_env = SchemaEnv::from_database(&self.aux)?;
        let call = MechanismCall {
            kind,
            qs,
            qq,
            table,
            spec,
        };
        let mut analysis = analyze::analyze_mechanism_call(&call, &snap_env, &aux_env, policy);
        if !analysis.qq_unknown_tables.is_empty() {
            let mut widened = false;
            for (sid, _, _) in snapids::all_snapshots(&self.aux)?.iter().rev() {
                if let Ok(tables) = self.snap.table_schemas_as_of(*sid) {
                    for schema in tables.into_values() {
                        if !snap_env.has_table(&schema.name) {
                            snap_env.add_table(schema);
                            widened = true;
                        }
                    }
                }
            }
            if widened {
                analysis = analyze::analyze_mechanism_call(&call, &snap_env, &aux_env, policy);
            }
        }
        match analysis.first_error() {
            Some(err) => Err(err),
            None => Ok(()),
        }
    }

    /// Program-level pre-flight: analyze a whole `.rql` program against
    /// this session's live catalogs, running the dataflow passes and —
    /// when Qq references tables absent from the current snapshot — the
    /// same historical-catalog widening retry as the per-call pre-flight.
    /// The retry *replaces* the first analysis (and [`analyze_program`]
    /// dedupes), so a finding surfaces once no matter how many rounds
    /// re-derived it.
    ///
    /// [`analyze_program`]: crate::analyze::analyze_program
    pub fn check_program(&self, program: &analyze::Program) -> Result<analyze::ProgramAnalysis> {
        let mut snap_env = SchemaEnv::from_database(&self.snap)?;
        let aux_env = SchemaEnv::from_database(&self.aux)?;
        let mut analysis = analyze::analyze_program(program, &snap_env, &aux_env);
        if !analysis.qq_unknown_tables.is_empty() {
            let mut widened = false;
            for (sid, _, _) in snapids::all_snapshots(&self.aux)?.iter().rev() {
                if let Ok(tables) = self.snap.table_schemas_as_of(*sid) {
                    for schema in tables.into_values() {
                        if !snap_env.has_table(&schema.name) {
                            snap_env.add_table(schema);
                            widened = true;
                        }
                    }
                }
            }
            if widened {
                analysis = analyze::analyze_program(program, &snap_env, &aux_env);
            }
        }
        Ok(analysis)
    }

    // ---- the four mechanisms, API form ---------------------------------

    /// `CollateData(Qs, Qq, T)`.
    pub fn collate_data(&self, qs: &str, qq: &str, table: &str) -> Result<RqlReport> {
        self.preflight_mechanism(MechanismKind::Collate, qs, qq, table, None, None)?;
        mechanism::collate_data_with_memo(&self.snap, &self.aux, qs, qq, table, self.memo())
    }

    /// `AggregateDataInVariable(Qs, Qq, T, AggFunc)`.
    pub fn aggregate_data_in_variable(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
        func: AggOp,
    ) -> Result<RqlReport> {
        let spec = func.to_string();
        self.preflight_mechanism(MechanismKind::AggVar, qs, qq, table, Some(&spec), None)?;
        mechanism::aggregate_data_in_variable_with_memo(
            &self.snap,
            &self.aux,
            qs,
            qq,
            table,
            func,
            self.memo(),
        )
    }

    /// `AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)`.
    pub fn aggregate_data_in_table(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
        pairs: &[(String, AggOp)],
    ) -> Result<RqlReport> {
        let spec = render_pairs(pairs);
        self.preflight_mechanism(MechanismKind::AggTable, qs, qq, table, Some(&spec), None)?;
        mechanism::aggregate_data_in_table_with_memo(
            &self.snap,
            &self.aux,
            qs,
            qq,
            table,
            pairs,
            self.memo(),
        )
    }

    /// Sort-merge ablation of `AggregateDataInTable` (paper §3: the
    /// alternative that "turned out to be costlier").
    pub fn aggregate_data_in_table_sortmerge(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
        pairs: &[(String, AggOp)],
    ) -> Result<RqlReport> {
        let spec = render_pairs(pairs);
        self.preflight_mechanism(MechanismKind::AggTable, qs, qq, table, Some(&spec), None)?;
        mechanism::aggregate_data_in_table_sortmerge(&self.snap, &self.aux, qs, qq, table, pairs)
    }

    /// `CollateDataIntoIntervals(Qs, Qq, T)`.
    pub fn collate_data_into_intervals(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
    ) -> Result<RqlReport> {
        self.preflight_mechanism(MechanismKind::Intervals, qs, qq, table, None, None)?;
        mechanism::collate_data_into_intervals_with_memo(
            &self.snap,
            &self.aux,
            qs,
            qq,
            table,
            self.memo(),
        )
    }

    // ---- delta-driven variants (see [`crate::delta`]) ------------------

    /// `CollateData(Qs, Qq, T)` under a [`DeltaPolicy`]: unchanged heap
    /// pages between consecutive snapshots are served from the delta
    /// scanner's row cache instead of being re-fetched.
    pub fn collate_data_with_policy(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
        policy: DeltaPolicy,
    ) -> Result<RqlReport> {
        self.preflight_mechanism(MechanismKind::Collate, qs, qq, table, None, Some(policy))?;
        delta::collate_data_delta_with_memo(
            &self.snap,
            &self.aux,
            qs,
            qq,
            table,
            policy,
            self.memo(),
        )
    }

    /// `AggregateDataInVariable(Qs, Qq, T, AggFunc)` under a
    /// [`DeltaPolicy`]; bare inner aggregates additionally fold only the
    /// rows that changed between snapshots.
    pub fn aggregate_data_in_variable_with_policy(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
        func: AggOp,
        policy: DeltaPolicy,
    ) -> Result<RqlReport> {
        let spec = func.to_string();
        self.preflight_mechanism(
            MechanismKind::AggVar,
            qs,
            qq,
            table,
            Some(&spec),
            Some(policy),
        )?;
        delta::aggregate_data_in_variable_delta_with_memo(
            &self.snap,
            &self.aux,
            qs,
            qq,
            table,
            func,
            policy,
            self.memo(),
        )
    }

    /// `AggregateDataInTable(Qs, Qq, T, ListOfColFuncPairs)` under a
    /// [`DeltaPolicy`]: the delta scan feeds a write-skipping in-table
    /// fold that probes only the groups whose contribution changed.
    pub fn aggregate_data_in_table_with_policy(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
        pairs: &[(String, AggOp)],
        policy: DeltaPolicy,
    ) -> Result<RqlReport> {
        let spec = render_pairs(pairs);
        self.preflight_mechanism(
            MechanismKind::AggTable,
            qs,
            qq,
            table,
            Some(&spec),
            Some(policy),
        )?;
        delta::aggregate_data_in_table_delta_with_memo(
            &self.snap,
            &self.aux,
            qs,
            qq,
            table,
            pairs,
            policy,
            self.memo(),
        )
    }

    /// `CollateDataIntoIntervals(Qs, Qq, T)` under a [`DeltaPolicy`]
    /// (currently sequential unless `Forced`, which errors).
    pub fn collate_data_into_intervals_with_policy(
        &self,
        qs: &str,
        qq: &str,
        table: &str,
        policy: DeltaPolicy,
    ) -> Result<RqlReport> {
        self.preflight_mechanism(MechanismKind::Intervals, qs, qq, table, None, Some(policy))?;
        delta::collate_data_into_intervals_delta_with_memo(
            &self.snap,
            &self.aux,
            qs,
            qq,
            table,
            policy,
            self.memo(),
        )
    }

    /// Reports produced by mechanism UDFs since the last call (SQL-driven
    /// runs), in invocation order as `(result_table, report)`.
    pub fn take_reports(&self) -> Vec<(String, RqlReport)> {
        std::mem::take(&mut self.last_reports.lock())
    }

    // ---- UDF registration -------------------------------------------------

    /// Register the mechanism UDFs on the auxiliary database so the
    /// paper's SQL syntax works:
    ///
    /// ```sql
    /// SELECT CollateData(snap_id, 'SELECT …', 'Result') FROM SnapIds;
    /// ```
    ///
    /// The UDF form drives one iteration per `SnapIds` row: SQLite
    /// "invokes the 'loop body' defined by the UDF callback" per row
    /// (paper §3). Internally each invocation runs the mechanism loop for
    /// that single snapshot id, so the per-row calls accumulate into the
    /// same result table.
    fn register_udfs(self: &Arc<Self>) {
        let mechanisms: [(&str, MechanismKind); 4] = [
            ("collatedata", MechanismKind::Collate),
            ("aggregatedatainvariable", MechanismKind::AggVar),
            ("aggregatedataintable", MechanismKind::AggTable),
            ("collatedataintointervals", MechanismKind::Intervals),
        ];
        for (name, kind) in mechanisms {
            let session = Arc::downgrade(self);
            self.aux.register_udf(name, move |args| {
                let Some(session) = session.upgrade() else {
                    return Err(SqlError::Udf("session gone".into()));
                };
                session.mechanism_udf(kind, args)
            });
        }
        // current_snapshot() outside an RQL rewrite is an error the
        // programmer should see clearly.
        self.snap
            .register_udf(crate::rewrite::CURRENT_SNAPSHOT, |_| {
                Err(SqlError::Udf(
                    "current_snapshot() is only meaningful inside an RQL Qq \
                 (the mechanism substitutes the iteration's snapshot id)"
                        .into(),
                ))
            });
    }

    /// One UDF invocation = one loop iteration for the given snap_id.
    fn mechanism_udf(&self, kind: MechanismKind, args: &[Value]) -> Result<Value> {
        let expect = |n: usize| -> Result<()> {
            if args.len() == n {
                Ok(())
            } else {
                Err(SqlError::Udf(format!(
                    "{kind:?} expects {n} arguments, got {}",
                    args.len()
                )))
            }
        };
        let sid = args
            .first()
            .and_then(Value::as_i64)
            .ok_or_else(|| SqlError::Udf("first argument must be snap_id".into()))?
            as u64;
        let qq = args
            .get(1)
            .and_then(Value::as_str)
            .ok_or_else(|| SqlError::Udf("second argument must be the Qq string".into()))?;
        let table = args
            .get(2)
            .and_then(Value::as_str)
            .ok_or_else(|| SqlError::Udf("third argument must be the result table".into()))?;
        // Single-snapshot Qs driving the shared mechanism loop.
        let qs = format!("SELECT snap_id FROM snapids WHERE snap_id = {sid}");
        let report = match kind {
            MechanismKind::Collate => {
                expect(3)?;
                mechanism::collate_data_step_with_memo(
                    &self.snap,
                    &self.aux,
                    &qs,
                    qq,
                    table,
                    self.memo(),
                )?
            }
            MechanismKind::AggVar => {
                expect(4)?;
                let func = AggOp::parse(
                    args[3]
                        .as_str()
                        .ok_or_else(|| SqlError::Udf("AggFunc must be text".into()))?,
                )?;
                mechanism::aggregate_data_in_variable_step_with_memo(
                    &self.snap,
                    &self.aux,
                    &qs,
                    qq,
                    table,
                    func,
                    self.memo(),
                )?
            }
            MechanismKind::AggTable => {
                expect(4)?;
                let pairs = parse_col_func_pairs(
                    args[3]
                        .as_str()
                        .ok_or_else(|| SqlError::Udf("ListOfColFuncPairs must be text".into()))?,
                )?;
                mechanism::aggregate_data_in_table_step_with_memo(
                    &self.snap,
                    &self.aux,
                    &qs,
                    qq,
                    table,
                    &pairs,
                    self.memo(),
                )?
            }
            MechanismKind::Intervals => {
                expect(3)?;
                let prev = self.prev_sids.lock().get(table).copied();
                let (report, last) = mechanism::collate_data_into_intervals_step_with_memo(
                    &self.snap,
                    &self.aux,
                    &qs,
                    qq,
                    table,
                    prev,
                    self.memo(),
                )?;
                if let Some(last) = last {
                    self.prev_sids.lock().insert(table.to_owned(), last);
                }
                report
            }
        };
        self.last_reports.lock().push((table.to_owned(), report));
        Ok(Value::Integer(1))
    }
}

/// Render API-form pairs back to the `ListOfColFuncPairs` notation so
/// the pre-flight validates the same string form the paper's SQL syntax
/// takes (it round-trips through `parse_col_func_pairs`).
fn render_pairs(pairs: &[(String, AggOp)]) -> String {
    pairs
        .iter()
        .map(|(col, op)| format!("({col},{op})"))
        .collect::<Vec<_>>()
        .join(":")
}

fn default_clock() -> String {
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    let secs = now.as_secs();
    // Simple UTC rendering without a time crate: days since epoch →
    // civil date (Howard Hinnant's algorithm).
    let days = secs / 86_400;
    let (y, m, d) = civil_from_days(days as i64);
    let tod = secs % 86_400;
    format!(
        "{y:04}-{m:02}-{d:02} {:02}:{:02}:{:02}",
        tod / 3600,
        (tod % 3600) / 60,
        tod % 60
    )
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(11_016), (2000, 2, 29)); // leap day
        assert_eq!(civil_from_days(19_723), (2024, 1, 1));
    }

    #[test]
    fn default_clock_formats() {
        let ts = default_clock();
        // "YYYY-MM-DD HH:MM:SS"
        assert_eq!(ts.len(), 19);
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], " ");
    }
}
