//! The `SnapIds` table.
//!
//! Paper §2/§3: every snapshot declaration enters the new identifier and
//! a current timestamp into `SnapIds`; the table "is stored in a separate
//! SQLite database than application data because it is a
//! non-snapshotable persistent table", it supports "user friendly
//! snapshot names", and its updates are transactional.

use rql_sqlengine::{Database, Result, Value};

/// Name of the snapshot-id table in the auxiliary database.
pub const SNAPIDS_TABLE: &str = "snapids";

/// Create `SnapIds` if missing.
pub fn ensure_snapids(aux: &Database) -> Result<()> {
    aux.execute("CREATE TABLE IF NOT EXISTS snapids (snap_id INTEGER, snap_ts TEXT, name TEXT)")?;
    Ok(())
}

/// Record a declared snapshot (transactional single-statement insert).
pub fn record_snapshot(
    aux: &Database,
    snap_id: u64,
    timestamp: &str,
    name: Option<&str>,
) -> Result<()> {
    let name_sql = match name {
        Some(n) => format!("'{}'", n.replace('\'', "''")),
        None => "NULL".to_owned(),
    };
    aux.execute(&format!(
        "INSERT INTO snapids (snap_id, snap_ts, name) VALUES ({snap_id}, '{timestamp}', {name_sql})"
    ))?;
    Ok(())
}

/// All recorded snapshots as `(id, timestamp, name)` in id order.
pub fn all_snapshots(aux: &Database) -> Result<Vec<(u64, String, Option<String>)>> {
    let r = aux.query("SELECT snap_id, snap_ts, name FROM snapids ORDER BY snap_id")?;
    Ok(r.rows
        .into_iter()
        .map(|row| {
            let id = row[0].as_i64().unwrap_or(0) as u64;
            let ts = row[1].as_str().unwrap_or("").to_owned();
            let name = match &row[2] {
                Value::Text(t) => Some(t.clone()),
                _ => None,
            };
            (id, ts, name)
        })
        .collect())
}

/// Resolve a user-friendly snapshot name to its id.
pub fn snapshot_by_name(aux: &Database, name: &str) -> Result<Option<u64>> {
    let r = aux.query(&format!(
        "SELECT snap_id FROM snapids WHERE name = '{}'",
        name.replace('\'', "''")
    ))?;
    Ok(r.rows
        .first()
        .and_then(|row| row[0].as_i64())
        .map(|i| i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_list() {
        let aux = Database::default_in_memory();
        ensure_snapids(&aux).unwrap();
        ensure_snapids(&aux).unwrap(); // idempotent
        record_snapshot(&aux, 1, "2008-11-09 23:59:59", None).unwrap();
        record_snapshot(&aux, 2, "2008-11-10 23:59:59", Some("end of day")).unwrap();
        let all = all_snapshots(&aux).unwrap();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0], (1, "2008-11-09 23:59:59".into(), None));
        assert_eq!(
            all[1],
            (2, "2008-11-10 23:59:59".into(), Some("end of day".into()))
        );
        assert_eq!(snapshot_by_name(&aux, "end of day").unwrap(), Some(2));
        assert_eq!(snapshot_by_name(&aux, "missing").unwrap(), None);
    }

    #[test]
    fn names_with_quotes_escaped() {
        let aux = Database::default_in_memory();
        ensure_snapids(&aux).unwrap();
        record_snapshot(&aux, 1, "t", Some("bob's snap")).unwrap();
        assert_eq!(snapshot_by_name(&aux, "bob's snap").unwrap(), Some(1));
    }
}
