//! Integration tests for the static-analysis pre-flight: failures that
//! used to surface mid-loop are rejected before any snapshot is opened,
//! and the RQL2xx delta-eligibility explain agrees with what the
//! runtime's `ExecStats` actually records.

use rql::analyze::{
    analyze_mechanism_call, MechanismCall, MechanismKind, PredictedPath, SchemaEnv,
};
use rql::{AggOp, DeltaPolicy, RqlSession, SqlError};
use std::sync::Arc;

const QS: &str = "SELECT snap_id FROM SnapIds";

fn session_with_history() -> Arc<RqlSession> {
    let session = RqlSession::with_defaults().unwrap();
    session
        .execute("CREATE TABLE t (grp INTEGER, v INTEGER)")
        .unwrap();
    for s in 0..4i64 {
        session
            .execute(&format!(
                "BEGIN; INSERT INTO t VALUES ({s}, {}); COMMIT WITH SNAPSHOT;",
                s * 10
            ))
            .unwrap();
    }
    session
}

#[test]
fn unknown_qq_column_rejected_before_execution() {
    let session = session_with_history();
    let err = session
        .collate_data(QS, "SELECT nope FROM t", "r")
        .unwrap_err();
    assert!(matches!(err, SqlError::Unknown(_)), "{err:?}");
    assert!(err.to_string().contains("[RQL002]"), "{err}");
    // Pre-flight means pre-execution: no partial result table exists.
    assert!(session.query_aux("SELECT * FROM r").is_err());
}

#[test]
fn bad_aggregate_arity_rejected_before_execution() {
    let session = session_with_history();
    let err = session
        .aggregate_data_in_variable(QS, "SELECT grp, v FROM t", "r", AggOp::Max)
        .unwrap_err();
    assert!(matches!(err, SqlError::Invalid(_)), "{err:?}");
    assert!(err.to_string().contains("[RQL009]"), "{err}");
    assert!(session.query_aux("SELECT * FROM r").is_err());
}

#[test]
fn current_snapshot_in_qs_rejected_before_execution() {
    let session = session_with_history();
    let err = session
        .collate_data(
            "SELECT current_snapshot() FROM SnapIds",
            "SELECT v FROM t",
            "r",
        )
        .unwrap_err();
    assert!(err.to_string().contains("[RQL103]"), "{err}");
}

#[test]
fn forced_delta_on_join_rejected_before_execution() {
    let session = session_with_history();
    let err = session
        .collate_data_with_policy(QS, "SELECT a.v FROM t a, t b", "r", DeltaPolicy::Forced)
        .unwrap_err();
    assert!(err.to_string().contains("[RQL202]"), "{err}");
}

#[test]
fn preflight_escape_hatch_restores_runtime_errors() {
    let session = session_with_history();
    session.set_preflight(false);
    let err = session
        .collate_data(QS, "SELECT nope FROM t", "r")
        .unwrap_err();
    // Still the same error taxonomy, but raised mid-loop, without the
    // analyzer's code prefix.
    assert!(matches!(err, SqlError::Unknown(_)), "{err:?}");
    assert!(!err.to_string().contains("[RQL"), "{err}");
    session.set_preflight(true);
}

#[test]
fn preflight_widens_catalog_with_dropped_tables() {
    let session = RqlSession::with_defaults().unwrap();
    session.execute("CREATE TABLE old_t (v INTEGER)").unwrap();
    session
        .execute("BEGIN; INSERT INTO old_t VALUES (7); COMMIT WITH SNAPSHOT;")
        .unwrap();
    session.execute("DROP TABLE old_t").unwrap();
    session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    // old_t is gone from the current catalog but visible under AS OF 1;
    // the pre-flight must widen, not reject.
    let report = session
        .collate_data(
            "SELECT snap_id FROM SnapIds WHERE snap_id = 1",
            "SELECT v FROM old_t",
            "r",
        )
        .unwrap();
    assert_eq!(report.iteration_count(), 1);
    let rows = session.query_aux("SELECT v FROM r").unwrap();
    assert_eq!(rows.rows.len(), 1);
}

/// The static explain and the runtime must agree: an eligible Qq takes
/// the delta path on every iteration; a join Qq predicted `Sequential`
/// never sets `delta_eligible`.
#[test]
fn delta_explain_matches_exec_stats() {
    let session = session_with_history();
    let snap_env = SchemaEnv::from_database(session.snap_db()).unwrap();
    let aux_env = SchemaEnv::from_database(session.aux_db()).unwrap();

    let eligible = "SELECT v FROM t WHERE grp >= 0";
    let analysis = analyze_mechanism_call(
        &MechanismCall {
            kind: MechanismKind::Collate,
            qs: QS,
            qq: eligible,
            table: "r_eligible",
            spec: None,
        },
        &snap_env,
        &aux_env,
        Some(DeltaPolicy::Forced),
    );
    assert!(!analysis.has_errors(), "{:?}", analysis.diagnostics);
    let explain = analysis.delta.unwrap();
    assert_eq!(explain.predicted_path, PredictedPath::Pipeline);
    let report = session
        .collate_data_with_policy(QS, eligible, "r_eligible", DeltaPolicy::Forced)
        .unwrap();
    assert_eq!(
        report.accumulated_stats().delta_eligible,
        report.iterations.len() as u64,
        "predicted Pipeline must mean every iteration took the delta scan"
    );

    let join = "SELECT a.v FROM t a, t b";
    let analysis = analyze_mechanism_call(
        &MechanismCall {
            kind: MechanismKind::Collate,
            qs: QS,
            qq: join,
            table: "r_join",
            spec: None,
        },
        &snap_env,
        &aux_env,
        Some(DeltaPolicy::Auto),
    );
    assert!(!analysis.has_errors(), "{:?}", analysis.diagnostics);
    let explain = analysis.delta.unwrap();
    assert_eq!(explain.predicted_path, PredictedPath::Sequential);
    let report = session
        .collate_data_with_policy(QS, join, "r_join", DeltaPolicy::Auto)
        .unwrap();
    assert_eq!(
        report.accumulated_stats().delta_eligible,
        0,
        "predicted Sequential must mean the delta scan never engaged"
    );
}
