//! Differential tests for the delta-driven iteration drivers: under
//! `DeltaPolicy::Auto` every mechanism must produce a result table
//! byte-identical to the sequential mechanism's, while fetching fewer
//! pages on closely-spaced snapshot sets.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rql::{AggOp, DeltaPolicy, RqlSession, Value};
use std::sync::Arc;

const QS: &str = "SELECT snap_id FROM SnapIds";

/// Deterministic churn history: 8 snapshots over a two-column table.
fn history() -> Arc<RqlSession> {
    let session = RqlSession::with_defaults().unwrap();
    session
        .execute("CREATE TABLE m (grp INTEGER, v INTEGER)")
        .unwrap();
    for s in 0..8i64 {
        session.execute("DELETE FROM m").unwrap();
        for g in 0..12i64 {
            if (g + s) % 5 != 0 {
                session
                    .execute(&format!("INSERT INTO m VALUES ({g}, {})", g * 10 + s))
                    .unwrap();
            }
        }
        session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    }
    session
}

/// Assert a delta run leaves the same table bytes as the sequential run,
/// comparing full contents in insertion order (no ORDER BY): identity
/// requires matching row order, values, *and* column names.
fn assert_tables_identical(session: &RqlSession, seq_table: &str, delta_table: &str) {
    let a = session
        .query_aux(&format!("SELECT * FROM {seq_table}"))
        .unwrap();
    let b = session
        .query_aux(&format!("SELECT * FROM {delta_table}"))
        .unwrap();
    assert_eq!(a.columns, b.columns, "{seq_table} vs {delta_table}");
    assert_eq!(a.rows, b.rows, "{seq_table} vs {delta_table}");
}

#[test]
fn delta_collate_matches_sequential() {
    let session = history();
    for (i, qq) in [
        "SELECT grp, v FROM m",
        "SELECT v FROM m WHERE grp > 4",
        "SELECT grp, SUM(v) FROM m GROUP BY grp",
        "SELECT current_snapshot() AS sid, grp FROM m WHERE v % 2 = 0",
        "SELECT COUNT(*) FROM m",
    ]
    .iter()
    .enumerate()
    {
        let (seq_t, delta_t) = (format!("c_seq_{i}"), format!("c_delta_{i}"));
        session.collate_data(QS, qq, &seq_t).unwrap();
        let report = session
            .collate_data_with_policy(QS, qq, &delta_t, DeltaPolicy::Forced)
            .unwrap();
        assert_tables_identical(&session, &seq_t, &delta_t);
        let stats = report.accumulated_stats();
        assert_eq!(
            stats.delta_eligible,
            report.iterations.len() as u64,
            "every iteration of {qq} should take the delta path"
        );
    }
}

#[test]
fn delta_agg_var_matches_sequential_for_all_inner_aggregates() {
    let session = history();
    for (i, qq) in [
        "SELECT SUM(v) FROM m",
        "SELECT COUNT(*) FROM m",
        "SELECT COUNT(v) FROM m WHERE grp < 9",
        "SELECT AVG(v) FROM m",
        "SELECT MIN(v) FROM m WHERE grp > 2",
        "SELECT MAX(v + grp) FROM m",
        // Not a bare inner aggregate: exercised via the pipeline mode.
        "SELECT SUM(v) + 0 FROM m",
        "SELECT grp FROM m WHERE grp = 7 AND v % 10 = 3",
    ]
    .iter()
    .enumerate()
    {
        for func in [AggOp::Sum, AggOp::Min, AggOp::Avg] {
            let (seq_t, delta_t) = (
                format!("v_seq_{i}_{func:?}"),
                format!("v_delta_{i}_{func:?}"),
            );
            session
                .aggregate_data_in_variable(QS, qq, &seq_t, func)
                .unwrap();
            session
                .aggregate_data_in_variable_with_policy(QS, qq, &delta_t, func, DeltaPolicy::Forced)
                .unwrap();
            assert_tables_identical(&session, &seq_t, &delta_t);
        }
    }
}

#[test]
fn delta_agg_var_matches_on_randomized_histories() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(0xD17A + seed);
        let session = RqlSession::with_defaults().unwrap();
        session
            .execute("CREATE TABLE r (k INTEGER, v INTEGER, t TEXT)")
            .unwrap();
        let mut next_key = 0i64;
        for _ in 0..10 {
            for _ in 0..rng.random_range(1..8) {
                match rng.random_range(0..3) {
                    0 => {
                        let v: i64 = rng.random_range(-1000..1000);
                        session
                            .execute(&format!(
                                "INSERT INTO r VALUES ({next_key}, {v}, 'x{}')",
                                v.abs() % 7
                            ))
                            .unwrap();
                        next_key += 1;
                    }
                    1 if next_key > 0 => {
                        let k = rng.random_range(0..next_key);
                        let v = rng.random_range(-1000..1000);
                        session
                            .execute(&format!("UPDATE r SET v = {v} WHERE k = {k}"))
                            .unwrap();
                    }
                    _ if next_key > 0 => {
                        let k = rng.random_range(0..next_key);
                        session
                            .execute(&format!("DELETE FROM r WHERE k = {k}"))
                            .unwrap();
                    }
                    _ => {}
                }
            }
            session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
        }
        for (i, qq) in [
            "SELECT SUM(v) FROM r",
            "SELECT AVG(v) FROM r WHERE v > -500",
            // Deletes and updates force MIN/MAX re-folds.
            "SELECT MIN(v) FROM r",
            "SELECT MAX(v) FROM r",
            // TEXT argument: SUM degrades to the pipeline, MIN/MAX stay
            // incremental under the SQL total order.
            "SELECT MIN(t) FROM r",
            "SELECT COUNT(*) FROM r",
        ]
        .iter()
        .enumerate()
        {
            let (seq_t, delta_t) = (format!("r_seq_{i}"), format!("r_delta_{i}"));
            session.drop_result_table(&seq_t).unwrap();
            session.drop_result_table(&delta_t).unwrap();
            session
                .aggregate_data_in_variable(QS, qq, &seq_t, AggOp::Sum)
                .unwrap();
            session
                .aggregate_data_in_variable_with_policy(
                    QS,
                    qq,
                    &delta_t,
                    AggOp::Sum,
                    DeltaPolicy::Forced,
                )
                .unwrap();
            assert_tables_identical(&session, &seq_t, &delta_t);
        }
    }
}

#[test]
fn delta_degrades_cleanly_on_real_sums() {
    let session = RqlSession::with_defaults().unwrap();
    session.execute("CREATE TABLE f (v REAL)").unwrap();
    for s in 0..5 {
        session
            .execute(&format!("INSERT INTO f VALUES ({s}.25), ({s}.5)"))
            .unwrap();
        session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    }
    for (i, qq) in ["SELECT SUM(v) FROM f", "SELECT AVG(v) FROM f"]
        .iter()
        .enumerate()
    {
        let (seq_t, delta_t) = (format!("f_seq_{i}"), format!("f_delta_{i}"));
        session
            .aggregate_data_in_variable(QS, qq, &seq_t, AggOp::Sum)
            .unwrap();
        session
            .aggregate_data_in_variable_with_policy(QS, qq, &delta_t, AggOp::Sum, DeltaPolicy::Auto)
            .unwrap();
        assert_tables_identical(&session, &seq_t, &delta_t);
    }
}

/// Closely-spaced snapshots: the delta path must skip unchanged pages
/// and fetch strictly fewer pages than the sequential path does. Two
/// identically-seeded sessions keep cache warm-up effects from
/// contaminating the comparison.
#[test]
fn delta_skips_pages_and_fetches_less() {
    let build = || {
        let session = RqlSession::with_defaults().unwrap();
        session
            .execute("CREATE TABLE big (k INTEGER, v INTEGER)")
            .unwrap();
        // Enough rows to span several heap pages at the default page size.
        for chunk in 0..30i64 {
            let values: Vec<String> = (chunk * 100..(chunk + 1) * 100)
                .map(|k| format!("({k}, {})", k * 3))
                .collect();
            session
                .execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
                .unwrap();
        }
        session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
        // Small, localized churn between snapshots.
        for s in 1..6i64 {
            session
                .execute(&format!("UPDATE big SET v = {s} WHERE k = {}", s * 7))
                .unwrap();
            session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
        }
        session
    };
    let qq = "SELECT k, v FROM big WHERE v % 2 = 1";

    let seq_session = build();
    let seq = seq_session.collate_data(QS, qq, "io_seq").unwrap();
    let delta_session = build();
    let delta = delta_session
        .collate_data_with_policy(QS, qq, "io_delta", DeltaPolicy::Forced)
        .unwrap();

    let a = seq_session.query_aux("SELECT * FROM io_seq").unwrap();
    let b = delta_session.query_aux("SELECT * FROM io_delta").unwrap();
    assert_eq!(a.columns, b.columns);
    assert_eq!(a.rows, b.rows);

    let seq_stats = seq.accumulated_stats();
    let delta_stats = delta.accumulated_stats();
    assert_eq!(seq_stats.pages_skipped_delta, 0);
    assert_eq!(seq_stats.delta_eligible, 0);
    assert!(
        delta_stats.pages_skipped_delta > 0,
        "unchanged heap pages should be served from the delta cache, got {delta_stats:?}"
    );
    assert_eq!(delta_stats.delta_eligible, delta.iterations.len() as u64);
    assert!(
        delta_stats.io.total_fetches() < seq_stats.io.total_fetches(),
        "delta fetched {} pages, sequential {}",
        delta_stats.io.total_fetches(),
        seq_stats.io.total_fetches()
    );
}

#[test]
fn forced_policy_errors_on_ineligible_shapes() {
    let session = history();
    session.execute("CREATE TABLE other (grp INTEGER)").unwrap();
    session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    // `other` exists only in the newest snapshot; restrict join-shape Qs
    // to it so the sequential fallback can execute at all.
    let max_sid = session
        .query_aux("SELECT MAX(snap_id) FROM SnapIds")
        .unwrap()
        .rows[0][0]
        .as_i64()
        .unwrap();
    let join_qs = format!("SELECT snap_id FROM SnapIds WHERE snap_id = {max_sid}");
    // Join shape.
    assert!(session
        .collate_data_with_policy(
            &join_qs,
            "SELECT m.v FROM m, other WHERE m.grp = other.grp",
            "x1",
            DeltaPolicy::Forced,
        )
        .is_err());
    // Iteration-dependent scan filter.
    assert!(session
        .collate_data_with_policy(
            QS,
            "SELECT grp FROM m WHERE v < current_snapshot()",
            "x2",
            DeltaPolicy::Forced,
        )
        .is_err());
    // AS OF is reserved for the driver, like the sequential loop.
    assert!(session
        .collate_data_with_policy(QS, "SELECT grp FROM m AS OF 1", "x3", DeltaPolicy::Forced)
        .is_err());
    // AggregateDataInTable has a delta path now; Forced errors only on
    // ineligible shapes, like CollateData.
    assert!(session
        .aggregate_data_in_table_with_policy(
            QS,
            "SELECT grp, v FROM m WHERE v < current_snapshot()",
            "x4",
            &[("v".to_string(), AggOp::Sum)],
            DeltaPolicy::Forced,
        )
        .is_err());
    // CollateDataIntoIntervals still has no delta path and refuses Forced.
    assert!(
        session
            .collate_data_into_intervals_with_policy(
                QS,
                "SELECT grp FROM m",
                "x5",
                DeltaPolicy::Forced,
            )
            .is_err()
    );
    // Eligible AggTable shapes run the pipeline under Forced.
    session
        .aggregate_data_in_table_with_policy(
            QS,
            "SELECT grp, v FROM m",
            "x6",
            &[("v".to_string(), AggOp::Sum)],
            DeltaPolicy::Forced,
        )
        .unwrap();
    session
        .collate_data_into_intervals_with_policy(QS, "SELECT grp FROM m", "x7", DeltaPolicy::Auto)
        .unwrap();
    // Auto silently falls back to the sequential path on a join shape.
    session
        .collate_data_with_policy(
            &join_qs,
            "SELECT m.v FROM m, other WHERE m.grp = other.grp",
            "x8",
            DeltaPolicy::Auto,
        )
        .unwrap();
    session
        .collate_data(
            &join_qs,
            "SELECT m.v FROM m, other WHERE m.grp = other.grp",
            "x9",
        )
        .unwrap();
    assert_tables_identical(&session, "x9", "x8");
}

#[test]
fn delta_refuses_existing_result_table() {
    let session = history();
    session
        .aux_db()
        .execute("CREATE TABLE taken (x INTEGER)")
        .unwrap();
    for policy in [DeltaPolicy::Off, DeltaPolicy::Auto, DeltaPolicy::Forced] {
        assert!(session
            .collate_data_with_policy(QS, "SELECT grp FROM m", "taken", policy)
            .is_err());
        assert!(session
            .aggregate_data_in_variable_with_policy(
                QS,
                "SELECT COUNT(*) FROM m",
                "taken",
                AggOp::Sum,
                policy,
            )
            .is_err());
    }
}

/// The zero-snapshot satellite: when Qs selects no snapshots, every
/// mechanism variant (sequential, parallel, delta) behaves identically —
/// CollateData creates no table, AggregateDataInVariable creates the
/// identity table with the fallback "value" column.
#[test]
fn zero_snapshot_behaviour_is_uniform_across_variants() {
    let session = history();
    let empty_qs = "SELECT snap_id FROM SnapIds WHERE snap_id > 1000000";

    session
        .collate_data(empty_qs, "SELECT grp FROM m", "z_seq")
        .unwrap();
    session
        .collate_data_with_policy(
            empty_qs,
            "SELECT grp FROM m",
            "z_delta",
            DeltaPolicy::Forced,
        )
        .unwrap();
    rql::collate_data_parallel(
        session.snap_db(),
        session.aux_db(),
        empty_qs,
        "SELECT grp FROM m",
        "z_par",
        2,
    )
    .unwrap();
    for t in ["z_seq", "z_delta", "z_par"] {
        assert!(
            session.aux_db().table_row_count(t).is_err(),
            "CollateData over zero snapshots must not create {t}"
        );
    }

    session
        .aggregate_data_in_variable(empty_qs, "SELECT SUM(v) FROM m", "zv_seq", AggOp::Sum)
        .unwrap();
    session
        .aggregate_data_in_variable_with_policy(
            empty_qs,
            "SELECT SUM(v) FROM m",
            "zv_delta",
            AggOp::Sum,
            DeltaPolicy::Forced,
        )
        .unwrap();
    rql::aggregate_data_in_variable_parallel(
        session.snap_db(),
        session.aux_db(),
        empty_qs,
        "SELECT SUM(v) FROM m",
        "zv_par",
        AggOp::Sum,
        2,
    )
    .unwrap();
    for t in ["zv_seq", "zv_delta", "zv_par"] {
        let r = session.query_aux(&format!("SELECT * FROM {t}")).unwrap();
        assert_eq!(r.columns, vec!["value".to_string()], "{t}");
        assert_eq!(r.rows, vec![vec![Value::Null]], "{t}");
    }
}

#[test]
fn off_policy_delegates_to_sequential() {
    let session = history();
    let report = session
        .collate_data_with_policy(QS, "SELECT grp, v FROM m", "off_t", DeltaPolicy::Off)
        .unwrap();
    assert_eq!(report.accumulated_stats().delta_eligible, 0);
    session
        .collate_data(QS, "SELECT grp, v FROM m", "seq_t")
        .unwrap();
    assert_tables_identical(&session, "seq_t", "off_t");
}
