//! Tests for the mechanism variants beyond the paper's main line: the
//! sort-merge `AggregateDataInTable` ablation (§3's "costlier"
//! alternative) and the parallel iteration extension (§7's future work).

use rql::{AggOp, RqlSession, Value};
use std::sync::Arc;

fn history() -> Arc<RqlSession> {
    let session = RqlSession::with_defaults().unwrap();
    session
        .execute("CREATE TABLE m (grp INTEGER, v INTEGER)")
        .unwrap();
    // 8 snapshots over 12 groups with churn.
    for s in 0..8i64 {
        session.execute("DELETE FROM m").unwrap();
        for g in 0..12i64 {
            if (g + s) % 5 != 0 {
                session
                    .execute(&format!("INSERT INTO m VALUES ({g}, {})", g * 10 + s))
                    .unwrap();
            }
        }
        session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    }
    session
}

#[test]
fn sortmerge_matches_hash_probe_variant() {
    let session = history();
    let qq = "SELECT grp, v FROM m";
    for pairs in [
        vec![("v".to_string(), AggOp::Max)],
        vec![("v".to_string(), AggOp::Sum)],
        vec![("v".to_string(), AggOp::Min)],
        vec![("v".to_string(), AggOp::Avg)],
    ] {
        session.drop_result_table("hash_r").unwrap();
        session.drop_result_table("merge_r").unwrap();
        session
            .aggregate_data_in_table("SELECT snap_id FROM SnapIds", qq, "hash_r", &pairs)
            .unwrap();
        session
            .aggregate_data_in_table_sortmerge("SELECT snap_id FROM SnapIds", qq, "merge_r", &pairs)
            .unwrap();
        let a = session
            .query_aux("SELECT grp, v FROM hash_r ORDER BY grp, v")
            .unwrap();
        let b = session
            .query_aux("SELECT grp, v FROM merge_r ORDER BY grp, v")
            .unwrap();
        assert_eq!(a.rows, b.rows, "pairs {pairs:?}");
    }
}

#[test]
fn parallel_collate_matches_sequential() {
    let session = history();
    let qq = "SELECT grp, v, current_snapshot() AS sid FROM m";
    session
        .collate_data("SELECT snap_id FROM SnapIds", qq, "seq_r")
        .unwrap();
    rql::collate_data_parallel(
        session.snap_db(),
        session.aux_db(),
        "SELECT snap_id FROM SnapIds",
        qq,
        "par_r",
        4,
    )
    .unwrap();
    let a = session
        .query_aux("SELECT grp, v, sid FROM seq_r ORDER BY sid, grp")
        .unwrap();
    let b = session
        .query_aux("SELECT grp, v, sid FROM par_r ORDER BY sid, grp")
        .unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn parallel_agg_var_matches_sequential() {
    let session = history();
    let qq = "SELECT COUNT(*) FROM m";
    session
        .aggregate_data_in_variable("SELECT snap_id FROM SnapIds", qq, "seq_v", AggOp::Sum)
        .unwrap();
    rql::aggregate_data_in_variable_parallel(
        session.snap_db(),
        session.aux_db(),
        "SELECT snap_id FROM SnapIds",
        qq,
        "par_v",
        AggOp::Sum,
        3,
    )
    .unwrap();
    let a = session.query_aux("SELECT * FROM seq_v").unwrap();
    let b = session.query_aux("SELECT * FROM par_v").unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn parallel_with_one_thread_degenerates_gracefully() {
    let session = history();
    rql::collate_data_parallel(
        session.snap_db(),
        session.aux_db(),
        "SELECT snap_id FROM SnapIds WHERE snap_id <= 2",
        "SELECT grp FROM m",
        "one_thread",
        1,
    )
    .unwrap();
    let n = session.aux_db().table_row_count("one_thread").unwrap();
    assert!(n > 0);
}

#[test]
fn parallel_refuses_existing_table() {
    let session = history();
    session.execute("CREATE TABLE noop (x INTEGER)").unwrap();
    session
        .aux_db()
        .execute("CREATE TABLE taken (x INTEGER)")
        .unwrap();
    let err = rql::collate_data_parallel(
        session.snap_db(),
        session.aux_db(),
        "SELECT snap_id FROM SnapIds",
        "SELECT grp FROM m",
        "taken",
        2,
    );
    assert!(err.is_err());
}

#[test]
fn sortmerge_reports_same_totals() {
    let session = history();
    let qq = "SELECT grp, v FROM m";
    let pairs = vec![("v".to_string(), AggOp::Sum)];
    let hash = session
        .aggregate_data_in_table("SELECT snap_id FROM SnapIds", qq, "h2", &pairs)
        .unwrap();
    let merge = session
        .aggregate_data_in_table_sortmerge("SELECT snap_id FROM SnapIds", qq, "m2", &pairs)
        .unwrap();
    assert_eq!(hash.total_qq_rows(), merge.total_qq_rows());
    // SUM updates on every matched record in both variants.
    assert_eq!(hash.total_result_updates(), merge.total_result_updates());
    assert_eq!(hash.total_result_inserts(), merge.total_result_inserts());
    let r = session.query_aux("SELECT COUNT(*) FROM h2").unwrap();
    assert!(r.rows[0][0].as_i64().unwrap() > 0);
    let _ = Value::Null;
}

#[test]
fn parallel_qq_panic_becomes_error_with_snapshot_id() {
    let session = history();
    session.snap_db().register_udf("boom", |args| {
        if args[0].as_i64() == Some(3) {
            panic!("injected failure");
        }
        Ok(Value::Integer(1))
    });
    let err = rql::collate_data_parallel(
        session.snap_db(),
        session.aux_db(),
        "SELECT snap_id FROM SnapIds",
        "SELECT boom(grp) FROM m",
        "panic_t",
        4,
    )
    .unwrap_err();
    let msg = format!("{err}");
    assert!(msg.contains("panicked on snapshot"), "{msg}");
    assert!(msg.contains("injected failure"), "{msg}");
    // The panic did not tear down the process or poison the pool: a
    // well-behaved run on the same session still works.
    rql::collate_data_parallel(
        session.snap_db(),
        session.aux_db(),
        "SELECT snap_id FROM SnapIds",
        "SELECT grp FROM m",
        "after_panic",
        4,
    )
    .unwrap();
}
