//! RQL mechanism tests reproducing every worked example in paper §2–§3
//! on the LoggedIn history of Figures 1–2.

use rql::{AggOp, RqlSession, Value};
use std::sync::Arc;

/// Build the exact history of Figures 1–3: snapshots S1, S2, S3 with the
/// LoggedIn states shown in Figure 1.
fn paper_history() -> Arc<RqlSession> {
    let session = RqlSession::with_defaults().unwrap();
    // Deterministic SnapIds timestamps matching Figure 2.
    let counter = std::sync::atomic::AtomicUsize::new(0);
    session.set_clock(move || {
        let timestamps = [
            "2008-11-09 23:59:59",
            "2008-11-10 23:59:59",
            "2008-11-11 23:59:59",
        ];
        let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        timestamps[i.min(2)].to_owned()
    });
    session
        .execute("CREATE TABLE LoggedIn (l_userid TEXT, l_time TEXT, l_country TEXT)")
        .unwrap();
    session
        .execute(
            "INSERT INTO LoggedIn VALUES \
             ('UserA', '2008-11-09 13:23:44', 'USA'), \
             ('UserB', '2008-11-09 15:45:21', 'UK'), \
             ('UserC', '2008-11-09 15:45:21', 'USA')",
        )
        .unwrap();
    session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap(); // S1
    session
        .execute(
            "BEGIN; \
             DELETE FROM LoggedIn WHERE l_userid = 'UserA'; \
             UPDATE LoggedIn SET l_time = '2008-11-09 21:33:12' WHERE l_userid = 'UserC'; \
             COMMIT WITH SNAPSHOT;",
        )
        .unwrap(); // S2
    session
        .execute(
            "BEGIN; \
             INSERT INTO LoggedIn (l_userid, l_time, l_country) \
             VALUES ('UserD', '2008-11-11 10:08:04', 'UK'); \
             COMMIT WITH SNAPSHOT;",
        )
        .unwrap(); // S3
    session
}

#[test]
fn snapids_matches_figure_2() {
    let session = paper_history();
    let all = rql::all_snapshots(session.aux_db()).unwrap();
    assert_eq!(all.len(), 3);
    assert_eq!(all[0].0, 1);
    assert_eq!(all[0].1, "2008-11-09 23:59:59");
    assert_eq!(all[2].1, "2008-11-11 23:59:59");
}

#[test]
fn collate_data_paper_example() {
    // §2.1: collect all user_ids and the snapshot they appear in.
    let session = paper_history();
    session
        .collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT l_userid, current_snapshot() FROM LoggedIn",
            "Result",
        )
        .unwrap();
    let r = session
        .query_aux("SELECT l_userid, current_snapshot FROM Result ORDER BY 2, 1")
        .unwrap();
    let pairs: Vec<(String, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_str().unwrap().to_owned(),
                row[1].as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(
        pairs,
        vec![
            ("UserA".into(), 1),
            ("UserB".into(), 1),
            ("UserC".into(), 1),
            ("UserB".into(), 2),
            ("UserC".into(), 2),
            ("UserB".into(), 3),
            ("UserC".into(), 3),
            ("UserD".into(), 3),
        ]
    );
}

#[test]
fn aggregate_in_variable_count_snapshots_with_userb() {
    // §2.2 first example: number of snapshots in which UserB is logged in.
    let session = paper_history();
    session
        .aggregate_data_in_variable(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT 1 FROM LoggedIn WHERE l_userid = 'UserB'",
            "Result",
            AggOp::Sum,
        )
        .unwrap();
    let r = session.query_aux("SELECT * FROM Result").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(3));
}

#[test]
fn aggregate_in_variable_first_occurrence() {
    // §2.2 second example: first occurrence of UserD (only in S3).
    let session = paper_history();
    session
        .aggregate_data_in_variable(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT current_snapshot() FROM LoggedIn WHERE l_userid = 'UserD'",
            "Result",
            AggOp::Min,
        )
        .unwrap();
    let r = session.query_aux("SELECT * FROM Result").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(3));
}

#[test]
fn aggregate_in_table_first_login_time() {
    // §2.3 first example: the first time each user has logged in.
    let session = paper_history();
    session
        .aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT DISTINCT l_userid, l_time FROM LoggedIn",
            "Result",
            &[("l_time".into(), AggOp::Min)],
        )
        .unwrap();
    let r = session
        .query_aux("SELECT l_userid, l_time FROM Result ORDER BY l_userid")
        .unwrap();
    let rows: Vec<(String, String)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_str().unwrap().to_owned(),
                row[1].as_str().unwrap().to_owned(),
            )
        })
        .collect();
    assert_eq!(
        rows,
        vec![
            ("UserA".into(), "2008-11-09 13:23:44".into()),
            ("UserB".into(), "2008-11-09 15:45:21".into()),
            ("UserC".into(), "2008-11-09 15:45:21".into()), // min of two times
            ("UserD".into(), "2008-11-11 10:08:04".into()),
        ]
    );
}

#[test]
fn aggregate_in_table_max_simultaneous_per_country() {
    // §2.3 second example: per country, max simultaneously logged in.
    let session = paper_history();
    session
        .aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country",
            "Result",
            &[("c".into(), AggOp::Max)],
        )
        .unwrap();
    let r = session
        .query_aux("SELECT l_country, c FROM Result ORDER BY l_country")
        .unwrap();
    let rows: Vec<(String, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_str().unwrap().to_owned(),
                row[1].as_i64().unwrap(),
            )
        })
        .collect();
    // USA peaked at 2 (S1: UserA + UserC); UK peaked at 2 (S3: UserB + UserD).
    assert_eq!(rows, vec![("UK".into(), 2), ("USA".into(), 2)]);
}

#[test]
fn collate_into_intervals_paper_example() {
    // §2.4: the interval during which each user was logged in.
    let session = paper_history();
    session
        .collate_data_into_intervals(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn",
            "Result",
        )
        .unwrap();
    let r = session
        .query_aux(
            "SELECT l_userid, start_snapshot, end_snapshot FROM Result \
             ORDER BY l_userid, start_snapshot",
        )
        .unwrap();
    let rows: Vec<(String, i64, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_str().unwrap().to_owned(),
                row[1].as_i64().unwrap(),
                row[2].as_i64().unwrap(),
            )
        })
        .collect();
    assert_eq!(
        rows,
        vec![
            ("UserA".into(), 1, 1),
            ("UserB".into(), 1, 3),
            ("UserC".into(), 1, 3),
            ("UserD".into(), 3, 3),
        ]
    );
}

#[test]
fn intervals_reopen_after_gap() {
    // A record that disappears and returns gets two lifetime rows.
    let session = RqlSession::with_defaults().unwrap();
    session.execute("CREATE TABLE t (u TEXT)").unwrap();
    session.execute("INSERT INTO t VALUES ('x')").unwrap();
    session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap(); // S1: x
    session
        .execute("BEGIN; DELETE FROM t WHERE u = 'x'; COMMIT WITH SNAPSHOT;")
        .unwrap(); // S2: -
    session
        .execute("BEGIN; INSERT INTO t VALUES ('x'); COMMIT WITH SNAPSHOT;")
        .unwrap(); // S3: x
    session
        .collate_data_into_intervals("SELECT snap_id FROM SnapIds", "SELECT u FROM t", "Result")
        .unwrap();
    let r = session
        .query_aux("SELECT start_snapshot, end_snapshot FROM Result ORDER BY 1")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0], vec![Value::Integer(1), Value::Integer(1)]);
    assert_eq!(r.rows[1], vec![Value::Integer(3), Value::Integer(3)]);
}

#[test]
fn udf_syntax_drives_mechanisms() {
    // §3: SELECT CollateData(snap_id, Qq, T) FROM SnapIds.
    let session = paper_history();
    session
        .query_aux(
            "SELECT CollateData(snap_id, \
             'SELECT DISTINCT l_userid, current_snapshot() AS sid FROM LoggedIn', \
             'Result') FROM SnapIds",
        )
        .unwrap();
    let r = session.query_aux("SELECT COUNT(*) FROM Result").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(8));
    let reports = session.take_reports();
    assert_eq!(reports.len(), 3); // one UDF invocation per SnapIds row
}

#[test]
fn udf_syntax_aggregate_in_variable() {
    let session = paper_history();
    session
        .query_aux(
            "SELECT AggregateDataInVariable(snap_id, \
             'SELECT DISTINCT current_snapshot() AS sid FROM LoggedIn \
              WHERE l_userid = ''UserB'' ', \
             'Result', 'min') FROM SnapIds",
        )
        .unwrap();
    let r = session.query_aux("SELECT sid FROM Result").unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(1));
}

#[test]
fn udf_syntax_aggregate_in_table() {
    let session = paper_history();
    session
        .query_aux(
            "SELECT AggregateDataInTable(snap_id, \
             'SELECT l_country, COUNT(*) AS c FROM LoggedIn GROUP BY l_country', \
             'Result', '(c,max)') FROM SnapIds",
        )
        .unwrap();
    let r = session
        .query_aux("SELECT l_country, c FROM Result ORDER BY l_country")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    assert_eq!(r.rows[0][1], Value::Integer(2));
}

#[test]
fn udf_syntax_intervals() {
    let session = paper_history();
    session
        .query_aux(
            "SELECT CollateDataIntoIntervals(snap_id, \
             'SELECT l_userid FROM LoggedIn', 'Result') FROM SnapIds",
        )
        .unwrap();
    let r = session
        .query_aux(
            "SELECT l_userid, start_snapshot, end_snapshot FROM Result \
             WHERE l_userid = 'UserB'",
        )
        .unwrap();
    assert_eq!(r.rows[0][1], Value::Integer(1));
    assert_eq!(r.rows[0][2], Value::Integer(3));
}

#[test]
fn qs_can_restrict_and_skip_snapshots() {
    let session = paper_history();
    // Skip to every second snapshot: {1, 3}.
    session
        .collate_data(
            "SELECT snap_id FROM SnapIds WHERE snap_id % 2 = 1",
            "SELECT l_userid, current_snapshot() AS sid FROM LoggedIn",
            "Result",
        )
        .unwrap();
    let r = session
        .query_aux("SELECT DISTINCT sid FROM Result ORDER BY sid")
        .unwrap();
    let sids: Vec<i64> = r.rows.iter().map(|row| row[0].as_i64().unwrap()).collect();
    assert_eq!(sids, vec![1, 3]);
}

#[test]
fn avg_special_case_in_variable_and_table() {
    let session = RqlSession::with_defaults().unwrap();
    session
        .execute("CREATE TABLE m (grp TEXT, v INTEGER)")
        .unwrap();
    session
        .execute("INSERT INTO m VALUES ('a', 10), ('b', 100)")
        .unwrap();
    session.execute("BEGIN; COMMIT WITH SNAPSHOT;").unwrap();
    session
        .execute("BEGIN; UPDATE m SET v = 20 WHERE grp = 'a'; COMMIT WITH SNAPSHOT;")
        .unwrap();
    session
        .execute("BEGIN; UPDATE m SET v = 30 WHERE grp = 'a'; COMMIT WITH SNAPSHOT;")
        .unwrap();
    // AVG across snapshots of a single value.
    session
        .aggregate_data_in_variable(
            "SELECT snap_id FROM SnapIds",
            "SELECT v FROM m WHERE grp = 'a'",
            "avg_var",
            AggOp::Avg,
        )
        .unwrap();
    let r = session.query_aux("SELECT * FROM avg_var").unwrap();
    assert_eq!(r.rows[0][0], Value::Real(20.0));
    // AVG per group across snapshots.
    session
        .aggregate_data_in_table(
            "SELECT snap_id FROM SnapIds",
            "SELECT grp, v FROM m",
            "avg_tab",
            &[("v".into(), AggOp::Avg)],
        )
        .unwrap();
    let r = session
        .query_aux("SELECT grp, v FROM avg_tab ORDER BY grp")
        .unwrap();
    assert_eq!(r.rows[0][1], Value::Real(20.0)); // (10+20+30)/3
    assert_eq!(r.rows[1][1], Value::Real(100.0));
}

#[test]
fn distinct_aggregates_rejected_with_guidance() {
    let err = AggOp::parse("sum distinct").unwrap_err();
    assert!(err.to_string().contains("CollateData"));
}

#[test]
fn mechanisms_refuse_existing_result_table() {
    let session = paper_history();
    session
        .collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn",
            "Result",
        )
        .unwrap();
    let err = session.collate_data(
        "SELECT snap_id FROM SnapIds",
        "SELECT l_userid FROM LoggedIn",
        "Result",
    );
    assert!(err.is_err());
    session.drop_result_table("Result").unwrap();
    session
        .collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn",
            "Result",
        )
        .unwrap();
}

#[test]
fn reports_carry_cost_breakdown() {
    let session = paper_history();
    let report = session
        .collate_data(
            "SELECT snap_id FROM SnapIds",
            "SELECT l_userid FROM LoggedIn",
            "Result",
        )
        .unwrap();
    assert_eq!(report.iteration_count(), 3);
    assert_eq!(report.total_qq_rows(), 3 + 2 + 3);
    for it in &report.iterations {
        assert!(it.qq_stats.io.total_fetches() > 0);
    }
    // Cold iteration reads at least as much from the pagelog as hot ones
    // in this tiny history (everything is shared).
    assert!(report.cold().is_some());
}

#[test]
fn qq_with_as_of_rejected() {
    let session = paper_history();
    let err = session.collate_data(
        "SELECT snap_id FROM SnapIds",
        "SELECT AS OF 1 l_userid FROM LoggedIn",
        "Result",
    );
    assert!(err.is_err());
}

#[test]
fn current_snapshot_outside_rql_is_an_error() {
    let session = paper_history();
    let err = session.query("SELECT current_snapshot() FROM LoggedIn");
    assert!(err.is_err());
}

#[test]
fn named_snapshots_resolve() {
    let session = RqlSession::with_defaults().unwrap();
    session.execute("CREATE TABLE t (a INTEGER)").unwrap();
    session.declare_snapshot(Some("before-migration")).unwrap();
    session.execute("INSERT INTO t VALUES (1)").unwrap();
    session.declare_snapshot(Some("after-migration")).unwrap();
    let sid = rql::snapshot_by_name(session.aux_db(), "before-migration")
        .unwrap()
        .unwrap();
    let r = session
        .query(&format!("SELECT AS OF {sid} COUNT(*) FROM t"))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Integer(0));
}
