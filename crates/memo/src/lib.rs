//! # rql-memo
//!
//! Content-addressed memoization store for retrospective computations.
//!
//! Retro snapshots are immutable, so the result of a per-snapshot query
//! `Qq` evaluated at snapshot `S` can never change — yet the RQL loop
//! recomputes it on every query, every session, every server client.
//! This crate caches two kinds of per-snapshot artifacts:
//!
//! * [`EntryKind::Result`] — the full `Qq` result (columns + rows) for
//!   one snapshot, foldable into any mechanism exactly like a live
//!   execution;
//! * [`EntryKind::Seed`] — an exported [`ScannerSeed`] capturing the
//!   delta scanner's post-scan state at one snapshot, so a memoized
//!   iteration keeps the *next* iteration on the delta path.
//!
//! Keying is content-addressed: a fingerprint of the canonical
//! *pre-rewrite* `Qq` text (so `AS OF` injection does not fragment
//! keys), the snapshot id, and a page-version vector (`pvv`) covering
//! the SPT mapping and the touched tables' roots and indexes. The `pvv`
//! is verified on every hit; snapshot immutability makes mismatches
//! rare (page archival, ad-hoc index drift) and a mismatch only costs a
//! recompute, never a wrong answer.
//!
//! Storage is a sharded in-memory LRU with byte-budget accounting plus
//! an optional disk-spill tier. The spill tier is strictly best-effort:
//! every file carries a magic, key echo and checksum, and **any** IO or
//! corruption failure degrades to a cache miss (the caller recomputes)
//! — a cache fault never fails a query.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use rql_sqlengine::record::{decode_row, encode_row, encoded_len};
use rql_sqlengine::{Row, ScannerSeed, SeedPage};

const MAGIC: &[u8; 8] = b"RQLMEMO1";
/// Fixed per-entry bookkeeping overhead charged to the byte budget.
const ENTRY_OVERHEAD: usize = 96;

/// Configuration for a [`MemoStore`].
#[derive(Debug, Clone)]
pub struct MemoConfig {
    /// Number of independently locked shards.
    pub shards: usize,
    /// Total in-memory byte budget across all shards.
    pub byte_budget: usize,
    /// Optional directory for the disk-spill tier. Entries are written
    /// through on insert and read back on memory misses; the directory
    /// is created on demand.
    pub spill_dir: Option<PathBuf>,
}

impl Default for MemoConfig {
    fn default() -> Self {
        MemoConfig {
            shards: 8,
            byte_budget: 64 << 20,
            spill_dir: None,
        }
    }
}

/// What kind of artifact an entry holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// A complete per-snapshot `Qq` result.
    Result,
    /// A delta-scanner seed exported after scanning one snapshot.
    Seed,
}

impl EntryKind {
    fn tag(self) -> u8 {
        match self {
            EntryKind::Result => 0,
            EntryKind::Seed => 1,
        }
    }
}

/// Cache key: query fingerprint × snapshot × artifact kind. The
/// page-version vector is deliberately *not* part of the key — it is
/// stored with the entry and verified on lookup, so true cold misses
/// never pay for computing it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemoKey {
    /// Fingerprint of the canonical pre-rewrite `Qq` text.
    pub fingerprint: u64,
    /// Snapshot the artifact was computed at.
    pub snap_id: u64,
    /// Artifact kind.
    pub kind: EntryKind,
}

/// A cached artifact.
#[derive(Debug, Clone, PartialEq)]
pub enum MemoValue {
    /// Column names and rows of a `Qq` execution.
    Result {
        /// Output column names.
        columns: Vec<String>,
        /// Result rows, in execution order.
        rows: Vec<Row>,
    },
    /// Exported delta-scanner state.
    Seed(ScannerSeed),
}

impl MemoValue {
    /// Approximate heap footprint, charged against the byte budget.
    pub fn approx_bytes(&self) -> usize {
        match self {
            MemoValue::Result { columns, rows } => {
                columns.iter().map(|c| c.len() + 24).sum::<usize>()
                    + rows.iter().map(|r| encoded_len(r) + 16).sum::<usize>()
            }
            MemoValue::Seed(seed) => seed
                .pages
                .iter()
                .map(|p| 32 + p.rows.iter().map(|r| encoded_len(r) + 16).sum::<usize>())
                .sum::<usize>(),
        }
    }

    fn encode(&self, out: &mut Vec<u8>) {
        fn put_rows(rows: &[Row], out: &mut Vec<u8>) {
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for row in rows {
                let mut buf = Vec::with_capacity(encoded_len(row));
                encode_row(row, &mut buf);
                out.extend_from_slice(&(buf.len() as u32).to_le_bytes());
                out.extend_from_slice(&buf);
            }
        }
        match self {
            MemoValue::Result { columns, rows } => {
                out.push(0);
                out.extend_from_slice(&(columns.len() as u32).to_le_bytes());
                for c in columns {
                    out.extend_from_slice(&(c.len() as u32).to_le_bytes());
                    out.extend_from_slice(c.as_bytes());
                }
                put_rows(rows, out);
            }
            MemoValue::Seed(seed) => {
                out.push(1);
                out.extend_from_slice(&seed.root.to_le_bytes());
                out.extend_from_slice(&(seed.pages.len() as u32).to_le_bytes());
                for p in &seed.pages {
                    out.extend_from_slice(&p.page.to_le_bytes());
                    out.push(u8::from(p.next.is_some()));
                    out.extend_from_slice(&p.next.unwrap_or(0).to_le_bytes());
                    put_rows(&p.rows, out);
                }
            }
        }
    }

    fn decode(bytes: &[u8]) -> Option<MemoValue> {
        struct Cur<'a>(&'a [u8]);
        impl<'a> Cur<'a> {
            fn take(&mut self, n: usize) -> Option<&'a [u8]> {
                if self.0.len() < n {
                    return None;
                }
                let (head, tail) = self.0.split_at(n);
                self.0 = tail;
                Some(head)
            }
            fn u8(&mut self) -> Option<u8> {
                self.take(1).map(|b| b[0])
            }
            fn u32(&mut self) -> Option<u32> {
                self.take(4)
                    .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            }
            fn u64(&mut self) -> Option<u64> {
                let b = self.take(8)?;
                let mut a = [0u8; 8];
                a.copy_from_slice(b);
                Some(u64::from_le_bytes(a))
            }
            fn rows(&mut self) -> Option<Vec<Row>> {
                let n = self.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1 << 16));
                for _ in 0..n {
                    let len = self.u32()? as usize;
                    let buf = self.take(len)?;
                    rows.push(decode_row(buf).ok()?);
                }
                Some(rows)
            }
        }
        let mut cur = Cur(bytes);
        let value = match cur.u8()? {
            0 => {
                let ncols = cur.u32()? as usize;
                let mut columns = Vec::with_capacity(ncols.min(1 << 12));
                for _ in 0..ncols {
                    let len = cur.u32()? as usize;
                    let raw = cur.take(len)?;
                    columns.push(String::from_utf8(raw.to_vec()).ok()?);
                }
                MemoValue::Result {
                    columns,
                    rows: cur.rows()?,
                }
            }
            1 => {
                let root = cur.u64()?;
                let npages = cur.u32()? as usize;
                let mut pages = Vec::with_capacity(npages.min(1 << 16));
                for _ in 0..npages {
                    let page = cur.u64()?;
                    let has_next = cur.u8()? != 0;
                    let next = cur.u64()?;
                    pages.push(SeedPage {
                        page,
                        next: has_next.then_some(next),
                        rows: cur.rows()?,
                    });
                }
                MemoValue::Seed(ScannerSeed { root, pages })
            }
            _ => return None,
        };
        cur.0.is_empty().then_some(value)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Point-in-time view of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoStatsSnapshot {
    /// Lookups answered from the cache (memory or spill).
    pub hits: u64,
    /// Lookups that fell through to recomputation.
    pub misses: u64,
    /// Entries evicted from memory by the byte budget.
    pub evictions: u64,
    /// Entries inserted.
    pub inserts: u64,
    /// Current in-memory footprint (gauge).
    pub bytes: u64,
    /// Entries successfully read back from the spill tier.
    pub spill_reads: u64,
    /// Entries written to the spill tier.
    pub spill_writes: u64,
    /// Bytes written to the spill tier.
    pub spill_bytes: u64,
    /// Spill IO/corruption faults absorbed (each one degraded to a
    /// miss, never an error).
    pub spill_errors: u64,
}

impl MemoStatsSnapshot {
    /// Every counter as a stable `(name, value)` list, for exporters.
    pub fn fields(&self) -> [(&'static str, u64); 9] {
        [
            ("hits", self.hits),
            ("misses", self.misses),
            ("evictions", self.evictions),
            ("inserts", self.inserts),
            ("bytes", self.bytes),
            ("spill_reads", self.spill_reads),
            ("spill_writes", self.spill_writes),
            ("spill_bytes", self.spill_bytes),
            ("spill_errors", self.spill_errors),
        ]
    }
}

#[derive(Debug, Default)]
struct MemoStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    bytes: AtomicU64,
    spill_reads: AtomicU64,
    spill_writes: AtomicU64,
    spill_bytes: AtomicU64,
    spill_errors: AtomicU64,
}

struct Entry {
    pvv: u64,
    value: MemoValue,
    bytes: usize,
    tick: u64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<MemoKey, Entry>,
    bytes: usize,
}

/// The memoization store: a sharded, byte-budgeted LRU over
/// [`MemoValue`] entries with page-version verification and an optional
/// disk-spill tier. All methods are `&self` and thread-safe; one store
/// is meant to be shared across every session of a server.
pub struct MemoStore {
    shards: Vec<Mutex<Shard>>,
    per_shard_budget: usize,
    tick: AtomicU64,
    spill_dir: Option<PathBuf>,
    stats: MemoStats,
}

impl std::fmt::Debug for MemoStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoStore")
            .field("shards", &self.shards.len())
            .field("per_shard_budget", &self.per_shard_budget)
            .field("spill_dir", &self.spill_dir)
            .finish()
    }
}

impl MemoStore {
    /// Create a store from `config`.
    pub fn new(config: MemoConfig) -> MemoStore {
        let shards = config.shards.max(1);
        MemoStore {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_budget: (config.byte_budget / shards).max(1),
            tick: AtomicU64::new(0),
            spill_dir: config.spill_dir,
            stats: MemoStats::default(),
        }
    }

    fn shard_of(&self, key: &MemoKey) -> usize {
        let mixed = key
            .fingerprint
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.snap_id)
            .wrapping_add(u64::from(key.kind.tag()));
        (mixed % self.shards.len() as u64) as usize
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Look up `key`, verifying the stored page-version vector against
    /// the one `pvv` computes. The closure is only invoked when an entry
    /// (memory or spill) actually exists, so cold misses never pay for
    /// it; `pvv` returning `None` means "unverifiable" and misses. A
    /// stale entry (pvv mismatch) is dropped from both tiers.
    pub fn lookup(&self, key: &MemoKey, pvv: impl FnOnce() -> Option<u64>) -> Option<MemoValue> {
        let _span = rql_trace::span(rql_trace::SpanId::MemoProbe);
        let idx = self.shard_of(key);
        let mem_pvv = self.shards[idx].lock().map.get(key).map(|e| e.pvv);
        let spill_path = if mem_pvv.is_none() {
            self.spill_path(key).filter(|p| p.exists())
        } else {
            None
        };
        if mem_pvv.is_none() && spill_path.is_none() {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let Some(current) = pvv() else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };

        if let Some(stored) = mem_pvv {
            if stored == current {
                let mut shard = self.shards[idx].lock();
                if let Some(e) = shard.map.get_mut(key) {
                    if e.pvv == current {
                        e.tick = self.next_tick();
                        let value = e.value.clone();
                        drop(shard);
                        self.stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Some(value);
                    }
                }
            } else {
                let mut shard = self.shards[idx].lock();
                if let Some(e) = shard.map.get(key) {
                    if e.pvv == stored {
                        Self::remove_entry(&mut shard, key, &self.stats);
                    }
                }
                drop(shard);
                if let Some(p) = self.spill_path(key) {
                    let _ = fs::remove_file(p);
                }
            }
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }

        // Spill tier: memory missed but a file exists.
        let path = spill_path?;
        match self.spill_read(key, &path) {
            Some((stored, value)) if stored == current => {
                self.insert_mem(*key, current, value.clone());
                self.stats.spill_reads.fetch_add(1, Ordering::Relaxed);
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            Some(_) => {
                let _ = fs::remove_file(&path);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert an artifact computed at page-version `pvv`. Write-through
    /// to the spill tier when configured; evicts least-recently-used
    /// entries until the shard is back under budget.
    pub fn insert(&self, key: MemoKey, pvv: u64, value: MemoValue) {
        let _span = rql_trace::span(rql_trace::SpanId::MemoInsert);
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        self.spill_write(&key, pvv, &value);
        self.insert_mem(key, pvv, value);
    }

    fn insert_mem(&self, key: MemoKey, pvv: u64, value: MemoValue) {
        let bytes = value.approx_bytes() + ENTRY_OVERHEAD;
        let tick = self.next_tick();
        let mut shard = self.shards[self.shard_of(&key)].lock();
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                pvv,
                value,
                bytes,
                tick,
            },
        ) {
            shard.bytes = shard.bytes.saturating_sub(old.bytes);
            self.stats
                .bytes
                .fetch_sub(old.bytes as u64, Ordering::Relaxed);
        }
        shard.bytes += bytes;
        self.stats.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        while shard.bytes > self.per_shard_budget {
            let victim = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k);
            match victim {
                Some(k) => {
                    Self::remove_entry(&mut shard, &k, &self.stats);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    fn remove_entry(shard: &mut Shard, key: &MemoKey, stats: &MemoStats) {
        if let Some(old) = shard.map.remove(key) {
            shard.bytes = shard.bytes.saturating_sub(old.bytes);
            stats.bytes.fetch_sub(old.bytes as u64, Ordering::Relaxed);
        }
    }

    /// Current counter values.
    pub fn stats(&self) -> MemoStatsSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        MemoStatsSnapshot {
            hits: g(&self.stats.hits),
            misses: g(&self.stats.misses),
            evictions: g(&self.stats.evictions),
            inserts: g(&self.stats.inserts),
            bytes: g(&self.stats.bytes),
            spill_reads: g(&self.stats.spill_reads),
            spill_writes: g(&self.stats.spill_writes),
            spill_bytes: g(&self.stats.spill_bytes),
            spill_errors: g(&self.stats.spill_errors),
        }
    }

    fn spill_path(&self, key: &MemoKey) -> Option<PathBuf> {
        self.spill_dir.as_ref().map(|d| {
            d.join(format!(
                "{:016x}-{}-{}.memo",
                key.fingerprint,
                key.snap_id,
                key.kind.tag()
            ))
        })
    }

    fn spill_write(&self, key: &MemoKey, pvv: u64, value: &MemoValue) {
        let Some(path) = self.spill_path(key) else {
            return;
        };
        let _span = rql_trace::span(rql_trace::SpanId::MemoSpillWrite);
        let mut payload = Vec::new();
        value.encode(&mut payload);
        let mut frame = Vec::with_capacity(payload.len() + 45);
        frame.extend_from_slice(MAGIC);
        frame.extend_from_slice(&key.fingerprint.to_le_bytes());
        frame.extend_from_slice(&key.snap_id.to_le_bytes());
        frame.push(key.kind.tag());
        frame.extend_from_slice(&pvv.to_le_bytes());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let tmp = path.with_extension(format!("tmp{}", self.next_tick()));
        let result = (|| -> std::io::Result<()> {
            if let Some(dir) = &self.spill_dir {
                fs::create_dir_all(dir)?;
            }
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&frame)?;
            f.sync_data()?;
            fs::rename(&tmp, &path)
        })();
        match result {
            Ok(()) => {
                self.stats.spill_writes.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .spill_bytes
                    .fetch_add(frame.len() as u64, Ordering::Relaxed);
            }
            Err(_) => {
                let _ = fs::remove_file(&tmp);
                self.stats.spill_errors.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Read one spill file, verifying magic, key echo and checksum.
    /// Returns `(stored_pvv, value)`; any fault counts a `spill_error`,
    /// removes the file and returns `None` (the caller recomputes).
    fn spill_read(&self, key: &MemoKey, path: &Path) -> Option<(u64, MemoValue)> {
        let _span = rql_trace::span(rql_trace::SpanId::MemoSpillRead);
        let fault = || {
            self.stats.spill_errors.fetch_add(1, Ordering::Relaxed);
            let _ = fs::remove_file(path);
        };
        let Ok(bytes) = fs::read(path) else {
            fault();
            return None;
        };
        let parsed = (|| -> Option<(u64, MemoValue)> {
            let header = 8 + 8 + 8 + 1 + 8 + 4 + 8;
            if bytes.len() < header || &bytes[..8] != MAGIC {
                return None;
            }
            let u64_at = |off: usize| {
                let mut a = [0u8; 8];
                a.copy_from_slice(&bytes[off..off + 8]);
                u64::from_le_bytes(a)
            };
            if u64_at(8) != key.fingerprint
                || u64_at(16) != key.snap_id
                || bytes[24] != key.kind.tag()
            {
                return None;
            }
            let pvv = u64_at(25);
            let len = u32::from_le_bytes([bytes[33], bytes[34], bytes[35], bytes[36]]) as usize;
            let checksum = u64_at(37);
            let payload = bytes.get(header..)?;
            if payload.len() != len || fnv1a(payload) != checksum {
                return None;
            }
            Some((pvv, MemoValue::decode(payload)?))
        })();
        if parsed.is_none() {
            fault();
        }
        parsed
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use rql_sqlengine::Value;
    use std::sync::atomic::AtomicU32;

    fn key(fp: u64, sid: u64, kind: EntryKind) -> MemoKey {
        MemoKey {
            fingerprint: fp,
            snap_id: sid,
            kind,
        }
    }

    fn result_value(n: i64) -> MemoValue {
        MemoValue::Result {
            columns: vec!["a".into(), "b".into()],
            rows: (0..n)
                .map(|i| vec![Value::Integer(i), Value::text(format!("row-{i}"))])
                .collect(),
        }
    }

    fn seed_value() -> MemoValue {
        MemoValue::Seed(ScannerSeed {
            root: 7,
            pages: vec![
                SeedPage {
                    page: 7,
                    next: Some(9),
                    rows: vec![vec![Value::Integer(1), Value::Real(2.5)]],
                },
                SeedPage {
                    page: 9,
                    next: None,
                    rows: vec![vec![Value::Null, Value::text("x")]],
                },
            ],
        })
    }

    static TEST_DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn temp_spill_dir() -> PathBuf {
        let n = TEST_DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("rql-memo-test-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn hit_miss_and_pvv_verification() {
        let store = MemoStore::new(MemoConfig::default());
        let k = key(1, 10, EntryKind::Result);
        // Cold miss: the pvv closure must not even run.
        assert!(store.lookup(&k, || panic!("pvv on cold miss")).is_none());
        store.insert(k, 42, result_value(3));
        assert_eq!(store.lookup(&k, || Some(42)), Some(result_value(3)));
        // Stale pvv drops the entry; the next matching lookup misses.
        assert!(store.lookup(&k, || Some(43)).is_none());
        assert!(store
            .lookup(&k, || panic!("entry should be gone"))
            .is_none());
        let s = store.stats();
        assert_eq!((s.hits, s.misses, s.inserts), (1, 3, 1));
    }

    #[test]
    fn value_encoding_round_trips() {
        for v in [result_value(5), result_value(0), seed_value()] {
            let mut buf = Vec::new();
            v.encode(&mut buf);
            assert_eq!(MemoValue::decode(&buf), Some(v));
        }
        assert!(MemoValue::decode(&[]).is_none());
        assert!(MemoValue::decode(&[9, 0, 0]).is_none());
    }

    #[test]
    fn byte_budget_evicts_lru() {
        let store = MemoStore::new(MemoConfig {
            shards: 1,
            byte_budget: 4 * (result_value(50).approx_bytes() + ENTRY_OVERHEAD),
            spill_dir: None,
        });
        for sid in 0..16 {
            store.insert(key(1, sid, EntryKind::Result), 0, result_value(50));
        }
        let s = store.stats();
        assert!(s.evictions >= 10, "evictions={}", s.evictions);
        assert!(s.bytes <= 4 * (result_value(50).approx_bytes() as u64 + 96));
        // Newest entries survive, oldest are gone.
        assert!(store
            .lookup(&key(1, 15, EntryKind::Result), || Some(0))
            .is_some());
        assert!(store
            .lookup(&key(1, 0, EntryKind::Result), || panic!("evicted"))
            .is_none());
    }

    #[test]
    fn spill_serves_memory_misses() {
        let dir = temp_spill_dir();
        let store = MemoStore::new(MemoConfig {
            shards: 1,
            byte_budget: 1, // everything is evicted from memory at once
            spill_dir: Some(dir.clone()),
        });
        let k = key(0xabcd, 3, EntryKind::Seed);
        store.insert(k, 7, seed_value());
        let got = store.lookup(&k, || Some(7));
        assert_eq!(got, Some(seed_value()));
        let s = store.stats();
        assert_eq!(s.spill_writes, 1);
        assert_eq!(s.spill_reads, 1);
        assert_eq!(s.hits, 1);
        assert_eq!(s.spill_errors, 0);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_spill_degrades_to_miss() {
        let dir = temp_spill_dir();
        let store = MemoStore::new(MemoConfig {
            shards: 1,
            byte_budget: 1,
            spill_dir: Some(dir.clone()),
        });
        let k = key(0xbeef, 5, EntryKind::Result);
        store.insert(k, 1, result_value(4));
        // Flip bytes in the payload of the one spill file.
        let file = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().is_some_and(|e| e == "memo"))
            .unwrap();
        let mut bytes = fs::read(&file).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&file, bytes).unwrap();

        assert!(store.lookup(&k, || Some(1)).is_none());
        let s = store.stats();
        assert_eq!(s.spill_errors, 1);
        assert_eq!(s.hits, 0);
        // The corrupt file was deleted; the key is now a clean cold miss.
        assert!(store.lookup(&k, || panic!("no tiers left")).is_none());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn spill_io_failure_never_panics() {
        // A file where the directory should be: every write fails.
        let dir = temp_spill_dir();
        let bogus = dir.join("not-a-dir");
        fs::write(&bogus, b"x").unwrap();
        let store = MemoStore::new(MemoConfig {
            shards: 1,
            byte_budget: 1 << 20,
            spill_dir: Some(bogus),
        });
        let k = key(1, 1, EntryKind::Result);
        store.insert(k, 0, result_value(2));
        assert!(store.stats().spill_errors >= 1);
        // The memory tier still works.
        assert_eq!(store.lookup(&k, || Some(0)), Some(result_value(2)));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_fields_are_stable() {
        let names: Vec<&str> = MemoStatsSnapshot::default()
            .fields()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            [
                "hits",
                "misses",
                "evictions",
                "inserts",
                "bytes",
                "spill_reads",
                "spill_writes",
                "spill_bytes",
                "spill_errors"
            ]
        );
    }
}
