//! Shared LRU buffer cache for database and snapshot pages.
//!
//! Retro "caches snapshot pages in a buffer cache along with the database
//! pages" (paper §4). The detail that makes RQL hot iterations cheap is the
//! cache *key*: a snapshot page is keyed by its **Pagelog offset**, not by
//! `(snapshot, page)`. Two consecutive snapshots S1, S2 map every page in
//! `shared(S1,S2)` to the *same* Pagelog pre-state, so a page fetched while
//! computing on S1 hits in cache when the next iteration computes on S2 —
//! exactly the sharing effect of Figures 6–8. (The alternative keying is
//! kept behind [`CacheKeying`] as an ablation for the `cache_keying`
//! benchmark.)

use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use parking_lot::Mutex;

use crate::page::{PageId, SharedPage};

/// What a cached page is identified by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// A current-database page (used only when the DB is file-backed;
    /// the paper assumes the current DB is memory-resident).
    Db(PageId),
    /// A snapshot pre-state, identified by its Pagelog offset. Shared
    /// between all snapshots whose SPT maps to this offset.
    Pagelog(u64),
    /// Ablation keying: a snapshot page identified per-snapshot, which
    /// defeats cross-snapshot sharing.
    PerSnapshot {
        /// Snapshot sequence number.
        snapshot: u64,
        /// Logical page.
        page: PageId,
    },
}

/// Cache keying policy (ablation knob; see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheKeying {
    /// Key snapshot pages by Pagelog offset (Retro's behaviour).
    #[default]
    ByPagelogOffset,
    /// Key snapshot pages by (snapshot, page) — no cross-snapshot sharing.
    PerSnapshot,
}

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    page: SharedPage,
    prev: usize,
    next: usize,
}

struct LruInner {
    map: HashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

/// Caches at least this large are split into [`SHARD_COUNT`] shards so
/// concurrent sessions don't serialize on a single mutex. Smaller caches
/// stay single-sharded: their unit tests (and the cache-keying ablation)
/// rely on *exact* global LRU order, which sharding only approximates.
const SHARD_THRESHOLD: usize = 4096;
/// Number of shards for large caches (power of two, see [`shard_index`]).
const SHARD_COUNT: usize = 8;

/// A fixed-capacity LRU page cache, safe to share between threads.
///
/// Internally sharded for large capacities: each shard is an independent
/// LRU with `capacity / shards` pages, keyed by a hash of the
/// [`CacheKey`], so the read path's lock hold time covers only a map
/// lookup and two list splices — never I/O (the fetch path reads the
/// Pagelog *outside* the cache lock and inserts afterwards).
pub struct BufferCache {
    shards: Box<[Mutex<LruInner>]>,
}

/// Which shard a key lives in. FxHash-style multiply-mix over the
/// discriminant and payload — cheap enough for the hot read path.
fn shard_index(key: &CacheKey, n: usize) -> usize {
    struct Mix(u64);
    impl Hasher for Mix {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
            }
        }
        fn write_u64(&mut self, v: u64) {
            self.0 = (self.0 ^ v).wrapping_mul(0x100_0000_01b3);
        }
    }
    let mut h = Mix(0xcbf2_9ce4_8422_2325);
    key.hash(&mut h);
    // Fold high bits in: the low bits of a multiply-mix are the weakest.
    ((h.finish() >> 32) as usize ^ h.finish() as usize) & (n - 1)
}

impl BufferCache {
    /// Create a cache holding at most `capacity` pages. A capacity of zero
    /// disables caching entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        let n = if capacity >= SHARD_THRESHOLD {
            SHARD_COUNT
        } else {
            1
        };
        let shards: Vec<Mutex<LruInner>> = (0..n)
            .map(|i| {
                Mutex::new(LruInner {
                    map: HashMap::new(),
                    nodes: Vec::new(),
                    free: Vec::new(),
                    head: NIL,
                    tail: NIL,
                    capacity: capacity / n + usize::from(i < capacity % n),
                })
            })
            .collect();
        BufferCache {
            shards: shards.into_boxed_slice(),
        }
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<LruInner> {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<SharedPage> {
        let mut inner = self.shard(key).lock();
        let idx = *inner.map.get(key)?;
        inner.unlink(idx);
        inner.push_front(idx);
        Some(inner.nodes[idx].page.clone())
    }

    /// Insert `page` under `key`, evicting the least-recently-used entry
    /// of the key's shard if at capacity. Returns the number of evictions
    /// performed (0 or 1).
    pub fn insert(&self, key: CacheKey, page: SharedPage) -> usize {
        let mut inner = self.shard(&key).lock();
        if inner.capacity == 0 {
            return 0;
        }
        if let Some(&idx) = inner.map.get(&key) {
            inner.nodes[idx].page = page;
            inner.unlink(idx);
            inner.push_front(idx);
            return 0;
        }
        let mut evictions = 0;
        if inner.map.len() >= inner.capacity {
            inner.evict_lru();
            evictions = 1;
        }
        let idx = inner.alloc(key, page);
        inner.map.insert(key, idx);
        inner.push_front(idx);
        evictions
    }

    /// Remove every entry (used to force all-cold runs in experiments).
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            inner.map.clear();
            inner.nodes.clear();
            inner.free.clear();
            inner.head = NIL;
            inner.tail = NIL;
        }
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Change the capacity; shrinking evicts LRU entries immediately
    /// (per shard). Returns the number of entries evicted. The shard
    /// count is fixed at construction, so growing a small cache past the
    /// sharding threshold keeps it single-sharded.
    pub fn set_capacity(&self, capacity: usize) -> usize {
        let n = self.shards.len();
        let mut evicted = 0;
        for (i, shard) in self.shards.iter().enumerate() {
            let mut inner = shard.lock();
            inner.capacity = capacity / n + usize::from(i < capacity % n);
            while inner.map.len() > inner.capacity {
                inner.evict_lru();
                evicted += 1;
            }
        }
        evicted
    }

    /// Current capacity in pages.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity).sum()
    }

    /// Number of independent LRU shards (1 for small caches).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

impl LruInner {
    fn alloc(&mut self, key: CacheKey, page: SharedPage) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                page,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict called on empty cache");
        self.unlink(idx);
        let key = self.nodes[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;
    use std::sync::Arc;

    fn page(tag: u8) -> SharedPage {
        let mut p = Page::zeroed(16);
        p.bytes_mut()[0] = tag;
        Arc::new(p)
    }

    #[test]
    fn hit_and_miss() {
        let c = BufferCache::new(4);
        let k = CacheKey::Pagelog(10);
        assert!(c.get(&k).is_none());
        c.insert(k, page(1));
        assert_eq!(c.get(&k).unwrap().bytes()[0], 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = BufferCache::new(2);
        c.insert(CacheKey::Pagelog(1), page(1));
        c.insert(CacheKey::Pagelog(2), page(2));
        // Touch 1 so 2 becomes LRU.
        c.get(&CacheKey::Pagelog(1)).unwrap();
        let evictions = c.insert(CacheKey::Pagelog(3), page(3));
        assert_eq!(evictions, 1);
        assert!(c.get(&CacheKey::Pagelog(2)).is_none());
        assert!(c.get(&CacheKey::Pagelog(1)).is_some());
        assert!(c.get(&CacheKey::Pagelog(3)).is_some());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let c = BufferCache::new(2);
        c.insert(CacheKey::Pagelog(1), page(1));
        let evictions = c.insert(CacheKey::Pagelog(1), page(9));
        assert_eq!(evictions, 0);
        assert_eq!(c.get(&CacheKey::Pagelog(1)).unwrap().bytes()[0], 9);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let c = BufferCache::new(0);
        c.insert(CacheKey::Pagelog(1), page(1));
        assert!(c.get(&CacheKey::Pagelog(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let c = BufferCache::new(4);
        c.insert(CacheKey::Pagelog(1), page(1));
        c.insert(CacheKey::Db(PageId(2)), page(2));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&CacheKey::Pagelog(1)).is_none());
    }

    #[test]
    fn shrink_capacity_evicts() {
        let c = BufferCache::new(4);
        for i in 0..4 {
            c.insert(CacheKey::Pagelog(i), page(i as u8));
        }
        let evicted = c.set_capacity(2);
        assert_eq!(evicted, 2);
        assert_eq!(c.len(), 2);
        // The two most recently used (2, 3) survive.
        assert!(c.get(&CacheKey::Pagelog(3)).is_some());
        assert!(c.get(&CacheKey::Pagelog(2)).is_some());
        assert!(c.get(&CacheKey::Pagelog(0)).is_none());
    }

    #[test]
    fn distinct_key_kinds_do_not_collide() {
        let c = BufferCache::new(8);
        c.insert(CacheKey::Db(PageId(1)), page(1));
        c.insert(CacheKey::Pagelog(1), page(2));
        c.insert(
            CacheKey::PerSnapshot {
                snapshot: 1,
                page: PageId(1),
            },
            page(3),
        );
        assert_eq!(c.get(&CacheKey::Db(PageId(1))).unwrap().bytes()[0], 1);
        assert_eq!(c.get(&CacheKey::Pagelog(1)).unwrap().bytes()[0], 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let c = BufferCache::new(16);
        for round in 0..1000u64 {
            c.insert(CacheKey::Pagelog(round % 40), page((round % 251) as u8));
            if round % 3 == 0 {
                c.get(&CacheKey::Pagelog(round % 17));
            }
        }
        assert!(c.len() <= 16);
    }

    #[test]
    fn small_caches_are_single_sharded_large_are_not() {
        assert_eq!(BufferCache::new(16).shard_count(), 1);
        assert_eq!(BufferCache::new(0).shard_count(), 1);
        let big = BufferCache::new(1 << 16);
        assert!(big.shard_count() > 1);
        // Shard capacities sum to the requested total.
        assert_eq!(big.capacity(), 1 << 16);
        assert_eq!(big.set_capacity(1 << 10), 0);
        assert_eq!(big.capacity(), 1 << 10);
    }

    #[test]
    fn sharded_cache_round_trips_and_bounds_size() {
        let c = BufferCache::new(8192);
        for i in 0..10_000u64 {
            c.insert(CacheKey::Pagelog(i), page((i % 251) as u8));
        }
        assert!(c.len() <= 8192);
        // Recent keys should still be resident and byte-correct.
        let hits = (9_000..10_000u64)
            .filter(|&i| match c.get(&CacheKey::Pagelog(i)) {
                Some(p) => {
                    assert_eq!(p.bytes()[0], (i % 251) as u8);
                    true
                }
                None => false,
            })
            .count();
        assert!(hits > 500, "expected most recent keys resident, got {hits}");
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn concurrent_readers_and_writers_stay_coherent() {
        let c = Arc::new(BufferCache::new(8192));
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for i in 0..2_000u64 {
                        let k = CacheKey::Pagelog(t * 10_000 + i);
                        c.insert(k, page((i % 251) as u8));
                        if let Some(p) = c.get(&k) {
                            assert_eq!(p.bytes()[0], (i % 251) as u8);
                        }
                        // Cross-thread reads of a shared hot set.
                        c.get(&CacheKey::Pagelog(i % 64));
                    }
                });
            }
        });
        assert!(c.len() <= 8192);
    }
}
