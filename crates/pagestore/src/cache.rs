//! Shared LRU buffer cache for database and snapshot pages.
//!
//! Retro "caches snapshot pages in a buffer cache along with the database
//! pages" (paper §4). The detail that makes RQL hot iterations cheap is the
//! cache *key*: a snapshot page is keyed by its **Pagelog offset**, not by
//! `(snapshot, page)`. Two consecutive snapshots S1, S2 map every page in
//! `shared(S1,S2)` to the *same* Pagelog pre-state, so a page fetched while
//! computing on S1 hits in cache when the next iteration computes on S2 —
//! exactly the sharing effect of Figures 6–8. (The alternative keying is
//! kept behind [`CacheKeying`] as an ablation for the `cache_keying`
//! benchmark.)

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::page::{PageId, SharedPage};

/// What a cached page is identified by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKey {
    /// A current-database page (used only when the DB is file-backed;
    /// the paper assumes the current DB is memory-resident).
    Db(PageId),
    /// A snapshot pre-state, identified by its Pagelog offset. Shared
    /// between all snapshots whose SPT maps to this offset.
    Pagelog(u64),
    /// Ablation keying: a snapshot page identified per-snapshot, which
    /// defeats cross-snapshot sharing.
    PerSnapshot {
        /// Snapshot sequence number.
        snapshot: u64,
        /// Logical page.
        page: PageId,
    },
}

/// Cache keying policy (ablation knob; see DESIGN.md §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheKeying {
    /// Key snapshot pages by Pagelog offset (Retro's behaviour).
    #[default]
    ByPagelogOffset,
    /// Key snapshot pages by (snapshot, page) — no cross-snapshot sharing.
    PerSnapshot,
}

const NIL: usize = usize::MAX;

struct Node {
    key: CacheKey,
    page: SharedPage,
    prev: usize,
    next: usize,
}

struct LruInner {
    map: HashMap<CacheKey, usize>,
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

/// A fixed-capacity LRU page cache, safe to share between threads.
pub struct BufferCache {
    inner: Mutex<LruInner>,
}

impl BufferCache {
    /// Create a cache holding at most `capacity` pages. A capacity of zero
    /// disables caching entirely (every lookup misses).
    pub fn new(capacity: usize) -> Self {
        BufferCache {
            inner: Mutex::new(LruInner {
                map: HashMap::new(),
                nodes: Vec::new(),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                capacity,
            }),
        }
    }

    /// Look up `key`, marking it most-recently-used on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<SharedPage> {
        let mut inner = self.inner.lock();
        let idx = *inner.map.get(key)?;
        inner.unlink(idx);
        inner.push_front(idx);
        Some(inner.nodes[idx].page.clone())
    }

    /// Insert `page` under `key`, evicting the least-recently-used entry if
    /// at capacity. Returns the number of evictions performed (0 or 1).
    pub fn insert(&self, key: CacheKey, page: SharedPage) -> usize {
        let mut inner = self.inner.lock();
        if inner.capacity == 0 {
            return 0;
        }
        if let Some(&idx) = inner.map.get(&key) {
            inner.nodes[idx].page = page;
            inner.unlink(idx);
            inner.push_front(idx);
            return 0;
        }
        let mut evictions = 0;
        if inner.map.len() >= inner.capacity {
            inner.evict_lru();
            evictions = 1;
        }
        let idx = inner.alloc(key, page);
        inner.map.insert(key, idx);
        inner.push_front(idx);
        evictions
    }

    /// Remove every entry (used to force all-cold runs in experiments).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.nodes.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the cache holds no pages.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Change the capacity; shrinking evicts LRU entries immediately.
    /// Returns the number of entries evicted.
    pub fn set_capacity(&self, capacity: usize) -> usize {
        let mut inner = self.inner.lock();
        inner.capacity = capacity;
        let mut evicted = 0;
        while inner.map.len() > inner.capacity {
            inner.evict_lru();
            evicted += 1;
        }
        evicted
    }

    /// Current capacity in pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }
}

impl LruInner {
    fn alloc(&mut self, key: CacheKey, page: SharedPage) -> usize {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = Node {
                key,
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            self.nodes.push(Node {
                key,
                page,
                prev: NIL,
                next: NIL,
            });
            self.nodes.len() - 1
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn evict_lru(&mut self) {
        let idx = self.tail;
        debug_assert_ne!(idx, NIL, "evict called on empty cache");
        self.unlink(idx);
        let key = self.nodes[idx].key;
        self.map.remove(&key);
        self.free.push(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::Page;
    use std::sync::Arc;

    fn page(tag: u8) -> SharedPage {
        let mut p = Page::zeroed(16);
        p.bytes_mut()[0] = tag;
        Arc::new(p)
    }

    #[test]
    fn hit_and_miss() {
        let c = BufferCache::new(4);
        let k = CacheKey::Pagelog(10);
        assert!(c.get(&k).is_none());
        c.insert(k, page(1));
        assert_eq!(c.get(&k).unwrap().bytes()[0], 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = BufferCache::new(2);
        c.insert(CacheKey::Pagelog(1), page(1));
        c.insert(CacheKey::Pagelog(2), page(2));
        // Touch 1 so 2 becomes LRU.
        c.get(&CacheKey::Pagelog(1)).unwrap();
        let evictions = c.insert(CacheKey::Pagelog(3), page(3));
        assert_eq!(evictions, 1);
        assert!(c.get(&CacheKey::Pagelog(2)).is_none());
        assert!(c.get(&CacheKey::Pagelog(1)).is_some());
        assert!(c.get(&CacheKey::Pagelog(3)).is_some());
    }

    #[test]
    fn reinsert_updates_value_without_eviction() {
        let c = BufferCache::new(2);
        c.insert(CacheKey::Pagelog(1), page(1));
        let evictions = c.insert(CacheKey::Pagelog(1), page(9));
        assert_eq!(evictions, 0);
        assert_eq!(c.get(&CacheKey::Pagelog(1)).unwrap().bytes()[0], 9);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_disables_cache() {
        let c = BufferCache::new(0);
        c.insert(CacheKey::Pagelog(1), page(1));
        assert!(c.get(&CacheKey::Pagelog(1)).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn clear_empties() {
        let c = BufferCache::new(4);
        c.insert(CacheKey::Pagelog(1), page(1));
        c.insert(CacheKey::Db(PageId(2)), page(2));
        c.clear();
        assert!(c.is_empty());
        assert!(c.get(&CacheKey::Pagelog(1)).is_none());
    }

    #[test]
    fn shrink_capacity_evicts() {
        let c = BufferCache::new(4);
        for i in 0..4 {
            c.insert(CacheKey::Pagelog(i), page(i as u8));
        }
        let evicted = c.set_capacity(2);
        assert_eq!(evicted, 2);
        assert_eq!(c.len(), 2);
        // The two most recently used (2, 3) survive.
        assert!(c.get(&CacheKey::Pagelog(3)).is_some());
        assert!(c.get(&CacheKey::Pagelog(2)).is_some());
        assert!(c.get(&CacheKey::Pagelog(0)).is_none());
    }

    #[test]
    fn distinct_key_kinds_do_not_collide() {
        let c = BufferCache::new(8);
        c.insert(CacheKey::Db(PageId(1)), page(1));
        c.insert(CacheKey::Pagelog(1), page(2));
        c.insert(
            CacheKey::PerSnapshot {
                snapshot: 1,
                page: PageId(1),
            },
            page(3),
        );
        assert_eq!(c.get(&CacheKey::Db(PageId(1))).unwrap().bytes()[0], 1);
        assert_eq!(c.get(&CacheKey::Pagelog(1)).unwrap().bytes()[0], 2);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let c = BufferCache::new(16);
        for round in 0..1000u64 {
            c.insert(CacheKey::Pagelog(round % 40), page((round % 251) as u8));
            if round % 3 == 0 {
                c.get(&CacheKey::Pagelog(round % 17));
            }
        }
        assert!(c.len() <= 16);
    }
}
