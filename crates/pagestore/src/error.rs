//! Error type shared by the storage substrate.

use std::fmt;
use std::io;

use crate::page::PageId;

/// Errors raised by the page store and its log-structured files.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Read past the end of a log.
    ShortRead {
        /// Requested offset.
        offset: u64,
        /// Requested byte count.
        wanted: usize,
        /// Bytes actually available at that offset.
        available: usize,
    },
    /// Offset outside the log.
    InvalidOffset(u64),
    /// Page id outside the database.
    PageOutOfBounds(PageId),
    /// A second write transaction was started while one is active
    /// (the store is single-writer, like BDB with one write txn).
    WriterBusy,
    /// WAL record failed its checksum during recovery (torn write).
    CorruptWal {
        /// Offset of the bad record.
        offset: u64,
    },
    /// Catch-all for invariant violations with context.
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::ShortRead {
                offset,
                wanted,
                available,
            } => write!(
                f,
                "short read at offset {offset}: wanted {wanted} bytes, {available} available"
            ),
            StoreError::InvalidOffset(o) => write!(f, "invalid offset {o}"),
            StoreError::PageOutOfBounds(p) => write!(f, "page {p} out of bounds"),
            StoreError::WriterBusy => write!(f, "a write transaction is already active"),
            StoreError::CorruptWal { offset } => {
                write!(f, "corrupt WAL record at offset {offset}")
            }
            StoreError::Corrupt(msg) => write!(f, "store corruption: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = StoreError::ShortRead {
            offset: 10,
            wanted: 4,
            available: 2,
        };
        assert!(e.to_string().contains("short read"));
        assert!(StoreError::WriterBusy
            .to_string()
            .contains("write transaction"));
        assert!(StoreError::PageOutOfBounds(PageId(3))
            .to_string()
            .contains("P3"));
    }

    #[test]
    fn io_error_converts() {
        let io = io::Error::other("boom");
        let e: StoreError = io.into();
        assert!(matches!(e, StoreError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
