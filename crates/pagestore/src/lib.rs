//! # rql-pagestore
//!
//! Page-based transactional storage substrate for the reproduction of
//! *"RQL: Retrospective Computations over Snapshot Sets"* (EDBT 2018).
//!
//! This crate is the Berkeley-DB analog the paper's Retro snapshot system
//! plugs into:
//!
//! * fixed-size [`page::Page`]s published behind `Arc` (readers get MVCC
//!   views for free — writers replace, never mutate, published pages);
//! * a memory-resident current state managed by the [`pager::Pager`], with
//!   a redo [`wal::Wal`] for durability and crash recovery;
//! * single-writer [`pager::WriteTxn`]s whose commit exposes the pre-state
//!   of every modified page — the interposition point used by `rql-retro`
//!   for copy-on-write snapshot capture;
//! * a shared LRU [`cache::BufferCache`] that caches snapshot pages keyed
//!   by Pagelog offset (the keying that produces the cross-snapshot page
//!   sharing studied in the paper's §5);
//! * [`stats::IoStats`] counters and a deterministic [`stats::IoCostModel`]
//!   used by the experiment harness to reproduce the paper's figures.

#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod page;
pub mod pager;
pub mod stats;
pub mod storage;
pub mod wal;

pub use cache::{BufferCache, CacheKey, CacheKeying};
pub use error::{Result, StoreError};
pub use page::{fnv1a, Page, PageId, SharedPage, DEFAULT_PAGE_SIZE};
pub use pager::{DbView, Pager, PagerConfig, WriteTxn};
pub use stats::{IoCostModel, IoStats, IoStatsSnapshot};
pub use storage::{FailingStorage, FileStorage, LogStorage, MemStorage};
pub use wal::{next_committed_segment, CommittedSegment, RecoveredState, Wal};
