//! Fixed-size database pages and page identifiers.
//!
//! Everything in the RQL reproduction is a page-level phenomenon: the
//! Berkeley-DB-analog store manages the current state as a sequence of
//! logical pages, Retro archives pre-states of whole pages, and the buffer
//! cache caches whole pages. A [`Page`] is an immutable-after-publication
//! byte buffer; the pager publishes pages behind `Arc` so that readers
//! (snapshot queries) never observe in-place mutation.

use std::fmt;
use std::sync::Arc;

/// Default page size in bytes (matches SQLite's historical default).
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Logical page number within a database.
///
/// Page ids are dense: the database is the sequence of pages `0..page_count`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Index usable for `Vec` access.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A fixed-size page of bytes.
///
/// Pages carry small typed read/write helpers used by the record and B-tree
/// layers. A page is mutated only while privately owned (inside a write
/// transaction's write set); once published to the pager it is shared as
/// `Arc<Page>` and treated as immutable.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8]>,
}

impl Page {
    /// Create a zero-filled page of `size` bytes.
    pub fn zeroed(size: usize) -> Self {
        Page {
            data: vec![0u8; size].into_boxed_slice(),
        }
    }

    /// Create a page from raw bytes.
    pub fn from_bytes(data: Vec<u8>) -> Self {
        Page {
            data: data.into_boxed_slice(),
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Entire page contents.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    /// Mutable page contents (only while privately owned).
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Read a little-endian `u16` at `off`.
    #[inline]
    pub fn read_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes(self.data[off..off + 2].try_into().unwrap())
    }

    /// Write a little-endian `u16` at `off`.
    #[inline]
    pub fn write_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u32` at `off`.
    #[inline]
    pub fn read_u32(&self, off: usize) -> u32 {
        u32::from_le_bytes(self.data[off..off + 4].try_into().unwrap())
    }

    /// Write a little-endian `u32` at `off`.
    #[inline]
    pub fn write_u32(&mut self, off: usize, v: u32) {
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a little-endian `u64` at `off`.
    #[inline]
    pub fn read_u64(&self, off: usize) -> u64 {
        u64::from_le_bytes(self.data[off..off + 8].try_into().unwrap())
    }

    /// Write a little-endian `u64` at `off`.
    #[inline]
    pub fn write_u64(&mut self, off: usize, v: u64) {
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Read `len` bytes starting at `off`.
    #[inline]
    pub fn read_slice(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    /// Copy `src` into the page at `off`.
    #[inline]
    pub fn write_slice(&mut self, off: usize, src: &[u8]) {
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// FNV-1a checksum over the page contents; used by the WAL to detect
    /// torn writes during recovery.
    pub fn checksum(&self) -> u64 {
        fnv1a(&self.data)
    }
}

/// `Debug` for a page prints size and checksum rather than 4 KiB of bytes.
impl fmt::Debug for Page {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Page")
            .field("size", &self.size())
            .field("checksum", &format_args!("{:#x}", self.checksum()))
            .finish()
    }
}

/// FNV-1a hash of a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Shared, immutable published page.
pub type SharedPage = Arc<Page>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page_has_requested_size() {
        let p = Page::zeroed(128);
        assert_eq!(p.size(), 128);
        assert!(p.bytes().iter().all(|&b| b == 0));
    }

    #[test]
    fn typed_reads_round_trip() {
        let mut p = Page::zeroed(64);
        p.write_u16(0, 0xBEEF);
        p.write_u32(2, 0xDEAD_BEEF);
        p.write_u64(6, 0x0123_4567_89AB_CDEF);
        p.write_slice(20, b"hello");
        assert_eq!(p.read_u16(0), 0xBEEF);
        assert_eq!(p.read_u32(2), 0xDEAD_BEEF);
        assert_eq!(p.read_u64(6), 0x0123_4567_89AB_CDEF);
        assert_eq!(p.read_slice(20, 5), b"hello");
    }

    #[test]
    fn checksum_changes_with_content() {
        let mut p = Page::zeroed(64);
        let c0 = p.checksum();
        p.write_u16(10, 7);
        assert_ne!(c0, p.checksum());
    }

    #[test]
    fn fnv_known_value() {
        // FNV-1a of empty input is the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn page_id_display() {
        assert_eq!(PageId(42).to_string(), "P42");
        assert_eq!(PageId(7).index(), 7);
    }
}
