//! The pager: current-state page table, write transactions, read views.
//!
//! The paper assumes "the current state database is memory resident" (§5),
//! so the pager keeps the current state as a vector of `Arc`-published
//! pages; durability comes from the redo WAL. Writers never mutate a
//! published page in place — a commit swaps in freshly built pages — which
//! gives readers MVCC for free: a read-only transaction pins an immutable
//! [`DbView`] of the page table and is never blocked by, nor blocks,
//! writers. This mirrors how Retro "runs snapshot queries as read-only
//! MVCC transactions" on BDB (§4).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::cache::BufferCache;
use crate::error::{Result, StoreError};
use crate::page::{Page, PageId, SharedPage, DEFAULT_PAGE_SIZE};
use crate::stats::IoStats;
use crate::storage::LogStorage;
use crate::wal::Wal;

/// Pager configuration.
#[derive(Debug, Clone)]
pub struct PagerConfig {
    /// Page size in bytes.
    pub page_size: usize,
    /// Buffer-cache capacity in pages (for snapshot pages).
    pub cache_capacity: usize,
    /// Whether commits fsync the WAL.
    pub wal_sync_on_commit: bool,
}

impl Default for PagerConfig {
    fn default() -> Self {
        PagerConfig {
            page_size: DEFAULT_PAGE_SIZE,
            cache_capacity: 1 << 16,
            wal_sync_on_commit: false,
        }
    }
}

/// The current-state page manager.
pub struct Pager {
    config: PagerConfig,
    pages: RwLock<Arc<Vec<SharedPage>>>,
    stats: Arc<IoStats>,
    cache: Arc<BufferCache>,
    wal: Option<Wal>,
    writer_active: AtomicBool,
    next_txn: AtomicU64,
}

impl Pager {
    /// Create an empty pager with no WAL (tests, ephemeral databases).
    pub fn new(config: PagerConfig) -> Self {
        let cache = Arc::new(BufferCache::new(config.cache_capacity));
        Pager {
            config,
            pages: RwLock::new(Arc::new(Vec::new())),
            stats: Arc::new(IoStats::new()),
            cache,
            wal: None,
            writer_active: AtomicBool::new(false),
            next_txn: AtomicU64::new(1),
        }
    }

    /// Create a pager whose commits are logged to `wal_storage`, replaying
    /// any committed state already on the log.
    ///
    /// Returns the pager and the snapshot ids found on the log (in commit
    /// order) so the snapshot subsystem can resume its sequence.
    pub fn open_with_wal(
        config: PagerConfig,
        wal_storage: Arc<dyn LogStorage>,
    ) -> Result<(Self, Vec<u64>)> {
        let wal = Wal::new(Arc::clone(&wal_storage), config.wal_sync_on_commit);
        let recovered = wal.recover()?;
        // Drop any torn tail so new appends land at the recovered commit
        // boundary: without this, bytes after a crash-torn record would be
        // stranded garbage in front of every later commit, and a second
        // recovery would stop at them and lose that later work.
        if recovered.valid_len < wal_storage.len() {
            wal_storage.truncate(recovered.valid_len)?;
        }
        let mut max_pid = None;
        for pid in recovered.pages.keys() {
            max_pid = Some(max_pid.map_or(pid.0, |m: u64| m.max(pid.0)));
        }
        let count = max_pid.map_or(0, |m| m + 1) as usize;
        let blank = Arc::new(Page::zeroed(config.page_size));
        let mut pages: Vec<SharedPage> = vec![blank; count];
        for (pid, page) in recovered.pages {
            pages[pid.index()] = Arc::new(page);
        }
        let cache = Arc::new(BufferCache::new(config.cache_capacity));
        let pager = Pager {
            config,
            pages: RwLock::new(Arc::new(pages)),
            stats: Arc::new(IoStats::new()),
            cache,
            wal: Some(wal),
            writer_active: AtomicBool::new(false),
            next_txn: AtomicU64::new(recovered.last_txn + 1),
        };
        Ok((pager, recovered.snapshots))
    }

    /// Pager configuration.
    pub fn config(&self) -> &PagerConfig {
        &self.config
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Shared buffer cache (snapshot pages).
    pub fn cache(&self) -> &Arc<BufferCache> {
        &self.cache
    }

    /// Number of pages in the current database.
    pub fn page_count(&self) -> u64 {
        self.pages.read().len() as u64
    }

    /// Read a current-state page (counted as an in-memory database read).
    pub fn read_page(&self, pid: PageId) -> Result<SharedPage> {
        let pages = self.pages.read();
        let page = pages
            .get(pid.index())
            .cloned()
            .ok_or(StoreError::PageOutOfBounds(pid))?;
        self.stats.count_db_read();
        Ok(page)
    }

    /// Pin an immutable view of the current page table (MVCC read view).
    pub fn view(&self) -> DbView {
        DbView {
            pages: self.pages.read().clone(),
            stats: self.stats.clone(),
        }
    }

    /// Begin a write transaction. The store is single-writer; a second
    /// concurrent writer gets [`StoreError::WriterBusy`].
    pub fn begin_write(self: &Arc<Self>) -> Result<WriteTxn> {
        if self
            .writer_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::WriterBusy);
        }
        let txn_id = self.next_txn.fetch_add(1, Ordering::Relaxed);
        Ok(WriteTxn {
            pager: Arc::clone(self),
            txn_id,
            writes: HashMap::new(),
            base_count: self.page_count(),
            alloc_count: 0,
            finished: false,
        })
    }

    /// Begin a write transaction with an explicit id instead of the local
    /// counter — the replication replay path, where a follower must commit
    /// under the leader's txn id so its regenerated WAL stays byte-identical
    /// to the leader's. The local counter is advanced past `txn_id` so any
    /// later locally-assigned id stays unique.
    pub fn begin_write_at(self: &Arc<Self>, txn_id: u64) -> Result<WriteTxn> {
        if self
            .writer_active
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return Err(StoreError::WriterBusy);
        }
        self.next_txn.fetch_max(txn_id + 1, Ordering::Relaxed);
        Ok(WriteTxn {
            pager: Arc::clone(self),
            txn_id,
            writes: HashMap::new(),
            base_count: self.page_count(),
            alloc_count: 0,
            finished: false,
        })
    }

    /// Bytes currently on the WAL (0 without a WAL). Every value observed
    /// between commits is a committed-record boundary, which is what the
    /// replication protocol resumes from.
    pub fn wal_len(&self) -> u64 {
        self.wal.as_ref().map_or(0, super::wal::Wal::len)
    }

    /// Publish a transaction's writes, WAL-logging them first.
    ///
    /// `pre_capture` is invoked once per modified page *before* the new
    /// image is published, with the pre-state (`None` for pages the
    /// transaction allocated). This is the interposition point Retro uses
    /// for copy-on-write pre-state capture (paper §4: "the extensions
    /// interpose on transaction commit").
    pub fn commit(
        &self,
        mut txn: WriteTxn,
        snapshot: Option<u64>,
        mut pre_capture: impl FnMut(PageId, Option<&SharedPage>) -> Result<()>,
    ) -> Result<u64> {
        txn.finished = true;
        let txn_id = txn.txn_id;
        // Deterministic ordering for the WAL and COW captures.
        let mut writes: Vec<(PageId, Page)> = txn.writes.drain().collect();
        writes.sort_by_key(|(pid, _)| *pid);

        // The write lock is held across capture + publish so readers see
        // the commit atomically. Capture first (it reads pre-states).
        let mut pages_guard = self.pages.write();
        let mut new_pages: Vec<SharedPage> = (**pages_guard).clone();
        for (pid, _) in &writes {
            let pre = new_pages.get(pid.index());
            pre_capture(*pid, pre)?;
        }
        if let Some(wal) = &self.wal {
            for (pid, page) in &writes {
                wal.log_write(txn_id, *pid, page)?;
            }
            wal.log_commit(txn_id, snapshot)?;
        }
        for (pid, page) in writes {
            if pid.index() >= new_pages.len() {
                let blank = Arc::new(Page::zeroed(self.config.page_size));
                new_pages.resize(pid.index() + 1, blank);
            }
            new_pages[pid.index()] = Arc::new(page);
            self.stats.count_page_written();
        }
        *pages_guard = Arc::new(new_pages);
        drop(pages_guard);
        self.writer_active.store(false, Ordering::Release);
        Ok(txn_id)
    }

    /// Force the WAL to stable storage (no-op without a WAL).
    pub fn sync_wal(&self) -> Result<()> {
        match &self.wal {
            Some(wal) => wal.sync(),
            None => Ok(()),
        }
    }

    /// Discard a transaction without publishing anything.
    pub fn abort(&self, mut txn: WriteTxn) {
        txn.finished = true;
        self.writer_active.store(false, Ordering::Release);
    }

    fn release_writer(&self) {
        self.writer_active.store(false, Ordering::Release);
    }
}

/// An immutable, pinned view of the database page table.
///
/// Cloning is cheap (one `Arc` bump). Snapshot queries resolve pages not
/// found in their SPT through a view pinned at SPT-build time, so a
/// concurrent writer can never change what the query sees.
#[derive(Clone)]
pub struct DbView {
    pages: Arc<Vec<SharedPage>>,
    stats: Arc<IoStats>,
}

impl DbView {
    /// Read a page from the pinned view.
    pub fn page(&self, pid: PageId) -> Result<SharedPage> {
        let page = self
            .pages
            .get(pid.index())
            .cloned()
            .ok_or(StoreError::PageOutOfBounds(pid))?;
        self.stats.count_db_read();
        Ok(page)
    }

    /// Number of pages in the view.
    pub fn page_count(&self) -> u64 {
        self.pages.len() as u64
    }
}

/// A write transaction: a private write set over the current state.
pub struct WriteTxn {
    pager: Arc<Pager>,
    txn_id: u64,
    writes: HashMap<PageId, Page>,
    base_count: u64,
    alloc_count: u64,
    finished: bool,
}

impl WriteTxn {
    /// This transaction's id.
    pub fn id(&self) -> u64 {
        self.txn_id
    }

    /// Read a page: the transaction's own write if present, else the
    /// current state.
    pub fn read_page(&self, pid: PageId) -> Result<SharedPage> {
        if let Some(p) = self.writes.get(&pid) {
            return Ok(Arc::new(p.clone()));
        }
        if pid.0 >= self.base_count + self.alloc_count {
            return Err(StoreError::PageOutOfBounds(pid));
        }
        if pid.0 >= self.base_count {
            // Allocated this txn but never written: zeroed.
            return Ok(Arc::new(Page::zeroed(self.pager.config.page_size)));
        }
        self.pager.read_page(pid)
    }

    /// Stage a full page write.
    pub fn write_page(&mut self, pid: PageId, page: Page) -> Result<()> {
        debug_assert_eq!(page.size(), self.pager.config.page_size);
        if pid.0 >= self.base_count + self.alloc_count {
            return Err(StoreError::PageOutOfBounds(pid));
        }
        self.writes.insert(pid, page);
        Ok(())
    }

    /// Read a page and hand out a mutable copy to edit in place; the edit
    /// is staged back with [`WriteTxn::write_page`].
    pub fn page_for_update(&self, pid: PageId) -> Result<Page> {
        Ok((*self.read_page(pid)?).clone())
    }

    /// Allocate a fresh (zeroed) page at the end of the database.
    pub fn allocate_page(&mut self) -> PageId {
        let pid = PageId(self.base_count + self.alloc_count);
        self.alloc_count += 1;
        self.writes
            .insert(pid, Page::zeroed(self.pager.config.page_size));
        pid
    }

    /// Page count as seen by this transaction (including its allocations).
    pub fn page_count(&self) -> u64 {
        self.base_count + self.alloc_count
    }

    /// Number of distinct pages staged for write.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }

    /// Iterate the staged writes (page id + post-image), in no particular
    /// order. Lets layered stores derive per-page metadata (e.g. pruning
    /// sidecars) from the exact images about to be published.
    pub fn staged_pages(&self) -> impl Iterator<Item = (PageId, &Page)> {
        self.writes.iter().map(|(pid, page)| (*pid, page))
    }

    /// Whether the transaction has staged any writes.
    pub fn is_read_only(&self) -> bool {
        self.writes.is_empty()
    }
}

impl Drop for WriteTxn {
    fn drop(&mut self) {
        if !self.finished {
            // Abort on drop: release the single-writer token.
            self.pager.release_writer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn small_config() -> PagerConfig {
        PagerConfig {
            page_size: 64,
            cache_capacity: 16,
            wal_sync_on_commit: false,
        }
    }

    fn commit_noop(pager: &Pager, txn: WriteTxn) -> u64 {
        pager.commit(txn, None, |_, _| Ok(())).unwrap()
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let pager = Arc::new(Pager::new(small_config()));
        let mut txn = pager.begin_write().unwrap();
        let pid = txn.allocate_page();
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u32(0, 42);
        txn.write_page(pid, page).unwrap();
        commit_noop(&pager, txn);
        assert_eq!(pager.page_count(), 1);
        assert_eq!(pager.read_page(pid).unwrap().read_u32(0), 42);
    }

    #[test]
    fn single_writer_enforced() {
        let pager = Arc::new(Pager::new(small_config()));
        let txn = pager.begin_write().unwrap();
        let err = pager.begin_write().map(|_| ()).unwrap_err();
        assert!(matches!(err, StoreError::WriterBusy));
        pager.abort(txn);
        // Released after abort.
        let txn2 = pager.begin_write().unwrap();
        pager.abort(txn2);
    }

    #[test]
    fn dropping_txn_releases_writer() {
        let pager = Arc::new(Pager::new(small_config()));
        {
            let _txn = pager.begin_write().unwrap();
        }
        let txn = pager.begin_write().unwrap();
        pager.abort(txn);
    }

    #[test]
    fn view_is_immutable_under_writes() {
        let pager = Arc::new(Pager::new(small_config()));
        let mut txn = pager.begin_write().unwrap();
        let pid = txn.allocate_page();
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u32(0, 1);
        txn.write_page(pid, page).unwrap();
        commit_noop(&pager, txn);

        let view = pager.view();
        assert_eq!(view.page(pid).unwrap().read_u32(0), 1);

        let mut txn = pager.begin_write().unwrap();
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u32(0, 2);
        txn.write_page(pid, page).unwrap();
        commit_noop(&pager, txn);

        // Pinned view still sees the old value; fresh reads see the new.
        assert_eq!(view.page(pid).unwrap().read_u32(0), 1);
        assert_eq!(pager.read_page(pid).unwrap().read_u32(0), 2);
    }

    #[test]
    fn pre_capture_sees_pre_state() {
        let pager = Arc::new(Pager::new(small_config()));
        let mut txn = pager.begin_write().unwrap();
        let pid = txn.allocate_page();
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u32(0, 7);
        txn.write_page(pid, page).unwrap();
        let mut captured_new = false;
        pager
            .commit(txn, None, |p, pre| {
                assert_eq!(p, pid);
                assert!(pre.is_none(), "freshly allocated page has no pre-state");
                captured_new = true;
                Ok(())
            })
            .unwrap();
        assert!(captured_new);

        let mut txn = pager.begin_write().unwrap();
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u32(0, 8);
        txn.write_page(pid, page).unwrap();
        let mut captured_pre = None;
        pager
            .commit(txn, None, |_, pre| {
                captured_pre = Some(pre.unwrap().read_u32(0));
                Ok(())
            })
            .unwrap();
        assert_eq!(captured_pre, Some(7));
    }

    #[test]
    fn txn_reads_its_own_writes() {
        let pager = Arc::new(Pager::new(small_config()));
        let mut txn = pager.begin_write().unwrap();
        let pid = txn.allocate_page();
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u32(0, 5);
        txn.write_page(pid, page).unwrap();
        assert_eq!(txn.read_page(pid).unwrap().read_u32(0), 5);
        assert_eq!(txn.page_count(), 1);
        assert_eq!(txn.write_set_len(), 1);
        pager.abort(txn);
        // Aborted: nothing published.
        assert_eq!(pager.page_count(), 0);
    }

    #[test]
    fn out_of_bounds_reads_rejected() {
        let pager = Arc::new(Pager::new(small_config()));
        assert!(pager.read_page(PageId(0)).is_err());
        let txn = pager.begin_write().unwrap();
        assert!(txn.read_page(PageId(9)).is_err());
        pager.abort(txn);
    }

    #[test]
    fn wal_recovery_restores_pages_and_snapshots() {
        let storage: Arc<MemStorage> = Arc::new(MemStorage::new());
        let (pager, snaps) = Pager::open_with_wal(small_config(), storage.clone()).unwrap();
        assert!(snaps.is_empty());
        let pager = Arc::new(pager);
        let mut txn = pager.begin_write().unwrap();
        let pid = txn.allocate_page();
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u64(0, 99);
        txn.write_page(pid, page).unwrap();
        pager.commit(txn, Some(1), |_, _| Ok(())).unwrap();

        // "Crash" and reopen from the same WAL storage.
        drop(pager);
        let (pager2, snaps) = Pager::open_with_wal(small_config(), storage).unwrap();
        assert_eq!(snaps, vec![1]);
        assert_eq!(pager2.page_count(), 1);
        assert_eq!(pager2.read_page(pid).unwrap().read_u64(0), 99);
    }

    #[test]
    fn stats_count_db_reads() {
        let pager = Arc::new(Pager::new(small_config()));
        let mut txn = pager.begin_write().unwrap();
        let pid = txn.allocate_page();
        txn.write_page(pid, Page::zeroed(64)).unwrap();
        commit_noop(&pager, txn);
        pager.stats().reset();
        pager.read_page(pid).unwrap();
        pager.view().page(pid).unwrap();
        let snap = pager.stats().snapshot();
        assert_eq!(snap.db_reads, 2);
    }
}

#[cfg(test)]
mod stress_tests {
    use super::*;

    /// Readers pin views while a writer churns: every view must be
    /// internally consistent (all pages from one committed generation).
    #[test]
    fn concurrent_views_are_generation_consistent() {
        let pager = Arc::new(Pager::new(PagerConfig {
            page_size: 64,
            cache_capacity: 16,
            wal_sync_on_commit: false,
        }));
        // Initialize 8 pages all holding generation 0.
        let mut txn = pager.begin_write().unwrap();
        for _ in 0..8 {
            let pid = txn.allocate_page();
            let mut page = txn.page_for_update(pid).unwrap();
            page.write_u64(0, 0);
            txn.write_page(pid, page).unwrap();
        }
        pager.commit(txn, None, |_, _| Ok(())).unwrap();

        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let done = &done;
            for _ in 0..4 {
                let pager = Arc::clone(&pager);
                scope.spawn(move || {
                    while !done.load(Ordering::Relaxed) {
                        let view = pager.view();
                        let g0 = view.page(PageId(0)).unwrap().read_u64(0);
                        for p in 1..8 {
                            let g = view.page(PageId(p)).unwrap().read_u64(0);
                            assert_eq!(g, g0, "torn view: page {p}");
                        }
                    }
                });
            }
            // Writer: bump every page to the next generation per commit.
            for generation in 1..=200u64 {
                let mut txn = pager.begin_write().unwrap();
                for p in 0..8 {
                    let pid = PageId(p);
                    let mut page = txn.page_for_update(pid).unwrap();
                    page.write_u64(0, generation);
                    txn.write_page(pid, page).unwrap();
                }
                pager.commit(txn, None, |_, _| Ok(())).unwrap();
            }
            done.store(true, Ordering::Relaxed);
        });
    }

    /// Hammer begin_write from many threads: exactly one holds the token
    /// at a time, and every failure is WriterBusy (no deadlock, no panic).
    #[test]
    fn writer_token_under_contention() {
        let pager = Arc::new(Pager::new(PagerConfig {
            page_size: 64,
            cache_capacity: 4,
            wal_sync_on_commit: false,
        }));
        let successes = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            let successes = &successes;
            for _ in 0..8 {
                let pager = Arc::clone(&pager);
                scope.spawn(move || {
                    for _ in 0..200 {
                        match pager.begin_write() {
                            Ok(mut txn) => {
                                let pid = txn.allocate_page();
                                txn.write_page(pid, Page::zeroed(64)).unwrap();
                                pager.commit(txn, None, |_, _| Ok(())).unwrap();
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(StoreError::WriterBusy) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                });
            }
        });
        // Every successful commit allocated exactly one page.
        assert_eq!(pager.page_count(), successes.load(Ordering::Relaxed));
    }
}
