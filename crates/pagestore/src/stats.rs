//! I/O accounting and the deterministic I/O cost model.
//!
//! The paper's performance study is driven by *where pages come from*: the
//! in-memory current database, the buffer cache, or the on-disk Pagelog.
//! Every fetch path increments one of these counters; the experiment
//! harness reads them to reproduce the paper's cost breakdowns, and the
//! [`IoCostModel`] converts counted Pagelog reads into a modeled latency so
//! the figures keep their shape on hardware where the OS page cache would
//! otherwise hide the I/O.
//!
//! Each `count_*` method also emits the matching trace instant, so the
//! event stream and the counters come from the *same call sites* and can
//! never disagree (DESIGN.md §9).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rql_trace::{instant, instant_arg, SpanId};

/// Monotonic event counters for a store.
///
/// All counters are relaxed atomics: they are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Pages served from the in-memory current database (shared pages).
    pub db_reads: AtomicU64,
    /// Pages served from the buffer cache (snapshot pages already fetched).
    pub cache_hits: AtomicU64,
    /// Pages fetched from the Pagelog archive (cache misses → disk).
    pub pagelog_reads: AtomicU64,
    /// Pre-state pages copied out at commit (COW captures).
    pub cow_captures: AtomicU64,
    /// Pages written to the current database by commits.
    pub pages_written: AtomicU64,
    /// Maplog entries scanned while building SPTs.
    pub maplog_entries_scanned: AtomicU64,
    /// Buffer-cache evictions.
    pub cache_evictions: AtomicU64,
    /// Heap pages skipped because a pruning sidecar refuted the predicate
    /// (the page body was never fetched).
    pub pages_pruned: AtomicU64,
    /// Qq iterations skipped entirely because every changed page was
    /// refuted by its sidecar.
    pub snapshots_pruned: AtomicU64,
    /// Bytes of pruning-sidecar state built (cumulative).
    pub sidecar_bytes: AtomicU64,
}

impl IoStats {
    /// Create zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a page served from the in-memory database.
    #[inline]
    pub fn count_db_read(&self) {
        self.db_reads.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::DbRead);
    }

    /// Record a buffer-cache hit.
    #[inline]
    pub fn count_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::CacheHit);
    }

    /// Record a Pagelog fetch (disk I/O in the paper's setup).
    #[inline]
    pub fn count_pagelog_read(&self) {
        self.pagelog_reads.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::PagelogRead);
    }

    /// Record a COW pre-state capture.
    #[inline]
    pub fn count_cow_capture(&self) {
        self.cow_captures.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::CowCapture);
    }

    /// Record a committed page write.
    #[inline]
    pub fn count_page_written(&self) {
        self.pages_written.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::PageWrite);
    }

    /// Record `n` Maplog entries scanned during an SPT build.
    #[inline]
    pub fn count_maplog_scanned(&self, n: u64) {
        self.maplog_entries_scanned.fetch_add(n, Ordering::Relaxed);
        instant_arg(SpanId::MaplogScan, n);
    }

    /// Record a buffer-cache eviction.
    #[inline]
    pub fn count_cache_eviction(&self) {
        self.cache_evictions.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::CacheEviction);
    }

    /// Record a heap page pruned by its sidecar (body never fetched).
    #[inline]
    pub fn count_page_pruned(&self) {
        self.pages_pruned.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::PagePruned);
    }

    /// Record a Qq iteration skipped because pruning refuted every
    /// changed page.
    #[inline]
    pub fn count_snapshot_pruned(&self) {
        self.snapshots_pruned.fetch_add(1, Ordering::Relaxed);
        instant(SpanId::SnapshotPruned);
    }

    /// Record `n` bytes of sidecar state built.
    #[inline]
    pub fn count_sidecar_bytes(&self, n: u64) {
        self.sidecar_bytes.fetch_add(n, Ordering::Relaxed);
        instant_arg(SpanId::SidecarBuild, n);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            db_reads: self.db_reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            pagelog_reads: self.pagelog_reads.load(Ordering::Relaxed),
            cow_captures: self.cow_captures.load(Ordering::Relaxed),
            pages_written: self.pages_written.load(Ordering::Relaxed),
            maplog_entries_scanned: self.maplog_entries_scanned.load(Ordering::Relaxed),
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            pages_pruned: self.pages_pruned.load(Ordering::Relaxed),
            snapshots_pruned: self.snapshots_pruned.load(Ordering::Relaxed),
            sidecar_bytes: self.sidecar_bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.db_reads.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.pagelog_reads.store(0, Ordering::Relaxed);
        self.cow_captures.store(0, Ordering::Relaxed);
        self.pages_written.store(0, Ordering::Relaxed);
        self.maplog_entries_scanned.store(0, Ordering::Relaxed);
        self.cache_evictions.store(0, Ordering::Relaxed);
        self.pages_pruned.store(0, Ordering::Relaxed);
        self.snapshots_pruned.store(0, Ordering::Relaxed);
        self.sidecar_bytes.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`IoStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoStatsSnapshot {
    /// See [`IoStats::db_reads`].
    pub db_reads: u64,
    /// See [`IoStats::cache_hits`].
    pub cache_hits: u64,
    /// See [`IoStats::pagelog_reads`].
    pub pagelog_reads: u64,
    /// See [`IoStats::cow_captures`].
    pub cow_captures: u64,
    /// See [`IoStats::pages_written`].
    pub pages_written: u64,
    /// See [`IoStats::maplog_entries_scanned`].
    pub maplog_entries_scanned: u64,
    /// See [`IoStats::cache_evictions`].
    pub cache_evictions: u64,
    /// See [`IoStats::pages_pruned`].
    pub pages_pruned: u64,
    /// See [`IoStats::snapshots_pruned`].
    pub snapshots_pruned: u64,
    /// See [`IoStats::sidecar_bytes`].
    pub sidecar_bytes: u64,
}

impl IoStatsSnapshot {
    /// Component-wise difference `self - earlier`, for measuring an interval.
    pub fn delta(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            db_reads: self.db_reads - earlier.db_reads,
            cache_hits: self.cache_hits - earlier.cache_hits,
            pagelog_reads: self.pagelog_reads - earlier.pagelog_reads,
            cow_captures: self.cow_captures - earlier.cow_captures,
            pages_written: self.pages_written - earlier.pages_written,
            maplog_entries_scanned: self.maplog_entries_scanned - earlier.maplog_entries_scanned,
            cache_evictions: self.cache_evictions - earlier.cache_evictions,
            pages_pruned: self.pages_pruned - earlier.pages_pruned,
            snapshots_pruned: self.snapshots_pruned - earlier.snapshots_pruned,
            sidecar_bytes: self.sidecar_bytes - earlier.sidecar_bytes,
        }
    }

    /// Component-wise sum: merge another interval into this one.
    pub fn accumulate(&mut self, other: &IoStatsSnapshot) {
        self.db_reads += other.db_reads;
        self.cache_hits += other.cache_hits;
        self.pagelog_reads += other.pagelog_reads;
        self.cow_captures += other.cow_captures;
        self.pages_written += other.pages_written;
        self.maplog_entries_scanned += other.maplog_entries_scanned;
        self.cache_evictions += other.cache_evictions;
        self.pages_pruned += other.pages_pruned;
        self.snapshots_pruned += other.snapshots_pruned;
        self.sidecar_bytes += other.sidecar_bytes;
    }

    /// Total page fetches from any source.
    pub fn total_fetches(&self) -> u64 {
        self.db_reads + self.cache_hits + self.pagelog_reads
    }

    /// Every counter as a stable `(name, value)` list, for metrics
    /// exporters that render all fields without hand-maintaining the
    /// schema at each call site. Names are snake_case and match the
    /// field names.
    pub fn fields(&self) -> [(&'static str, u64); 10] {
        [
            ("db_reads", self.db_reads),
            ("cache_hits", self.cache_hits),
            ("pagelog_reads", self.pagelog_reads),
            ("cow_captures", self.cow_captures),
            ("pages_written", self.pages_written),
            ("maplog_entries_scanned", self.maplog_entries_scanned),
            ("cache_evictions", self.cache_evictions),
            ("pages_pruned", self.pages_pruned),
            ("snapshots_pruned", self.snapshots_pruned),
            ("sidecar_bytes", self.sidecar_bytes),
        ]
    }
}

/// Deterministic I/O cost model.
///
/// The paper ran against a SATA SSD where every Pagelog fetch was a random
/// 4 KiB read. On a modern dev box the OS page cache (and tiny scaled-down
/// data) hides that cost, so experiments report a *modeled* latency
/// `measured_cpu + pagelog_reads × pagelog_read_cost` next to raw wall
/// time. The default 100 µs per read approximates the paper's SSD.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoCostModel {
    /// Modeled cost of one Pagelog page fetch.
    pub pagelog_read_cost: Duration,
    /// Modeled cost of one in-memory database page access (usually zero;
    /// kept for sensitivity analysis).
    pub db_read_cost: Duration,
    /// Modeled cost of one buffer-cache hit (usually zero).
    pub cache_hit_cost: Duration,
}

impl Default for IoCostModel {
    fn default() -> Self {
        IoCostModel {
            pagelog_read_cost: Duration::from_micros(100),
            db_read_cost: Duration::ZERO,
            cache_hit_cost: Duration::ZERO,
        }
    }
}

impl IoCostModel {
    /// A model that charges nothing (pure CPU measurement).
    pub fn free() -> Self {
        IoCostModel {
            pagelog_read_cost: Duration::ZERO,
            db_read_cost: Duration::ZERO,
            cache_hit_cost: Duration::ZERO,
        }
    }

    /// Modeled I/O latency for a counter interval.
    pub fn io_cost(&self, delta: &IoStatsSnapshot) -> Duration {
        self.pagelog_read_cost * delta.pagelog_reads as u32
            + self.db_read_cost * delta.db_reads as u32
            + self.cache_hit_cost * delta.cache_hits as u32
    }

    /// Modeled total latency: measured CPU time plus modeled I/O.
    pub fn total_cost(&self, cpu: Duration, delta: &IoStatsSnapshot) -> Duration {
        cpu + self.io_cost(delta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let s = IoStats::new();
        s.count_db_read();
        s.count_db_read();
        s.count_cache_hit();
        s.count_pagelog_read();
        s.count_cow_capture();
        s.count_page_written();
        s.count_maplog_scanned(5);
        let snap = s.snapshot();
        assert_eq!(snap.db_reads, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.pagelog_reads, 1);
        assert_eq!(snap.cow_captures, 1);
        assert_eq!(snap.pages_written, 1);
        assert_eq!(snap.maplog_entries_scanned, 5);
        assert_eq!(snap.total_fetches(), 4);
    }

    #[test]
    fn delta_measures_interval() {
        let s = IoStats::new();
        s.count_pagelog_read();
        let before = s.snapshot();
        s.count_pagelog_read();
        s.count_pagelog_read();
        let after = s.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.pagelog_reads, 2);
        assert_eq!(d.db_reads, 0);
    }

    #[test]
    fn reset_zeroes() {
        let s = IoStats::new();
        s.count_pagelog_read();
        s.reset();
        assert_eq!(s.snapshot(), IoStatsSnapshot::default());
    }

    #[test]
    fn cost_model_charges_pagelog_reads() {
        let model = IoCostModel::default();
        let delta = IoStatsSnapshot {
            pagelog_reads: 10,
            ..Default::default()
        };
        assert_eq!(model.io_cost(&delta), Duration::from_millis(1));
        assert_eq!(
            model.total_cost(Duration::from_millis(2), &delta),
            Duration::from_millis(3)
        );
        assert_eq!(IoCostModel::free().io_cost(&delta), Duration::ZERO);
    }
}
