//! Append-oriented byte storage backing the Pagelog, Maplog and WAL.
//!
//! Retro's on-disk structures are all log-structured: the Pagelog is an
//! append-only archive of page pre-states, the Maplog an append-only list of
//! mapping entries, and the WAL an append-only redo log. They share one
//! small abstraction, [`LogStorage`]: append bytes at the tail, read bytes
//! at an offset, truncate, sync.
//!
//! Two implementations are provided: an in-memory one for tests and
//! deterministic benchmarks, and a buffered file-backed one for real runs.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{Result, StoreError};

/// Append/read byte storage with explicit offsets.
///
/// Implementations must allow concurrent `read_at` calls while appends
/// happen (readers never read past the length returned by their own prior
/// `append`/`len` observation).
pub trait LogStorage: Send + Sync {
    /// Append `bytes` at the tail; returns the offset they were written at.
    fn append(&self, bytes: &[u8]) -> Result<u64>;

    /// Read exactly `buf.len()` bytes at `offset`.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()>;

    /// Current length in bytes.
    fn len(&self) -> u64;

    /// Whether the storage holds no bytes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard everything from `offset` to the tail.
    fn truncate(&self, offset: u64) -> Result<()>;

    /// Make previous appends durable (no-op for memory storage).
    fn sync(&self) -> Result<()>;
}

/// In-memory log storage for tests and deterministic benchmarks.
#[derive(Default)]
pub struct MemStorage {
    buf: Mutex<Vec<u8>>,
}

impl MemStorage {
    /// Create empty in-memory storage.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LogStorage for MemStorage {
    fn append(&self, bytes: &[u8]) -> Result<u64> {
        let mut buf = self.buf.lock();
        let off = buf.len() as u64;
        buf.extend_from_slice(bytes);
        Ok(off)
    }

    fn read_at(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        let buf = self.buf.lock();
        let start = offset as usize;
        let end = start + out.len();
        if end > buf.len() {
            return Err(StoreError::ShortRead {
                offset,
                wanted: out.len(),
                available: buf.len().saturating_sub(start),
            });
        }
        out.copy_from_slice(&buf[start..end]);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.buf.lock().len() as u64
    }

    fn truncate(&self, offset: u64) -> Result<()> {
        let mut buf = self.buf.lock();
        if (offset as usize) > buf.len() {
            return Err(StoreError::InvalidOffset(offset));
        }
        buf.truncate(offset as usize);
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        Ok(())
    }
}

/// File-backed log storage.
///
/// Appends are buffered in memory and flushed to the file either when the
/// buffer exceeds a threshold or on `sync`. Reads first consult the
/// in-memory tail so readers always see every appended byte.
pub struct FileStorage {
    inner: Mutex<FileInner>,
}

struct FileInner {
    file: File,
    /// Length of bytes already written to the file.
    flushed_len: u64,
    /// Unflushed tail.
    tail: Vec<u8>,
}

/// Flush threshold for the in-memory tail (1 MiB).
const FLUSH_THRESHOLD: usize = 1 << 20;

impl FileStorage {
    /// Open (creating if necessary) file-backed storage at `path`,
    /// truncating any existing content.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileStorage {
            inner: Mutex::new(FileInner {
                file,
                flushed_len: 0,
                tail: Vec::new(),
            }),
        })
    }

    /// Open existing file-backed storage at `path`, keeping its content
    /// (used by WAL recovery).
    pub fn open(path: &Path) -> Result<Self> {
        #[allow(clippy::suspicious_open_options)] // keep content: no truncate
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .open(path)?;
        let flushed_len = file.metadata()?.len();
        Ok(FileStorage {
            inner: Mutex::new(FileInner {
                file,
                flushed_len,
                tail: Vec::new(),
            }),
        })
    }
}

impl FileInner {
    fn flush_tail(&mut self) -> Result<()> {
        if self.tail.is_empty() {
            return Ok(());
        }
        self.file.seek(SeekFrom::Start(self.flushed_len))?;
        self.file.write_all(&self.tail)?;
        self.flushed_len += self.tail.len() as u64;
        self.tail.clear();
        Ok(())
    }
}

impl LogStorage for FileStorage {
    fn append(&self, bytes: &[u8]) -> Result<u64> {
        let mut inner = self.inner.lock();
        let off = inner.flushed_len + inner.tail.len() as u64;
        inner.tail.extend_from_slice(bytes);
        if inner.tail.len() >= FLUSH_THRESHOLD {
            inner.flush_tail()?;
        }
        Ok(off)
    }

    fn read_at(&self, offset: u64, out: &mut [u8]) -> Result<()> {
        let mut inner = self.inner.lock();
        let total = inner.flushed_len + inner.tail.len() as u64;
        if offset + out.len() as u64 > total {
            return Err(StoreError::ShortRead {
                offset,
                wanted: out.len(),
                available: total.saturating_sub(offset) as usize,
            });
        }
        let mut filled = 0usize;
        // Portion that lives in the file.
        if offset < inner.flushed_len {
            let in_file = ((inner.flushed_len - offset) as usize).min(out.len());
            inner.file.seek(SeekFrom::Start(offset))?;
            inner.file.read_exact(&mut out[..in_file])?;
            filled = in_file;
        }
        // Portion that lives in the unflushed tail.
        if filled < out.len() {
            let tail_start = (offset + filled as u64 - inner.flushed_len) as usize;
            let n = out.len() - filled;
            out[filled..].copy_from_slice(&inner.tail[tail_start..tail_start + n]);
        }
        Ok(())
    }

    fn len(&self) -> u64 {
        let inner = self.inner.lock();
        inner.flushed_len + inner.tail.len() as u64
    }

    fn truncate(&self, offset: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        let total = inner.flushed_len + inner.tail.len() as u64;
        if offset > total {
            return Err(StoreError::InvalidOffset(offset));
        }
        if offset >= inner.flushed_len {
            let keep = (offset - inner.flushed_len) as usize;
            inner.tail.truncate(keep);
        } else {
            inner.tail.clear();
            inner.file.set_len(offset)?;
            inner.flushed_len = offset;
        }
        Ok(())
    }

    fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.flush_tail()?;
        inner.file.sync_data()?;
        Ok(())
    }
}

/// Fault-injecting wrapper for failure testing: delegates to an inner
/// storage until a trigger fires, then every operation of the selected
/// kinds returns an I/O error. Used by tests to verify that storage
/// failures surface as errors (never as corruption or panics).
pub struct FailingStorage {
    inner: Arc<dyn LogStorage>,
    /// Operations remaining before failures start (appends + reads).
    remaining: Mutex<u64>,
    /// Fail appends once triggered.
    fail_appends: bool,
    /// Fail reads once triggered.
    fail_reads: bool,
}

impl FailingStorage {
    /// Wrap `inner`, failing after `ok_ops` successful operations.
    pub fn new(
        inner: Arc<dyn LogStorage>,
        ok_ops: u64,
        fail_appends: bool,
        fail_reads: bool,
    ) -> Self {
        FailingStorage {
            inner,
            remaining: Mutex::new(ok_ops),
            fail_appends,
            fail_reads,
        }
    }

    fn tick(&self) -> bool {
        let mut remaining = self.remaining.lock();
        if *remaining == 0 {
            return true; // failing now
        }
        *remaining -= 1;
        false
    }

    fn injected() -> StoreError {
        StoreError::Io(std::io::Error::other("injected storage fault"))
    }
}

impl LogStorage for FailingStorage {
    fn append(&self, bytes: &[u8]) -> Result<u64> {
        if self.fail_appends && self.tick() {
            return Err(Self::injected());
        }
        self.inner.append(bytes)
    }

    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<()> {
        if self.fail_reads && self.tick() {
            return Err(Self::injected());
        }
        self.inner.read_at(offset, buf)
    }

    fn len(&self) -> u64 {
        self.inner.len()
    }

    fn truncate(&self, offset: u64) -> Result<()> {
        self.inner.truncate(offset)
    }

    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(storage: &dyn LogStorage) {
        let o1 = storage.append(b"hello ").unwrap();
        let o2 = storage.append(b"world").unwrap();
        assert_eq!(o1, 0);
        assert_eq!(o2, 6);
        assert_eq!(storage.len(), 11);
        let mut buf = [0u8; 5];
        storage.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf, b"world");
        let mut all = [0u8; 11];
        storage.read_at(0, &mut all).unwrap();
        assert_eq!(&all, b"hello world");
    }

    #[test]
    fn mem_roundtrip() {
        roundtrip(&MemStorage::new());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("rql-storage-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let storage = FileStorage::create(&path).unwrap();
        roundtrip(&storage);
        storage.sync().unwrap();
        // Re-open and verify durability.
        drop(storage);
        let storage = FileStorage::open(&path).unwrap();
        let mut all = [0u8; 11];
        storage.read_at(0, &mut all).unwrap();
        assert_eq!(&all, b"hello world");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn short_read_is_error() {
        let s = MemStorage::new();
        s.append(b"abc").unwrap();
        let mut buf = [0u8; 4];
        let err = s.read_at(0, &mut buf).unwrap_err();
        assert!(matches!(err, StoreError::ShortRead { .. }));
    }

    #[test]
    fn truncate_mem() {
        let s = MemStorage::new();
        s.append(b"abcdef").unwrap();
        s.truncate(3).unwrap();
        assert_eq!(s.len(), 3);
        assert!(s.truncate(10).is_err());
    }

    #[test]
    fn file_read_spanning_flushed_and_tail() {
        let dir = std::env::temp_dir().join(format!("rql-storage-span-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.bin");
        let storage = FileStorage::create(&path).unwrap();
        storage.append(b"abc").unwrap();
        storage.sync().unwrap(); // flush "abc" to the file
        storage.append(b"def").unwrap(); // "def" stays in the tail
        let mut buf = [0u8; 6];
        storage.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"abcdef");
        std::fs::remove_dir_all(&dir).ok();
    }
}
