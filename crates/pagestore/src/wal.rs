//! Redo-only write-ahead log.
//!
//! The BDB-analog store logs full after-images of committed pages plus a
//! commit record. Recovery replays the images of *committed* transactions
//! in order; uncommitted tails (no commit record, or a torn record failing
//! its checksum) are discarded, mirroring how Retro's host storage manager
//! recovers the current state. Snapshot declarations are logged inside the
//! commit record so the snapshot sequence can also be rebuilt after a
//! crash.

use std::collections::HashMap;
use std::sync::Arc;

use crate::error::{Result, StoreError};
use crate::page::{fnv1a, Page, PageId};
use crate::storage::LogStorage;

/// Record kinds on the log.
const KIND_PAGE: u8 = 1;
const KIND_COMMIT: u8 = 2;

/// One committed transaction parsed off the WAL: the unit a replication
/// leader ships and a follower replays. The byte range `[start, end)` is
/// the exact span of this transaction's records on the log, so a follower
/// that replays the segment with the same txn id regenerates an identical
/// WAL and can resume by comparing raw lengths.
#[derive(Debug, Clone)]
pub struct CommittedSegment {
    /// Transaction id from the commit record.
    pub txn_id: u64,
    /// Snapshot id, when the transaction declared one.
    pub snapshot: Option<u64>,
    /// Page after-images in log order (the pager writes them sorted).
    pub pages: Vec<(PageId, Page)>,
    /// Log offset of the first record of this transaction.
    pub start: u64,
    /// Log offset just past the commit record.
    pub end: u64,
}

/// Parse the next committed transaction from `storage` starting at `from`,
/// scanning no further than `upto`. Returns `None` when the range holds no
/// complete commit (a transaction still in flight, a torn tail, or simply
/// the end of the log) — the store is single-writer, so records between
/// two commits all belong to one transaction.
pub fn next_committed_segment(
    storage: &dyn LogStorage,
    from: u64,
    upto: u64,
) -> Result<Option<CommittedSegment>> {
    let mut pages = Vec::new();
    let mut off = from;
    while off < upto {
        let Some((rec_end, kind, body)) = read_record(storage, off, upto)? else {
            return Ok(None); // incomplete record within the range
        };
        match kind {
            KIND_PAGE => {
                let pid = PageId(u64::from_le_bytes(body[8..16].try_into().unwrap()));
                let plen = u32::from_le_bytes(body[16..20].try_into().unwrap()) as usize;
                if body.len() != 20 + plen {
                    return Err(StoreError::CorruptWal { offset: off });
                }
                pages.push((pid, Page::from_bytes(body[20..].to_vec())));
            }
            KIND_COMMIT => {
                let txn_id = u64::from_le_bytes(body[0..8].try_into().unwrap());
                let has_snap = body[8] == 1;
                let sid = u64::from_le_bytes(body[9..17].try_into().unwrap());
                return Ok(Some(CommittedSegment {
                    txn_id,
                    snapshot: has_snap.then_some(sid),
                    pages,
                    start: from,
                    end: rec_end,
                }));
            }
            _ => return Err(StoreError::CorruptWal { offset: off }),
        }
        off = rec_end;
    }
    Ok(None)
}

/// Read one record starting at `off`, bounded by `len`. Returns `None`
/// for an incomplete or checksum-failing (torn) record.
fn read_record(storage: &dyn LogStorage, off: u64, len: u64) -> Result<Option<(u64, u8, Vec<u8>)>> {
    let header_len = |kind: u8| -> Option<usize> {
        match kind {
            KIND_PAGE => Some(20),   // txn + pid + plen
            KIND_COMMIT => Some(17), // txn + flag + sid
            _ => None,
        }
    };
    if off + 1 > len {
        return Ok(None);
    }
    let mut kind_buf = [0u8; 1];
    storage.read_at(off, &mut kind_buf)?;
    let kind = kind_buf[0];
    let Some(hlen) = header_len(kind) else {
        return Err(StoreError::CorruptWal { offset: off });
    };
    if off + 1 + hlen as u64 > len {
        return Ok(None);
    }
    let mut header = vec![0u8; hlen];
    storage.read_at(off + 1, &mut header)?;
    let body_extra = if kind == KIND_PAGE {
        u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize
    } else {
        0
    };
    let body_len = hlen + body_extra;
    let rec_end = off + 1 + body_len as u64 + 8;
    if rec_end > len {
        return Ok(None);
    }
    let mut body = vec![0u8; body_len];
    storage.read_at(off + 1, &mut body)?;
    let mut ck_buf = [0u8; 8];
    storage.read_at(off + 1 + body_len as u64, &mut ck_buf)?;
    let stored = u64::from_le_bytes(ck_buf);
    let mut full = Vec::with_capacity(1 + body_len);
    full.push(kind);
    full.extend_from_slice(&body);
    if fnv1a(&full) != stored {
        return Ok(None); // torn write at the tail
    }
    Ok(Some((rec_end, kind, body)))
}

/// The write-ahead log.
pub struct Wal {
    storage: Arc<dyn LogStorage>,
    /// Whether `log_commit` syncs the storage (off for benchmarks where
    /// durability is irrelevant).
    sync_on_commit: bool,
}

/// State reconstructed by WAL recovery.
#[derive(Debug, Default)]
pub struct RecoveredState {
    /// Latest committed image of each page that appears on the log.
    pub pages: HashMap<PageId, Page>,
    /// Highest committed transaction id.
    pub last_txn: u64,
    /// Snapshot ids declared by committed transactions, in commit order.
    pub snapshots: Vec<u64>,
    /// Offset just past the last complete committed record; the log can be
    /// truncated here to drop any torn tail.
    pub valid_len: u64,
}

impl Wal {
    /// Create a WAL over `storage`.
    pub fn new(storage: Arc<dyn LogStorage>, sync_on_commit: bool) -> Self {
        Wal {
            storage,
            sync_on_commit,
        }
    }

    /// Log the after-image of `page` written by transaction `txn_id`.
    pub fn log_write(&self, txn_id: u64, pid: PageId, page: &Page) -> Result<()> {
        let mut rec = Vec::with_capacity(1 + 8 + 8 + 4 + page.size() + 8);
        rec.push(KIND_PAGE);
        rec.extend_from_slice(&txn_id.to_le_bytes());
        rec.extend_from_slice(&pid.0.to_le_bytes());
        rec.extend_from_slice(&(page.size() as u32).to_le_bytes());
        rec.extend_from_slice(page.bytes());
        let ck = fnv1a(&rec);
        rec.extend_from_slice(&ck.to_le_bytes());
        self.storage.append(&rec)?;
        Ok(())
    }

    /// Log a commit record for `txn_id`; `snapshot` carries the snapshot id
    /// if the transaction committed with a snapshot declaration.
    pub fn log_commit(&self, txn_id: u64, snapshot: Option<u64>) -> Result<()> {
        let mut rec = Vec::with_capacity(1 + 8 + 1 + 8 + 8);
        rec.push(KIND_COMMIT);
        rec.extend_from_slice(&txn_id.to_le_bytes());
        match snapshot {
            Some(sid) => {
                rec.push(1);
                rec.extend_from_slice(&sid.to_le_bytes());
            }
            None => {
                rec.push(0);
                rec.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        let ck = fnv1a(&rec);
        rec.extend_from_slice(&ck.to_le_bytes());
        self.storage.append(&rec)?;
        if self.sync_on_commit {
            let _span = rql_trace::span(rql_trace::SpanId::WalFsync);
            self.storage.sync()?;
        }
        Ok(())
    }

    /// Replay the log, returning the committed state.
    ///
    /// Torn or truncated tails are tolerated: replay stops at the first
    /// incomplete or checksum-failing record, and everything after the last
    /// commit record is ignored.
    pub fn recover(&self) -> Result<RecoveredState> {
        let mut state = RecoveredState::default();
        // Page images of the transaction currently being scanned, applied
        // only when its commit record is seen.
        let mut pending: HashMap<u64, Vec<(PageId, Page)>> = HashMap::new();
        let len = self.storage.len();
        let mut off = 0u64;
        while off < len {
            let Some((rec_end, kind, body)) = read_record(self.storage.as_ref(), off, len)? else {
                break; // torn tail
            };
            match kind {
                KIND_PAGE => {
                    let txn_id = u64::from_le_bytes(body[0..8].try_into().unwrap());
                    let pid = PageId(u64::from_le_bytes(body[8..16].try_into().unwrap()));
                    let plen = u32::from_le_bytes(body[16..20].try_into().unwrap()) as usize;
                    if body.len() != 20 + plen {
                        return Err(StoreError::CorruptWal { offset: off });
                    }
                    let page = Page::from_bytes(body[20..].to_vec());
                    pending.entry(txn_id).or_default().push((pid, page));
                }
                KIND_COMMIT => {
                    let txn_id = u64::from_le_bytes(body[0..8].try_into().unwrap());
                    let has_snap = body[8] == 1;
                    let sid = u64::from_le_bytes(body[9..17].try_into().unwrap());
                    if let Some(writes) = pending.remove(&txn_id) {
                        for (pid, page) in writes {
                            state.pages.insert(pid, page);
                        }
                    }
                    state.last_txn = state.last_txn.max(txn_id);
                    if has_snap {
                        state.snapshots.push(sid);
                    }
                    state.valid_len = rec_end;
                }
                _ => return Err(StoreError::CorruptWal { offset: off }),
            }
            off = rec_end;
        }
        Ok(state)
    }

    /// Force buffered records to stable storage.
    pub fn sync(&self) -> Result<()> {
        self.storage.sync()
    }

    /// Truncate the log (after a checkpoint has made the pages durable
    /// elsewhere, or in tests).
    pub fn truncate(&self) -> Result<()> {
        self.storage.truncate(0)
    }

    /// Bytes currently on the log.
    pub fn len(&self) -> u64 {
        self.storage.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::MemStorage;

    fn page_with(tag: u8) -> Page {
        let mut p = Page::zeroed(32);
        p.bytes_mut()[0] = tag;
        p
    }

    fn mem_wal() -> (Arc<MemStorage>, Wal) {
        let storage = Arc::new(MemStorage::new());
        let wal = Wal::new(storage.clone(), false);
        (storage, wal)
    }

    #[test]
    fn recovers_committed_pages() {
        let (_s, wal) = mem_wal();
        wal.log_write(1, PageId(0), &page_with(1)).unwrap();
        wal.log_write(1, PageId(3), &page_with(2)).unwrap();
        wal.log_commit(1, None).unwrap();
        let st = wal.recover().unwrap();
        assert_eq!(st.last_txn, 1);
        assert_eq!(st.pages.len(), 2);
        assert_eq!(st.pages[&PageId(0)].bytes()[0], 1);
        assert_eq!(st.pages[&PageId(3)].bytes()[0], 2);
        assert!(st.snapshots.is_empty());
    }

    #[test]
    fn uncommitted_writes_are_dropped() {
        let (_s, wal) = mem_wal();
        wal.log_write(1, PageId(0), &page_with(1)).unwrap();
        wal.log_commit(1, None).unwrap();
        wal.log_write(2, PageId(0), &page_with(9)).unwrap();
        // txn 2 never commits
        let st = wal.recover().unwrap();
        assert_eq!(st.pages[&PageId(0)].bytes()[0], 1);
        assert_eq!(st.last_txn, 1);
    }

    #[test]
    fn later_commit_wins_per_page() {
        let (_s, wal) = mem_wal();
        wal.log_write(1, PageId(5), &page_with(1)).unwrap();
        wal.log_commit(1, None).unwrap();
        wal.log_write(2, PageId(5), &page_with(2)).unwrap();
        wal.log_commit(2, None).unwrap();
        let st = wal.recover().unwrap();
        assert_eq!(st.pages[&PageId(5)].bytes()[0], 2);
        assert_eq!(st.last_txn, 2);
    }

    #[test]
    fn snapshot_declarations_recovered_in_order() {
        let (_s, wal) = mem_wal();
        wal.log_commit(1, Some(1)).unwrap();
        wal.log_commit(2, None).unwrap();
        wal.log_commit(3, Some(2)).unwrap();
        let st = wal.recover().unwrap();
        assert_eq!(st.snapshots, vec![1, 2]);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let (storage, wal) = mem_wal();
        wal.log_write(1, PageId(0), &page_with(1)).unwrap();
        wal.log_commit(1, None).unwrap();
        let valid = storage.len();
        wal.log_write(2, PageId(1), &page_with(7)).unwrap();
        // Simulate a torn write: chop the last record in half.
        let cut = valid + (storage.len() - valid) / 2;
        storage.truncate(cut).unwrap();
        let st = wal.recover().unwrap();
        assert_eq!(st.last_txn, 1);
        assert_eq!(st.valid_len, valid);
        assert!(!st.pages.contains_key(&PageId(1)));
    }

    #[test]
    fn corrupted_checksum_stops_replay() {
        let (storage, wal) = mem_wal();
        wal.log_write(1, PageId(0), &page_with(1)).unwrap();
        wal.log_commit(1, None).unwrap();
        let valid = storage.len();
        wal.log_write(2, PageId(1), &page_with(7)).unwrap();
        wal.log_commit(2, None).unwrap();
        // Flip a byte inside txn 2's page record body.
        let mut byte = [0u8; 1];
        storage.read_at(valid + 25, &mut byte).unwrap();
        // MemStorage has no random write; rebuild via truncate+append.
        let full_len = storage.len();
        let mut rest = vec![0u8; (full_len - valid) as usize];
        storage.read_at(valid, &mut rest).unwrap();
        rest[25] ^= 0xFF;
        storage.truncate(valid).unwrap();
        storage.append(&rest).unwrap();
        let st = wal.recover().unwrap();
        // Replay stops at the corrupt record; only txn 1 recovered.
        assert_eq!(st.last_txn, 1);
    }

    #[test]
    fn committed_segments_parse_in_commit_order() {
        let (storage, wal) = mem_wal();
        wal.log_write(1, PageId(0), &page_with(1)).unwrap();
        wal.log_write(1, PageId(2), &page_with(2)).unwrap();
        wal.log_commit(1, None).unwrap();
        let first_end = storage.len();
        wal.log_write(2, PageId(0), &page_with(3)).unwrap();
        wal.log_commit(2, Some(1)).unwrap();
        let len = storage.len();

        let s1 = next_committed_segment(storage.as_ref(), 0, len)
            .unwrap()
            .unwrap();
        assert_eq!(s1.txn_id, 1);
        assert_eq!(s1.snapshot, None);
        assert_eq!(s1.pages.len(), 2);
        assert_eq!(s1.pages[0].0, PageId(0));
        assert_eq!(s1.pages[1].0, PageId(2));
        assert_eq!((s1.start, s1.end), (0, first_end));

        let s2 = next_committed_segment(storage.as_ref(), s1.end, len)
            .unwrap()
            .unwrap();
        assert_eq!(s2.txn_id, 2);
        assert_eq!(s2.snapshot, Some(1));
        assert_eq!(s2.pages.len(), 1);
        assert_eq!(s2.end, len);

        // Past the last commit: nothing.
        assert!(next_committed_segment(storage.as_ref(), len, len)
            .unwrap()
            .is_none());
    }

    #[test]
    fn incomplete_segment_returns_none() {
        let (storage, wal) = mem_wal();
        wal.log_write(1, PageId(0), &page_with(1)).unwrap();
        // No commit record yet: the transaction is still in flight.
        let len = storage.len();
        assert!(next_committed_segment(storage.as_ref(), 0, len)
            .unwrap()
            .is_none());
        // A torn commit record is likewise not a complete segment.
        wal.log_commit(1, None).unwrap();
        let cut = len + (storage.len() - len) / 2;
        assert!(next_committed_segment(storage.as_ref(), 0, cut)
            .unwrap()
            .is_none());
    }

    #[test]
    fn empty_log_recovers_empty() {
        let (_s, wal) = mem_wal();
        let st = wal.recover().unwrap();
        assert!(st.pages.is_empty());
        assert_eq!(st.last_txn, 0);
        assert!(wal.is_empty());
    }
}
