//! Follower-side applier.
//!
//! A single background thread owns the leader connection: it bootstraps
//! by snapshot-seeding (a full, consistent copy of the three logs cut at
//! the leader's checkpoint), then applies the live segment stream into a
//! local durable store and ACKs its durable progress.
//!
//! Crash-safety is arranged so that every restart lands in a resumable
//! state:
//!
//! * the `repl.seeded` marker is written only after the seed bytes are
//!   synced — a crash mid-seed leaves no marker, and the next start
//!   wipes the partial files and reseeds from scratch;
//! * a crash mid-stream leaves at worst a torn log tail, which
//!   `RetroStore::open`'s recovery truncates back to a commit boundary —
//!   the follower then resumes from its recovered WAL length.
//!
//! Reconnects use exponential backoff and resume from the durable WAL
//! offset; divergence (an apply that does not land exactly at the local
//! WAL tail, or an SPT verification mismatch) is fatal by design — it
//! means the local history is not a prefix of the leader's, and silently
//! reseeding over a store that sessions may already hold open would hide
//! the corruption.

use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rql_pagestore::{FileStorage, LogStorage};
use rql_retro::{RetroConfig, RetroStore};

use crate::frame::{log_id, read_frame, write_frame, Frame, PROTO_VERSION};
use crate::metrics::{phase, role, ReplMetrics};
use crate::{ReplError, Result};

/// On-disk layout inside the follower's data directory.
const WAL_FILE: &str = "wal.log";
const PAGELOG_FILE: &str = "pagelog.log";
const MAPLOG_FILE: &str = "maplog.log";
/// Written only after a seed is fully synced; its absence on start
/// means any log files present are a partial seed and must be wiped.
const SEEDED_MARKER: &str = "repl.seeded";

/// Follower configuration.
#[derive(Debug, Clone)]
pub struct FollowerConfig {
    /// Leader replication address (`host:port`).
    pub leader: String,
    /// Directory for the local durable store.
    pub data_dir: PathBuf,
    /// Store geometry; page size and pagelog format must match the
    /// leader's.
    pub retro: RetroConfig,
    /// First reconnect delay.
    pub backoff_min: Duration,
    /// Reconnect delay cap.
    pub backoff_max: Duration,
    /// Flush the store after every applied declaring segment, so the
    /// ACKed snapshot count is durable.
    pub sync_each_snapshot: bool,
}

impl FollowerConfig {
    /// Defaults for `leader` and `data_dir`.
    pub fn new(leader: impl Into<String>, data_dir: impl Into<PathBuf>) -> Self {
        FollowerConfig {
            leader: leader.into(),
            data_dir: data_dir.into(),
            retro: RetroConfig::new(),
            backoff_min: Duration::from_millis(100),
            backoff_max: Duration::from_secs(5),
            sync_each_snapshot: true,
        }
    }
}

struct FollowerShared {
    cfg: FollowerConfig,
    metrics: Arc<ReplMetrics>,
    /// Published once the local store is ready (after recovery or seed).
    store: Mutex<Option<Arc<RetroStore>>>,
    store_cv: Condvar,
    shutdown: AtomicBool,
    /// Live connection, kept so shutdown can unblock the reader.
    conn: Mutex<Option<TcpStream>>,
    last_error: Mutex<Option<String>>,
}

/// A running replication follower.
pub struct ReplFollower {
    shared: Arc<FollowerShared>,
    thread: Option<JoinHandle<()>>,
}

impl ReplFollower {
    /// Start following. Returns immediately; the store becomes available
    /// via [`ReplFollower::wait_for_store`] once recovery or the first
    /// seed completes.
    pub fn start(cfg: FollowerConfig, metrics: Arc<ReplMetrics>) -> ReplFollower {
        metrics.role.store(role::FOLLOWER, Ordering::Relaxed);
        let shared = Arc::new(FollowerShared {
            cfg,
            metrics,
            store: Mutex::new(None),
            store_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conn: Mutex::new(None),
            last_error: Mutex::new(None),
        });
        let run_shared = Arc::clone(&shared);
        let thread = std::thread::spawn(move || run(&run_shared));
        ReplFollower {
            shared,
            thread: Some(thread),
        }
    }

    /// The local store, if recovery or seeding has completed.
    pub fn store(&self) -> Option<Arc<RetroStore>> {
        self.shared
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Block until the local store is ready, up to `timeout`.
    pub fn wait_for_store(&self, timeout: Duration) -> Option<Arc<RetroStore>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self
            .shared
            .store
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while slot.is_none() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, _) = self
                .shared
                .store_cv
                .wait_timeout(slot, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            slot = next;
        }
        slot.clone()
    }

    /// The last session error, for status surfacing.
    pub fn last_error(&self) -> Option<String> {
        self.shared
            .last_error
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Disconnect, stop the apply thread, and flush the local store.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(conn) = self
            .shared
            .conn
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
        {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        if let Some(store) = self.store() {
            let _ = store.flush();
        }
        self.shared
            .metrics
            .phase
            .store(phase::IDLE, Ordering::Relaxed);
    }
}

impl Drop for ReplFollower {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn record_error(shared: &FollowerShared, e: &ReplError) {
    *shared
        .last_error
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(e.to_string());
}

fn run(shared: &Arc<FollowerShared>) {
    // A completed seed from an earlier run? Recover it before the first
    // connection, so reads can be served even while the leader is down.
    if shared.cfg.data_dir.join(SEEDED_MARKER).exists() {
        match open_existing(&shared.cfg) {
            Ok(store) => publish_store(shared, store),
            Err(e) => {
                record_error(shared, &e);
                return;
            }
        }
    }
    let mut backoff = shared.cfg.backoff_min;
    while !shared.shutdown.load(Ordering::SeqCst) {
        let started = Instant::now();
        match session(shared) {
            Ok(()) => break, // clean shutdown
            Err(e @ (ReplError::Io(_) | ReplError::Store(_))) => {
                record_error(shared, &e);
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                // A session that streamed for a while earns a fresh
                // backoff; rapid-fire failures back off exponentially.
                if started.elapsed() > Duration::from_secs(5) {
                    backoff = shared.cfg.backoff_min;
                }
                // Lag is unmeasurable while disconnected: drop out of
                // STREAMING so readiness probes report not-ready until
                // the next session re-establishes the stream.
                shared.metrics.phase.store(phase::IDLE, Ordering::Relaxed);
                shared.metrics.reconnects.fetch_add(1, Ordering::Relaxed);
                sleep_interruptible(shared, backoff);
                backoff = (backoff * 2).min(shared.cfg.backoff_max);
            }
            Err(e) => {
                // Protocol mismatch or divergence: retrying cannot help.
                record_error(shared, &e);
                break;
            }
        }
    }
    shared.metrics.phase.store(phase::IDLE, Ordering::Relaxed);
}

fn sleep_interruptible(shared: &FollowerShared, total: Duration) {
    let deadline = Instant::now() + total;
    while Instant::now() < deadline && !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(20).min(total));
    }
}

fn publish_store(shared: &Arc<FollowerShared>, store: Arc<RetroStore>) {
    *shared
        .store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(store);
    shared.store_cv.notify_all();
}

fn log_paths(cfg: &FollowerConfig) -> [PathBuf; 3] {
    [
        cfg.data_dir.join(WAL_FILE),
        cfg.data_dir.join(PAGELOG_FILE),
        cfg.data_dir.join(MAPLOG_FILE),
    ]
}

fn open_existing(cfg: &FollowerConfig) -> Result<Arc<RetroStore>> {
    let [wal, plog, mlog] = log_paths(cfg);
    let store = RetroStore::open(
        cfg.retro.clone(),
        Arc::new(FileStorage::open(&wal)?),
        Arc::new(FileStorage::open(&plog)?),
        Arc::new(FileStorage::open(&mlog)?),
    )?;
    Ok(store)
}

/// One connection lifetime: handshake, seed if needed, apply until the
/// stream breaks or shutdown. `Ok(())` means clean shutdown.
fn session(shared: &Arc<FollowerShared>) -> Result<()> {
    let stream = TcpStream::connect(&shared.cfg.leader)?;
    let mut writer = stream.try_clone()?;
    let mut reader = stream.try_clone()?;
    *shared
        .conn
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(stream);

    let existing = shared
        .store
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone();
    let wal_len = existing.as_ref().map_or(0, |s| s.wal_len());
    write_frame(
        &mut writer,
        &Frame::Hello {
            proto: PROTO_VERSION,
            wal_len,
            page_size: shared.cfg.retro.pager.page_size as u32,
            format: 0,
        },
    )?;

    let store = match existing {
        Some(store) => store,
        None => receive_seed(shared, &mut reader)?,
    };
    shared
        .metrics
        .phase
        .store(phase::STREAMING, Ordering::Relaxed);

    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                return Err(e);
            }
        };
        match frame {
            Frame::Segment { .. } => {
                let wire = frame.wire_size();
                let origin = frame.origin();
                let seg = frame.into_segment()?;
                {
                    // The apply span's arg is the originating txn id —
                    // the same value as the leader's `commit` span arg —
                    // so stitch_trace.py can draw the causal link.
                    let _apply = rql_trace::span_arg(
                        rql_trace::SpanId::ReplApply,
                        origin.map_or(seg.txn_id, |o| o.span_id),
                    );
                    let declared = store
                        .apply_replicated(&seg)
                        .map_err(|e| ReplError::Diverged(e.to_string()))?;
                    if declared.is_some() && shared.cfg.sync_each_snapshot {
                        store.flush()?;
                    }
                }
                if let Some(o) = origin {
                    shared.metrics.lag_micros.store(
                        rql_trace::unix_micros().saturating_sub(o.wall_micros),
                        Ordering::Relaxed,
                    );
                }
                shared
                    .metrics
                    .segments_applied
                    .fetch_add(1, Ordering::Relaxed);
                shared
                    .metrics
                    .bytes_applied
                    .fetch_add(wire, Ordering::Relaxed);
                send_ack(shared, &mut writer, &store)?;
            }
            Frame::Spt {
                snapshot_id,
                page_count,
                origin: _,
            } => {
                let local = store
                    .snapshot_meta(snapshot_id)
                    .map(|m| m.page_count)
                    .ok_or_else(|| {
                        ReplError::Diverged(format!("snapshot {snapshot_id} missing after apply"))
                    })?;
                if local != page_count {
                    return Err(ReplError::Diverged(format!(
                        "snapshot {snapshot_id} page count {local} != leader {page_count}"
                    )));
                }
            }
            Frame::Heartbeat {
                wal_len,
                snapshot_count,
            } => {
                let behind = wal_len.saturating_sub(store.wal_len());
                shared.metrics.lag_bytes.store(behind, Ordering::Relaxed);
                shared.metrics.lag_snapshots.store(
                    snapshot_count.saturating_sub(store.snapshot_count()),
                    Ordering::Relaxed,
                );
                if behind == 0 {
                    // Fully caught up on an idle stream: the last
                    // apply-time lag sample is stale, not current lag.
                    shared.metrics.lag_micros.store(0, Ordering::Relaxed);
                }
                send_ack(shared, &mut writer, &store)?;
            }
            other => {
                return Err(ReplError::Protocol(format!(
                    "unexpected frame in stream: {other:?}"
                )))
            }
        }
    }
}

fn send_ack(
    shared: &FollowerShared,
    writer: &mut TcpStream,
    store: &Arc<RetroStore>,
) -> Result<()> {
    let ack = Frame::Ack {
        wal_len: store.wal_len(),
        snapshot_count: store.snapshot_count(),
    };
    shared
        .metrics
        .bytes_applied
        .fetch_add(ack.wire_size(), Ordering::Relaxed);
    write_frame(writer, &ack)
}

/// Receive a full seed into fresh log files, then open the store over
/// them. Any partial state from an earlier interrupted seed is wiped
/// first — the marker file is only ever written after a complete, synced
/// seed.
fn receive_seed(shared: &Arc<FollowerShared>, reader: &mut TcpStream) -> Result<Arc<RetroStore>> {
    shared
        .metrics
        .phase
        .store(phase::SEEDING, Ordering::Relaxed);
    std::fs::create_dir_all(&shared.cfg.data_dir)?;
    let marker = shared.cfg.data_dir.join(SEEDED_MARKER);
    let _ = std::fs::remove_file(&marker);
    for path in log_paths(&shared.cfg) {
        let _ = std::fs::remove_file(path);
    }
    let [wal_path, plog_path, mlog_path] = log_paths(&shared.cfg);
    let wal: Arc<FileStorage> = Arc::new(FileStorage::create(&wal_path)?);
    let plog: Arc<FileStorage> = Arc::new(FileStorage::create(&plog_path)?);
    let mlog: Arc<FileStorage> = Arc::new(FileStorage::create(&mlog_path)?);

    let start = read_frame(reader)?;
    let Frame::SeedStart {
        wal_len,
        pagelog_len,
        maplog_len,
        snapshot_count: _,
    } = start
    else {
        return Err(ReplError::Protocol("expected SEED_START".into()));
    };
    loop {
        match read_frame(reader)? {
            Frame::SeedChunk { log, offset, bytes } => {
                let storage: &Arc<FileStorage> = match log {
                    log_id::WAL => &wal,
                    log_id::PAGELOG => &plog,
                    log_id::MAPLOG => &mlog,
                    other => return Err(ReplError::Protocol(format!("unknown seed log {other}"))),
                };
                if storage.len() != offset {
                    return Err(ReplError::Protocol(format!(
                        "seed chunk offset {offset} != received {}",
                        storage.len()
                    )));
                }
                shared
                    .metrics
                    .seed_bytes
                    .fetch_add(bytes.len() as u64, Ordering::Relaxed);
                storage.append(&bytes)?;
            }
            Frame::SeedDone => break,
            other => {
                return Err(ReplError::Protocol(format!(
                    "unexpected frame during seed: {other:?}"
                )))
            }
        }
    }
    if wal.len() != wal_len || plog.len() != pagelog_len || mlog.len() != maplog_len {
        return Err(ReplError::Protocol("seed ended short of its cut".into()));
    }
    wal.sync()?;
    plog.sync()?;
    mlog.sync()?;
    // The marker is the commit point of the seed: everything before it
    // is synced, so a crash after this line restarts in resume mode.
    std::fs::write(&marker, b"1")?;
    let store = RetroStore::open(shared.cfg.retro.clone(), wal, plog, mlog)?;
    publish_store(shared, Arc::clone(&store));
    Ok(store)
}
