//! Length-prefixed, checksummed replication frames.
//!
//! Every frame is `[u32 len BE][u8 op][payload][u64 fnv1a LE]` where
//! `len` counts everything after itself (op + payload + checksum) and
//! the checksum covers the op byte and the payload. Multi-byte payload
//! integers are little-endian, matching the store's on-disk logs, so a
//! seed chunk or a segment page round-trips without re-encoding.
//!
//! The checksum is not paranoia: the stream crosses process and machine
//! boundaries, and a follower applies what it reads directly into its
//! durable store. A corrupt frame must fail loudly at the boundary, not
//! surface later as a diverged replica.

use std::io::{Read, Write};

use rql_pagestore::{fnv1a, CommittedSegment, Page, PageId};

use crate::{ReplError, Result};

/// Protocol version carried in [`Frame::Hello`]; bumped on any wire
/// change.
pub const PROTO_VERSION: u32 = 1;

/// Upper bound on a single frame body. A segment frame carries one whole
/// committed transaction, so this is generous; anything larger indicates
/// a corrupt length prefix, not a real frame.
pub const MAX_FRAME: u32 = 256 * 1024 * 1024;

/// Seed sub-stream identifiers: which log a [`Frame::SeedChunk`] extends.
pub mod log_id {
    /// The write-ahead log.
    pub const WAL: u8 = 0;
    /// The Pagelog archive.
    pub const PAGELOG: u8 = 1;
    /// The Maplog index.
    pub const MAPLOG: u8 = 2;
}

/// Optional provenance trailer on [`Frame::Segment`] and [`Frame::Spt`]:
/// which leader commit produced the data and when, for cross-node trace
/// stitching and time-lag measurement.
///
/// Encoded as 16 trailing payload bytes (`[u64 span_id][u64 wall_micros]`,
/// little-endian). Decoders treat the trailer as optional, so a new
/// follower accepts frames from an old leader; upgrade followers before
/// leaders when rolling a cluster forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitOrigin {
    /// The leader's commit span identifier: the committing transaction
    /// id, which is the `arg` of the leader's `commit` trace span.
    pub span_id: u64,
    /// Leader wall clock when the frame was shipped, in microseconds
    /// since the Unix epoch. Followers subtract this from their own
    /// clock to produce `repl_lag_seconds` (subject to clock skew,
    /// like any cross-machine lag measure).
    pub wall_micros: u64,
}

mod op {
    pub const HELLO: u8 = 0x01;
    pub const SEED_START: u8 = 0x02;
    pub const SEED_CHUNK: u8 = 0x03;
    pub const SEED_DONE: u8 = 0x04;
    pub const SEGMENT: u8 = 0x05;
    pub const SPT: u8 = 0x06;
    pub const HEARTBEAT: u8 = 0x07;
    pub const ACK: u8 = 0x08;
}

/// One replication protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// Follower → leader greeting: who I am and where my WAL ends.
    /// `wal_len == 0` requests a full seed.
    Hello {
        /// Must equal [`PROTO_VERSION`].
        proto: u32,
        /// Length of the follower's durable WAL (resume point).
        wal_len: u64,
        /// Follower page size; must match the leader's.
        page_size: u32,
        /// Pagelog format tag (0 = raw); must match the leader's.
        format: u8,
    },
    /// Leader → follower: a snapshot-consistent seed follows, cut at
    /// these log lengths.
    SeedStart {
        /// WAL bytes that will be shipped.
        wal_len: u64,
        /// Pagelog bytes that will be shipped.
        pagelog_len: u64,
        /// Maplog bytes that will be shipped.
        maplog_len: u64,
        /// Snapshots declared within the cut.
        snapshot_count: u64,
    },
    /// One contiguous run of seed bytes for one log.
    SeedChunk {
        /// Which log (see [`log_id`]).
        log: u8,
        /// Offset of these bytes within the log.
        offset: u64,
        /// The raw log bytes.
        bytes: Vec<u8>,
    },
    /// Seed complete; live segments follow.
    SeedDone,
    /// One committed transaction, exactly as parsed off the leader WAL.
    Segment {
        /// Leader WAL offset of the segment's first record.
        start: u64,
        /// Leader WAL offset just past the commit record.
        end: u64,
        /// Transaction id to replay under (keeps WALs byte-identical).
        txn_id: u64,
        /// Declared snapshot id, if the commit declared one.
        snapshot: Option<u64>,
        /// Page after-images in log order.
        pages: Vec<(u64, Vec<u8>)>,
        /// Originating-commit trailer (absent on frames from leaders
        /// that predate it).
        origin: Option<CommitOrigin>,
    },
    /// Post-declaration verification: the follower must agree on the
    /// snapshot's page count before acking further work.
    Spt {
        /// The declared snapshot.
        snapshot_id: u64,
        /// Universe size the SPT covers on the leader.
        page_count: u64,
        /// Originating-commit trailer (absent on frames from leaders
        /// that predate it).
        origin: Option<CommitOrigin>,
    },
    /// Leader → follower liveness + lag reference when no commits flow.
    Heartbeat {
        /// Leader WAL length.
        wal_len: u64,
        /// Leader snapshot count.
        snapshot_count: u64,
    },
    /// Follower → leader progress: everything up to here is applied.
    Ack {
        /// Follower WAL length after apply.
        wal_len: u64,
        /// Follower snapshot count after apply.
        snapshot_count: u64,
    },
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_origin(buf: &mut Vec<u8>, origin: &Option<CommitOrigin>) {
    if let Some(o) = origin {
        put_u64(buf, o.span_id);
        put_u64(buf, o.wall_micros);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(ReplError::Protocol("truncated frame payload".into()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an optional [`CommitOrigin`] trailer: consumes the final 16
    /// bytes when present, returns `None` on frames from peers that
    /// predate it.
    fn maybe_origin(&mut self) -> Result<Option<CommitOrigin>> {
        if self.buf.len() - self.pos < 16 {
            return Ok(None);
        }
        Ok(Some(CommitOrigin {
            span_id: self.u64()?,
            wall_micros: self.u64()?,
        }))
    }

    fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(ReplError::Protocol("trailing bytes in frame".into()));
        }
        Ok(())
    }
}

impl Frame {
    fn op(&self) -> u8 {
        match self {
            Frame::Hello { .. } => op::HELLO,
            Frame::SeedStart { .. } => op::SEED_START,
            Frame::SeedChunk { .. } => op::SEED_CHUNK,
            Frame::SeedDone => op::SEED_DONE,
            Frame::Segment { .. } => op::SEGMENT,
            Frame::Spt { .. } => op::SPT,
            Frame::Heartbeat { .. } => op::HEARTBEAT,
            Frame::Ack { .. } => op::ACK,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut p = Vec::new();
        match self {
            Frame::Hello {
                proto,
                wal_len,
                page_size,
                format,
            } => {
                put_u32(&mut p, *proto);
                put_u64(&mut p, *wal_len);
                put_u32(&mut p, *page_size);
                p.push(*format);
            }
            Frame::SeedStart {
                wal_len,
                pagelog_len,
                maplog_len,
                snapshot_count,
            } => {
                put_u64(&mut p, *wal_len);
                put_u64(&mut p, *pagelog_len);
                put_u64(&mut p, *maplog_len);
                put_u64(&mut p, *snapshot_count);
            }
            Frame::SeedChunk { log, offset, bytes } => {
                p.push(*log);
                put_u64(&mut p, *offset);
                put_u32(&mut p, bytes.len() as u32);
                p.extend_from_slice(bytes);
            }
            Frame::SeedDone => {}
            Frame::Segment {
                start,
                end,
                txn_id,
                snapshot,
                pages,
                origin,
            } => {
                put_u64(&mut p, *start);
                put_u64(&mut p, *end);
                put_u64(&mut p, *txn_id);
                p.push(u8::from(snapshot.is_some()));
                put_u64(&mut p, snapshot.unwrap_or(0));
                put_u32(&mut p, pages.len() as u32);
                for (pid, bytes) in pages {
                    put_u64(&mut p, *pid);
                    put_u32(&mut p, bytes.len() as u32);
                    p.extend_from_slice(bytes);
                }
                put_origin(&mut p, origin);
            }
            Frame::Spt {
                snapshot_id,
                page_count,
                origin,
            } => {
                put_u64(&mut p, *snapshot_id);
                put_u64(&mut p, *page_count);
                put_origin(&mut p, origin);
            }
            Frame::Heartbeat {
                wal_len,
                snapshot_count,
            }
            | Frame::Ack {
                wal_len,
                snapshot_count,
            } => {
                put_u64(&mut p, *wal_len);
                put_u64(&mut p, *snapshot_count);
            }
        }
        p
    }

    fn parse(opcode: u8, payload: &[u8]) -> Result<Frame> {
        let mut c = Cursor {
            buf: payload,
            pos: 0,
        };
        let frame = match opcode {
            op::HELLO => Frame::Hello {
                proto: c.u32()?,
                wal_len: c.u64()?,
                page_size: c.u32()?,
                format: c.u8()?,
            },
            op::SEED_START => Frame::SeedStart {
                wal_len: c.u64()?,
                pagelog_len: c.u64()?,
                maplog_len: c.u64()?,
                snapshot_count: c.u64()?,
            },
            op::SEED_CHUNK => {
                let log = c.u8()?;
                let offset = c.u64()?;
                let n = c.u32()? as usize;
                Frame::SeedChunk {
                    log,
                    offset,
                    bytes: c.take(n)?.to_vec(),
                }
            }
            op::SEED_DONE => Frame::SeedDone,
            op::SEGMENT => {
                let start = c.u64()?;
                let end = c.u64()?;
                let txn_id = c.u64()?;
                let has_snap = c.u8()? == 1;
                let sid = c.u64()?;
                let n = c.u32()? as usize;
                let mut pages = Vec::with_capacity(n);
                for _ in 0..n {
                    let pid = c.u64()?;
                    let plen = c.u32()? as usize;
                    pages.push((pid, c.take(plen)?.to_vec()));
                }
                Frame::Segment {
                    start,
                    end,
                    txn_id,
                    snapshot: has_snap.then_some(sid),
                    pages,
                    origin: c.maybe_origin()?,
                }
            }
            op::SPT => Frame::Spt {
                snapshot_id: c.u64()?,
                page_count: c.u64()?,
                origin: c.maybe_origin()?,
            },
            op::HEARTBEAT => Frame::Heartbeat {
                wal_len: c.u64()?,
                snapshot_count: c.u64()?,
            },
            op::ACK => Frame::Ack {
                wal_len: c.u64()?,
                snapshot_count: c.u64()?,
            },
            other => {
                return Err(ReplError::Protocol(format!(
                    "unknown frame opcode 0x{other:02x}"
                )))
            }
        };
        c.done()?;
        Ok(frame)
    }

    /// Encoded size on the wire (length prefix included) — what the
    /// shipped-bytes metrics count.
    pub fn wire_size(&self) -> u64 {
        (4 + 1 + self.payload().len() + 8) as u64
    }

    /// Build a segment frame from a parsed WAL segment, stamped with
    /// its originating-commit trailer.
    pub fn from_segment(seg: &CommittedSegment, origin: Option<CommitOrigin>) -> Frame {
        Frame::Segment {
            start: seg.start,
            end: seg.end,
            txn_id: seg.txn_id,
            snapshot: seg.snapshot,
            pages: seg
                .pages
                .iter()
                .map(|(pid, page)| (pid.0, page.bytes().to_vec()))
                .collect(),
            origin,
        }
    }

    /// The originating-commit trailer, when this frame carries one.
    pub fn origin(&self) -> Option<CommitOrigin> {
        match self {
            Frame::Segment { origin, .. } | Frame::Spt { origin, .. } => *origin,
            _ => None,
        }
    }

    /// Recover the WAL segment a [`Frame::Segment`] carries.
    pub fn into_segment(self) -> Result<CommittedSegment> {
        let Frame::Segment {
            start,
            end,
            txn_id,
            snapshot,
            pages,
            origin: _,
        } = self
        else {
            return Err(ReplError::Protocol("expected SEGMENT frame".into()));
        };
        Ok(CommittedSegment {
            txn_id,
            snapshot,
            pages: pages
                .into_iter()
                .map(|(pid, bytes)| (PageId(pid), Page::from_bytes(bytes)))
                .collect(),
            start,
            end,
        })
    }
}

/// Write one frame.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> Result<()> {
    let payload = frame.payload();
    let len = (1 + payload.len() + 8) as u32;
    let mut buf = Vec::with_capacity(4 + len as usize);
    buf.extend_from_slice(&len.to_be_bytes());
    buf.push(frame.op());
    buf.extend_from_slice(&payload);
    let mut ck_input = Vec::with_capacity(1 + payload.len());
    ck_input.push(frame.op());
    ck_input.extend_from_slice(&payload);
    buf.extend_from_slice(&fnv1a(&ck_input).to_le_bytes());
    w.write_all(&buf)?;
    Ok(())
}

/// Read one frame, verifying its checksum.
pub fn read_frame(r: &mut impl Read) -> Result<Frame> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_be_bytes(len_buf);
    if !(9..=MAX_FRAME).contains(&len) {
        return Err(ReplError::Protocol(format!("bad frame length {len}")));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let (head, ck_buf) = body.split_at(len as usize - 8);
    let stored = u64::from_le_bytes(ck_buf.try_into().unwrap());
    if fnv1a(head) != stored {
        return Err(ReplError::Protocol("frame checksum mismatch".into()));
    }
    Frame::parse(head[0], &head[1..])
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn roundtrip(frame: Frame) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &frame).unwrap();
        assert_eq!(frame.wire_size(), buf.len() as u64);
        let got = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(frame, got);
    }

    #[test]
    fn all_frames_roundtrip() {
        roundtrip(Frame::Hello {
            proto: PROTO_VERSION,
            wal_len: 12345,
            page_size: 4096,
            format: 0,
        });
        roundtrip(Frame::SeedStart {
            wal_len: 1,
            pagelog_len: 2,
            maplog_len: 3,
            snapshot_count: 4,
        });
        roundtrip(Frame::SeedChunk {
            log: log_id::PAGELOG,
            offset: 777,
            bytes: vec![1, 2, 3, 4, 5],
        });
        roundtrip(Frame::SeedDone);
        roundtrip(Frame::Segment {
            start: 10,
            end: 99,
            txn_id: 7,
            snapshot: Some(3),
            pages: vec![(0, vec![0u8; 64]), (5, vec![9u8; 64])],
            origin: Some(CommitOrigin {
                span_id: 7,
                wall_micros: 1_723_000_000_000_000,
            }),
        });
        roundtrip(Frame::Segment {
            start: 0,
            end: 1,
            txn_id: 1,
            snapshot: None,
            pages: vec![],
            origin: None,
        });
        roundtrip(Frame::Spt {
            snapshot_id: 3,
            page_count: 40,
            origin: Some(CommitOrigin {
                span_id: 9,
                wall_micros: 42,
            }),
        });
        roundtrip(Frame::Spt {
            snapshot_id: 3,
            page_count: 40,
            origin: None,
        });
        roundtrip(Frame::Heartbeat {
            wal_len: 5,
            snapshot_count: 6,
        });
        roundtrip(Frame::Ack {
            wal_len: 5,
            snapshot_count: 6,
        });
    }

    #[test]
    fn corrupt_frames_are_rejected() {
        let mut buf = Vec::new();
        write_frame(
            &mut buf,
            &Frame::Heartbeat {
                wal_len: 5,
                snapshot_count: 6,
            },
        )
        .unwrap();
        // Flip one payload byte: checksum must catch it.
        let mut bad = buf.clone();
        bad[6] ^= 0xff;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(ReplError::Protocol(_))
        ));
        // Truncated stream: an io error, not a hang.
        let short = &buf[..buf.len() - 3];
        assert!(matches!(read_frame(&mut &short[..]), Err(ReplError::Io(_))));
        // Absurd length prefix.
        let mut huge = buf;
        huge[0..4].copy_from_slice(&u32::MAX.to_be_bytes());
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(ReplError::Protocol(_))
        ));
    }

    #[test]
    fn segment_frame_converts_to_wal_segment() {
        let frame = Frame::Segment {
            start: 4,
            end: 200,
            txn_id: 9,
            snapshot: Some(2),
            pages: vec![(3, vec![7u8; 64])],
            origin: None,
        };
        let seg = frame.clone().into_segment().unwrap();
        assert_eq!(seg.txn_id, 9);
        assert_eq!(seg.snapshot, Some(2));
        assert_eq!(seg.pages.len(), 1);
        assert_eq!(seg.pages[0].0 .0, 3);
        assert_eq!(Frame::from_segment(&seg, None), frame);
    }

    #[test]
    fn pre_trailer_segment_and_spt_payloads_still_decode() {
        // A v0 peer encodes Segment/Spt without the 16-byte origin
        // trailer; decoding must yield `origin: None`, not an error.
        for frame in [
            Frame::Segment {
                start: 10,
                end: 99,
                txn_id: 7,
                snapshot: Some(3),
                pages: vec![(0, vec![0u8; 64])],
                origin: Some(CommitOrigin {
                    span_id: 7,
                    wall_micros: 55,
                }),
            },
            Frame::Spt {
                snapshot_id: 3,
                page_count: 40,
                origin: Some(CommitOrigin {
                    span_id: 7,
                    wall_micros: 55,
                }),
            },
        ] {
            let mut buf = Vec::new();
            write_frame(&mut buf, &frame).unwrap();
            // Rebuild the frame body without the last 16 payload bytes,
            // fixing up the length prefix and checksum — byte-identical
            // to what a pre-trailer peer writes.
            let body_len = u32::from_be_bytes(buf[0..4].try_into().unwrap()) as usize;
            let head = &buf[4..4 + body_len - 8]; // op + payload
            let stripped_head = &head[..head.len() - 16];
            let mut legacy = Vec::new();
            legacy.extend_from_slice(&((stripped_head.len() + 8) as u32).to_be_bytes());
            legacy.extend_from_slice(stripped_head);
            legacy.extend_from_slice(&rql_pagestore::fnv1a(stripped_head).to_le_bytes());
            let got = read_frame(&mut legacy.as_slice()).unwrap();
            assert_eq!(got.origin(), None);
            match (&frame, &got) {
                (Frame::Segment { txn_id: a, .. }, Frame::Segment { txn_id: b, .. }) => {
                    assert_eq!(a, b)
                }
                (Frame::Spt { snapshot_id: a, .. }, Frame::Spt { snapshot_id: b, .. }) => {
                    assert_eq!(a, b)
                }
                other => panic!("frame kind changed: {other:?}"),
            }
        }
    }
}
