//! Leader-side segment shipper.
//!
//! One accept thread, then two threads per follower: a sender that tails
//! the committed WAL and ships seed bytes / segments / heartbeats, and an
//! ACK reader that tracks the follower's durable progress. The sender
//! reads the WAL through the store's own `LogStorage` handle at its own
//! cursor, so a slow follower costs no leader memory — backpressure is a
//! bounded *window* (shipped-but-unacked bytes), and a follower that
//! stays past the window for longer than the stall timeout is shed.
//!
//! Commit visibility: the store's commit hook publishes the WAL length
//! under a mutex + condvar. A published length may end mid-transaction
//! (another commit's page records already appended, its commit record
//! not), but `next_committed_segment` treats an incomplete tail as
//! "nothing to ship yet", so the sender can never ship an uncommitted
//! record.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rql_pagestore::next_committed_segment;
use rql_retro::{PagelogFormat, ReplLogs, RetroStore};

use crate::frame::{log_id, read_frame, write_frame, Frame, PROTO_VERSION};
use crate::metrics::{phase, role, ReplMetrics};
use crate::{ReplError, Result};

/// Leader tuning knobs.
#[derive(Debug, Clone)]
pub struct LeaderConfig {
    /// Max shipped-but-unacked WAL bytes per follower before the sender
    /// pauses (the bounded send queue, expressed in log bytes).
    pub window_bytes: u64,
    /// How long a sender may stay paused on a full window before the
    /// follower is shed.
    pub stall_timeout: Duration,
    /// Idle heartbeat interval.
    pub heartbeat: Duration,
    /// Seed transfer chunk size.
    pub seed_chunk: usize,
}

impl Default for LeaderConfig {
    fn default() -> Self {
        LeaderConfig {
            window_bytes: 16 * 1024 * 1024,
            stall_timeout: Duration::from_secs(10),
            heartbeat: Duration::from_millis(200),
            seed_chunk: 256 * 1024,
        }
    }
}

/// Per-follower connection state shared between sender and ACK reader.
struct ConnState {
    stream: TcpStream,
    /// (acked WAL length, acked snapshot count).
    acked: Mutex<(u64, u64)>,
    acked_cv: Condvar,
    dead: AtomicBool,
}

impl ConnState {
    fn kill(&self) {
        self.dead.store(true, Ordering::SeqCst);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
        self.acked_cv.notify_all();
    }
}

struct LeaderShared {
    store: Arc<RetroStore>,
    logs: ReplLogs,
    metrics: Arc<ReplMetrics>,
    cfg: LeaderConfig,
    /// Published committed-WAL length; senders sleep on the condvar.
    tail: Mutex<u64>,
    tail_cv: Condvar,
    shutdown: AtomicBool,
    conns: Mutex<Vec<Arc<ConnState>>>,
    handlers: Mutex<Vec<JoinHandle<()>>>,
}

impl LeaderShared {
    /// Recompute the worst-follower lag gauges.
    fn update_lag(&self) {
        let wal_len = self.logs.wal.len();
        let snaps = self.store.snapshot_count();
        let mut lag_bytes = 0u64;
        let mut lag_snaps = 0u64;
        for conn in self
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            let (aw, asnaps) = *conn
                .acked
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            lag_bytes = lag_bytes.max(wal_len.saturating_sub(aw));
            lag_snaps = lag_snaps.max(snaps.saturating_sub(asnaps));
        }
        self.metrics.lag_bytes.store(lag_bytes, Ordering::Relaxed);
        self.metrics
            .lag_snapshots
            .store(lag_snaps, Ordering::Relaxed);
    }
}

/// A running replication leader.
pub struct ReplLeader {
    shared: Arc<LeaderShared>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
}

impl ReplLeader {
    /// Start serving followers on `listener`. The store must be durable
    /// (opened with logs) and use the raw Pagelog format — adaptive
    /// archives are chain-order-dependent and not byte-replayable.
    pub fn start(
        store: Arc<RetroStore>,
        listener: TcpListener,
        metrics: Arc<ReplMetrics>,
        cfg: LeaderConfig,
    ) -> Result<ReplLeader> {
        let logs = store
            .repl_logs()
            .ok_or_else(|| ReplError::Protocol("replication requires a durable store".into()))?;
        if !matches!(store.config().pagelog_format, PagelogFormat::Raw) {
            return Err(ReplError::Protocol(
                "replication requires the raw pagelog format".into(),
            ));
        }
        let addr = listener.local_addr()?;
        metrics.role.store(role::LEADER, Ordering::Relaxed);
        let shared = Arc::new(LeaderShared {
            tail: Mutex::new(store.wal_len()),
            store,
            logs,
            metrics,
            cfg,
            tail_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            handlers: Mutex::new(Vec::new()),
        });
        // The hook outlives the leader (hooks are never removed), so it
        // holds a weak reference and goes inert after shutdown.
        let weak: Weak<LeaderShared> = Arc::downgrade(&shared);
        shared.store.add_commit_hook(Arc::new(move || {
            if let Some(s) = weak.upgrade() {
                let len = s.logs.wal.len();
                let mut tail = s
                    .tail
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if len > *tail {
                    *tail = len;
                    s.tail_cv.notify_all();
                }
            }
        }));
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::spawn(move || accept_loop(&accept_shared, &listener));
        Ok(ReplLeader {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound address (useful with port 0 in tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, disconnect all followers, join all threads.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.tail_cv.notify_all();
        for conn in self
            .shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
        {
            conn.kill();
        }
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        let handlers = std::mem::take(
            &mut *self
                .shared
                .handlers
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in handlers {
            let _ = h.join();
        }
        self.shared
            .metrics
            .phase
            .store(phase::IDLE, Ordering::Relaxed);
    }
}

impl Drop for ReplLeader {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(shared: &Arc<LeaderShared>, listener: &TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            continue;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let conn_shared = Arc::clone(shared);
        let handle = std::thread::spawn(move || {
            let _ = serve_follower(&conn_shared, stream);
        });
        shared
            .handlers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(handle);
    }
}

/// Drive one follower connection: handshake, optional seed, then the
/// live segment stream. Any error tears the connection down; the
/// follower reconnects and resumes.
fn serve_follower(shared: &Arc<LeaderShared>, stream: TcpStream) -> Result<()> {
    let mut writer = stream.try_clone()?;
    let mut reader = stream.try_clone()?;
    // A follower that stops draining its socket must not wedge the
    // sender forever: blocked writes time out like a full window does.
    writer.set_write_timeout(Some(shared.cfg.stall_timeout))?;
    let hello = read_frame(&mut reader)?;
    let Frame::Hello {
        proto,
        wal_len: follower_wal,
        page_size,
        format,
    } = hello
    else {
        return Err(ReplError::Protocol("expected HELLO".into()));
    };
    if proto != PROTO_VERSION {
        return Err(ReplError::Protocol(format!(
            "protocol version mismatch: leader {PROTO_VERSION}, follower {proto}"
        )));
    }
    if page_size as usize != shared.store.config().pager.page_size || format != 0 {
        return Err(ReplError::Protocol(
            "store geometry mismatch (page size / pagelog format)".into(),
        ));
    }

    // Decide the stream start: resume at the follower's WAL length when
    // it is a prefix of ours, otherwise seed from scratch.
    let mut cursor = if follower_wal == 0 || follower_wal > shared.store.wal_len() {
        send_seed(shared, &mut writer)?
    } else {
        follower_wal
    };

    let conn = Arc::new(ConnState {
        stream,
        acked: Mutex::new((cursor, shared.store.snapshot_count())),
        acked_cv: Condvar::new(),
        dead: AtomicBool::new(false),
    });
    shared
        .conns
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(Arc::clone(&conn));
    shared.metrics.followers.fetch_add(1, Ordering::Relaxed);
    shared
        .metrics
        .phase
        .store(phase::STREAMING, Ordering::Relaxed);

    let ack_conn = Arc::clone(&conn);
    let ack_shared = Arc::clone(shared);
    let ack_reader = std::thread::spawn(move || {
        while let Ok(frame) = read_frame(&mut reader) {
            if let Frame::Ack {
                wal_len,
                snapshot_count,
            } = frame
            {
                *ack_conn
                    .acked
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = (wal_len, snapshot_count);
                ack_conn.acked_cv.notify_all();
                ack_shared.update_lag();
            }
        }
        ack_conn.kill();
    });

    let result = stream_segments(shared, &conn, &mut writer, &mut cursor);
    conn.kill();
    let _ = ack_reader.join();
    {
        let mut conns = shared
            .conns
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        conns.retain(|c| !Arc::ptr_eq(c, &conn));
        if conns.is_empty() {
            shared.metrics.phase.store(phase::IDLE, Ordering::Relaxed);
        }
    }
    shared.metrics.followers.fetch_sub(1, Ordering::Relaxed);
    shared.update_lag();
    result
}

/// Ship a snapshot-consistent full copy of the three logs, cut at a
/// mutually consistent point. Returns the WAL cursor to stream from.
fn send_seed(shared: &Arc<LeaderShared>, writer: &mut TcpStream) -> Result<u64> {
    shared
        .metrics
        .phase
        .store(phase::SEEDING, Ordering::Relaxed);
    let ckpt = shared.store.repl_checkpoint()?;
    let mut shipped = 0u64;
    let start = Frame::SeedStart {
        wal_len: ckpt.wal_len,
        pagelog_len: ckpt.pagelog_len,
        maplog_len: ckpt.maplog_len,
        snapshot_count: ckpt.snapshot_count,
    };
    shipped += start.wire_size();
    write_frame(writer, &start)?;
    let logs = [
        (log_id::WAL, &shared.logs.wal, ckpt.wal_len),
        (log_id::PAGELOG, &shared.logs.pagelog, ckpt.pagelog_len),
        (log_id::MAPLOG, &shared.logs.maplog, ckpt.maplog_len),
    ];
    for (log, storage, len) in logs {
        let mut offset = 0u64;
        while offset < len {
            let n = (shared.cfg.seed_chunk as u64).min(len - offset) as usize;
            let mut bytes = vec![0u8; n];
            storage.read_at(offset, &mut bytes)?;
            let chunk = Frame::SeedChunk { log, offset, bytes };
            shipped += chunk.wire_size();
            write_frame(writer, &chunk)?;
            offset += n as u64;
        }
    }
    write_frame(writer, &Frame::SeedDone)?;
    shipped += Frame::SeedDone.wire_size();
    shared
        .metrics
        .bytes_shipped
        .fetch_add(shipped, Ordering::Relaxed);
    shared.metrics.seeds_served.fetch_add(1, Ordering::Relaxed);
    Ok(ckpt.wal_len)
}

fn stream_segments(
    shared: &Arc<LeaderShared>,
    conn: &Arc<ConnState>,
    writer: &mut TcpStream,
    cursor: &mut u64,
) -> Result<()> {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) || conn.dead.load(Ordering::SeqCst) {
            return Ok(());
        }
        let upto = shared.logs.wal.len();
        match next_committed_segment(shared.logs.wal.as_ref(), *cursor, upto)? {
            Some(seg) => {
                // Bounded send window: pause while the follower is more
                // than `window_bytes` behind the shipped cursor; shed it
                // if the pause outlasts the stall timeout.
                let deadline = Instant::now() + shared.cfg.stall_timeout;
                let mut acked = conn
                    .acked
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                while acked.0 + shared.cfg.window_bytes < seg.end
                    && !conn.dead.load(Ordering::SeqCst)
                    && !shared.shutdown.load(Ordering::SeqCst)
                {
                    let now = Instant::now();
                    if now >= deadline {
                        shared.metrics.sheds.fetch_add(1, Ordering::Relaxed);
                        return Err(ReplError::Protocol("slow follower shed".into()));
                    }
                    let (next, _) = conn
                        .acked_cv
                        .wait_timeout(acked, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    acked = next;
                }
                drop(acked);
                if conn.dead.load(Ordering::SeqCst) || shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
                // The origin trailer ties this frame to the commit that
                // produced it: span_id is the txn id (the leader's
                // `commit` span arg), wall_micros the ship-time clock
                // followers subtract from to compute time lag.
                let origin = Some(crate::frame::CommitOrigin {
                    span_id: seg.txn_id,
                    wall_micros: rql_trace::unix_micros(),
                });
                let ship = rql_trace::span_arg(rql_trace::SpanId::ReplShip, seg.txn_id);
                let frame = Frame::from_segment(&seg, origin);
                let size = frame.wire_size();
                write_frame(writer, &frame)?;
                shared
                    .metrics
                    .bytes_shipped
                    .fetch_add(size, Ordering::Relaxed);
                shared
                    .metrics
                    .segments_shipped
                    .fetch_add(1, Ordering::Relaxed);
                // After a declaring segment, ship the SPT verification
                // frame so the follower can cross-check the snapshot.
                if let Some(sid) = seg.snapshot {
                    if let Some(meta) = shared.store.snapshot_meta(sid) {
                        write_frame(
                            writer,
                            &Frame::Spt {
                                snapshot_id: sid,
                                page_count: meta.page_count,
                                origin,
                            },
                        )?;
                    }
                }
                drop(ship);
                *cursor = seg.end;
                shared.update_lag();
            }
            None => {
                // Nothing committed past the cursor: sleep until the
                // commit hook publishes a longer tail, heartbeating on
                // the way so the follower can track lag while idle.
                let tail = shared
                    .tail
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if *tail <= *cursor {
                    let (_tail, timeout) = shared
                        .tail_cv
                        .wait_timeout(tail, shared.cfg.heartbeat)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    if timeout.timed_out() {
                        let hb = Frame::Heartbeat {
                            wal_len: shared.store.wal_len(),
                            snapshot_count: shared.store.snapshot_count(),
                        };
                        shared
                            .metrics
                            .bytes_shipped
                            .fetch_add(hb.wire_size(), Ordering::Relaxed);
                        write_frame(writer, &hb)?;
                    }
                }
            }
        }
    }
}
