//! # rql-repl
//!
//! Physical replication for RQL snapshot stores: a leader ships its
//! committed WAL, segment by segment, and followers replay it into their
//! own durable stores.
//!
//! The design leans entirely on two properties the substrate already
//! guarantees:
//!
//! * **The WAL is the database.** Recovery rebuilds the current state and
//!   the declared snapshot sequence from committed WAL records alone, so
//!   a follower that replays the leader's committed segments — with the
//!   leader's transaction ids — regenerates a byte-identical WAL and an
//!   equivalent Pagelog/Maplog archive. Resume after a disconnect is a
//!   raw length comparison, no LSN bookkeeping.
//! * **Snapshots are immutable.** Once a declaring commit is replicated,
//!   the snapshot's content never changes on either side, so a
//!   retrospective query on the follower reads exactly the bytes the
//!   leader would — the consistency argument is the paper's own
//!   append-only archive, not a distributed protocol.
//!
//! The crate is transport + state machines only ([`leader::ReplLeader`],
//! [`follower::ReplFollower`], [`frame`]); the store-level substrate
//! (segment parsing, replayed application, the seed checkpoint) lives in
//! `rql-pagestore` / `rql-retro`. `rqld` wires both ends to its serving
//! loop.

#![warn(missing_docs)]

pub mod follower;
pub mod frame;
pub mod leader;
pub mod metrics;

pub use follower::{FollowerConfig, ReplFollower};
pub use frame::{read_frame, write_frame, CommitOrigin, Frame, MAX_FRAME, PROTO_VERSION};
pub use leader::{LeaderConfig, ReplLeader};
pub use metrics::{phase, role, ReplMetrics, ReplSnapshot};

use std::fmt;

/// Replication errors.
#[derive(Debug)]
pub enum ReplError {
    /// Transport failure — retriable (the follower reconnects).
    Io(std::io::Error),
    /// Malformed or unexpected frame — the peer is not speaking the
    /// protocol; the connection is dropped.
    Protocol(String),
    /// Store-level failure while applying or reading log bytes.
    Store(rql_pagestore::StoreError),
    /// The follower's store no longer matches the leader's history —
    /// fatal; requires a re-seed from scratch.
    Diverged(String),
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::Io(e) => write!(f, "replication io: {e}"),
            ReplError::Protocol(msg) => write!(f, "replication protocol: {msg}"),
            ReplError::Store(e) => write!(f, "replication store: {e}"),
            ReplError::Diverged(msg) => write!(f, "replica diverged: {msg}"),
        }
    }
}

impl std::error::Error for ReplError {}

impl From<std::io::Error> for ReplError {
    fn from(e: std::io::Error) -> Self {
        ReplError::Io(e)
    }
}

impl From<rql_pagestore::StoreError> for ReplError {
    fn from(e: rql_pagestore::StoreError) -> Self {
        ReplError::Store(e)
    }
}

/// Crate-wide result.
pub type Result<T> = std::result::Result<T, ReplError>;
