//! Replication counters, exported through `rqld`'s METRICS verb.
//!
//! One struct serves both roles: a leader updates the shipping side, a
//! follower the applying side, and the unused counters stay zero. The
//! snapshot's field order is wire-stable — `rqld` renders it verbatim
//! and locks the order with a test, like the other metric sections.

use std::sync::atomic::{AtomicU64, Ordering};

/// Replication role for the `role` gauge.
pub mod role {
    /// Replication not configured.
    pub const NONE: u64 = 0;
    /// Shipping segments to followers.
    pub const LEADER: u64 = 1;
    /// Applying segments from a leader.
    pub const FOLLOWER: u64 = 2;
}

/// Replication phase for the `phase` gauge.
pub mod phase {
    /// Not replicating (no followers / not connected).
    pub const IDLE: u64 = 0;
    /// A seed transfer is in progress.
    pub const SEEDING: u64 = 1;
    /// Live segment streaming.
    pub const STREAMING: u64 = 2;
}

/// Live replication counters (lock-free; shared across threads).
#[derive(Default)]
pub struct ReplMetrics {
    /// See [`role`].
    pub role: AtomicU64,
    /// See [`phase`].
    pub phase: AtomicU64,
    /// Currently connected followers (leader side).
    pub followers: AtomicU64,
    /// Full seeds completed (leader side).
    pub seeds_served: AtomicU64,
    /// Segment frames shipped to followers.
    pub segments_shipped: AtomicU64,
    /// Wire bytes shipped (seed + segments + heartbeats).
    pub bytes_shipped: AtomicU64,
    /// Slow followers disconnected by the bounded send window.
    pub sheds: AtomicU64,
    /// Segments applied into the local store (follower side).
    pub segments_applied: AtomicU64,
    /// Wire bytes applied (follower side).
    pub bytes_applied: AtomicU64,
    /// Seed bytes received (follower side).
    pub seed_bytes: AtomicU64,
    /// Reconnect attempts after a lost leader connection.
    pub reconnects: AtomicU64,
    /// Replication lag in WAL bytes (worst follower / behind leader).
    pub lag_bytes: AtomicU64,
    /// Replication lag in declared snapshots.
    pub lag_snapshots: AtomicU64,
    /// Replication time lag in microseconds (follower side): own wall
    /// clock at apply minus the leader's propagated commit wall clock.
    /// Zeroed by heartbeats when fully caught up.
    pub lag_micros: AtomicU64,
}

impl ReplMetrics {
    /// New zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consistent-enough point-in-time copy for rendering.
    pub fn snapshot(&self) -> ReplSnapshot {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        ReplSnapshot {
            role: g(&self.role),
            phase: g(&self.phase),
            followers: g(&self.followers),
            seeds_served: g(&self.seeds_served),
            segments_shipped: g(&self.segments_shipped),
            bytes_shipped: g(&self.bytes_shipped),
            sheds: g(&self.sheds),
            segments_applied: g(&self.segments_applied),
            bytes_applied: g(&self.bytes_applied),
            seed_bytes: g(&self.seed_bytes),
            reconnects: g(&self.reconnects),
            lag_bytes: g(&self.lag_bytes),
            lag_snapshots: g(&self.lag_snapshots),
            lag_micros: g(&self.lag_micros),
        }
    }
}

/// Point-in-time copy of [`ReplMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplSnapshot {
    /// See [`role`].
    pub role: u64,
    /// See [`phase`].
    pub phase: u64,
    /// Currently connected followers.
    pub followers: u64,
    /// Full seeds completed.
    pub seeds_served: u64,
    /// Segment frames shipped.
    pub segments_shipped: u64,
    /// Wire bytes shipped.
    pub bytes_shipped: u64,
    /// Slow-follower disconnects.
    pub sheds: u64,
    /// Segments applied locally.
    pub segments_applied: u64,
    /// Wire bytes applied locally.
    pub bytes_applied: u64,
    /// Seed bytes received.
    pub seed_bytes: u64,
    /// Reconnect attempts.
    pub reconnects: u64,
    /// Lag in WAL bytes.
    pub lag_bytes: u64,
    /// Lag in snapshots.
    pub lag_snapshots: u64,
    /// Time lag in microseconds (from propagated commit wall clocks).
    pub lag_micros: u64,
}

impl ReplSnapshot {
    /// Name/value pairs in wire order. The names get the `repl_` prefix
    /// from the renderer; the order here is part of the METRICS wire
    /// format and must only ever grow at the end.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("role", self.role),
            ("phase", self.phase),
            ("followers", self.followers),
            ("seeds_served", self.seeds_served),
            ("segments_shipped", self.segments_shipped),
            ("bytes_shipped", self.bytes_shipped),
            ("sheds", self.sheds),
            ("segments_applied", self.segments_applied),
            ("bytes_applied", self.bytes_applied),
            ("seed_bytes", self.seed_bytes),
            ("reconnects", self.reconnects),
            ("lag_bytes", self.lag_bytes),
            ("lag_snapshots", self.lag_snapshots),
            ("lag_micros", self.lag_micros),
        ]
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn snapshot_copies_counters_in_stable_order() {
        let m = ReplMetrics::new();
        m.role.store(role::LEADER, Ordering::Relaxed);
        m.segments_shipped.store(42, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.role, 1);
        let fields = snap.fields();
        assert_eq!(fields[0], ("role", 1));
        assert_eq!(fields[4], ("segments_shipped", 42));
        assert_eq!(fields.len(), 14);
        assert_eq!(fields[13].0, "lag_micros");
    }
}
