//! End-to-end leader/follower replication over localhost TCP.

#![allow(clippy::unwrap_used)]

use std::net::TcpListener;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rql_pagestore::{FileStorage, LogStorage, PageId};
use rql_repl::{FollowerConfig, LeaderConfig, ReplFollower, ReplLeader, ReplMetrics};
use rql_retro::{RetroConfig, RetroStore};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let pid = std::process::id();
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!("rql-repl-{tag}-{pid}-{n}"));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> RetroConfig {
    let mut cfg = RetroConfig::new();
    cfg.pager.page_size = 256;
    cfg
}

fn open_leader(dir: &std::path::Path) -> Arc<RetroStore> {
    let mk = |name: &str| -> Arc<FileStorage> {
        let path = dir.join(name);
        Arc::new(if path.exists() {
            FileStorage::open(&path).unwrap()
        } else {
            FileStorage::create(&path).unwrap()
        })
    };
    RetroStore::open(config(), mk("wal.log"), mk("pagelog.log"), mk("maplog.log")).unwrap()
}

fn write_page(store: &Arc<RetroStore>, pid: u64, tag: u32) {
    let mut txn = store.begin().unwrap();
    while txn.page_count() <= pid {
        txn.allocate_page();
    }
    let mut page = txn.page_for_update(PageId(pid)).unwrap();
    page.write_u32(0, tag);
    txn.write_page(PageId(pid), page).unwrap();
    store.commit(txn).unwrap();
}

fn declare(store: &Arc<RetroStore>) -> u64 {
    let txn = store.begin().unwrap();
    store.commit_with_snapshot(txn).unwrap()
}

fn read_tag(store: &Arc<RetroStore>, sid: u64, pid: u64) -> u32 {
    store
        .open_snapshot(sid)
        .unwrap()
        .page(PageId(pid))
        .unwrap()
        .read_u32(0)
}

fn wait_until(timeout: Duration, mut pred: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    false
}

#[test]
fn seed_stream_and_resume_across_reconnect() {
    let leader_dir = TempDir::new("leader");
    let follower_dir = TempDir::new("follower");

    let store = open_leader(&leader_dir.0);
    write_page(&store, 0, 1);
    write_page(&store, 1, 11);
    let s1 = declare(&store);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let leader_metrics = Arc::new(ReplMetrics::new());
    let mut leader = ReplLeader::start(
        Arc::clone(&store),
        listener,
        Arc::clone(&leader_metrics),
        LeaderConfig::default(),
    )
    .unwrap();
    let addr = leader.addr().to_string();

    // Phase 1: bootstrap by seeding (s1 predates the follower).
    let follower_metrics = Arc::new(ReplMetrics::new());
    let fcfg = {
        let mut c = FollowerConfig::new(addr.clone(), follower_dir.0.clone());
        c.retro = config();
        c
    };
    let mut follower = ReplFollower::start(fcfg.clone(), Arc::clone(&follower_metrics));
    let fstore = follower
        .wait_for_store(Duration::from_secs(10))
        .expect("follower store after seed");
    assert_eq!(fstore.snapshot_count(), 1);
    assert_eq!(read_tag(&fstore, s1, 0), 1);
    assert_eq!(read_tag(&fstore, s1, 1), 11);
    assert_eq!(follower_metrics.seed_bytes.load(Ordering::Relaxed), {
        let logs = store.repl_logs().unwrap();
        logs.wal.len() + logs.pagelog.len() + logs.maplog.len()
    });

    // Phase 2: live streaming of new commits.
    write_page(&store, 0, 2);
    let s2 = declare(&store);
    assert!(wait_until(Duration::from_secs(10), || fstore
        .snapshot_count()
        == 2));
    assert_eq!(read_tag(&fstore, s2, 0), 2);
    assert_eq!(read_tag(&fstore, s2, 1), 11);
    assert!(wait_until(Duration::from_secs(10), || fstore.wal_len()
        == store.wal_len()));

    // Phase 3: follower restarts and resumes from its durable offset —
    // no reseed (seeds_served stays at 1).
    follower.shutdown();
    drop(follower);
    write_page(&store, 1, 22);
    let s3 = declare(&store);
    let follower = ReplFollower::start(fcfg, Arc::clone(&follower_metrics));
    let fstore = follower
        .wait_for_store(Duration::from_secs(10))
        .expect("follower store after restart");
    assert!(wait_until(Duration::from_secs(10), || fstore
        .snapshot_count()
        == 3));
    assert_eq!(read_tag(&fstore, s3, 1), 22);
    assert_eq!(read_tag(&fstore, s1, 1), 11);
    assert_eq!(leader_metrics.seeds_served.load(Ordering::Relaxed), 1);

    // Both sides converge to identical WAL bytes.
    assert!(wait_until(Duration::from_secs(10), || fstore.wal_len()
        == store.wal_len()));
    let read_all = |s: &dyn LogStorage| {
        let mut buf = vec![0u8; s.len() as usize];
        s.read_at(0, &mut buf).unwrap();
        buf
    };
    store.flush().unwrap();
    fstore.flush().unwrap();
    let l = store.repl_logs().unwrap();
    let f = fstore.repl_logs().unwrap();
    assert_eq!(read_all(l.wal.as_ref()), read_all(f.wal.as_ref()));
    assert_eq!(read_all(l.pagelog.as_ref()), read_all(f.pagelog.as_ref()));
    assert_eq!(read_all(l.maplog.as_ref()), read_all(f.maplog.as_ref()));

    // Leader lag gauges settle to zero once the follower is caught up
    // and acking heartbeats.
    assert!(wait_until(Duration::from_secs(10), || {
        leader_metrics.lag_bytes.load(Ordering::Relaxed) == 0
    }));
    assert_eq!(leader_metrics.followers.load(Ordering::Relaxed), 1);
    leader.shutdown();
}

#[test]
fn interrupted_seed_is_wiped_and_retried() {
    let leader_dir = TempDir::new("leader2");
    let follower_dir = TempDir::new("follower2");

    let store = open_leader(&leader_dir.0);
    write_page(&store, 0, 7);
    let s1 = declare(&store);

    // Simulate a crash mid-seed: partial log files, no marker.
    std::fs::write(follower_dir.0.join("wal.log"), b"partial garbage").unwrap();
    std::fs::write(follower_dir.0.join("pagelog.log"), b"more garbage").unwrap();

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let mut leader = ReplLeader::start(
        Arc::clone(&store),
        listener,
        Arc::new(ReplMetrics::new()),
        LeaderConfig::default(),
    )
    .unwrap();

    let mut cfg = FollowerConfig::new(leader.addr().to_string(), follower_dir.0.clone());
    cfg.retro = config();
    let follower = ReplFollower::start(cfg, Arc::new(ReplMetrics::new()));
    let fstore = follower
        .wait_for_store(Duration::from_secs(10))
        .expect("reseed over partial files");
    assert_eq!(read_tag(&fstore, s1, 0), 7);
    leader.shutdown();
}

#[test]
fn follower_reconnects_with_backoff_when_leader_restarts() {
    let leader_dir = TempDir::new("leader3");
    let follower_dir = TempDir::new("follower3");

    let store = open_leader(&leader_dir.0);
    write_page(&store, 0, 1);
    let _s1 = declare(&store);

    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let metrics = Arc::new(ReplMetrics::new());
    let mut leader = ReplLeader::start(
        Arc::clone(&store),
        listener,
        Arc::new(ReplMetrics::new()),
        LeaderConfig::default(),
    )
    .unwrap();

    let mut cfg = FollowerConfig::new(addr.to_string(), follower_dir.0.clone());
    cfg.retro = config();
    cfg.backoff_min = Duration::from_millis(20);
    let follower = ReplFollower::start(cfg, Arc::clone(&metrics));
    let fstore = follower.wait_for_store(Duration::from_secs(10)).unwrap();
    assert_eq!(fstore.snapshot_count(), 1);

    // Kill the leader; the follower must start reconnecting.
    leader.shutdown();
    drop(leader);
    assert!(wait_until(Duration::from_secs(10), || {
        metrics.reconnects.load(Ordering::Relaxed) > 0
    }));

    // Bring the leader back on the same port and commit more work: the
    // follower catches up without a reseed.
    let listener = loop {
        match TcpListener::bind(addr) {
            Ok(l) => break l,
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    };
    write_page(&store, 0, 2);
    let s2 = declare(&store);
    let mut leader = ReplLeader::start(
        Arc::clone(&store),
        listener,
        Arc::new(ReplMetrics::new()),
        LeaderConfig::default(),
    )
    .unwrap();
    assert!(wait_until(Duration::from_secs(10), || fstore
        .snapshot_count()
        == 2));
    assert_eq!(read_tag(&fstore, s2, 0), 2);
    leader.shutdown();
}
