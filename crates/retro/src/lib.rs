//! # rql-retro
//!
//! Retro, the page-level copy-on-write snapshot system underneath RQL,
//! reimplemented from the description in *"RQL: Retrospective Computations
//! over Snapshot Sets"* (EDBT 2018, §4) and the cited Retro/Skippy papers.
//!
//! A snapshot is "a set of immutable logical data pages that reflect the
//! entire consistent database state … at snapshot declaration point".
//! Snapshots are captured incrementally: the first post-declaration
//! modification of a page archives its pre-state to the append-only
//! [`pagelog::Pagelog`] and indexes it in the [`maplog::Maplog`]; the
//! [`skippy::Skippy`] skip levels keep snapshot-page-table construction at
//! `O(n log n)` regardless of history length; a
//! [`snapshot::SnapshotReader`] serves page fetches from the SPT → cache →
//! Pagelog path, falling through to a pinned MVCC view of the current
//! database for shared pages.

#![warn(missing_docs)]

pub mod maplog;
pub mod pagediff;
pub mod pagelog;
pub mod skippy;
pub mod snapshot;
pub mod spt;
pub mod store;

pub use maplog::{Boundary, Maplog, SptScan};
pub use pagediff::{apply_runs, diff_pages, Run};
pub use pagelog::{ArchiveOutcome, Pagelog, PagelogFormat};
pub use skippy::{Segment, Skippy};
pub use snapshot::{FetchSource, SnapshotMeta, SnapshotReader};
pub use spt::{PageLocation, Spt, SptBuildStats};
pub use store::{
    CommitHook, ReplCheckpoint, ReplLogs, RetroConfig, RetroStore, SidecarBuilder, SidecarMap,
    SnapshotHook,
};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use rql_pagestore::{PageId, PagerConfig};

    use super::*;

    fn config(page_size: usize, cache: usize) -> RetroConfig {
        RetroConfig {
            pager: PagerConfig {
                page_size,
                cache_capacity: cache,
                wal_sync_on_commit: false,
            },
            use_skippy: true,
            keying: rql_pagestore::CacheKeying::ByPagelogOffset,
            pagelog_format: PagelogFormat::Raw,
        }
    }

    /// Write `tag` into page `pid` in its own transaction.
    fn write_page(store: &Arc<RetroStore>, pid: PageId, tag: u32) {
        let mut txn = store.begin().unwrap();
        while txn.page_count() <= pid.0 {
            txn.allocate_page();
        }
        let mut page = txn.page_for_update(pid).unwrap();
        page.write_u32(0, tag);
        txn.write_page(pid, page).unwrap();
        store.commit(txn).unwrap();
    }

    fn declare(store: &Arc<RetroStore>) -> u64 {
        let txn = store.begin().unwrap();
        store.commit_with_snapshot(txn).unwrap()
    }

    fn read_tag(store: &Arc<RetroStore>, sid: u64, pid: PageId) -> u32 {
        store
            .open_snapshot(sid)
            .unwrap()
            .page(pid)
            .unwrap()
            .read_u32(0)
    }

    #[test]
    fn snapshot_preserves_pre_states() {
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 1);
        write_page(&store, PageId(1), 10);
        let s1 = declare(&store);
        write_page(&store, PageId(0), 2);
        let s2 = declare(&store);
        write_page(&store, PageId(0), 3);
        write_page(&store, PageId(1), 30);

        assert_eq!(read_tag(&store, s1, PageId(0)), 1);
        assert_eq!(read_tag(&store, s1, PageId(1)), 10);
        assert_eq!(read_tag(&store, s2, PageId(0)), 2);
        assert_eq!(read_tag(&store, s2, PageId(1)), 10);
        // Current state unaffected.
        assert_eq!(store.pager().read_page(PageId(0)).unwrap().read_u32(0), 3);
    }

    #[test]
    fn snapshot_reflects_declaring_txn() {
        // Paper §2: "a snapshot reflects updates of the declaring
        // transaction" (snapshot 2 does not include UserA after its
        // deleting transaction declared the snapshot).
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 1);
        let mut txn = store.begin().unwrap();
        let mut page = txn.page_for_update(PageId(0)).unwrap();
        page.write_u32(0, 99);
        txn.write_page(PageId(0), page).unwrap();
        let sid = store.commit_with_snapshot(txn).unwrap();
        assert_eq!(read_tag(&store, sid, PageId(0)), 99);
    }

    #[test]
    fn only_first_modification_archives() {
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 1);
        declare(&store);
        write_page(&store, PageId(0), 2);
        write_page(&store, PageId(0), 3);
        write_page(&store, PageId(0), 4);
        // One pre-state archived despite three modifications.
        assert_eq!(store.pagelog().pre_state_count(), 1);
        assert_eq!(store.stats().snapshot().cow_captures, 1);
    }

    #[test]
    fn consecutive_snapshots_share_pre_state() {
        // S1 and S2 declared with no intervening modification of P0: the
        // first later modification archives one pre-state serving both.
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 7);
        let s1 = declare(&store);
        let s2 = declare(&store);
        write_page(&store, PageId(0), 8);
        assert_eq!(store.pagelog().pre_state_count(), 1);
        assert_eq!(read_tag(&store, s1, PageId(0)), 7);
        assert_eq!(read_tag(&store, s2, PageId(0)), 7);
        // Both SPTs map P0 to the same Pagelog offset → cache sharing.
        let spt1 = store.build_spt(s1).unwrap();
        let spt2 = store.build_spt(s2).unwrap();
        assert_eq!(spt1.locate(PageId(0)), spt2.locate(PageId(0)));
    }

    #[test]
    fn fetch_sources_db_pagelog_cache() {
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 1);
        write_page(&store, PageId(1), 2);
        let s1 = declare(&store);
        write_page(&store, PageId(0), 9); // P0 archived; P1 still shared
        let reader = store.open_snapshot(s1).unwrap();
        let (_, src) = reader.page_with_source(PageId(1)).unwrap();
        assert_eq!(src, FetchSource::Database);
        let (_, src) = reader.page_with_source(PageId(0)).unwrap();
        assert_eq!(src, FetchSource::Pagelog);
        let (_, src) = reader.page_with_source(PageId(0)).unwrap();
        assert_eq!(src, FetchSource::Cache);
        let snap = store.stats().snapshot();
        assert_eq!(snap.pagelog_reads, 1);
        assert_eq!(snap.cache_hits, 1);
    }

    #[test]
    fn hot_iteration_hits_cache_for_shared_pages() {
        // The RQL effect: consecutive snapshots share pre-states, so after
        // reading S1 fully, reading S2 only misses on diff(S1,S2).
        let store = RetroStore::in_memory(config(64, 1024));
        for p in 0..8 {
            write_page(&store, PageId(p), p as u32);
        }
        let s1 = declare(&store);
        write_page(&store, PageId(0), 100); // diff(S1,S2) = {P0}
        let s2 = declare(&store);
        // Complete the overwrite cycle so both snapshots are fully
        // archived ("old" snapshots).
        for p in 0..8 {
            write_page(&store, PageId(p), 200 + p as u32);
        }

        let r1 = store.open_snapshot(s1).unwrap();
        for p in 0..8 {
            r1.page(PageId(p)).unwrap();
        }
        let cold = store.stats().snapshot();
        assert_eq!(cold.pagelog_reads, 8, "cold iteration misses everywhere");

        let r2 = store.open_snapshot(s2).unwrap();
        let mut pagelog_fetches = 0;
        for p in 0..8 {
            let (_, src) = r2.page_with_source(PageId(p)).unwrap();
            if src == FetchSource::Pagelog {
                pagelog_fetches += 1;
            }
        }
        assert_eq!(pagelog_fetches, 1, "hot iteration misses only on diff");
    }

    #[test]
    fn per_snapshot_keying_defeats_sharing() {
        let mut cfg = config(64, 1024);
        cfg.keying = rql_pagestore::CacheKeying::PerSnapshot;
        let store = RetroStore::in_memory(cfg);
        for p in 0..4 {
            write_page(&store, PageId(p), p as u32);
        }
        let s1 = declare(&store);
        let s2 = declare(&store);
        for p in 0..4 {
            write_page(&store, PageId(p), 100 + p as u32);
        }
        let r1 = store.open_snapshot(s1).unwrap();
        for p in 0..4 {
            r1.page(PageId(p)).unwrap();
        }
        store.stats().reset();
        let r2 = store.open_snapshot(s2).unwrap();
        for p in 0..4 {
            r2.page(PageId(p)).unwrap();
        }
        // Identical pre-states, but per-snapshot keys miss the cache.
        assert_eq!(store.stats().snapshot().pagelog_reads, 4);
    }

    #[test]
    fn pagelog_offset_keying_reads_strictly_less_than_per_snapshot() {
        // Same history, same read pattern, only the cache keying differs:
        // two consecutive snapshots sharing every archived pre-state.
        // Under `ByPagelogOffset` the second snapshot's reads hit the
        // entries cached while reading the first (shared pages map to the
        // same Pagelog offset); under `PerSnapshot` every key embeds the
        // snapshot id, so the identical bytes are fetched again.
        let run = |keying: rql_pagestore::CacheKeying| {
            let mut cfg = config(64, 1024);
            cfg.keying = keying;
            let store = RetroStore::in_memory(cfg);
            for p in 0..6 {
                write_page(&store, PageId(p), p as u32);
            }
            let s1 = declare(&store);
            write_page(&store, PageId(0), 100); // diff(S1,S2) = {P0}
            let s2 = declare(&store);
            // Overwrite everything so both snapshots are fully archived.
            for p in 0..6 {
                write_page(&store, PageId(p), 200 + p as u32);
            }
            for sid in [s1, s2] {
                let reader = store.open_snapshot(sid).unwrap();
                for p in 0..6 {
                    reader.page(PageId(p)).unwrap();
                }
            }
            store.stats().snapshot().pagelog_reads
        };
        let by_offset = run(rql_pagestore::CacheKeying::ByPagelogOffset);
        let per_snapshot = run(rql_pagestore::CacheKeying::PerSnapshot);
        // ByPagelogOffset: 6 cold misses for S1 + 1 for the diff page.
        // PerSnapshot: 6 + 6, every page re-fetched under the new key.
        assert!(
            by_offset < per_snapshot,
            "offset keying must read less: {by_offset} vs {per_snapshot}"
        );
        assert_eq!(by_offset, 7);
        assert_eq!(per_snapshot, 12);
    }

    #[test]
    fn diff_and_shared_match_workload() {
        let store = RetroStore::in_memory(config(64, 16));
        for p in 0..10 {
            write_page(&store, PageId(p), 1);
        }
        let s1 = declare(&store);
        for p in 0..3 {
            write_page(&store, PageId(p), 2);
        }
        let s2 = declare(&store);
        // Overwrite everything so both snapshots are old.
        for p in 0..10 {
            write_page(&store, PageId(p), 3);
        }
        assert_eq!(store.diff(s1, s2).unwrap(), 3);
        assert_eq!(store.shared(s1, s2).unwrap(), 7);
    }

    #[test]
    fn overwrite_cycle_completion() {
        let store = RetroStore::in_memory(config(64, 16));
        for p in 0..4 {
            write_page(&store, PageId(p), 1);
        }
        let s1 = declare(&store);
        for p in 0..3 {
            write_page(&store, PageId(p), 2);
        }
        assert!(!store.build_spt(s1).unwrap().overwrite_complete());
        write_page(&store, PageId(3), 2);
        assert!(store.build_spt(s1).unwrap().overwrite_complete());
    }

    #[test]
    fn reader_is_isolated_from_later_commits() {
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 1);
        let s1 = declare(&store);
        let reader = store.open_snapshot(s1).unwrap();
        write_page(&store, PageId(0), 2);
        // Reader pinned before the write: still sees 1 via its view.
        assert_eq!(reader.page(PageId(0)).unwrap().read_u32(0), 1);
    }

    #[test]
    fn durable_store_survives_reopen() {
        use rql_pagestore::MemStorage;
        let wal: Arc<MemStorage> = Arc::new(MemStorage::new());
        let plog: Arc<MemStorage> = Arc::new(MemStorage::new());
        let mlog: Arc<MemStorage> = Arc::new(MemStorage::new());
        let cfg = config(64, 16);
        let (s1, s2);
        {
            let store =
                RetroStore::open(cfg.clone(), wal.clone(), plog.clone(), mlog.clone()).unwrap();
            write_page(&store, PageId(0), 1);
            s1 = declare(&store);
            write_page(&store, PageId(0), 2);
            s2 = declare(&store);
            write_page(&store, PageId(0), 3);
            store.flush().unwrap();
        }
        let store = RetroStore::open(cfg, wal, plog, mlog).unwrap();
        assert_eq!(store.snapshot_count(), 2);
        assert_eq!(read_tag(&store, s1, PageId(0)), 1);
        assert_eq!(read_tag(&store, s2, PageId(0)), 2);
        assert_eq!(store.pager().read_page(PageId(0)).unwrap().read_u32(0), 3);
    }

    #[test]
    fn crash_torn_logs_reconcile_on_reopen() {
        use rql_pagestore::{LogStorage, MemStorage};
        let mk_history = || {
            let wal: Arc<MemStorage> = Arc::new(MemStorage::new());
            let plog: Arc<MemStorage> = Arc::new(MemStorage::new());
            let mlog: Arc<MemStorage> = Arc::new(MemStorage::new());
            let cfg = config(64, 16);
            let s1 = {
                let store =
                    RetroStore::open(cfg.clone(), wal.clone(), plog.clone(), mlog.clone()).unwrap();
                write_page(&store, PageId(0), 1);
                let s1 = declare(&store);
                write_page(&store, PageId(0), 2);
                declare(&store);
                store.flush().unwrap();
                s1
            };
            (cfg, wal, plog, mlog, s1)
        };

        // Maplog ahead: the WAL commit record of the declaring transaction
        // is torn (checksum trailer lost), so recovery discards the second
        // snapshot — the excess Maplog boundary must go with it.
        let (cfg, wal, plog, mlog, s1) = mk_history();
        wal.truncate(wal.len() - 8).unwrap();
        let store = RetroStore::open(cfg, wal, plog, mlog).unwrap();
        assert_eq!(store.snapshot_count(), 1);
        assert_eq!(read_tag(&store, s1, PageId(0)), 1);
        assert_eq!(store.pager().read_page(PageId(0)).unwrap().read_u32(0), 2);
        // The reconciled store keeps working: declare another snapshot.
        write_page(&store, PageId(0), 3);
        let s_new = declare(&store);
        assert_eq!(read_tag(&store, s_new, PageId(0)), 3);

        // WAL ahead: the boundary record (last Maplog append) is lost, so
        // the WAL is cut back to the start of the declaring segment.
        let (cfg, wal, plog, mlog, s1) = mk_history();
        mlog.truncate(mlog.len() - 17).unwrap();
        let store = RetroStore::open(cfg.clone(), wal.clone(), plog.clone(), mlog.clone()).unwrap();
        assert_eq!(store.snapshot_count(), 1);
        assert_eq!(read_tag(&store, s1, PageId(0)), 1);
        // The non-declaring write before the lost boundary survives.
        assert_eq!(store.pager().read_page(PageId(0)).unwrap().read_u32(0), 2);
        drop(store);
        // Idempotent: a second reopen finds the logs already consistent.
        let store = RetroStore::open(cfg, wal, plog, mlog).unwrap();
        assert_eq!(store.snapshot_count(), 1);
    }

    fn all_bytes(s: &rql_pagestore::MemStorage) -> Vec<u8> {
        use rql_pagestore::LogStorage;
        let mut buf = vec![0u8; s.len() as usize];
        s.read_at(0, &mut buf).unwrap();
        buf
    }

    /// Replay every committed WAL segment from `from` on `dst`, returning
    /// the new cursor — exactly what a follower applier does.
    fn replay_wal(src: &rql_pagestore::MemStorage, dst: &Arc<RetroStore>, mut from: u64) -> u64 {
        use rql_pagestore::{next_committed_segment, LogStorage};
        let upto = src.len();
        while let Some(seg) = next_committed_segment(src, from, upto).unwrap() {
            dst.apply_replicated(&seg).unwrap();
            from = seg.end;
        }
        from
    }

    #[test]
    fn replicated_apply_regenerates_identical_logs() {
        use rql_pagestore::MemStorage;
        let cfg = config(64, 16);
        let mk = || {
            let wal: Arc<MemStorage> = Arc::new(MemStorage::new());
            let plog: Arc<MemStorage> = Arc::new(MemStorage::new());
            let mlog: Arc<MemStorage> = Arc::new(MemStorage::new());
            let store =
                RetroStore::open(cfg.clone(), wal.clone(), plog.clone(), mlog.clone()).unwrap();
            (store, wal, plog, mlog)
        };
        let (leader, lwal, lplog, lmlog) = mk();
        let (follower, fwal, fplog, fmlog) = mk();

        write_page(&leader, PageId(0), 1);
        write_page(&leader, PageId(1), 10);
        let s1 = declare(&leader);
        write_page(&leader, PageId(0), 2);
        let s2 = declare(&leader);

        let cursor = replay_wal(&lwal, &follower, 0);
        assert_eq!(cursor, leader.wal_len());
        assert_eq!(follower.wal_len(), leader.wal_len());
        assert_eq!(all_bytes(&fwal), all_bytes(&lwal), "wal bytes");
        assert_eq!(all_bytes(&fplog), all_bytes(&lplog), "pagelog bytes");
        assert_eq!(all_bytes(&fmlog), all_bytes(&lmlog), "maplog bytes");
        assert_eq!(follower.snapshot_count(), 2);
        for sid in [s1, s2] {
            assert_eq!(
                read_tag(&leader, sid, PageId(0)),
                read_tag(&follower, sid, PageId(0))
            );
        }
        assert_eq!(read_tag(&follower, s1, PageId(1)), 10);

        // More commits stream later: resume from the cursor, not zero.
        write_page(&leader, PageId(2), 77); // allocates page 2
        let s3 = declare(&leader);
        let cursor = replay_wal(&lwal, &follower, cursor);
        assert_eq!(cursor, leader.wal_len());
        assert_eq!(all_bytes(&fwal), all_bytes(&lwal));
        assert_eq!(all_bytes(&fplog), all_bytes(&lplog));
        assert_eq!(all_bytes(&fmlog), all_bytes(&lmlog));
        assert_eq!(read_tag(&follower, s3, PageId(2)), 77);
        assert_eq!(
            follower.pager().read_page(PageId(2)).unwrap().read_u32(0),
            77
        );
    }

    #[test]
    fn replicated_apply_rejects_offset_divergence() {
        use rql_pagestore::{next_committed_segment, LogStorage, MemStorage};
        let cfg = config(64, 16);
        let wal: Arc<MemStorage> = Arc::new(MemStorage::new());
        let leader = RetroStore::open(
            cfg.clone(),
            wal.clone(),
            Arc::new(MemStorage::new()),
            Arc::new(MemStorage::new()),
        )
        .unwrap();
        write_page(&leader, PageId(0), 1);
        declare(&leader);
        let seg = next_committed_segment(wal.as_ref(), 0, wal.len())
            .unwrap()
            .unwrap();
        let follower = RetroStore::open(
            cfg,
            Arc::new(MemStorage::new()),
            Arc::new(MemStorage::new()),
            Arc::new(MemStorage::new()),
        )
        .unwrap();
        // Applying out of order (a segment that does not start at the
        // follower's WAL tail) must fail before touching anything.
        let mut bad = seg.clone();
        bad.start += 1;
        assert!(follower.apply_replicated(&bad).is_err());
        assert_eq!(follower.wal_len(), 0);
        // In order it applies, and re-applying the same segment fails.
        follower.apply_replicated(&seg).unwrap();
        assert!(follower.apply_replicated(&seg).is_err());
    }

    #[test]
    fn rebuild_archived_sidecars_restores_archive_after_reopen() {
        use rql_pagestore::MemStorage;
        let wal: Arc<MemStorage> = Arc::new(MemStorage::new());
        let plog: Arc<MemStorage> = Arc::new(MemStorage::new());
        let mlog: Arc<MemStorage> = Arc::new(MemStorage::new());
        let cfg = config(64, 16);
        // Sidecar = first 4 bytes of the page image (a toy summary).
        let builder: SidecarBuilder = Arc::new(|_pid, page| Some(page.bytes()[0..4].to_vec()));
        let expected;
        {
            let store =
                RetroStore::open(cfg.clone(), wal.clone(), plog.clone(), mlog.clone()).unwrap();
            store.set_sidecar_builder(builder.clone());
            write_page(&store, PageId(0), 1);
            declare(&store);
            write_page(&store, PageId(0), 2); // archives pre-state of P0
            let entries = store.maplog_entries();
            assert_eq!(entries, 1);
            expected = store.archived_sidecar(0).expect("archived at offset 0");
            store.flush().unwrap();
        }
        let store = RetroStore::open(cfg, wal, plog, mlog).unwrap();
        assert!(
            store.archived_sidecar(0).is_none(),
            "sidecars are in-memory: lost across reopen"
        );
        // Without a builder the rebuild is a no-op.
        assert_eq!(store.rebuild_archived_sidecars().unwrap(), 0);
        store.set_sidecar_builder(builder);
        assert_eq!(store.rebuild_archived_sidecars().unwrap(), 1);
        assert_eq!(store.archived_sidecar(0).unwrap(), expected);
        // Idempotent: nothing left to build.
        assert_eq!(store.rebuild_archived_sidecars().unwrap(), 0);
    }

    #[test]
    fn page_allocated_after_snapshot_invisible_to_it() {
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 1);
        let s1 = declare(&store);
        write_page(&store, PageId(5), 9); // allocates pages 1..=5
        let reader = store.open_snapshot(s1).unwrap();
        assert_eq!(reader.page_count(), 1);
        assert!(reader.page(PageId(5)).is_err());
    }

    #[test]
    fn skippy_and_linear_stores_agree() {
        let mk = |use_skippy: bool| {
            let mut cfg = config(64, 16);
            cfg.use_skippy = use_skippy;
            let store = RetroStore::in_memory(cfg);
            let mut state = 42u64;
            let mut next = move || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                state >> 33
            };
            for p in 0..6 {
                write_page(&store, PageId(p), p as u32);
            }
            for _ in 0..10 {
                declare(&store);
                for _ in 0..3 {
                    let p = next() % 6;
                    write_page(&store, PageId(p), next() as u32);
                }
            }
            store
        };
        let a = mk(true);
        let b = mk(false);
        for sid in 1..=10 {
            let sa = a.build_spt(sid).unwrap();
            let sb = b.build_spt(sid).unwrap();
            for p in 0..6 {
                assert_eq!(
                    sa.locate(PageId(p)),
                    sb.locate(PageId(p)),
                    "snapshot {sid} page {p}"
                );
            }
        }
    }

    #[test]
    fn write_without_prior_snapshot_archives_nothing() {
        let store = RetroStore::in_memory(config(64, 16));
        write_page(&store, PageId(0), 1);
        write_page(&store, PageId(0), 2);
        assert_eq!(store.pagelog().pre_state_count(), 0);
        assert_eq!(store.maplog_entries(), 0);
    }

    #[test]
    fn adaptive_pagelog_preserves_snapshots_and_saves_space() {
        // Same history under both formats: identical snapshot contents,
        // smaller archive with the adaptive format (small page edits),
        // higher reconstruction read counts.
        let build = |format: PagelogFormat| {
            let mut cfg = config(256, 0); // no cache: count every read
            cfg.pagelog_format = format;
            let store = RetroStore::in_memory(cfg);
            for p in 0..4 {
                write_page(&store, PageId(p), p as u32);
            }
            for round in 1..=6u32 {
                declare(&store);
                for p in 0..4 {
                    // Small in-place edit: ideal diff candidate.
                    write_page(&store, PageId(p), round * 100 + p as u32);
                }
            }
            store
        };
        let raw = build(PagelogFormat::Raw);
        let adaptive = build(PagelogFormat::Adaptive { max_chain: 3 });
        for sid in 1..=6u64 {
            for p in 0..4 {
                assert_eq!(
                    read_tag(&raw, sid, PageId(p)),
                    read_tag(&adaptive, sid, PageId(p)),
                    "snapshot {sid} page {p}"
                );
            }
        }
        assert!(adaptive.pagelog().diff_count() > 0, "diffs were stored");
        assert!(
            adaptive.pagelog().size_bytes() < raw.pagelog().size_bytes() / 2,
            "adaptive archive should be much smaller: {} vs {}",
            adaptive.pagelog().size_bytes(),
            raw.pagelog().size_bytes()
        );
        // Reconstruction cost: reading an old snapshot touches more log
        // entries under the adaptive format (chain follows).
        raw.stats().reset();
        adaptive.stats().reset();
        for p in 0..4 {
            raw.open_snapshot(1).unwrap().page(PageId(p)).unwrap();
            adaptive.open_snapshot(1).unwrap().page(PageId(p)).unwrap();
        }
        assert!(
            adaptive.stats().snapshot().pagelog_reads >= raw.stats().snapshot().pagelog_reads,
            "diff chains cost extra reads"
        );
    }

    #[test]
    fn adaptive_pagelog_survives_reopen() {
        use rql_pagestore::MemStorage;
        let wal: Arc<MemStorage> = Arc::new(MemStorage::new());
        let plog: Arc<MemStorage> = Arc::new(MemStorage::new());
        let mlog: Arc<MemStorage> = Arc::new(MemStorage::new());
        let mut cfg = config(256, 16);
        cfg.pagelog_format = PagelogFormat::Adaptive { max_chain: 3 };
        {
            let store =
                RetroStore::open(cfg.clone(), wal.clone(), plog.clone(), mlog.clone()).unwrap();
            write_page(&store, PageId(0), 1);
            declare(&store);
            write_page(&store, PageId(0), 2);
            declare(&store);
            write_page(&store, PageId(0), 3);
            store.flush().unwrap();
        }
        let store = RetroStore::open(cfg, wal, plog, mlog).unwrap();
        assert_eq!(read_tag(&store, 1, PageId(0)), 1);
        assert_eq!(read_tag(&store, 2, PageId(0)), 2);
    }
}
