//! The Maplog: append-only log of (page → Pagelog offset) mappings with
//! snapshot boundary markers.
//!
//! "The pre-states are indexed at low cost by simply recording a mapping
//! that associates a snapshot page P with its Pagelog location. Retro
//! writes the mappings to an on-disk log-structured list called Maplog"
//! (paper §4). Mappings appended while snapshot S is the latest declared
//! snapshot are the pre-states *as of S*; a snapshot page table for S is
//! built by scanning forward from S's boundary, keeping the first
//! occurrence of every page.
//!
//! The in-memory Maplog keeps the raw entries (for linear scans and for
//! sealing Skippy segments), the boundary index, and the [`Skippy`]
//! skip levels. An optional [`LogStorage`] persists entries so the
//! structure survives restarts.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use rql_pagestore::{LogStorage, PageId, Result, StoreError};

use crate::skippy::Skippy;

/// Boundary marker for one declared snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Boundary {
    /// Snapshot id (dense, starting at 1).
    pub snap_id: u64,
    /// Index of the first Maplog entry recorded after this declaration.
    pub entry_start: usize,
    /// Database page count at declaration (the snapshot's page universe).
    pub page_count: u64,
}

/// Result of a snapshot page table build.
#[derive(Debug)]
pub struct SptScan {
    /// page → Pagelog offset for every page archived since the snapshot.
    pub map: HashMap<PageId, u64>,
    /// Maplog entries touched by the scan.
    pub entries_scanned: u64,
}

/// On-log record kinds for persistence.
const REC_MAPPING: u8 = 1;
const REC_BOUNDARY: u8 = 2;

/// The Maplog.
pub struct Maplog {
    /// All mappings in append order.
    entries: Vec<(PageId, u64)>,
    /// One boundary per declared snapshot, in declaration order.
    boundaries: Vec<Boundary>,
    /// Skip levels over *sealed* intervals (all but the most recent).
    skippy: Skippy,
    /// Optional persistence.
    persist: Option<Arc<dyn LogStorage>>,
}

impl Maplog {
    /// New empty Maplog with no persistence.
    pub fn new() -> Self {
        Maplog {
            entries: Vec::new(),
            boundaries: Vec::new(),
            skippy: Skippy::new(),
            persist: None,
        }
    }

    /// New Maplog persisted to `storage`, replaying any existing records.
    pub fn open(storage: Arc<dyn LogStorage>) -> Result<Self> {
        let mut maplog = Maplog::new();
        let len = storage.len();
        let mut off = 0u64;
        while off < len {
            let mut kind = [0u8; 1];
            storage.read_at(off, &mut kind)?;
            let mut body = [0u8; 16];
            storage.read_at(off + 1, &mut body)?;
            let a = u64::from_le_bytes(body[0..8].try_into().unwrap());
            let b = u64::from_le_bytes(body[8..16].try_into().unwrap());
            match kind[0] {
                REC_MAPPING => maplog.append_mapping_inner(PageId(a), b),
                REC_BOUNDARY => maplog.declare_snapshot_inner(a, b),
                k => {
                    return Err(StoreError::Corrupt(format!(
                        "maplog: unknown record kind {k} at offset {off}"
                    )))
                }
            }
            off += 17;
        }
        maplog.persist = Some(storage);
        Ok(maplog)
    }

    fn persist_record(&self, kind: u8, a: u64, b: u64) -> Result<()> {
        if let Some(storage) = &self.persist {
            let mut rec = [0u8; 17];
            rec[0] = kind;
            rec[1..9].copy_from_slice(&a.to_le_bytes());
            rec[9..17].copy_from_slice(&b.to_le_bytes());
            storage.append(&rec)?;
        }
        Ok(())
    }

    /// Record a snapshot declaration: seals the previous interval into
    /// Skippy and opens a new one. `snap_id` must be the next dense id.
    pub fn declare_snapshot(&mut self, snap_id: u64, page_count: u64) -> Result<()> {
        self.persist_record(REC_BOUNDARY, snap_id, page_count)?;
        self.declare_snapshot_inner(snap_id, page_count);
        Ok(())
    }

    fn declare_snapshot_inner(&mut self, snap_id: u64, page_count: u64) {
        debug_assert_eq!(
            snap_id,
            self.boundaries.len() as u64 + 1,
            "snapshot ids must be dense"
        );
        if let Some(last) = self.boundaries.last() {
            // Seal the now-complete previous interval.
            let raw = &self.entries[last.entry_start..];
            self.skippy.push_interval(raw);
        }
        self.boundaries.push(Boundary {
            snap_id,
            entry_start: self.entries.len(),
            page_count,
        });
    }

    /// Append a mapping for the *latest* declared snapshot.
    pub fn append_mapping(&mut self, page: PageId, pagelog_off: u64) -> Result<()> {
        debug_assert!(
            !self.boundaries.is_empty(),
            "mappings require a declared snapshot"
        );
        self.persist_record(REC_MAPPING, page.0, pagelog_off)?;
        self.append_mapping_inner(page, pagelog_off);
        Ok(())
    }

    fn append_mapping_inner(&mut self, page: PageId, pagelog_off: u64) {
        self.entries.push((page, pagelog_off));
    }

    /// Boundary for `snap_id`, if declared.
    pub fn boundary(&self, snap_id: u64) -> Option<&Boundary> {
        if snap_id == 0 {
            return None;
        }
        self.boundaries.get(snap_id as usize - 1)
    }

    /// Number of declared snapshots.
    pub fn snapshot_count(&self) -> u64 {
        self.boundaries.len() as u64
    }

    /// Total mappings recorded.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// All mappings in append order (an owned copy, so callers can walk
    /// them — e.g. to rebuild archived sidecars — without holding the
    /// Maplog lock).
    pub fn entries(&self) -> Vec<(PageId, u64)> {
        self.entries.clone()
    }

    /// Build the snapshot page table for `snap_id`.
    ///
    /// With `use_skippy` the sealed intervals are covered by skip-level
    /// segments (`O(n log n)` entries); without it the raw log is scanned
    /// linearly (the ablation baseline). The open interval (entries after
    /// the latest declaration) is always scanned raw.
    pub fn build_spt(&self, snap_id: u64, use_skippy: bool) -> Result<SptScan> {
        let boundary = *self
            .boundary(snap_id)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {snap_id}")))?;
        let from_interval = (snap_id - 1) as usize;
        let sealed = self.skippy.sealed_intervals();
        let mut map = HashMap::new();
        let mut scanned = 0u64;
        if use_skippy {
            scanned += self
                .skippy
                .scan_into(from_interval, boundary.page_count, &mut map);
        } else {
            // Linear scan over the sealed portion.
            let sealed_end_entry = if sealed == 0 {
                boundary.entry_start
            } else {
                // Entry index where the open interval starts.
                self.boundaries
                    .get(sealed)
                    .map_or(self.entries.len(), |b| b.entry_start)
            };
            let start = boundary.entry_start.min(sealed_end_entry);
            for &(pid, off) in &self.entries[start..sealed_end_entry] {
                scanned += 1;
                if pid.0 < boundary.page_count {
                    map.entry(pid).or_insert(off);
                }
            }
        }
        // Open interval: entries after the latest declaration.
        if let Some(last) = self.boundaries.last() {
            let open_start = last.entry_start.max(boundary.entry_start);
            for &(pid, off) in &self.entries[open_start..] {
                scanned += 1;
                if pid.0 < boundary.page_count {
                    map.entry(pid).or_insert(off);
                }
            }
        }
        Ok(SptScan {
            map,
            entries_scanned: scanned,
        })
    }

    /// Build snapshot page tables for a whole set of snapshots
    /// incrementally: one full scan for the *newest* snapshot, then each
    /// older SPT is derived from its successor by overlaying only the
    /// Maplog entries recorded between the two declarations.
    ///
    /// An SPT is the first occurrence of every page scanning forward from
    /// the snapshot's boundary, so for consecutive ids `a < b`:
    /// `SPT(a) = firstocc(entries in [boundary(a), boundary(b))) ⊕ SPT(b)`
    /// (interval entries win; the successor supplies the rest). Total work
    /// is `O(entries)` for the whole chain instead of `O(k · entries)`.
    ///
    /// Returns one scan per input id, in input order; `entries_scanned`
    /// reflects the incremental cost actually paid for that id (full scan
    /// for the newest, interval length for the rest, zero for repeats).
    pub fn build_spt_chain(&self, ids: &[u64], use_skippy: bool) -> Result<Vec<SptScan>> {
        let mut uniq: Vec<u64> = ids.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.is_empty() {
            return Ok(Vec::new());
        }
        for &id in &uniq {
            self.boundary(id)
                .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {id}")))?;
        }
        let newest = *uniq.last().expect("non-empty");
        let mut built: HashMap<u64, (HashMap<PageId, u64>, u64)> = HashMap::new();
        let scan = self.build_spt(newest, use_skippy)?;
        built.insert(newest, (scan.map, scan.entries_scanned));
        let mut later = newest;
        for &id in uniq.iter().rev().skip(1) {
            let b = *self.boundary(id).expect("validated above");
            let b_later = *self.boundary(later).expect("validated above");
            let mut map = HashMap::new();
            let mut scanned = 0u64;
            // First occurrences within (boundary(id), boundary(later)].
            for &(pid, off) in &self.entries[b.entry_start..b_later.entry_start] {
                scanned += 1;
                if pid.0 < b.page_count {
                    map.entry(pid).or_insert(off);
                }
            }
            // Pages untouched in the interval inherit the successor's
            // location (page counts only grow, so filtering by this
            // snapshot's universe suffices).
            let (later_map, _) = &built[&later];
            for (&pid, &off) in later_map {
                if pid.0 < b.page_count {
                    map.entry(pid).or_insert(off);
                }
            }
            built.insert(id, (map, scanned));
            later = id;
        }
        let mut first_use: HashMap<u64, bool> = HashMap::new();
        Ok(ids
            .iter()
            .map(|id| {
                let (map, scanned) = &built[id];
                // Repeated ids reuse the already-built map at no scan cost.
                let fresh = first_use.insert(*id, true).is_none();
                SptScan {
                    map: map.clone(),
                    entries_scanned: if fresh { *scanned } else { 0 },
                }
            })
            .collect())
    }

    /// Pages whose content may differ between snapshots `s1` and `s2` —
    /// the complement of the paper's `shared(S1, S2)`: every page with a
    /// Maplog entry between the two declarations (modified in the window,
    /// in either direction) plus any pages allocated between them.
    ///
    /// The result is a conservative superset of the truly-differing pages
    /// (a write that restores identical bytes still counts), which is the
    /// safe direction for delta computations.
    pub fn changed_pages(&self, s1: u64, s2: u64) -> Result<HashSet<PageId>> {
        let (lo_id, hi_id) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let lo = *self
            .boundary(lo_id)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {lo_id}")))?;
        let hi = *self
            .boundary(hi_id)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {hi_id}")))?;
        let mut set = HashSet::new();
        let universe = lo.page_count.max(hi.page_count);
        for &(pid, _) in &self.entries[lo.entry_start..hi.entry_start] {
            if pid.0 < universe {
                set.insert(pid);
            }
        }
        // Universe mismatch: pages that exist in one snapshot only.
        for p in lo.page_count.min(hi.page_count)..universe {
            set.insert(PageId(p));
        }
        Ok(set)
    }

    /// Space held by the skip levels (entries), for space-overhead tests.
    pub fn skippy_entries(&self) -> usize {
        self.skippy.total_entries()
    }

    /// Force persisted records to stable storage (no-op when the Maplog
    /// is memory-only).
    pub fn sync(&self) -> Result<()> {
        match &self.persist {
            Some(storage) => storage.sync(),
            None => Ok(()),
        }
    }
}

impl Default for Maplog {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_pagestore::MemStorage;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    /// History: declare S1 (pages 0..4), modify P0,P1; declare S2, modify
    /// P1,P2; declare S3, modify P0.
    fn sample() -> Maplog {
        let mut m = Maplog::new();
        m.declare_snapshot(1, 4).unwrap();
        m.append_mapping(pid(0), 0).unwrap();
        m.append_mapping(pid(1), 64).unwrap();
        m.declare_snapshot(2, 4).unwrap();
        m.append_mapping(pid(1), 128).unwrap();
        m.append_mapping(pid(2), 192).unwrap();
        m.declare_snapshot(3, 4).unwrap();
        m.append_mapping(pid(0), 256).unwrap();
        m
    }

    #[test]
    fn spt_first_occurrence_semantics() {
        let m = sample();
        // S1 sees its own interval's pre-states first.
        let spt1 = m.build_spt(1, true).unwrap();
        assert_eq!(spt1.map[&pid(0)], 0);
        assert_eq!(spt1.map[&pid(1)], 64);
        assert_eq!(spt1.map[&pid(2)], 192);
        assert_eq!(spt1.map.len(), 3); // P3 never archived → shared with DB

        // S2: P1's pre-state as-of S2 is at 128 (not S1's 64).
        let spt2 = m.build_spt(2, true).unwrap();
        assert_eq!(spt2.map[&pid(1)], 128);
        assert_eq!(spt2.map[&pid(2)], 192);
        assert_eq!(spt2.map[&pid(0)], 256); // archived during S3's interval
                                            // S3: only P0 archived since.
        let spt3 = m.build_spt(3, true).unwrap();
        assert_eq!(spt3.map.len(), 1);
        assert_eq!(spt3.map[&pid(0)], 256);
    }

    #[test]
    fn skippy_and_linear_agree() {
        let m = sample();
        for sid in 1..=3 {
            let a = m.build_spt(sid, true).unwrap();
            let b = m.build_spt(sid, false).unwrap();
            assert_eq!(a.map, b.map, "snapshot {sid}");
        }
    }

    #[test]
    fn page_limit_excludes_late_allocations() {
        let mut m = Maplog::new();
        m.declare_snapshot(1, 2).unwrap(); // snapshot has pages 0..2
        m.append_mapping(pid(0), 0).unwrap();
        m.append_mapping(pid(5), 64).unwrap(); // page allocated after S1
        let spt = m.build_spt(1, true).unwrap();
        assert_eq!(spt.map.len(), 1);
        assert!(spt.map.contains_key(&pid(0)));
    }

    #[test]
    fn unknown_snapshot_errors() {
        let m = sample();
        assert!(m.build_spt(0, true).is_err());
        assert!(m.build_spt(9, true).is_err());
    }

    #[test]
    fn persistence_roundtrip() {
        let storage = Arc::new(MemStorage::new());
        {
            let mut m = Maplog::open(storage.clone()).unwrap();
            m.declare_snapshot(1, 4).unwrap();
            m.append_mapping(pid(0), 0).unwrap();
            m.append_mapping(pid(1), 64).unwrap();
            m.declare_snapshot(2, 4).unwrap();
            m.append_mapping(pid(2), 128).unwrap();
        }
        let m = Maplog::open(storage).unwrap();
        assert_eq!(m.snapshot_count(), 2);
        assert_eq!(m.entry_count(), 3);
        let spt = m.build_spt(1, true).unwrap();
        assert_eq!(spt.map[&pid(0)], 0);
        assert_eq!(spt.map[&pid(2)], 128);
    }

    #[test]
    fn entries_scanned_reported() {
        let m = sample();
        let scan = m.build_spt(1, false).unwrap();
        assert_eq!(scan.entries_scanned, 5); // all five mappings
        let scan_latest = m.build_spt(3, true).unwrap();
        assert_eq!(scan_latest.entries_scanned, 1); // open interval only
    }

    #[test]
    fn incremental_chain_matches_from_scratch() {
        let m = sample();
        for use_skippy in [true, false] {
            let chain = m.build_spt_chain(&[1, 2, 3], use_skippy).unwrap();
            for (i, sid) in (1u64..=3).enumerate() {
                let scratch = m.build_spt(sid, use_skippy).unwrap();
                assert_eq!(chain[i].map, scratch.map, "snapshot {sid}");
            }
            // Incremental cost: newest pays its full scan, the rest pay
            // only their interval.
            assert_eq!(chain[2].entries_scanned, 1, "S3 open interval");
            assert_eq!(chain[1].entries_scanned, 2, "S2 interval");
            assert_eq!(chain[0].entries_scanned, 2, "S1 interval");
        }
    }

    #[test]
    fn chain_handles_subsets_and_repeats() {
        let m = sample();
        let chain = m.build_spt_chain(&[3, 1, 3], true).unwrap();
        assert_eq!(chain[0].map, m.build_spt(3, true).unwrap().map);
        assert_eq!(chain[1].map, m.build_spt(1, true).unwrap().map);
        assert_eq!(chain[2].map, chain[0].map);
        assert_eq!(chain[2].entries_scanned, 0, "repeat costs nothing");
        assert!(m.build_spt_chain(&[], true).unwrap().is_empty());
        assert!(m.build_spt_chain(&[9], true).is_err());
    }

    #[test]
    fn changed_pages_window() {
        let m = sample();
        // Window (S1, S2]: P0 and P1 were modified after S1's declaration
        // (their pre-states are the interval's entries). Cross-check: the
        // SPTs of S1 and S2 differ exactly on those two pages.
        let w = m.changed_pages(1, 2).unwrap();
        assert_eq!(w, [pid(0), pid(1)].into_iter().collect::<HashSet<_>>());
        // Symmetric in its arguments.
        assert_eq!(w, m.changed_pages(2, 1).unwrap());
        // Window (S2, S3]: P1 and P2. Same snapshot: nothing changed.
        assert_eq!(m.changed_pages(2, 3).unwrap().len(), 2);
        assert!(m.changed_pages(3, 3).unwrap().is_empty());
        // Non-adjacent window covers both intervals.
        let wide = m.changed_pages(1, 3).unwrap();
        assert_eq!(wide.len(), 3);
    }

    #[test]
    fn changed_pages_includes_universe_growth() {
        let mut m = Maplog::new();
        m.declare_snapshot(1, 2).unwrap();
        m.declare_snapshot(2, 5).unwrap(); // three pages allocated between
        let w = m.changed_pages(1, 2).unwrap();
        assert_eq!(
            w,
            [pid(2), pid(3), pid(4)].into_iter().collect::<HashSet<_>>()
        );
    }

    #[test]
    fn boundary_lookup() {
        let m = sample();
        let b = m.boundary(2).unwrap();
        assert_eq!(b.snap_id, 2);
        assert_eq!(b.entry_start, 2);
        assert_eq!(b.page_count, 4);
        assert!(m.boundary(0).is_none());
    }
}
