//! Byte-run diffs between page versions — the core of the adaptive
//! Thresher-style Pagelog format.
//!
//! The RQL paper (§6) notes that "a snapshot system can reduce the space
//! overhead substantially without impacting normal in-production
//! performance, using an adaptive low-level page-diff approach [24:
//! Thresher], that offers a convenient trade-off between more compact
//! snapshot representation and a higher cost of snapshot reconstruction."
//! This module provides the diff codec; [`crate::pagelog`] uses it for
//! its adaptive format.
//!
//! A diff is a list of byte runs `(offset, bytes)` such that applying the
//! runs to the *base* page yields the *target* page. Nearby runs are
//! merged (gaps shorter than `GAP_MERGE` are swallowed) so run-header
//! overhead stays small on scattered edits.

use rql_pagestore::Page;

/// Runs closer than this many equal bytes are merged into one.
const GAP_MERGE: usize = 8;

/// One changed byte run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    /// Byte offset within the page.
    pub offset: u16,
    /// Replacement bytes.
    pub bytes: Vec<u8>,
}

/// Compute the runs that turn `base` into `target` (equal sizes).
pub fn diff_pages(base: &Page, target: &Page) -> Vec<Run> {
    debug_assert_eq!(base.size(), target.size());
    let a = base.bytes();
    let b = target.bytes();
    let mut runs: Vec<Run> = Vec::new();
    let mut i = 0usize;
    while i < a.len() {
        if a[i] == b[i] {
            i += 1;
            continue;
        }
        // Start of a changed run; extend over gaps < GAP_MERGE.
        let start = i;
        let mut end = i + 1;
        let mut gap = 0usize;
        let mut last_diff = i;
        while end < a.len() && gap <= GAP_MERGE {
            if a[end] != b[end] {
                last_diff = end;
                gap = 0;
            } else {
                gap += 1;
            }
            end += 1;
        }
        let run_end = last_diff + 1;
        runs.push(Run {
            offset: start as u16,
            bytes: b[start..run_end].to_vec(),
        });
        i = run_end;
    }
    runs
}

/// Apply runs to a copy of `base`, producing the target page.
pub fn apply_runs(base: &Page, runs: &[Run]) -> Page {
    let mut out = base.clone();
    for run in runs {
        out.write_slice(run.offset as usize, &run.bytes);
    }
    out
}

/// Serialized size of a run list: `2 + Σ (4 + len)` bytes.
pub fn encoded_len(runs: &[Run]) -> usize {
    2 + runs.iter().map(|r| 4 + r.bytes.len()).sum::<usize>()
}

/// Serialize runs: `[count u16] ([offset u16][len u16][bytes])*`.
pub fn encode_runs(runs: &[Run], out: &mut Vec<u8>) {
    out.extend_from_slice(&(runs.len() as u16).to_le_bytes());
    for run in runs {
        out.extend_from_slice(&run.offset.to_le_bytes());
        out.extend_from_slice(&(run.bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(&run.bytes);
    }
}

/// Deserialize runs; `None` on malformed input.
pub fn decode_runs(bytes: &[u8]) -> Option<Vec<Run>> {
    let count = u16::from_le_bytes(bytes.get(0..2)?.try_into().ok()?) as usize;
    let mut pos = 2usize;
    let mut runs = Vec::with_capacity(count);
    for _ in 0..count {
        let offset = u16::from_le_bytes(bytes.get(pos..pos + 2)?.try_into().ok()?);
        let len = u16::from_le_bytes(bytes.get(pos + 2..pos + 4)?.try_into().ok()?) as usize;
        let data = bytes.get(pos + 4..pos + 4 + len)?.to_vec();
        pos += 4 + len;
        runs.push(Run {
            offset,
            bytes: data,
        });
    }
    Some(runs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_from(bytes: &[u8]) -> Page {
        Page::from_bytes(bytes.to_vec())
    }

    #[test]
    fn identical_pages_diff_to_nothing() {
        let p = page_from(&[7u8; 64]);
        assert!(diff_pages(&p, &p).is_empty());
    }

    #[test]
    fn single_change_single_run() {
        let base = page_from(&[0u8; 64]);
        let mut target = base.clone();
        target.write_slice(10, &[1, 2, 3]);
        let runs = diff_pages(&base, &target);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].offset, 10);
        assert_eq!(runs[0].bytes, vec![1, 2, 3]);
        assert_eq!(apply_runs(&base, &runs), target);
    }

    #[test]
    fn nearby_changes_merge_distant_do_not() {
        let base = page_from(&[0u8; 128]);
        let mut target = base.clone();
        target.write_slice(10, &[1]);
        target.write_slice(14, &[2]); // gap 3 < GAP_MERGE → merged
        target.write_slice(100, &[3]); // far away → separate run
        let runs = diff_pages(&base, &target);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].offset, 10);
        assert_eq!(runs[0].bytes.len(), 5);
        assert_eq!(runs[1].offset, 100);
        assert_eq!(apply_runs(&base, &runs), target);
    }

    #[test]
    fn roundtrip_random_pages() {
        // Deterministic pseudo-random mutation patterns.
        let mut state = 0xdecafu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize
        };
        for _ in 0..50 {
            let base_bytes: Vec<u8> = (0..256).map(|i| (i * 31 % 251) as u8).collect();
            let base = page_from(&base_bytes);
            let mut target = base.clone();
            for _ in 0..next() % 20 {
                let off = next() % 250;
                let len = 1 + next() % 6;
                let data: Vec<u8> = (0..len).map(|_| (next() % 256) as u8).collect();
                target.write_slice(off, &data);
            }
            let runs = diff_pages(&base, &target);
            assert_eq!(apply_runs(&base, &runs), target);
            let mut enc = Vec::new();
            encode_runs(&runs, &mut enc);
            assert_eq!(enc.len(), encoded_len(&runs));
            assert_eq!(decode_runs(&enc).unwrap(), runs);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let base = page_from(&[0u8; 64]);
        let mut target = base.clone();
        target.write_slice(5, &[9, 9, 9]);
        let runs = diff_pages(&base, &target);
        let mut enc = Vec::new();
        encode_runs(&runs, &mut enc);
        for cut in 1..enc.len() {
            assert!(decode_runs(&enc[..cut]).is_none(), "cut at {cut}");
        }
    }
}
