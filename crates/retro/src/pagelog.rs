//! The Pagelog: Retro's on-disk, log-structured archive of page pre-states.
//!
//! "Retro accumulates the copied-out pre-states in memory and writes them
//! to an on-disk log-structured snapshot archive called Pagelog when the
//! database flushes updates" (paper §4). Pre-states are appended in commit
//! order; a pre-state is addressed by its byte offset, which is what Maplog
//! entries record and what the buffer cache keys snapshot pages by.
//!
//! Two on-log formats are supported:
//!
//! * [`PagelogFormat::Raw`] — every entry is a full page image (Retro's
//!   representation; the default, and what the paper evaluates);
//! * [`PagelogFormat::Adaptive`] — the Thresher-style trade-off the paper's
//!   §6 points to: when an earlier archived version of the same page
//!   exists and the change is small, only the byte-run diff against it is
//!   stored. Reads reconstruct by following the (bounded) base chain —
//!   "more compact snapshot representation" for "a higher cost of
//!   snapshot reconstruction".

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rql_pagestore::{LogStorage, Page, Result, StoreError};

use crate::pagediff;

/// On-log entry format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagelogFormat {
    /// Full page images, addressed directly (no per-entry header).
    #[default]
    Raw,
    /// Full-or-diff entries with headers; diff chains are bounded.
    Adaptive {
        /// Maximum number of diff hops a read may have to follow; a page
        /// whose chain reaches this depth is archived as a full image.
        max_chain: u32,
    },
}

const KIND_FULL: u8 = 1;
const KIND_DIFF: u8 = 2;

/// Outcome of an adaptive append.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchiveOutcome {
    /// Offset the entry was written at.
    pub offset: u64,
    /// Whether a diff (rather than a full image) was stored.
    pub stored_as_diff: bool,
    /// Chain depth of the new entry (0 = full image).
    pub chain_depth: u32,
}

/// Append-only page pre-state archive.
pub struct Pagelog {
    storage: Arc<dyn LogStorage>,
    page_size: usize,
    format: PagelogFormat,
    /// Pre-states appended (monotonic).
    appended: AtomicU64,
    /// Entries stored as diffs (adaptive format only).
    diffs: AtomicU64,
}

impl Pagelog {
    /// Create a Pagelog over `storage` for pages of `page_size` bytes,
    /// in the default raw format.
    pub fn new(storage: Arc<dyn LogStorage>, page_size: usize) -> Self {
        Self::with_format(storage, page_size, PagelogFormat::Raw)
    }

    /// Create a Pagelog with an explicit format.
    pub fn with_format(
        storage: Arc<dyn LogStorage>,
        page_size: usize,
        format: PagelogFormat,
    ) -> Self {
        let appended = match format {
            // Raw entries are fixed-size, so the count is recoverable.
            PagelogFormat::Raw => storage.len() / page_size as u64,
            // Adaptive entries are variable-size; the count restarts (it
            // is statistics, not an index).
            PagelogFormat::Adaptive { .. } => 0,
        };
        Pagelog {
            storage,
            page_size,
            format,
            appended: AtomicU64::new(appended),
            diffs: AtomicU64::new(0),
        }
    }

    /// The configured format.
    pub fn format(&self) -> PagelogFormat {
        self.format
    }

    /// Archive a pre-state as a full image; returns its offset.
    pub fn append(&self, page: &Page) -> Result<u64> {
        debug_assert_eq!(page.size(), self.page_size);
        let off = match self.format {
            PagelogFormat::Raw => self.storage.append(page.bytes())?,
            PagelogFormat::Adaptive { .. } => {
                let mut rec = Vec::with_capacity(5 + page.size());
                rec.push(KIND_FULL);
                rec.extend_from_slice(&(page.size() as u32).to_le_bytes());
                rec.extend_from_slice(page.bytes());
                self.storage.append(&rec)?
            }
        };
        self.appended.fetch_add(1, Ordering::Relaxed);
        Ok(off)
    }

    /// Archive a pre-state adaptively: store a diff against `base` when
    /// one exists, is within the chain bound, and saves space; otherwise
    /// store a full image.
    pub fn append_adaptive(
        &self,
        page: &Page,
        base: Option<(u64, &Page, u32)>,
    ) -> Result<ArchiveOutcome> {
        let PagelogFormat::Adaptive { max_chain } = self.format else {
            let offset = self.append(page)?;
            return Ok(ArchiveOutcome {
                offset,
                stored_as_diff: false,
                chain_depth: 0,
            });
        };
        if let Some((base_off, base_page, base_depth)) = base {
            if base_depth < max_chain {
                let runs = pagediff::diff_pages(base_page, page);
                // Diff pays off when clearly smaller than a full image.
                if pagediff::encoded_len(&runs) + 13 < self.page_size / 2 {
                    let mut rec = Vec::with_capacity(13 + pagediff::encoded_len(&runs));
                    rec.push(KIND_DIFF);
                    let mut payload = Vec::with_capacity(8 + pagediff::encoded_len(&runs));
                    payload.extend_from_slice(&base_off.to_le_bytes());
                    pagediff::encode_runs(&runs, &mut payload);
                    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                    rec.extend_from_slice(&payload);
                    let offset = self.storage.append(&rec)?;
                    self.appended.fetch_add(1, Ordering::Relaxed);
                    self.diffs.fetch_add(1, Ordering::Relaxed);
                    return Ok(ArchiveOutcome {
                        offset,
                        stored_as_diff: true,
                        chain_depth: base_depth + 1,
                    });
                }
            }
        }
        let offset = self.append(page)?;
        Ok(ArchiveOutcome {
            offset,
            stored_as_diff: false,
            chain_depth: 0,
        })
    }

    /// Fetch the pre-state stored at `offset`.
    pub fn read(&self, offset: u64) -> Result<Page> {
        self.read_with_depth(offset).map(|(p, _)| p)
    }

    /// Fetch a pre-state, reporting how many log entries were touched
    /// (1 for a full image, more when a diff chain was followed — the
    /// reconstruction cost of the adaptive format).
    pub fn read_with_depth(&self, offset: u64) -> Result<(Page, u32)> {
        match self.format {
            PagelogFormat::Raw => {
                let mut buf = vec![0u8; self.page_size];
                self.storage.read_at(offset, &mut buf)?;
                Ok((Page::from_bytes(buf), 1))
            }
            PagelogFormat::Adaptive { max_chain } => self.read_adaptive(offset, max_chain + 2),
        }
    }

    fn read_adaptive(&self, offset: u64, fuel: u32) -> Result<(Page, u32)> {
        if fuel == 0 {
            return Err(StoreError::Corrupt(format!(
                "pagelog diff chain too deep at offset {offset}"
            )));
        }
        let mut header = [0u8; 5];
        self.storage.read_at(offset, &mut header)?;
        let kind = header[0];
        let len = u32::from_le_bytes(header[1..5].try_into().unwrap()) as usize;
        let mut payload = vec![0u8; len];
        self.storage.read_at(offset + 5, &mut payload)?;
        match kind {
            KIND_FULL => {
                if payload.len() != self.page_size {
                    return Err(StoreError::Corrupt(format!(
                        "pagelog full entry at {offset} has wrong size {len}"
                    )));
                }
                Ok((Page::from_bytes(payload), 1))
            }
            KIND_DIFF => {
                let base_off = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                let runs = pagediff::decode_runs(&payload[8..]).ok_or_else(|| {
                    StoreError::Corrupt(format!("pagelog diff entry at {offset} malformed"))
                })?;
                let (base, reads) = self.read_adaptive(base_off, fuel - 1)?;
                Ok((pagediff::apply_runs(&base, &runs), reads + 1))
            }
            k => Err(StoreError::Corrupt(format!(
                "pagelog entry at {offset} has unknown kind {k}"
            ))),
        }
    }

    /// Force buffered pre-states to stable storage (the "group flush"
    /// Retro performs when the database flushes).
    pub fn flush(&self) -> Result<()> {
        self.storage.sync()
    }

    /// Number of pre-states archived so far.
    pub fn pre_state_count(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }

    /// Entries stored as diffs (adaptive format).
    pub fn diff_count(&self) -> u64 {
        self.diffs.load(Ordering::Relaxed)
    }

    /// Archive size in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.storage.len()
    }

    /// Page size of archived pre-states.
    pub fn page_size(&self) -> usize {
        self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rql_pagestore::MemStorage;

    fn page_with(tag: u8, size: usize) -> Page {
        let mut p = Page::zeroed(size);
        p.bytes_mut()[0] = tag;
        p
    }

    #[test]
    fn append_read_roundtrip() {
        let log = Pagelog::new(Arc::new(MemStorage::new()), 64);
        let o1 = log.append(&page_with(1, 64)).unwrap();
        let o2 = log.append(&page_with(2, 64)).unwrap();
        assert_eq!(o1, 0);
        assert_eq!(o2, 64);
        assert_eq!(log.read(o1).unwrap().bytes()[0], 1);
        assert_eq!(log.read(o2).unwrap().bytes()[0], 2);
        assert_eq!(log.pre_state_count(), 2);
        assert_eq!(log.size_bytes(), 128);
    }

    #[test]
    fn reopen_resumes_count() {
        let storage = Arc::new(MemStorage::new());
        {
            let log = Pagelog::new(storage.clone(), 32);
            log.append(&page_with(1, 32)).unwrap();
            log.append(&page_with(2, 32)).unwrap();
        }
        let log = Pagelog::new(storage, 32);
        assert_eq!(log.pre_state_count(), 2);
        let o3 = log.append(&page_with(3, 32)).unwrap();
        assert_eq!(o3, 64);
    }

    #[test]
    fn read_bad_offset_errors() {
        let log = Pagelog::new(Arc::new(MemStorage::new()), 64);
        assert!(log.read(0).is_err());
    }

    fn adaptive(page_size: usize, max_chain: u32) -> Pagelog {
        Pagelog::with_format(
            Arc::new(MemStorage::new()),
            page_size,
            PagelogFormat::Adaptive { max_chain },
        )
    }

    #[test]
    fn adaptive_full_roundtrip() {
        let log = adaptive(64, 4);
        let off = log.append(&page_with(9, 64)).unwrap();
        let (p, reads) = log.read_with_depth(off).unwrap();
        assert_eq!(p.bytes()[0], 9);
        assert_eq!(reads, 1);
        assert_eq!(log.diff_count(), 0);
    }

    #[test]
    fn adaptive_small_change_stores_diff() {
        let log = adaptive(256, 4);
        let v1 = page_with(1, 256);
        let base_off = log.append(&v1).unwrap();
        let mut v2 = v1.clone();
        v2.write_u32(100, 0xABCD);
        let out = log.append_adaptive(&v2, Some((base_off, &v1, 0))).unwrap();
        assert!(out.stored_as_diff);
        assert_eq!(out.chain_depth, 1);
        let (read, reads) = log.read_with_depth(out.offset).unwrap();
        assert_eq!(read, v2);
        assert_eq!(reads, 2); // diff + base
                              // Space: diff entry far smaller than a page.
        assert!(log.size_bytes() < (256 + 5) as u64 * 2);
    }

    #[test]
    fn adaptive_large_change_stores_full() {
        let log = adaptive(128, 4);
        let v1 = page_with(1, 128);
        let base_off = log.append(&v1).unwrap();
        let v2 = Page::from_bytes((0..128).map(|i| i as u8).collect());
        let out = log.append_adaptive(&v2, Some((base_off, &v1, 0))).unwrap();
        assert!(!out.stored_as_diff);
        assert_eq!(log.read(out.offset).unwrap(), v2);
    }

    #[test]
    fn adaptive_chain_bound_forces_full() {
        let log = adaptive(256, 2);
        let mut versions = vec![page_with(0, 256)];
        let mut prev = (log.append(&versions[0]).unwrap(), 0u32);
        let mut depths = Vec::new();
        for i in 1..6u8 {
            let mut v = versions.last().unwrap().clone();
            v.bytes_mut()[10] = i;
            let out = log
                .append_adaptive(&v, Some((prev.0, versions.last().unwrap(), prev.1)))
                .unwrap();
            depths.push(out.chain_depth);
            prev = (out.offset, out.chain_depth);
            versions.push(v);
        }
        // Depths cycle: 1, 2, 0 (full), 1, 2, …
        assert_eq!(depths, vec![1, 2, 0, 1, 2]);
        // Every version reconstructs correctly through the chain.
        let (last, reads) = log.read_with_depth(prev.0).unwrap();
        assert_eq!(&last, versions.last().unwrap());
        assert_eq!(reads, 3); // depth 2 = diff + diff + full
    }

    #[test]
    fn adaptive_without_base_stores_full() {
        let log = adaptive(64, 4);
        let out = log.append_adaptive(&page_with(5, 64), None).unwrap();
        assert!(!out.stored_as_diff);
        assert_eq!(log.read(out.offset).unwrap().bytes()[0], 5);
    }
}
