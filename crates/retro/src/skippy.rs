//! Skippy: skip-level index over the Maplog.
//!
//! Building a snapshot page table by linearly scanning the Maplog costs
//! time proportional to the *entire history* after the snapshot. Skippy
//! (Shaull, Shrira, Xu — SIGMOD'08, summarized in the RQL paper §4) layers
//! merged, deduplicated skip levels over the Maplog so that a scan touches
//! `O(n log n)` entries, where `n` is the number of pages in the snapshot,
//! independent of history length.
//!
//! This implementation uses the classic aligned power-of-two decomposition:
//! level 0 holds one segment per sealed snapshot interval (the Maplog
//! entries recorded while that snapshot was the latest declaration, with
//! only the first occurrence of each page kept); level `k` holds segments
//! covering `2^k` consecutive intervals, built by merging pairs from level
//! `k-1` as they complete (first occurrence wins). A scan over intervals
//! `[from .. sealed_end)` is decomposed greedily into the largest aligned
//! segments, so each page id is encountered only a logarithmic number of
//! times.

use std::collections::hash_map::Entry;
use std::collections::HashMap;

use rql_pagestore::PageId;

/// One deduplicated run of (page → Pagelog offset) mappings, first
/// occurrence first.
#[derive(Debug, Clone, Default)]
pub struct Segment {
    entries: Vec<(PageId, u64)>,
}

impl Segment {
    /// Build a level-0 segment from raw Maplog entries of one interval,
    /// keeping the first occurrence of each page.
    pub fn from_raw(raw: &[(PageId, u64)]) -> Self {
        let mut seen = HashMap::with_capacity(raw.len());
        let mut entries = Vec::with_capacity(raw.len());
        for &(pid, off) in raw {
            if let Entry::Vacant(v) = seen.entry(pid) {
                v.insert(());
                entries.push((pid, off));
            }
        }
        Segment { entries }
    }

    /// Merge two consecutive segments; mappings in `earlier` shadow
    /// mappings for the same page in `later` (a pre-state recorded while an
    /// earlier snapshot was latest is the one that snapshot needs).
    pub fn merge(earlier: &Segment, later: &Segment) -> Segment {
        let mut seen: HashMap<PageId, ()> =
            HashMap::with_capacity(earlier.entries.len() + later.entries.len());
        let mut entries = Vec::with_capacity(earlier.entries.len() + later.entries.len());
        for &(pid, off) in earlier.entries.iter().chain(later.entries.iter()) {
            if let Entry::Vacant(v) = seen.entry(pid) {
                v.insert(());
                entries.push((pid, off));
            }
        }
        Segment { entries }
    }

    /// Mappings in this segment.
    pub fn entries(&self) -> &[(PageId, u64)] {
        &self.entries
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the segment holds no mappings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The skip-level structure: `levels[k][j]` covers sealed intervals
/// `[j * 2^k, (j + 1) * 2^k)`.
#[derive(Debug, Default)]
pub struct Skippy {
    levels: Vec<Vec<Segment>>,
}

impl Skippy {
    /// Empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of sealed intervals indexed.
    pub fn sealed_intervals(&self) -> usize {
        self.levels.first().map_or(0, Vec::len)
    }

    /// Seal the next interval, indexing its raw Maplog entries.
    pub fn push_interval(&mut self, raw: &[(PageId, u64)]) {
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(Segment::from_raw(raw));
        // Binary-counter merging: whenever a pair at level k completes,
        // produce its level-(k+1) segment.
        let mut k = 0;
        loop {
            let count = self.levels[k].len();
            if !count.is_multiple_of(2) {
                break;
            }
            let merged = Segment::merge(&self.levels[k][count - 2], &self.levels[k][count - 1]);
            if self.levels.len() == k + 1 {
                self.levels.push(Vec::new());
            }
            self.levels[k + 1].push(merged);
            k += 1;
        }
    }

    /// Fold every mapping covering sealed intervals `[from ..)` into `spt`,
    /// first occurrence (earliest interval) winning; pages `>= page_limit`
    /// are skipped (they did not exist at the snapshot). Returns the number
    /// of entries scanned.
    ///
    /// `spt` may already contain mappings (never overwritten — but in
    /// practice the scan starts empty).
    pub fn scan_into(&self, from: usize, page_limit: u64, spt: &mut HashMap<PageId, u64>) -> u64 {
        let end = self.sealed_intervals();
        let mut scanned = 0u64;
        let mut i = from;
        while i < end {
            // Largest aligned power-of-two block starting at i that fits.
            let mut k = 0usize;
            while i.is_multiple_of(1 << (k + 1)) && i + (1 << (k + 1)) <= end {
                k += 1;
            }
            let seg = &self.levels[k][i >> k];
            scanned += seg.len() as u64;
            for &(pid, off) in seg.entries() {
                if pid.0 < page_limit {
                    spt.entry(pid).or_insert(off);
                }
            }
            i += 1 << k;
        }
        scanned
    }

    /// Linear-scan equivalent over raw per-interval entries (the no-Skippy
    /// ablation baseline). `raw_intervals[i]` are interval `i`'s raw
    /// entries.
    pub fn linear_scan_into(
        raw_intervals: &[&[(PageId, u64)]],
        from: usize,
        page_limit: u64,
        spt: &mut HashMap<PageId, u64>,
    ) -> u64 {
        let mut scanned = 0u64;
        for raw in &raw_intervals[from.min(raw_intervals.len())..] {
            scanned += raw.len() as u64;
            for &(pid, off) in raw.iter() {
                if pid.0 < page_limit {
                    spt.entry(pid).or_insert(off);
                }
            }
        }
        scanned
    }

    /// Total mappings stored across all levels (space accounting).
    pub fn total_entries(&self) -> usize {
        self.levels.iter().flatten().map(Segment::len).sum()
    }

    /// Number of levels.
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(n: u64) -> PageId {
        PageId(n)
    }

    #[test]
    fn segment_dedupes_first_occurrence() {
        let seg = Segment::from_raw(&[(pid(1), 10), (pid(2), 20), (pid(1), 30)]);
        assert_eq!(seg.entries(), &[(pid(1), 10), (pid(2), 20)]);
    }

    #[test]
    fn merge_earlier_shadows_later() {
        let a = Segment::from_raw(&[(pid(1), 10)]);
        let b = Segment::from_raw(&[(pid(1), 99), (pid(2), 20)]);
        let m = Segment::merge(&a, &b);
        assert_eq!(m.entries(), &[(pid(1), 10), (pid(2), 20)]);
    }

    #[test]
    fn scan_matches_linear_scan() {
        // Deterministic pseudo-random interval contents.
        let mut intervals: Vec<Vec<(PageId, u64)>> = Vec::new();
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            state >> 33
        };
        for _ in 0..13 {
            let n = (next() % 8) as usize + 1;
            let mut iv = Vec::new();
            for _ in 0..n {
                iv.push((pid(next() % 20), next() % 1000));
            }
            intervals.push(iv);
        }
        let mut sk = Skippy::new();
        for iv in &intervals {
            sk.push_interval(iv);
        }
        let raw_refs: Vec<&[(PageId, u64)]> = intervals.iter().map(|v| v.as_slice()).collect();
        for from in 0..intervals.len() {
            let mut via_skippy = HashMap::new();
            let mut via_linear = HashMap::new();
            sk.scan_into(from, u64::MAX, &mut via_skippy);
            Skippy::linear_scan_into(&raw_refs, from, u64::MAX, &mut via_linear);
            assert_eq!(via_skippy, via_linear, "mismatch scanning from {from}");
        }
    }

    #[test]
    fn scan_respects_page_limit() {
        let mut sk = Skippy::new();
        sk.push_interval(&[(pid(1), 10), (pid(50), 20)]);
        let mut spt = HashMap::new();
        sk.scan_into(0, 10, &mut spt);
        assert_eq!(spt.len(), 1);
        assert_eq!(spt[&pid(1)], 10);
    }

    #[test]
    fn skippy_scans_fewer_entries_than_linear_for_old_snapshots() {
        // Every interval overwrites the same small page set, so high levels
        // collapse to that set while a linear scan touches everything.
        let intervals: Vec<Vec<(PageId, u64)>> = (0..64)
            .map(|i| (0..16u64).map(|p| (pid(p), i * 16 + p)).collect())
            .collect();
        let mut sk = Skippy::new();
        for iv in &intervals {
            sk.push_interval(iv);
        }
        let raw_refs: Vec<&[(PageId, u64)]> = intervals.iter().map(|v| v.as_slice()).collect();
        let mut spt = HashMap::new();
        let skippy_scanned = sk.scan_into(0, u64::MAX, &mut spt);
        let mut spt2 = HashMap::new();
        let linear_scanned = Skippy::linear_scan_into(&raw_refs, 0, u64::MAX, &mut spt2);
        assert_eq!(spt, spt2);
        assert_eq!(linear_scanned, 64 * 16);
        // One level-6 segment of 16 entries covers everything.
        assert_eq!(skippy_scanned, 16);
    }

    #[test]
    fn empty_scan() {
        let sk = Skippy::new();
        let mut spt = HashMap::new();
        assert_eq!(sk.scan_into(0, u64::MAX, &mut spt), 0);
        assert!(spt.is_empty());
        assert_eq!(sk.level_count(), 0);
    }

    #[test]
    fn level_structure_is_binary_counter() {
        let mut sk = Skippy::new();
        for i in 0..6u64 {
            sk.push_interval(&[(pid(i), i)]);
        }
        // 6 intervals: levels sizes 6, 3, 1.
        assert_eq!(sk.sealed_intervals(), 6);
        assert_eq!(sk.levels[0].len(), 6);
        assert_eq!(sk.levels[1].len(), 3);
        assert_eq!(sk.levels[2].len(), 1);
    }
}
