//! Declared snapshots and snapshot readers.
//!
//! A [`SnapshotReader`] is the page-fetch interposition of paper §4: "To
//! run a query q on a snapshot S Retro interposes on the database page
//! fetch operation. When q requests a page P, Retro looks up page location
//! in SPT(S) and fetches P from Pagelog, the same way q would fetch P from
//! the database if it was running on the current database state." Pages
//! not in the SPT are shared with the current state and served from the
//! reader's pinned MVCC view of the database.

use std::collections::HashSet;
use std::sync::Arc;

use rql_pagestore::{CacheKey, CacheKeying, DbView, PageId, Result, SharedPage, StoreError};

use crate::spt::{PageLocation, Spt, SptBuildStats};
use crate::store::{RetroStore, SidecarMap};

/// Metadata recorded at snapshot declaration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapshotMeta {
    /// Dense snapshot id, starting at 1.
    pub id: u64,
    /// Database page count at declaration.
    pub page_count: u64,
    /// Transaction that declared the snapshot.
    pub txn_id: u64,
}

/// Where a fetched snapshot page actually came from (introspection for
/// tests and the experiment harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchSource {
    /// Shared page served from the in-memory current database.
    Database,
    /// Pre-state found in the buffer cache.
    Cache,
    /// Pre-state fetched from the Pagelog archive (disk I/O).
    Pagelog,
}

/// A read-only transaction over one declared snapshot.
pub struct SnapshotReader {
    store: Arc<RetroStore>,
    spt: Spt,
    view: DbView,
    build_stats: SptBuildStats,
    /// When opened as part of a chain
    /// ([`RetroStore::open_snapshot_chain`]): pages that may differ from
    /// the previous snapshot in the chain. `None` = unknown (opened
    /// standalone), meaning every page must be assumed changed.
    changed_from_prev: Option<HashSet<PageId>>,
    /// Sidecars for current-state pages, captured *before* the view was
    /// pinned: any page the SPT later resolves as `SharedWithDb` was
    /// unwritten from capture through SPT build, so its entry (when
    /// present) describes exactly the image this reader sees.
    sidecars: SidecarMap,
}

impl SnapshotReader {
    pub(crate) fn new(
        store: Arc<RetroStore>,
        spt: Spt,
        view: DbView,
        build_stats: SptBuildStats,
        changed_from_prev: Option<HashSet<PageId>>,
        sidecars: SidecarMap,
    ) -> Self {
        SnapshotReader {
            store,
            spt,
            view,
            build_stats,
            changed_from_prev,
            sidecars,
        }
    }

    /// Pages that may differ from the previous snapshot in the chain this
    /// reader was opened with, or `None` when opened standalone (all
    /// pages must then be assumed changed). The set is a conservative
    /// superset of truly-differing pages.
    pub fn changed_from_prev(&self) -> Option<&HashSet<PageId>> {
        self.changed_from_prev.as_ref()
    }

    /// The snapshot this reader is pinned to.
    pub fn snap_id(&self) -> u64 {
        self.spt.snap_id()
    }

    /// Pages in the snapshot.
    pub fn page_count(&self) -> u64 {
        self.spt.page_count()
    }

    /// Cost of building this reader's SPT.
    pub fn build_stats(&self) -> SptBuildStats {
        self.build_stats
    }

    /// The underlying SPT (introspection).
    pub fn spt(&self) -> &Spt {
        &self.spt
    }

    /// Fetch a snapshot page.
    pub fn page(&self, pid: PageId) -> Result<SharedPage> {
        self.page_with_source(pid).map(|(p, _)| p)
    }

    /// The pruning sidecar matching the page *version* this reader
    /// resolves `pid` to, or `None` (= don't prune). Shared pages use
    /// the map captured before the view was pinned; archived pages use
    /// the Pagelog-offset-keyed archive, so every `AS OF` view pairs a
    /// page with the sidecar built from that exact image.
    pub fn sidecar_for(&self, pid: PageId) -> Option<Arc<Vec<u8>>> {
        match self.spt.locate(pid)? {
            PageLocation::SharedWithDb => self.sidecars.get(&pid.0).cloned(),
            PageLocation::Pagelog(off) => self.store.archived_sidecar(off),
        }
    }

    /// Record a page skipped thanks to its sidecar.
    pub fn count_page_pruned(&self) {
        self.store.stats().count_page_pruned();
    }

    /// Fetch a snapshot page, reporting where it came from.
    pub fn page_with_source(&self, pid: PageId) -> Result<(SharedPage, FetchSource)> {
        let stats = self.store.stats();
        match self.spt.locate(pid) {
            None => Err(StoreError::PageOutOfBounds(pid)),
            Some(PageLocation::SharedWithDb) => {
                // Counted as a db read inside the view.
                Ok((self.view.page(pid)?, FetchSource::Database))
            }
            Some(PageLocation::Pagelog(off)) => {
                let key = match self.store.cache_keying() {
                    CacheKeying::ByPagelogOffset => CacheKey::Pagelog(off),
                    CacheKeying::PerSnapshot => CacheKey::PerSnapshot {
                        snapshot: self.spt.snap_id(),
                        page: pid,
                    },
                };
                if let Some(page) = self.store.cache().get(&key) {
                    stats.count_cache_hit();
                    return Ok((page, FetchSource::Cache));
                }
                let (raw, depth) = self.store.pagelog().read_with_depth(off)?;
                let page: SharedPage = Arc::new(raw);
                // A diff chain touches `depth` log entries — each is a
                // real archive read (the adaptive format's reconstruction
                // cost).
                for _ in 0..depth {
                    stats.count_pagelog_read();
                }
                let evictions = self.store.cache().insert(key, page.clone());
                for _ in 0..evictions {
                    stats.count_cache_eviction();
                }
                Ok((page, FetchSource::Pagelog))
            }
        }
    }
}
