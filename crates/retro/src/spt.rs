//! Snapshot page tables (SPTs).
//!
//! An SPT maps every page of a snapshot to where its bytes live: either a
//! Pagelog offset (the page was modified after the snapshot and its
//! pre-state archived) or the current database (the page is still shared
//! with the current state). "An efficient scan of Maplog allows to
//! construct a snapshot page table SPT(S) that maps every page P in
//! snapshot S to its location in Pagelog" (paper §4).

use std::collections::HashMap;
use std::time::Duration;

use rql_pagestore::PageId;

/// Where a snapshot page's bytes are found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageLocation {
    /// Archived pre-state at this Pagelog offset.
    Pagelog(u64),
    /// Shared with the current database state.
    SharedWithDb,
}

/// A built snapshot page table.
#[derive(Debug)]
pub struct Spt {
    snap_id: u64,
    page_count: u64,
    map: HashMap<PageId, u64>,
}

impl Spt {
    /// Construct from a Maplog scan result.
    pub fn new(snap_id: u64, page_count: u64, map: HashMap<PageId, u64>) -> Self {
        Spt {
            snap_id,
            page_count,
            map,
        }
    }

    /// Snapshot this table belongs to.
    pub fn snap_id(&self) -> u64 {
        self.snap_id
    }

    /// Number of pages in the snapshot's universe.
    pub fn page_count(&self) -> u64 {
        self.page_count
    }

    /// Locate a page.
    pub fn locate(&self, pid: PageId) -> Option<PageLocation> {
        if pid.0 >= self.page_count {
            return None;
        }
        Some(match self.map.get(&pid) {
            Some(&off) => PageLocation::Pagelog(off),
            None => PageLocation::SharedWithDb,
        })
    }

    /// Number of pages with archived pre-states.
    pub fn archived_pages(&self) -> u64 {
        self.map.len() as u64
    }

    /// Number of pages still shared with the current database.
    pub fn shared_pages(&self) -> u64 {
        self.page_count - self.archived_pages()
    }

    /// Whether the snapshot's overwrite cycle is complete (every page has
    /// been modified since the declaration, so nothing is shared with the
    /// current state).
    pub fn overwrite_complete(&self) -> bool {
        self.shared_pages() == 0
    }

    /// Pages whose location differs between two SPTs: the paper's
    /// `diff(S1, S2)`. Pages outside either page universe count as
    /// differing.
    pub fn diff(&self, other: &Spt) -> u64 {
        let max_count = self.page_count.max(other.page_count);
        let mut differing = 0u64;
        for p in 0..max_count {
            let pid = PageId(p);
            if self.locate(pid) != other.locate(pid) {
                differing += 1;
            }
        }
        differing
    }

    /// Pages shared between two snapshots: the paper's `shared(S1, S2)`.
    pub fn shared_with(&self, other: &Spt) -> u64 {
        self.page_count.min(other.page_count) - self.diff_within_common(other)
    }

    /// A stable fingerprint of this SPT's full page mapping (FNV-1a over
    /// snapshot id, page universe size and the sorted archived-page
    /// entries). Two equal hashes mean the snapshot resolves every page
    /// to the same location, so any computation over the snapshot's bytes
    /// is reproducible — this is the page-version-vector component of
    /// memoization keys. The hash *changes* when a still-shared page gets
    /// archived, which is conservative: the bytes are identical either
    /// way, and a changed hash only costs a spurious cache miss.
    pub fn version_hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut fold = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.snap_id);
        fold(self.page_count);
        let mut entries: Vec<(u64, u64)> = self.map.iter().map(|(p, &o)| (p.0, o)).collect();
        entries.sort_unstable();
        for (page, offset) in entries {
            fold(page);
            fold(offset);
        }
        h
    }

    fn diff_within_common(&self, other: &Spt) -> u64 {
        let common = self.page_count.min(other.page_count);
        let mut differing = 0u64;
        for p in 0..common {
            let pid = PageId(p);
            if self.locate(pid) != other.locate(pid) {
                differing += 1;
            }
        }
        differing
    }
}

/// Cost of building one SPT.
#[derive(Debug, Clone, Copy, Default)]
pub struct SptBuildStats {
    /// Maplog entries scanned.
    pub entries_scanned: u64,
    /// Wall-clock build time.
    pub duration: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spt(snap: u64, count: u64, pairs: &[(u64, u64)]) -> Spt {
        Spt::new(
            snap,
            count,
            pairs.iter().map(|&(p, o)| (PageId(p), o)).collect(),
        )
    }

    #[test]
    fn locate_archived_shared_and_out_of_range() {
        let s = spt(1, 4, &[(0, 100), (2, 200)]);
        assert_eq!(s.locate(PageId(0)), Some(PageLocation::Pagelog(100)));
        assert_eq!(s.locate(PageId(1)), Some(PageLocation::SharedWithDb));
        assert_eq!(s.locate(PageId(2)), Some(PageLocation::Pagelog(200)));
        assert_eq!(s.locate(PageId(9)), None);
        assert_eq!(s.archived_pages(), 2);
        assert_eq!(s.shared_pages(), 2);
        assert!(!s.overwrite_complete());
    }

    #[test]
    fn overwrite_complete_when_all_archived() {
        let s = spt(1, 2, &[(0, 0), (1, 64)]);
        assert!(s.overwrite_complete());
    }

    #[test]
    fn diff_and_shared() {
        // S1: P0@100, P1 shared, P2@200. S2: P0@100, P1 shared, P2 shared.
        let s1 = spt(1, 3, &[(0, 100), (2, 200)]);
        let s2 = spt(2, 3, &[(0, 100)]);
        assert_eq!(s1.diff(&s2), 1); // only P2 differs
        assert_eq!(s1.shared_with(&s2), 2);
        assert_eq!(s1.diff(&s1), 0);
    }

    #[test]
    fn version_hash_is_stable_and_sensitive() {
        let a = spt(1, 4, &[(0, 100), (2, 200)]);
        let b = spt(1, 4, &[(2, 200), (0, 100)]); // same mapping, other order
        assert_eq!(a.version_hash(), b.version_hash());
        // Any component change moves the hash.
        assert_ne!(
            a.version_hash(),
            spt(2, 4, &[(0, 100), (2, 200)]).version_hash()
        );
        assert_ne!(
            a.version_hash(),
            spt(1, 5, &[(0, 100), (2, 200)]).version_hash()
        );
        assert_ne!(a.version_hash(), spt(1, 4, &[(0, 100)]).version_hash());
        assert_ne!(
            a.version_hash(),
            spt(1, 4, &[(0, 101), (2, 200)]).version_hash()
        );
    }

    #[test]
    fn diff_counts_universe_mismatch() {
        let s1 = spt(1, 2, &[(0, 100)]);
        let s2 = spt(2, 3, &[(0, 100)]);
        // P2 exists only in s2.
        assert_eq!(s1.diff(&s2), 1);
        assert_eq!(s1.shared_with(&s2), 2);
    }
}
