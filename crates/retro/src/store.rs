//! `RetroStore`: the snapshot system assembled over the page store.
//!
//! Retro "is implemented as a small set of modular extensions to the
//! Berkeley DB transactional storage manager. The extensions interpose on
//! transaction commit, page flush, page fetch and recovery operations"
//! (paper §4). This module is those extensions:
//!
//! * **commit** — the pre-state of every page modified for the first time
//!   since the latest snapshot declaration is archived to the Pagelog and
//!   indexed in the Maplog (copy-on-write capture);
//! * **flush** — Pagelog appends are buffered and synced in groups;
//! * **fetch** — [`crate::snapshot::SnapshotReader`] routes
//!   page requests through the SPT to the Pagelog/cache, or through a
//!   pinned MVCC view for pages shared with the current state;
//! * **recovery** — the WAL restores the current state and the snapshot id
//!   sequence; the persisted Maplog and the Pagelog restore the archive
//!   index.

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use rql_pagestore::{
    BufferCache, CacheKeying, DbView, IoStats, LogStorage, Pager, PagerConfig, Result, StoreError,
    WriteTxn,
};

use crate::maplog::Maplog;
use crate::pagelog::{Pagelog, PagelogFormat};
use crate::snapshot::{SnapshotMeta, SnapshotReader};
use crate::spt::{Spt, SptBuildStats};

/// Retro configuration.
#[derive(Debug, Clone, Default)]
pub struct RetroConfig {
    /// Underlying pager configuration.
    pub pager: PagerConfig,
    /// Build SPTs through the Skippy skip levels (`true`, Retro's
    /// behaviour) or by linear Maplog scan (ablation baseline).
    pub use_skippy: bool,
    /// Buffer-cache keying for snapshot pages (ablation knob).
    pub keying: CacheKeying,
    /// Pagelog representation: raw full pages (Retro) or the adaptive
    /// Thresher-style diff format (§6's space/reconstruction trade-off).
    pub pagelog_format: PagelogFormat,
}

impl RetroConfig {
    /// Default configuration with Skippy enabled.
    pub fn new() -> Self {
        RetroConfig {
            pager: PagerConfig::default(),
            use_skippy: true,
            keying: CacheKeying::ByPagelogOffset,
            pagelog_format: PagelogFormat::Raw,
        }
    }
}

/// The snapshot system.
pub struct RetroStore {
    config: RetroConfig,
    pager: Arc<Pager>,
    pagelog: Pagelog,
    maplog: RwLock<Maplog>,
    /// Pages already archived since the latest snapshot declaration
    /// (their pre-state for that snapshot is on the Pagelog; later
    /// modifications need no further capture).
    dirty_since_snapshot: Mutex<HashSet<rql_pagestore::PageId>>,
    /// Latest archived entry per page: (offset, chain depth). Used by the
    /// adaptive Pagelog format to pick diff bases.
    last_archived: Mutex<std::collections::HashMap<rql_pagestore::PageId, (u64, u32)>>,
    metas: RwLock<Vec<SnapshotMeta>>,
}

impl RetroStore {
    /// Ephemeral store: memory-backed Pagelog, no WAL, no Maplog
    /// persistence. The workhorse for tests and deterministic benchmarks.
    pub fn in_memory(config: RetroConfig) -> Arc<Self> {
        let page_size = config.pager.page_size;
        let pager = Arc::new(Pager::new(config.pager.clone()));
        let format = config.pagelog_format;
        Arc::new(RetroStore {
            config,
            pager,
            pagelog: Pagelog::with_format(
                Arc::new(rql_pagestore::MemStorage::new()),
                page_size,
                format,
            ),
            maplog: RwLock::new(Maplog::new()),
            dirty_since_snapshot: Mutex::new(HashSet::new()),
            last_archived: Mutex::new(std::collections::HashMap::new()),
            metas: RwLock::new(Vec::new()),
        })
    }

    /// Durable store over explicit storages, replaying WAL and Maplog.
    ///
    /// After a crash the WAL restores the committed current state and the
    /// declared snapshot sequence, and the persisted Maplog + Pagelog
    /// restore the archive index, so previously declared snapshots remain
    /// queryable.
    pub fn open(
        config: RetroConfig,
        wal_storage: Arc<dyn LogStorage>,
        pagelog_storage: Arc<dyn LogStorage>,
        maplog_storage: Arc<dyn LogStorage>,
    ) -> Result<Arc<Self>> {
        let page_size = config.pager.page_size;
        let (pager, recovered_snaps) = Pager::open_with_wal(config.pager.clone(), wal_storage)?;
        let pager = Arc::new(pager);
        let maplog = Maplog::open(maplog_storage)?;
        if maplog.snapshot_count() != recovered_snaps.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "maplog has {} snapshots but WAL recovered {}",
                maplog.snapshot_count(),
                recovered_snaps.len()
            )));
        }
        let metas: Vec<SnapshotMeta> = recovered_snaps
            .iter()
            .map(|&id| {
                let b = maplog
                    .boundary(id)
                    .expect("boundary for recovered snapshot");
                SnapshotMeta {
                    id,
                    page_count: b.page_count,
                    txn_id: 0, // original txn id not tracked across recovery
                }
            })
            .collect();
        let format = config.pagelog_format;
        Ok(Arc::new(RetroStore {
            config,
            pager,
            pagelog: Pagelog::with_format(pagelog_storage, page_size, format),
            maplog: RwLock::new(maplog),
            // Conservative: after recovery, re-archive on next modification
            // (and diff chains restart from full images).
            dirty_since_snapshot: Mutex::new(HashSet::new()),
            last_archived: Mutex::new(std::collections::HashMap::new()),
            metas: RwLock::new(metas),
        }))
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        self.pager.stats()
    }

    /// Shared buffer cache.
    pub fn cache(&self) -> &Arc<BufferCache> {
        self.pager.cache()
    }

    /// The Pagelog archive.
    pub fn pagelog(&self) -> &Pagelog {
        &self.pagelog
    }

    /// Cache keying policy in effect.
    pub fn cache_keying(&self) -> CacheKeying {
        self.config.keying
    }

    /// Begin a write transaction.
    pub fn begin(self: &Arc<Self>) -> Result<WriteTxn> {
        self.pager.begin_write()
    }

    /// Commit without declaring a snapshot.
    pub fn commit(&self, txn: WriteTxn) -> Result<()> {
        self.commit_inner(txn, false).map(|_| ())
    }

    /// `COMMIT WITH SNAPSHOT`: commit and declare a snapshot reflecting
    /// this transaction and everything committed before it. Returns the
    /// new snapshot id.
    pub fn commit_with_snapshot(&self, txn: WriteTxn) -> Result<u64> {
        self.commit_inner(txn, true)
            .map(|sid| sid.expect("snapshot id on declaring commit"))
    }

    /// Abort a transaction.
    pub fn abort(&self, txn: WriteTxn) {
        self.pager.abort(txn);
    }

    fn commit_inner(&self, txn: WriteTxn, declare: bool) -> Result<Option<u64>> {
        let latest_page_count: Option<u64> = self.metas.read().last().map(|m| m.page_count);
        let stats = self.pager.stats().clone();
        let txn_id = txn.id();
        // COW capture runs inside the pager's commit critical section, so
        // the archive and the published state change atomically with
        // respect to writers (readers pin views and never block).
        let snapshot_id = if declare {
            Some(self.metas.read().len() as u64 + 1)
        } else {
            None
        };
        self.pager.commit(txn, snapshot_id, |pid, pre| {
            let Some(limit) = latest_page_count else {
                return Ok(()); // no snapshot declared yet: nothing to keep
            };
            if pid.0 >= limit {
                return Ok(()); // page allocated after the latest snapshot
            }
            let Some(pre_page) = pre else {
                return Ok(());
            };
            let mut dirty = self.dirty_since_snapshot.lock();
            if !dirty.insert(pid) {
                return Ok(()); // already archived for the latest snapshot
            }
            drop(dirty);
            let off = match self.pagelog.format() {
                PagelogFormat::Raw => self.pagelog.append(pre_page)?,
                PagelogFormat::Adaptive { .. } => {
                    // Diff against the last archived version of this page
                    // when one exists (Thresher's adaptive choice).
                    let base = self.last_archived.lock().get(&pid).copied();
                    let outcome = match base {
                        Some((base_off, depth)) => {
                            let base_page = self.pagelog.read(base_off)?;
                            self.pagelog
                                .append_adaptive(pre_page, Some((base_off, &base_page, depth)))?
                        }
                        None => self.pagelog.append_adaptive(pre_page, None)?,
                    };
                    self.last_archived
                        .lock()
                        .insert(pid, (outcome.offset, outcome.chain_depth));
                    outcome.offset
                }
            };
            self.maplog.write().append_mapping(pid, off)?;
            stats.count_cow_capture();
            Ok(())
        })?;
        if declare {
            let sid = snapshot_id.unwrap();
            let page_count = self.pager.page_count();
            self.maplog.write().declare_snapshot(sid, page_count)?;
            self.dirty_since_snapshot.lock().clear();
            self.metas.write().push(SnapshotMeta {
                id: sid,
                page_count,
                txn_id,
            });
            return Ok(Some(sid));
        }
        Ok(None)
    }

    /// Number of declared snapshots; ids are `1..=snapshot_count()`.
    pub fn snapshot_count(&self) -> u64 {
        self.metas.read().len() as u64
    }

    /// Metadata for snapshot `sid`.
    pub fn snapshot_meta(&self, sid: u64) -> Option<SnapshotMeta> {
        if sid == 0 {
            return None;
        }
        self.metas.read().get(sid as usize - 1).copied()
    }

    /// Pin an MVCC view of the current state (for current-state queries).
    pub fn current_view(&self) -> DbView {
        self.pager.view()
    }

    /// Open a reader over snapshot `sid`.
    ///
    /// Ordering invariant: the database view is pinned *before* the SPT is
    /// built. A commit that lands in between archives the pinned page
    /// state as the pre-state, so whichever source the reader ends up
    /// using returns identical bytes.
    pub fn open_snapshot(self: &Arc<Self>, sid: u64) -> Result<SnapshotReader> {
        let _span = rql_trace::span_arg(rql_trace::SpanId::ChainOpen, sid);
        let meta = self
            .snapshot_meta(sid)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {sid}")))?;
        let view = self.pager.view();
        let start = Instant::now();
        let scan = {
            let _spt = rql_trace::span_arg(rql_trace::SpanId::SptBuild, sid);
            self.maplog.read().build_spt(sid, self.config.use_skippy)?
        };
        let duration = start.elapsed();
        self.stats().count_maplog_scanned(scan.entries_scanned);
        let spt = Spt::new(sid, meta.page_count, scan.map);
        Ok(SnapshotReader::new(
            Arc::clone(self),
            spt,
            view,
            SptBuildStats {
                entries_scanned: scan.entries_scanned,
                duration,
            },
            None,
        ))
    }

    /// Open readers over a whole set of snapshots at once, building their
    /// SPTs incrementally (one full Maplog scan for the newest id, interval
    /// overlays for the rest — see [`Maplog::build_spt_chain`]).
    ///
    /// Each reader after the first also carries the set of pages that may
    /// differ from the *previous id in the input order*
    /// ([`SnapshotReader::changed_from_prev`]), which is what delta-aware
    /// scans consume. The same ordering invariant as [`Self::open_snapshot`]
    /// holds: every view is pinned before any SPT is built.
    pub fn open_snapshot_chain(self: &Arc<Self>, ids: &[u64]) -> Result<Vec<SnapshotReader>> {
        let _span = rql_trace::span_arg(rql_trace::SpanId::ChainOpen, ids.len() as u64);
        let mut metas = Vec::with_capacity(ids.len());
        for &sid in ids {
            metas.push(
                self.snapshot_meta(sid)
                    .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {sid}")))?,
            );
        }
        let views: Vec<DbView> = ids.iter().map(|_| self.pager.view()).collect();
        let maplog = self.maplog.read();
        let start = Instant::now();
        let scans = {
            let _spt = rql_trace::span_arg(rql_trace::SpanId::SptBuild, ids.len() as u64);
            maplog.build_spt_chain(ids, self.config.use_skippy)?
        };
        let duration = start.elapsed();
        let mut changed: Vec<Option<HashSet<rql_pagestore::PageId>>> =
            Vec::with_capacity(ids.len());
        for (i, &sid) in ids.iter().enumerate() {
            changed.push(if i == 0 {
                None
            } else {
                Some(maplog.changed_pages(ids[i - 1], sid)?)
            });
        }
        drop(maplog);
        let mut readers = Vec::with_capacity(ids.len());
        let per_id = if ids.is_empty() {
            duration
        } else {
            duration / ids.len() as u32
        };
        for (((scan, meta), view), changed) in scans.into_iter().zip(metas).zip(views).zip(changed)
        {
            self.stats().count_maplog_scanned(scan.entries_scanned);
            readers.push(SnapshotReader::new(
                Arc::clone(self),
                Spt::new(meta.id, meta.page_count, scan.map),
                view,
                SptBuildStats {
                    entries_scanned: scan.entries_scanned,
                    duration: per_id,
                },
                changed,
            ));
        }
        Ok(readers)
    }

    /// Pages whose content may differ between two snapshots — the
    /// complement of the paper's `shared(S1, S2)`, computed directly from
    /// the Maplog window between the declarations (no SPT builds).
    pub fn changed_pages(&self, s1: u64, s2: u64) -> Result<HashSet<rql_pagestore::PageId>> {
        self.maplog.read().changed_pages(s1, s2)
    }

    /// Build just the SPT for `sid` (introspection / diff computation).
    pub fn build_spt(&self, sid: u64) -> Result<Spt> {
        let meta = self
            .snapshot_meta(sid)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {sid}")))?;
        let scan = self.maplog.read().build_spt(sid, self.config.use_skippy)?;
        Ok(Spt::new(sid, meta.page_count, scan.map))
    }

    /// The paper's `diff(S1, S2)`: pages not shared between two snapshots.
    pub fn diff(&self, s1: u64, s2: u64) -> Result<u64> {
        Ok(self.build_spt(s1)?.diff(&self.build_spt(s2)?))
    }

    /// The paper's `shared(S1, S2)`.
    pub fn shared(&self, s1: u64, s2: u64) -> Result<u64> {
        Ok(self.build_spt(s1)?.shared_with(&self.build_spt(s2)?))
    }

    /// Make all durable state stable: group-flush the Pagelog, sync the
    /// Maplog, and sync the WAL (the checkpoint a clean shutdown or an
    /// explicit durability point performs).
    pub fn flush(&self) -> Result<()> {
        self.pagelog.flush()?;
        self.maplog.read().sync()?;
        self.pager.sync_wal()
    }

    /// Total Maplog entries (space accounting).
    pub fn maplog_entries(&self) -> usize {
        self.maplog.read().entry_count()
    }

    /// Entries held by Skippy skip levels (space accounting).
    pub fn skippy_entries(&self) -> usize {
        self.maplog.read().skippy_entries()
    }
}
