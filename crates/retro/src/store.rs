//! `RetroStore`: the snapshot system assembled over the page store.
//!
//! Retro "is implemented as a small set of modular extensions to the
//! Berkeley DB transactional storage manager. The extensions interpose on
//! transaction commit, page flush, page fetch and recovery operations"
//! (paper §4). This module is those extensions:
//!
//! * **commit** — the pre-state of every page modified for the first time
//!   since the latest snapshot declaration is archived to the Pagelog and
//!   indexed in the Maplog (copy-on-write capture);
//! * **flush** — Pagelog appends are buffered and synced in groups;
//! * **fetch** — [`crate::snapshot::SnapshotReader`] routes
//!   page requests through the SPT to the Pagelog/cache, or through a
//!   pinned MVCC view for pages shared with the current state;
//! * **recovery** — the WAL restores the current state and the snapshot id
//!   sequence; the persisted Maplog and the Pagelog restore the archive
//!   index.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use rql_pagestore::{
    BufferCache, CacheKeying, CommittedSegment, DbView, IoStats, LogStorage, Pager, PagerConfig,
    Result, StoreError, WriteTxn,
};

use crate::maplog::Maplog;
use crate::pagelog::{Pagelog, PagelogFormat};
use crate::snapshot::{SnapshotMeta, SnapshotReader};
use crate::spt::{Spt, SptBuildStats};

/// Retro configuration.
#[derive(Debug, Clone, Default)]
pub struct RetroConfig {
    /// Underlying pager configuration.
    pub pager: PagerConfig,
    /// Build SPTs through the Skippy skip levels (`true`, Retro's
    /// behaviour) or by linear Maplog scan (ablation baseline).
    pub use_skippy: bool,
    /// Buffer-cache keying for snapshot pages (ablation knob).
    pub keying: CacheKeying,
    /// Pagelog representation: raw full pages (Retro) or the adaptive
    /// Thresher-style diff format (§6's space/reconstruction trade-off).
    pub pagelog_format: PagelogFormat,
}

impl RetroConfig {
    /// Default configuration with Skippy enabled.
    pub fn new() -> Self {
        RetroConfig {
            pager: PagerConfig::default(),
            use_skippy: true,
            keying: CacheKeying::ByPagelogOffset,
            pagelog_format: PagelogFormat::Raw,
        }
    }
}

/// Builds an encoded pruning sidecar for a page image, or `None` when
/// the page cannot be summarized. Injected by the SQL layer, which owns
/// the record format; `retro` only versions the opaque bytes alongside
/// the COW pre-states.
pub type SidecarBuilder =
    Arc<dyn Fn(rql_pagestore::PageId, &rql_pagestore::Page) -> Option<Vec<u8>> + Send + Sync>;

/// Sidecars for one consistent set of current-page images, shared with
/// snapshot readers by `Arc` swap.
pub type SidecarMap = Arc<HashMap<u64, Arc<Vec<u8>>>>;

/// The snapshot system.
pub struct RetroStore {
    config: RetroConfig,
    pager: Arc<Pager>,
    pagelog: Pagelog,
    maplog: RwLock<Maplog>,
    /// Pages already archived since the latest snapshot declaration
    /// (their pre-state for that snapshot is on the Pagelog; later
    /// modifications need no further capture).
    dirty_since_snapshot: Mutex<HashSet<rql_pagestore::PageId>>,
    /// Latest archived entry per page: (offset, chain depth). Used by the
    /// adaptive Pagelog format to pick diff bases.
    last_archived: Mutex<std::collections::HashMap<rql_pagestore::PageId, (u64, u32)>>,
    metas: RwLock<Vec<SnapshotMeta>>,
    /// Pruning sidecars describing the *latest published* page images,
    /// keyed by page id. A commit removes its written pages before
    /// publishing and re-inserts fresh entries after, so any map a
    /// reader captures only ever describes pages it can actually see —
    /// a missing entry just means "no pruning" (a counted full read).
    current_sidecars: RwLock<SidecarMap>,
    /// Sidecars for archived pre-states, keyed by Pagelog offset — the
    /// same address an SPT resolves the page through, so an `AS OF`
    /// view always pairs a page version with the sidecar built from it.
    sidecar_archive: Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    /// Bumped at the start of every commit; guards out-of-band sidecar
    /// backfills against racing a commit (install-if-current).
    sidecar_epoch: AtomicU64,
    /// `None` until the SQL layer declares filter columns; sidecar
    /// maintenance is free when pruning is unused.
    sidecar_builder: RwLock<Option<SidecarBuilder>>,
    /// Observers notified after every snapshot declaration, once the
    /// snapshot is fully published (metas pushed, all commit-path locks
    /// released) — a hook may immediately open the snapshot it is told
    /// about. Hooks run synchronously on the committing thread, in
    /// registration order; the standing-query engine uses this to
    /// maintain registered result tables per commit.
    snapshot_hooks: RwLock<Vec<SnapshotHook>>,
    /// Serializes whole commits: the pager's writer token is released
    /// inside `Pager::commit`, so without this a second commit could
    /// interleave between one commit's page publish and its Maplog
    /// declaration. Held across the full commit body (publish + archive
    /// appends + declaration), released before hooks fire, and taken by
    /// [`RetroStore::repl_checkpoint`] to cut a mutually consistent
    /// prefix of the three logs.
    commit_serial: Mutex<()>,
    /// Observers notified after *every* commit (declaring or not), with
    /// all commit-path locks released. The replication leader registers
    /// one to learn that the WAL has grown.
    commit_hooks: RwLock<Vec<CommitHook>>,
    /// The raw log storages behind a durably opened store
    /// ([`RetroStore::open`]); the replication layer reads segments and
    /// seed bytes straight from these. `None` for in-memory stores.
    logs: Option<ReplLogs>,
}

/// A snapshot-declaration observer (see [`RetroStore::add_snapshot_hook`]).
pub type SnapshotHook = Arc<dyn Fn(u64) + Send + Sync>;

/// A commit observer (see [`RetroStore::add_commit_hook`]).
pub type CommitHook = Arc<dyn Fn() + Send + Sync>;

/// The three durable log storages behind an open store, in the form the
/// replication layer ships them: raw append-only byte logs.
#[derive(Clone)]
pub struct ReplLogs {
    /// The redo WAL (the replication log: committed segments are parsed
    /// straight off it).
    pub wal: Arc<dyn LogStorage>,
    /// The Pagelog pre-state archive.
    pub pagelog: Arc<dyn LogStorage>,
    /// The persisted Maplog.
    pub maplog: Arc<dyn LogStorage>,
}

/// A mutually consistent cut of the three logs, taken with no commit in
/// flight — what a seeding leader copies to a new follower.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplCheckpoint {
    /// WAL bytes at the cut (a committed-record boundary).
    pub wal_len: u64,
    /// Pagelog bytes at the cut.
    pub pagelog_len: u64,
    /// Maplog bytes at the cut.
    pub maplog_len: u64,
    /// Snapshots declared at the cut.
    pub snapshot_count: u64,
}

impl RetroStore {
    /// Ephemeral store: memory-backed Pagelog, no WAL, no Maplog
    /// persistence. The workhorse for tests and deterministic benchmarks.
    pub fn in_memory(config: RetroConfig) -> Arc<Self> {
        let page_size = config.pager.page_size;
        let pager = Arc::new(Pager::new(config.pager.clone()));
        let format = config.pagelog_format;
        Arc::new(RetroStore {
            config,
            pager,
            pagelog: Pagelog::with_format(
                Arc::new(rql_pagestore::MemStorage::new()),
                page_size,
                format,
            ),
            maplog: RwLock::new(Maplog::new()),
            dirty_since_snapshot: Mutex::new(HashSet::new()),
            last_archived: Mutex::new(std::collections::HashMap::new()),
            metas: RwLock::new(Vec::new()),
            current_sidecars: RwLock::new(Arc::new(HashMap::new())),
            sidecar_archive: Mutex::new(HashMap::new()),
            sidecar_epoch: AtomicU64::new(0),
            sidecar_builder: RwLock::new(None),
            snapshot_hooks: RwLock::new(Vec::new()),
            commit_serial: Mutex::new(()),
            commit_hooks: RwLock::new(Vec::new()),
            logs: None,
        })
    }

    /// Durable store over explicit storages, replaying WAL and Maplog.
    ///
    /// After a crash the WAL restores the committed current state and the
    /// declared snapshot sequence, and the persisted Maplog + Pagelog
    /// restore the archive index, so previously declared snapshots remain
    /// queryable.
    pub fn open(
        config: RetroConfig,
        wal_storage: Arc<dyn LogStorage>,
        pagelog_storage: Arc<dyn LogStorage>,
        maplog_storage: Arc<dyn LogStorage>,
    ) -> Result<Arc<Self>> {
        let page_size = config.pager.page_size;
        reconcile_logs(wal_storage.as_ref(), maplog_storage.as_ref())?;
        let (pager, recovered_snaps) =
            Pager::open_with_wal(config.pager.clone(), Arc::clone(&wal_storage))?;
        let pager = Arc::new(pager);
        let maplog = Maplog::open(Arc::clone(&maplog_storage))?;
        if maplog.snapshot_count() != recovered_snaps.len() as u64 {
            return Err(StoreError::Corrupt(format!(
                "maplog has {} snapshots but WAL recovered {}",
                maplog.snapshot_count(),
                recovered_snaps.len()
            )));
        }
        let metas: Vec<SnapshotMeta> = recovered_snaps
            .iter()
            .map(|&id| {
                let b = maplog
                    .boundary(id)
                    .expect("boundary for recovered snapshot");
                SnapshotMeta {
                    id,
                    page_count: b.page_count,
                    txn_id: 0, // original txn id not tracked across recovery
                }
            })
            .collect();
        let format = config.pagelog_format;
        let logs = ReplLogs {
            wal: wal_storage,
            pagelog: Arc::clone(&pagelog_storage),
            maplog: maplog_storage,
        };
        Ok(Arc::new(RetroStore {
            config,
            pager,
            pagelog: Pagelog::with_format(pagelog_storage, page_size, format),
            maplog: RwLock::new(maplog),
            // Conservative: after recovery, re-archive on next modification
            // (and diff chains restart from full images).
            dirty_since_snapshot: Mutex::new(HashSet::new()),
            last_archived: Mutex::new(std::collections::HashMap::new()),
            metas: RwLock::new(metas),
            // Sidecar state is in-memory: recovery starts with none (absent
            // is always safe — scans just don't prune). Once the SQL layer
            // reinstalls its builder, `rebuild_archived_sidecars` restores
            // the archive entries from the Maplog + Pagelog, and current
            // entries come back via the usual backfill.
            current_sidecars: RwLock::new(Arc::new(HashMap::new())),
            sidecar_archive: Mutex::new(HashMap::new()),
            sidecar_epoch: AtomicU64::new(0),
            sidecar_builder: RwLock::new(None),
            snapshot_hooks: RwLock::new(Vec::new()),
            commit_serial: Mutex::new(()),
            commit_hooks: RwLock::new(Vec::new()),
            logs: Some(logs),
        }))
    }

    /// The configuration this store was opened with.
    pub fn config(&self) -> &RetroConfig {
        &self.config
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        self.pager.stats()
    }

    /// Shared buffer cache.
    pub fn cache(&self) -> &Arc<BufferCache> {
        self.pager.cache()
    }

    /// The Pagelog archive.
    pub fn pagelog(&self) -> &Pagelog {
        &self.pagelog
    }

    /// Cache keying policy in effect.
    pub fn cache_keying(&self) -> CacheKeying {
        self.config.keying
    }

    /// Begin a write transaction.
    pub fn begin(self: &Arc<Self>) -> Result<WriteTxn> {
        self.pager.begin_write()
    }

    /// Commit without declaring a snapshot.
    pub fn commit(&self, txn: WriteTxn) -> Result<()> {
        self.commit_inner(txn, false).map(|_| ())
    }

    /// `COMMIT WITH SNAPSHOT`: commit and declare a snapshot reflecting
    /// this transaction and everything committed before it. Returns the
    /// new snapshot id.
    pub fn commit_with_snapshot(&self, txn: WriteTxn) -> Result<u64> {
        self.commit_inner(txn, true)
            .map(|sid| sid.expect("snapshot id on declaring commit"))
    }

    /// Abort a transaction.
    pub fn abort(&self, txn: WriteTxn) {
        self.pager.abort(txn);
    }

    fn commit_inner(&self, txn: WriteTxn, declare: bool) -> Result<Option<u64>> {
        // The span covers the post-commit hooks too, so standing-query
        // maintenance and pushes nest inside the commit that caused
        // them; its arg (the txn id) travels in replication trailers to
        // link follower `repl_apply` spans back to this commit.
        let _span = rql_trace::span_arg(rql_trace::SpanId::Commit, txn.id());
        let declared = {
            let _serial = self.commit_serial.lock();
            self.commit_locked(txn, declare)?
        };
        if let Some(sid) = declared {
            // The snapshot is fully published and every commit-path lock
            // is released: observers may open snapshot `sid` right away.
            let hooks = self.snapshot_hooks.read().clone();
            for hook in hooks {
                hook(sid);
            }
        }
        let hooks = self.commit_hooks.read().clone();
        for hook in hooks {
            hook();
        }
        Ok(declared)
    }

    /// The commit body, run under `commit_serial` so the page publish and
    /// all log appends of one commit land before any part of the next.
    fn commit_locked(&self, txn: WriteTxn, declare: bool) -> Result<Option<u64>> {
        let latest_page_count: Option<u64> = self.metas.read().last().map(|m| m.page_count);
        let stats = self.pager.stats().clone();
        let txn_id = txn.id();
        // Sidecar maintenance, phase 1: invalidate-before-publish.
        // Build fresh sidecars from the exact images about to land, then
        // remove this commit's pages from the current map *before* the
        // pager publishes — a reader racing the commit sees no entry and
        // falls back to a full read. The entries displaced here describe
        // the pre-states this commit may archive; `pre_capture` moves
        // them to the Pagelog-offset-keyed archive below.
        self.sidecar_epoch.fetch_add(1, Ordering::AcqRel);
        let builder = self.sidecar_builder.read().clone();
        let written: Vec<rql_pagestore::PageId> = txn.staged_pages().map(|(pid, _)| pid).collect();
        let mut fresh: HashMap<u64, Arc<Vec<u8>>> = HashMap::new();
        if let Some(builder) = &builder {
            for (pid, page) in txn.staged_pages() {
                if let Some(bytes) = builder(pid, page) {
                    stats.count_sidecar_bytes(bytes.len() as u64);
                    fresh.insert(pid.0, Arc::new(bytes));
                }
            }
        }
        let displaced: HashMap<u64, Arc<Vec<u8>>> = {
            let mut map = self.current_sidecars.write();
            let mut displaced = HashMap::new();
            if !map.is_empty() {
                let mut next = (**map).clone();
                for pid in &written {
                    if let Some(old) = next.remove(&pid.0) {
                        displaced.insert(pid.0, old);
                    }
                }
                if !displaced.is_empty() {
                    *map = Arc::new(next);
                }
            }
            displaced
        };
        // COW capture runs inside the pager's commit critical section, so
        // the archive and the published state change atomically with
        // respect to writers (readers pin views and never block).
        let snapshot_id = if declare {
            Some(self.metas.read().len() as u64 + 1)
        } else {
            None
        };
        self.pager.commit(txn, snapshot_id, |pid, pre| {
            let Some(limit) = latest_page_count else {
                return Ok(()); // no snapshot declared yet: nothing to keep
            };
            if pid.0 >= limit {
                return Ok(()); // page allocated after the latest snapshot
            }
            let Some(pre_page) = pre else {
                return Ok(());
            };
            let mut dirty = self.dirty_since_snapshot.lock();
            if !dirty.insert(pid) {
                return Ok(()); // already archived for the latest snapshot
            }
            drop(dirty);
            let off = match self.pagelog.format() {
                PagelogFormat::Raw => self.pagelog.append(pre_page)?,
                PagelogFormat::Adaptive { .. } => {
                    // Diff against the last archived version of this page
                    // when one exists (Thresher's adaptive choice).
                    let base = self.last_archived.lock().get(&pid).copied();
                    let outcome = match base {
                        Some((base_off, depth)) => {
                            let base_page = self.pagelog.read(base_off)?;
                            self.pagelog
                                .append_adaptive(pre_page, Some((base_off, &base_page, depth)))?
                        }
                        None => self.pagelog.append_adaptive(pre_page, None)?,
                    };
                    self.last_archived
                        .lock()
                        .insert(pid, (outcome.offset, outcome.chain_depth));
                    outcome.offset
                }
            };
            self.maplog.write().append_mapping(pid, off)?;
            // Sidecar maintenance, phase 2: the entry displaced from the
            // current map described exactly this pre-state image; key it
            // by the Pagelog offset the SPT will resolve the page
            // through. No entry (builder off, unbuildable page) is fine —
            // snapshot scans of this version just won't prune it.
            if let Some(side) = displaced.get(&pid.0) {
                self.sidecar_archive.lock().insert(off, Arc::clone(side));
            }
            stats.count_cow_capture();
            Ok(())
        })?;
        // Sidecar maintenance, phase 3: now that the pages are
        // published, make the map authoritative for every written page —
        // insert the fresh entry or remove whatever is there (a racing
        // backfill may have slipped in an entry built from the old
        // image). The epoch bumps again under the same lock, so a
        // backfill that read its epoch while this commit was in flight
        // can no longer install after this point.
        {
            let mut map = self.current_sidecars.write();
            self.sidecar_epoch.fetch_add(1, Ordering::AcqRel);
            if !fresh.is_empty() || !map.is_empty() {
                let mut next = (**map).clone();
                let mut changed = false;
                for pid in &written {
                    match fresh.remove(&pid.0) {
                        Some(side) => {
                            next.insert(pid.0, side);
                            changed = true;
                        }
                        None => changed |= next.remove(&pid.0).is_some(),
                    }
                }
                if changed {
                    *map = Arc::new(next);
                }
            }
        }
        if declare {
            let sid = snapshot_id.unwrap();
            let page_count = self.pager.page_count();
            self.maplog.write().declare_snapshot(sid, page_count)?;
            self.dirty_since_snapshot.lock().clear();
            self.metas.write().push(SnapshotMeta {
                id: sid,
                page_count,
                txn_id,
            });
            return Ok(Some(sid));
        }
        Ok(None)
    }

    /// Register an observer called with the snapshot id after every
    /// snapshot declaration (see the `snapshot_hooks` field for the
    /// exact timing contract). Hooks cannot be removed individually;
    /// long-lived observers should consult their own registry and treat
    /// unknown or stale ids as no-ops.
    pub fn add_snapshot_hook(&self, hook: SnapshotHook) {
        self.snapshot_hooks.write().push(hook);
    }

    /// Register an observer called after *every* successful commit
    /// (snapshot-declaring or not), with all commit-path locks released.
    /// The replication leader registers one to wake its segment shippers;
    /// hooks carry no payload — observers read [`RetroStore::wal_len`]
    /// themselves, which is order-insensitive even if two commits' hook
    /// runs interleave.
    pub fn add_commit_hook(&self, hook: CommitHook) {
        self.commit_hooks.write().push(hook);
    }

    /// The raw log storages behind a durably opened store, for the
    /// replication layer (`None` when in-memory).
    pub fn repl_logs(&self) -> Option<ReplLogs> {
        self.logs.clone()
    }

    /// Bytes on the WAL (0 without a WAL). Between commits this is always
    /// a committed-record boundary.
    pub fn wal_len(&self) -> u64 {
        self.pager.wal_len()
    }

    /// Cut a mutually consistent prefix of the three logs: takes the
    /// commit serialization lock (so no commit is mid-flight), flushes
    /// everything durable, and returns the three lengths. Because the
    /// logs are append-only, the returned prefix is immutable and can be
    /// copied to a seeding follower without holding any lock.
    pub fn repl_checkpoint(&self) -> Result<ReplCheckpoint> {
        let logs = self
            .logs
            .as_ref()
            .ok_or_else(|| StoreError::Corrupt("replication requires a durable store".into()))?;
        let _serial = self.commit_serial.lock();
        self.flush()?;
        Ok(ReplCheckpoint {
            wal_len: logs.wal.len(),
            pagelog_len: logs.pagelog.len(),
            maplog_len: logs.maplog.len(),
            snapshot_count: self.snapshot_count(),
        })
    }

    /// Replay one committed leader segment on a follower store.
    ///
    /// The segment is committed under the leader's transaction id with
    /// the same page set, so the follower's WAL/Pagelog/Maplog stay
    /// byte-identical to the leader's — which is what lets a follower
    /// resume a stream by comparing raw WAL lengths. Returns the declared
    /// snapshot id, if any. Any divergence (offset mismatch before, id or
    /// length mismatch after) is reported as corruption; the caller
    /// should tear down and reseed.
    pub fn apply_replicated(self: &Arc<Self>, seg: &CommittedSegment) -> Result<Option<u64>> {
        let local = self.wal_len();
        if local != seg.start {
            return Err(StoreError::Corrupt(format!(
                "replicated segment starts at wal offset {} but local wal is at {}",
                seg.start, local
            )));
        }
        let mut txn = self.pager.begin_write_at(seg.txn_id)?;
        // Allocations are implied by out-of-bounds page ids: the pager
        // logs every allocated page (zeroed or not), so the segment's
        // max id is exactly the leader's post-commit page count - 1.
        let mut want = txn.page_count();
        for (pid, _) in &seg.pages {
            want = want.max(pid.0 + 1);
        }
        while txn.page_count() < want {
            txn.allocate_page();
        }
        for (pid, page) in &seg.pages {
            txn.write_page(*pid, page.clone())?;
        }
        let sid = self.commit_inner(txn, seg.snapshot.is_some())?;
        if sid != seg.snapshot {
            return Err(StoreError::Corrupt(format!(
                "replicated commit {} declared snapshot {:?} but leader declared {:?}",
                seg.txn_id, sid, seg.snapshot
            )));
        }
        let now = self.wal_len();
        if now != seg.end {
            return Err(StoreError::Corrupt(format!(
                "replicated apply diverged: local wal at {} but leader segment ends at {}",
                now, seg.end
            )));
        }
        Ok(sid)
    }

    /// Rebuild sidecars for archived pre-states from the Maplog + Pagelog.
    ///
    /// After recovery (or a follower seed) the sidecar archive is empty —
    /// it is in-memory state — so `AS OF` scans of old snapshots stop
    /// pruning. With a builder installed, this walks every Maplog mapping,
    /// reads the archived page image, and rebuilds the sidecar keyed by
    /// its Pagelog offset. Entries that already exist are skipped, so
    /// repeated calls only pay for what recovery lost. Returns how many
    /// sidecars were built.
    pub fn rebuild_archived_sidecars(&self) -> Result<usize> {
        let Some(builder) = self.sidecar_builder.read().clone() else {
            return Ok(0);
        };
        let entries: Vec<(rql_pagestore::PageId, u64)> = self.maplog.read().entries();
        let stats = self.pager.stats().clone();
        let mut built = 0usize;
        for (pid, off) in entries {
            if self.sidecar_archive.lock().contains_key(&off) {
                continue;
            }
            let page = self.pagelog.read(off)?;
            if let Some(bytes) = builder(pid, &page) {
                stats.count_sidecar_bytes(bytes.len() as u64);
                self.sidecar_archive.lock().insert(off, Arc::new(bytes));
                built += 1;
            }
        }
        Ok(built)
    }

    /// Install the sidecar builder. From the next commit on, every
    /// staged page gets a sidecar built from its post-image; pages
    /// written before this call have none until rewritten or backfilled
    /// with [`RetroStore::install_current_sidecars`].
    pub fn set_sidecar_builder(&self, builder: SidecarBuilder) {
        *self.sidecar_builder.write() = Some(builder);
    }

    /// Whether a sidecar builder has been installed.
    pub fn sidecar_builder_active(&self) -> bool {
        self.sidecar_builder.read().is_some()
    }

    /// The current sidecar epoch; pass it back to
    /// [`RetroStore::install_current_sidecars`] to detect interleaved
    /// commits.
    pub fn sidecar_epoch(&self) -> u64 {
        self.sidecar_epoch.load(Ordering::Acquire)
    }

    /// Sidecars describing the latest published page images (cheap
    /// `Arc` clone; what snapshot readers capture at open).
    pub fn current_sidecars(&self) -> SidecarMap {
        self.current_sidecars.read().clone()
    }

    /// Sidecar for the archived pre-state at Pagelog offset `off`.
    pub fn archived_sidecar(&self, off: u64) -> Option<Arc<Vec<u8>>> {
        self.sidecar_archive.lock().get(&off).cloned()
    }

    /// Backfill sidecars for current pages (built by the SQL layer from
    /// a pinned view). Entries are installed only if (a) no commit ran
    /// since `epoch` was read — `epoch` must be read *before* pinning
    /// the view the sidecars were built from — and (b) the page has no
    /// entry yet, so a racing commit's fresher sidecar is never
    /// clobbered. Returns how many entries were installed.
    pub fn install_current_sidecars(
        &self,
        epoch: u64,
        entries: Vec<(rql_pagestore::PageId, Vec<u8>)>,
    ) -> usize {
        if entries.is_empty() {
            return 0;
        }
        let mut map = self.current_sidecars.write();
        if self.sidecar_epoch.load(Ordering::Acquire) != epoch {
            return 0;
        }
        let stats = self.pager.stats();
        let mut next = (**map).clone();
        let mut installed = 0;
        for (pid, bytes) in entries {
            if let std::collections::hash_map::Entry::Vacant(e) = next.entry(pid.0) {
                stats.count_sidecar_bytes(bytes.len() as u64);
                e.insert(Arc::new(bytes));
                installed += 1;
            }
        }
        if installed > 0 {
            *map = Arc::new(next);
        }
        installed
    }

    /// Number of declared snapshots; ids are `1..=snapshot_count()`.
    pub fn snapshot_count(&self) -> u64 {
        self.metas.read().len() as u64
    }

    /// Metadata for snapshot `sid`.
    pub fn snapshot_meta(&self, sid: u64) -> Option<SnapshotMeta> {
        if sid == 0 {
            return None;
        }
        self.metas.read().get(sid as usize - 1).copied()
    }

    /// Pin an MVCC view of the current state (for current-state queries).
    pub fn current_view(&self) -> DbView {
        self.pager.view()
    }

    /// Open a reader over snapshot `sid`.
    ///
    /// Ordering invariant: the database view is pinned *before* the SPT is
    /// built. A commit that lands in between archives the pinned page
    /// state as the pre-state, so whichever source the reader ends up
    /// using returns identical bytes.
    pub fn open_snapshot(self: &Arc<Self>, sid: u64) -> Result<SnapshotReader> {
        let _span = rql_trace::span_arg(rql_trace::SpanId::ChainOpen, sid);
        let meta = self
            .snapshot_meta(sid)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {sid}")))?;
        // Captured before the view: a page the SPT resolves as shared was
        // unwritten from here through SPT build, so its entry (if any)
        // describes the image the reader will see.
        let sidecars = self.current_sidecars();
        let view = self.pager.view();
        let start = Instant::now();
        let scan = {
            let _spt = rql_trace::span_arg(rql_trace::SpanId::SptBuild, sid);
            self.maplog.read().build_spt(sid, self.config.use_skippy)?
        };
        let duration = start.elapsed();
        self.stats().count_maplog_scanned(scan.entries_scanned);
        let spt = Spt::new(sid, meta.page_count, scan.map);
        Ok(SnapshotReader::new(
            Arc::clone(self),
            spt,
            view,
            SptBuildStats {
                entries_scanned: scan.entries_scanned,
                duration,
            },
            None,
            sidecars,
        ))
    }

    /// Open readers over a whole set of snapshots at once, building their
    /// SPTs incrementally (one full Maplog scan for the newest id, interval
    /// overlays for the rest — see [`Maplog::build_spt_chain`]).
    ///
    /// Each reader after the first also carries the set of pages that may
    /// differ from the *previous id in the input order*
    /// ([`SnapshotReader::changed_from_prev`]), which is what delta-aware
    /// scans consume. The same ordering invariant as [`Self::open_snapshot`]
    /// holds: every view is pinned before any SPT is built.
    pub fn open_snapshot_chain(self: &Arc<Self>, ids: &[u64]) -> Result<Vec<SnapshotReader>> {
        let _span = rql_trace::span_arg(rql_trace::SpanId::ChainOpen, ids.len() as u64);
        let mut metas = Vec::with_capacity(ids.len());
        for &sid in ids {
            metas.push(
                self.snapshot_meta(sid)
                    .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {sid}")))?,
            );
        }
        // Same ordering as `open_snapshot`: sidecars before views.
        let sidecars = self.current_sidecars();
        let views: Vec<DbView> = ids.iter().map(|_| self.pager.view()).collect();
        let maplog = self.maplog.read();
        let start = Instant::now();
        let scans = {
            let _spt = rql_trace::span_arg(rql_trace::SpanId::SptBuild, ids.len() as u64);
            maplog.build_spt_chain(ids, self.config.use_skippy)?
        };
        let duration = start.elapsed();
        let mut changed: Vec<Option<HashSet<rql_pagestore::PageId>>> =
            Vec::with_capacity(ids.len());
        for (i, &sid) in ids.iter().enumerate() {
            changed.push(if i == 0 {
                None
            } else {
                Some(maplog.changed_pages(ids[i - 1], sid)?)
            });
        }
        drop(maplog);
        let mut readers = Vec::with_capacity(ids.len());
        let per_id = if ids.is_empty() {
            duration
        } else {
            duration / ids.len() as u32
        };
        for (((scan, meta), view), changed) in scans.into_iter().zip(metas).zip(views).zip(changed)
        {
            self.stats().count_maplog_scanned(scan.entries_scanned);
            readers.push(SnapshotReader::new(
                Arc::clone(self),
                Spt::new(meta.id, meta.page_count, scan.map),
                view,
                SptBuildStats {
                    entries_scanned: scan.entries_scanned,
                    duration: per_id,
                },
                changed,
                sidecars.clone(),
            ));
        }
        Ok(readers)
    }

    /// Pages whose content may differ between two snapshots — the
    /// complement of the paper's `shared(S1, S2)`, computed directly from
    /// the Maplog window between the declarations (no SPT builds).
    pub fn changed_pages(&self, s1: u64, s2: u64) -> Result<HashSet<rql_pagestore::PageId>> {
        self.maplog.read().changed_pages(s1, s2)
    }

    /// Build just the SPT for `sid` (introspection / diff computation).
    pub fn build_spt(&self, sid: u64) -> Result<Spt> {
        let meta = self
            .snapshot_meta(sid)
            .ok_or_else(|| StoreError::Corrupt(format!("unknown snapshot {sid}")))?;
        let scan = self.maplog.read().build_spt(sid, self.config.use_skippy)?;
        Ok(Spt::new(sid, meta.page_count, scan.map))
    }

    /// The paper's `diff(S1, S2)`: pages not shared between two snapshots.
    pub fn diff(&self, s1: u64, s2: u64) -> Result<u64> {
        Ok(self.build_spt(s1)?.diff(&self.build_spt(s2)?))
    }

    /// The paper's `shared(S1, S2)`.
    pub fn shared(&self, s1: u64, s2: u64) -> Result<u64> {
        Ok(self.build_spt(s1)?.shared_with(&self.build_spt(s2)?))
    }

    /// Make all durable state stable: group-flush the Pagelog, sync the
    /// Maplog, and sync the WAL (the checkpoint a clean shutdown or an
    /// explicit durability point performs).
    pub fn flush(&self) -> Result<()> {
        self.pagelog.flush()?;
        self.maplog.read().sync()?;
        self.pager.sync_wal()
    }

    /// Total Maplog entries (space accounting).
    pub fn maplog_entries(&self) -> usize {
        self.maplog.read().entry_count()
    }

    /// Entries held by Skippy skip levels (space accounting).
    pub fn skippy_entries(&self) -> usize {
        self.maplog.read().skippy_entries()
    }
}

/// Reconcile crash-torn tails across the WAL and the Maplog before
/// recovery proper.
///
/// A commit persists in three steps: Maplog mappings (pre-states), then
/// the WAL commit record (the commit point), then — for declaring
/// commits — the Maplog boundary. A crash between any two steps leaves
/// the logs disagreeing on the snapshot count:
///
/// * **Maplog ahead** (boundary persisted, WAL commit lost): the
///   boundary and everything after it belong to commits the WAL will
///   discard — truncate the Maplog at the first excess boundary.
///   Mappings appended *before* it by those torn commits are kept: the
///   pages' pre-states were archived but never replaced, so the next
///   commit re-archives identical bytes and first-occurrence-wins SPT
///   construction resolves the duplicates.
/// * **WAL ahead** (boundary lost): the declaring commit cannot be
///   reconstructed (its page count is gone), so truncate the WAL back
///   to the start of that commit's segment. The lost tail re-ships on
///   the next replication resume, or is simply absent on a single node
///   — equivalent to crashing slightly earlier.
///
/// Idempotent; a no-op when the logs already agree.
fn reconcile_logs(wal: &dyn LogStorage, maplog: &dyn LogStorage) -> Result<()> {
    // Fixed-size Maplog records: drop a torn partial tail first.
    const MAPLOG_REC: u64 = 17;
    let mut mlen = maplog.len();
    if !mlen.is_multiple_of(MAPLOG_REC) {
        mlen -= mlen % MAPLOG_REC;
        maplog.truncate(mlen)?;
    }
    // Offsets of boundary records, in order.
    let mut boundaries = Vec::new();
    let mut moff = 0u64;
    while moff < mlen {
        let mut kind = [0u8; 1];
        maplog.read_at(moff, &mut kind)?;
        if kind[0] == 2 {
            boundaries.push(moff);
        }
        moff += MAPLOG_REC;
    }
    // Start offsets of WAL segments that declare a snapshot, in order.
    let wal_len = wal.len();
    let mut declaring = Vec::new();
    let mut woff = 0u64;
    while let Some(seg) = rql_pagestore::next_committed_segment(wal, woff, wal_len)? {
        if seg.snapshot.is_some() {
            declaring.push(seg.start);
        }
        woff = seg.end;
    }
    if boundaries.len() > declaring.len() {
        maplog.truncate(boundaries[declaring.len()])?;
    } else if declaring.len() > boundaries.len() {
        wal.truncate(declaring[boundaries.len()])?;
    }
    Ok(())
}
