//! Property tests for the page-diff codec: `apply(base, diff(base,
//! target)) == target` for arbitrary page pairs, and the wire encoding
//! round-trips losslessly.

use proptest::prelude::*;

use rql_pagestore::Page;
use rql_retro::pagediff::{apply_runs, decode_runs, diff_pages, encode_runs, encoded_len};

const PAGE: usize = 128;

fn check_roundtrip(base_bytes: &[u8], target_bytes: &[u8]) -> Result<(), TestCaseError> {
    let base = Page::from_bytes(base_bytes.to_vec());
    let target = Page::from_bytes(target_bytes.to_vec());
    let runs = diff_pages(&base, &target);
    let applied = apply_runs(&base, &runs);
    prop_assert_eq!(applied.bytes(), target.bytes());
    // Runs never overlap or run past the page, and cover every changed
    // byte (checked above); the encoding must round-trip exactly.
    let mut enc = Vec::new();
    encode_runs(&runs, &mut enc);
    prop_assert_eq!(enc.len(), encoded_len(&runs));
    let decoded = decode_runs(&enc).expect("own encoding decodes");
    prop_assert_eq!(decoded, runs);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn diff_apply_roundtrip_on_random_pairs(
        base in proptest::collection::vec(any::<u8>(), PAGE),
        target in proptest::collection::vec(any::<u8>(), PAGE),
    ) {
        check_roundtrip(&base, &target)?;
    }

    #[test]
    fn diff_apply_roundtrip_on_sparse_mutations(
        base in proptest::collection::vec(any::<u8>(), PAGE),
        edits in proptest::collection::vec((0..PAGE, any::<u8>()), 0..12),
    ) {
        let mut target = base.clone();
        for &(off, byte) in &edits {
            target[off] = byte;
        }
        check_roundtrip(&base, &target)?;
    }
}

#[test]
fn all_equal_pages_produce_empty_diff() {
    let bytes: Vec<u8> = (0..PAGE).map(|i| (i % 251) as u8).collect();
    let base = Page::from_bytes(bytes.clone());
    let target = Page::from_bytes(bytes);
    let runs = diff_pages(&base, &target);
    assert!(runs.is_empty());
    assert_eq!(apply_runs(&base, &runs).bytes(), target.bytes());
    assert_eq!(encoded_len(&runs), 2);
}

#[test]
fn all_different_pages_produce_one_full_run() {
    let base = Page::from_bytes(vec![0u8; PAGE]);
    let target = Page::from_bytes(vec![0xFFu8; PAGE]);
    let runs = diff_pages(&base, &target);
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].offset, 0);
    assert_eq!(runs[0].bytes.len(), PAGE);
    assert_eq!(apply_runs(&base, &runs).bytes(), target.bytes());
}
