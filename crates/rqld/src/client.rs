//! Blocking client for the `rqld` wire protocol.
//!
//! One [`Client`] wraps one TCP connection and one server session. The
//! session id from the `HELLO` greeting is exposed so a *second*
//! connection can cancel this one's in-flight query — the same
//! out-of-band arrangement as Postgres' `BackendKeyData`.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::protocol::{
    read_frame, write_frame, ProtoError, Request, Response, WireDelta, WireDiagnostic, WireProfile,
    WireResult,
};

/// One event on a subscribed connection (see [`Client::subscribe`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionEvent {
    /// A per-snapshot result-table change was pushed.
    Delta(WireDelta),
    /// The subscription ended; the connection is back in
    /// request-response mode.
    End {
        /// The standing query's name.
        name: String,
        /// Why it ended (`"unregistered"` or `"drained"`).
        reason: String,
    },
}

/// Client-side errors: transport/decode trouble, or a server `ERROR`
/// frame surfaced with its wire code.
#[derive(Debug)]
pub enum ClientError {
    /// Frame transport or decode failure.
    Proto(ProtoError),
    /// The server answered with an `ERROR` frame.
    Server {
        /// `[RQLxxx]`-style code.
        code: String,
        /// Human-readable message.
        message: String,
    },
    /// The server answered with a frame the verb does not expect.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => write!(f, "[{code}] {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response frame: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// Client-side result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A connected `rqld` client.
pub struct Client {
    stream: TcpStream,
    session: u64,
    trace_id: Option<[u8; 16]>,
}

impl Client {
    /// Connect and consume the `HELLO` greeting.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr).map_err(ProtoError::Io)?;
        let _ = stream.set_nodelay(true);
        let mut client = Client {
            stream,
            session: 0,
            trace_id: None,
        };
        match client.read_response()? {
            Response::Hello { session } => {
                client.session = session;
                Ok(client)
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected HELLO")),
        }
    }

    /// This connection's server-side session id (the `CANCEL` handle).
    pub fn session_id(&self) -> u64 {
        self.session
    }

    /// Attach a client-generated 16-byte trace id to every subsequent
    /// PREPARE/RUN/PROFILE request (the `rql --trace-id` switch). The
    /// server records it in its trace ring, letting `stitch_trace.py`
    /// correlate this client's work across per-node exports.
    pub fn set_trace_id(&mut self, id: Option<[u8; 16]>) {
        self.trace_id = id;
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response> {
        let (opcode, payload) = request.encode();
        write_frame(&mut self.stream, opcode, &payload)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response> {
        let (opcode, payload) = read_frame(&mut self.stream)?;
        Ok(Response::decode(opcode, &payload)?)
    }

    /// Lint a program server-side; returns diagnostics, executes nothing.
    pub fn prepare(&mut self, program: &str) -> Result<Vec<WireDiagnostic>> {
        match self.round_trip(&Request::Prepare {
            program: program.into(),
            trace: self.trace_id,
        })? {
            Response::Diagnostics { diagnostics } => Ok(diagnostics),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected DIAGNOSTICS")),
        }
    }

    /// Execute a program; returns result tables, reports and snapshots.
    pub fn run(&mut self, program: &str) -> Result<WireResult> {
        self.run_opts(program, false)
    }

    /// [`Client::run`] with a per-request memo override: `no_memo = true`
    /// asks the server to bypass its shared memo store for this program
    /// (the `--no-memo` ablation switch).
    pub fn run_opts(&mut self, program: &str, no_memo: bool) -> Result<WireResult> {
        match self.round_trip(&Request::Run {
            program: program.into(),
            no_memo,
            trace: self.trace_id,
        })? {
            Response::Result(result) => Ok(result),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected RESULT")),
        }
    }

    /// Execute a program and ask for the per-snapshot cost profile along
    /// with the results (the wire form of `rql --profile`).
    pub fn profile(&mut self, program: &str, no_memo: bool) -> Result<WireProfile> {
        match self.round_trip(&Request::Profile {
            program: program.into(),
            no_memo,
            trace: self.trace_id,
        })? {
            Response::Profile(profile) => Ok(profile),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected PROFILE")),
        }
    }

    /// Cancel another session's in-flight query by its `HELLO` id.
    pub fn cancel(&mut self, session: u64) -> Result<()> {
        match self.round_trip(&Request::Cancel { session })? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected OK")),
        }
    }

    /// One-line server status.
    pub fn status(&mut self) -> Result<String> {
        match self.round_trip(&Request::Status { flight: false })? {
            Response::Text(text) => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected TEXT")),
        }
    }

    /// Status plus the server's flight-recorder dump (live ring and the
    /// dump frozen at the last failed job, if any).
    pub fn status_flight(&mut self) -> Result<String> {
        match self.round_trip(&Request::Status { flight: true })? {
            Response::Text(text) => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected TEXT")),
        }
    }

    /// Metrics snapshot, human (`json = false`) or JSON.
    pub fn metrics(&mut self, json: bool) -> Result<String> {
        match self.round_trip(&Request::Metrics { json })? {
            Response::Text(text) => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected TEXT")),
        }
    }

    /// Replication status snapshot, human (`json = false`) or JSON: the
    /// server's role, phase, lag gauges and shipping/applying counters.
    pub fn replstatus(&mut self, json: bool) -> Result<String> {
        match self.round_trip(&Request::ReplStatus { json })? {
            Response::Text(text) => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected TEXT")),
        }
    }

    /// Register a standing query (`MAINTAIN QUERY name AS …`). Returns
    /// the server's confirmation line
    /// (`registered name=… table=… snapshots_seeded=…`).
    pub fn register(&mut self, statement: &str) -> Result<String> {
        match self.round_trip(&Request::Register {
            statement: statement.into(),
        })? {
            Response::Text(text) => Ok(text),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected TEXT")),
        }
    }

    /// Unregister a standing query by name. Its subscribers get a
    /// terminal `END` frame; the maintained table is left in place.
    pub fn unregister(&mut self, name: &str) -> Result<()> {
        match self.round_trip(&Request::Unregister { name: name.into() })? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected OK")),
        }
    }

    /// Subscribe to a standing query. Returns the opening `RESULT` frame
    /// (the full maintained table as of subscription time); the
    /// connection is then in push mode — call [`Client::next_event`]
    /// until it yields [`SubscriptionEvent::End`].
    pub fn subscribe(&mut self, name: &str) -> Result<WireResult> {
        match self.round_trip(&Request::Subscribe { name: name.into() })? {
            Response::Result(result) => Ok(result),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected RESULT")),
        }
    }

    /// Block for the next pushed frame on a subscribed connection.
    pub fn next_event(&mut self) -> Result<SubscriptionEvent> {
        match self.read_response()? {
            Response::Delta(delta) => Ok(SubscriptionEvent::Delta(delta)),
            Response::End { name, reason } => Ok(SubscriptionEvent::End { name, reason }),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected DELTA or END")),
        }
    }

    /// Ask the server to drain and stop.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.round_trip(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            _ => Err(ClientError::Unexpected("expected OK")),
        }
    }
}
