//! # rqld
//!
//! A concurrent RQL server and client. `rqld` lifts the embedded RQL
//! stack (pagestore → retro → sqlengine → core) behind a small
//! length-prefixed TCP protocol so many clients can run retrospective
//! computations against one shared snapshot store:
//!
//! * [`protocol`] — the wire format: request/response frames carrying
//!   RQL programs, result tables, mechanism cost reports, analyzer
//!   diagnostics and `[RQLxxx]` errors;
//! * [`pool`] — the shared read-path stack ([`pool::SharedStack`]: one
//!   buffer cache, one maplog) and per-connection sessions with private
//!   auxiliary databases and a set-based `SnapIds` fan-out;
//! * [`server`] — accept loop, bounded admission queue + worker pool,
//!   per-query deadline watchdog, out-of-band `CANCEL`, graceful drain;
//! * [`metrics`] — counters and a log-bucketed latency histogram served
//!   by the `METRICS` verb;
//! * [`observe`] — the same registries rendered as a Prometheus text
//!   exposition page, served on `--metrics-listen`'s `/metrics`;
//! * [`client`] — a blocking client used by the `rql` CLI and tests.
//!
//! Everything is std + workspace crates: no async runtime, no external
//! protocol dependencies.

#![warn(missing_docs)]

pub mod client;
pub mod metrics;
pub mod observe;
pub mod pool;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, SubscriptionEvent};
pub use metrics::{LatencyHistogram, Metrics, StandingSnapshot};
pub use pool::{ServerSession, SharedStack, SnapEntry};
pub use protocol::{
    Request, Response, WireDelta, WireDiagnostic, WireFix, WireReport, WireResult, WireTable,
    MAX_FRAME,
};
pub use server::{error_code, serve, ServerConfig, ServerHandle, ADMISSION_CODE};
