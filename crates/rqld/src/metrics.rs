//! Server metrics: counters, gauges and a log-bucketed latency
//! histogram, rendered for the `METRICS` verb in human and JSON form.
//!
//! The counter and histogram *types* live in `rql-trace` (they are the
//! observability layer's primitives; this module used to own them and
//! re-exports [`LatencyHistogram`] for compatibility). This registry
//! holds the server-level instances and the render logic — field names
//! and order are a wire-stable surface consumed by dashboards, so the
//! migration onto trace counters kept the output byte-identical.
//! Page-level I/O counters are not duplicated here: the exporter takes
//! the shared store's `IoStatsSnapshot` at render time, so `METRICS`
//! reflects exactly what the execution layer counted.

use rql_memo::MemoStatsSnapshot;
use rql_pagestore::IoStatsSnapshot;
use rql_repl::ReplSnapshot;
use rql_standing::QueryStatus;
use rql_trace::Counter;

pub use rql_trace::LatencyHistogram;

/// Aggregated standing-query counters, sampled from the
/// [`rql_standing::StandingEngine`] at render time (like the store's
/// `IoStatsSnapshot`: the engine owns the live numbers, the exporter
/// only reads them, so `METRICS` cannot drift from maintenance reality).
#[derive(Debug, Default, Clone)]
pub struct StandingSnapshot {
    /// Registered standing queries.
    pub queries: u64,
    /// Live subscriptions across all queries.
    pub subscribers: u64,
    /// Snapshots folded by seeding batch passes.
    pub snapshots_seeded: u64,
    /// Snapshots folded incrementally after registration.
    pub snapshots_maintained: u64,
    /// Heap/pagelog pages read by maintenance passes.
    pub pages_scanned: u64,
    /// Pages skipped by delta caching or sidecar pruning.
    pub pages_skipped: u64,
    /// Delta rows (added + removed) pushed to subscribers.
    pub rows_pushed: u64,
    /// Maintenance passes that failed (gaps in maintained tables).
    pub maintain_errors: u64,
    /// Push-latency observations (one per subscriber frame).
    pub push_count: u64,
    /// Mean push latency in microseconds (count-weighted across queries).
    pub push_mean_micros: u64,
    /// Worst per-query p99 push latency in microseconds.
    pub push_p99_micros: u64,
}

impl StandingSnapshot {
    /// Aggregate the per-query statuses the engine reports.
    pub fn from_statuses(statuses: &[QueryStatus]) -> StandingSnapshot {
        let mut s = StandingSnapshot {
            queries: statuses.len() as u64,
            ..Default::default()
        };
        let mut weighted_mean = 0u64;
        for q in statuses {
            s.subscribers += q.subscribers;
            s.snapshots_seeded += q.stats.snapshots_seeded;
            s.snapshots_maintained += q.stats.snapshots_maintained;
            s.pages_scanned += q.stats.pages_scanned;
            s.pages_skipped += q.stats.pages_skipped;
            s.rows_pushed += q.stats.rows_pushed;
            s.maintain_errors += q.maintain_errors;
            s.push_count += q.push_count;
            weighted_mean += q.push_mean_micros.saturating_mul(q.push_count);
            s.push_p99_micros = s.push_p99_micros.max(q.push_p99_micros);
        }
        s.push_mean_micros = weighted_mean.checked_div(s.push_count).unwrap_or(0);
        s
    }

    /// Stable `(name, value)` list, appended under a `standing_` prefix.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("queries", self.queries),
            ("subscribers", self.subscribers),
            ("snapshots_seeded", self.snapshots_seeded),
            ("snapshots_maintained", self.snapshots_maintained),
            ("pages_scanned", self.pages_scanned),
            ("pages_skipped", self.pages_skipped),
            ("rows_pushed", self.rows_pushed),
            ("maintain_errors", self.maintain_errors),
            ("push_count", self.push_count),
            ("push_mean_micros", self.push_mean_micros),
            ("push_p99_micros", self.push_p99_micros),
        ]
    }
}

/// The server's metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries accepted for execution (RUN statements admitted).
    pub queries_total: Counter,
    /// Queries that completed successfully.
    pub queries_ok: Counter,
    /// Queries that failed with an error (including cancellations).
    pub queries_failed: Counter,
    /// Queries cancelled by client `CANCEL` (subset of failed).
    pub queries_cancelled: Counter,
    /// Queries killed by the per-query deadline (subset of failed).
    pub queries_timed_out: Counter,
    /// Requests rejected at admission (queue full).
    pub admission_rejected: Counter,
    /// PREPARE requests served.
    pub prepares_total: Counter,
    /// Mechanism loop iterations (Qq executions) across all queries.
    pub qq_iterations: Counter,
    /// Qq rows produced across all queries.
    pub qq_rows: Counter,
    /// Heap pages skipped by delta-driven iteration (served from the
    /// delta scanner's cache).
    pub pages_skipped_delta: Counter,
    /// Heap pages skipped because a zone-map/bloom sidecar refuted the
    /// query's WHERE clause.
    pub pages_pruned_filter: Counter,
    /// Result rows shipped to clients.
    pub rows_returned: Counter,
    /// Currently open client connections.
    pub connections_open: Counter,
    /// Connections accepted since start.
    pub connections_total: Counter,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: Counter,
    /// Jobs executing right now.
    pub in_flight: Counter,
    /// End-to-end query latency.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by 1.
    pub fn inc(&self, counter: &Counter) {
        counter.inc();
    }

    /// Bump a counter by `n`.
    pub fn add(&self, counter: &Counter, n: u64) {
        counter.add(n);
    }

    /// Decrement a gauge (saturating at zero).
    pub fn dec(&self, gauge: &Counter) {
        gauge.dec();
    }

    /// Every scalar as a stable `(name, value)` list; the histogram adds
    /// its derived `latency_*` entries.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("queries_total", self.queries_total.get()),
            ("queries_ok", self.queries_ok.get()),
            ("queries_failed", self.queries_failed.get()),
            ("queries_cancelled", self.queries_cancelled.get()),
            ("queries_timed_out", self.queries_timed_out.get()),
            ("admission_rejected", self.admission_rejected.get()),
            ("prepares_total", self.prepares_total.get()),
            ("qq_iterations", self.qq_iterations.get()),
            ("qq_rows", self.qq_rows.get()),
            ("pages_skipped_delta", self.pages_skipped_delta.get()),
            ("pages_pruned_filter", self.pages_pruned_filter.get()),
            ("rows_returned", self.rows_returned.get()),
            ("connections_open", self.connections_open.get()),
            ("connections_total", self.connections_total.get()),
            ("queue_depth", self.queue_depth.get()),
            ("in_flight", self.in_flight.get()),
            ("latency_count", self.latency.count()),
            ("latency_mean_micros", self.latency.mean_micros()),
            ("latency_p50_micros", self.latency.quantile_micros(0.50)),
            ("latency_p99_micros", self.latency.quantile_micros(0.99)),
        ]
    }

    /// Human-readable render: one `name value` line per metric, then the
    /// store's I/O counters under an `io_` prefix, the shared memo
    /// store's counters under a `memo_` prefix, the standing-query
    /// engine's counters under a `standing_` prefix, and the replication
    /// counters under a `repl_` prefix.
    pub fn render_human(
        &self,
        io: &IoStatsSnapshot,
        memo: &MemoStatsSnapshot,
        standing: &StandingSnapshot,
        repl: &ReplSnapshot,
    ) -> String {
        let mut out = String::new();
        for (name, value) in self.fields() {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (prefix, fields) in [
            ("io_", io.fields().to_vec()),
            ("memo_", memo.fields().to_vec()),
            ("standing_", standing.fields()),
            ("repl_", repl.fields()),
        ] {
            for (name, value) in fields {
                out.push_str(prefix);
                out.push_str(name);
                out.push(' ');
                out.push_str(&value.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// JSON render (flat object; all values are integers, so no escaping
    /// or float formatting subtleties).
    pub fn render_json(
        &self,
        io: &IoStatsSnapshot,
        memo: &MemoStatsSnapshot,
        standing: &StandingSnapshot,
        repl: &ReplSnapshot,
    ) -> String {
        let mut parts: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect();
        for (prefix, fields) in [
            ("io_", io.fields().to_vec()),
            ("memo_", memo.fields().to_vec()),
            ("standing_", standing.fields()),
            ("repl_", repl.fields()),
        ] {
            parts.extend(
                fields
                    .into_iter()
                    .map(|(name, value)| format!("\"{prefix}{name}\":{value}")),
            );
        }
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use std::time::Duration;

    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_micros(0.50);
        assert!((64..=256).contains(&p50), "p50={p50}");
        let p99 = h.quantile_micros(0.99);
        assert!(p99 <= 256, "p99 covers the 100µs mass, got {p99}");
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 32_768, "max sample is 50ms, got {p100}");
        assert!(h.mean_micros() >= 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn renders_include_io_memo_and_latency() {
        let m = Metrics::new();
        m.inc(&m.queries_total);
        m.latency.record(Duration::from_micros(10));
        let io = IoStatsSnapshot {
            pagelog_reads: 7,
            ..Default::default()
        };
        let memo = MemoStatsSnapshot {
            hits: 5,
            misses: 2,
            ..Default::default()
        };
        let standing = StandingSnapshot {
            queries: 2,
            rows_pushed: 9,
            ..Default::default()
        };
        let repl = ReplSnapshot {
            role: 1,
            segments_shipped: 3,
            ..Default::default()
        };
        let human = m.render_human(&io, &memo, &standing, &repl);
        assert!(human.contains("queries_total 1"));
        assert!(human.contains("io_pagelog_reads 7"));
        assert!(human.contains("memo_hits 5"));
        assert!(human.contains("memo_misses 2"));
        assert!(human.contains("memo_spill_errors 0"));
        assert!(human.contains("latency_p99_micros"));
        assert!(human.contains("standing_queries 2"));
        assert!(human.contains("standing_rows_pushed 9"));
        assert!(human.contains("repl_role 1"));
        assert!(human.contains("repl_segments_shipped 3"));
        let json = m.render_json(&io, &memo, &standing, &repl);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries_total\":1"));
        assert!(json.contains("\"io_pagelog_reads\":7"));
        assert!(json.contains("\"memo_hits\":5"));
        assert!(json.contains("\"memo_evictions\":0"));
        assert!(json.contains("\"standing_queries\":2"));
        assert!(json.contains("\"standing_push_p99_micros\":0"));
        assert!(json.contains("\"repl_role\":1"));
        assert!(json.contains("\"repl_lag_bytes\":0"));
    }

    #[test]
    fn repl_field_order_is_wire_stable() {
        // The `repl_` section mirrors `rql replstatus`; dashboards key on
        // this exact sequence, which may only ever grow at the end.
        let names: Vec<&str> = ReplSnapshot::default()
            .fields()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            [
                "role",
                "phase",
                "followers",
                "seeds_served",
                "segments_shipped",
                "bytes_shipped",
                "sheds",
                "segments_applied",
                "bytes_applied",
                "seed_bytes",
                "reconnects",
                "lag_bytes",
                "lag_snapshots",
                "lag_micros",
            ]
        );
    }

    #[test]
    fn standing_snapshot_aggregates_statuses() {
        let mk = |subs: u64, count: u64, mean: u64, p99: u64| QueryStatus {
            name: "q".into(),
            table: "T".into(),
            mechanism: "collatedata",
            subscribers: subs,
            stats: rql::MaintainStats {
                snapshots_seeded: 1,
                snapshots_maintained: 2,
                pages_scanned: 10,
                pages_skipped: 5,
                rows_pushed: 3,
                groups_skipped: 0,
            },
            maintain_errors: 1,
            push_count: count,
            push_mean_micros: mean,
            push_p99_micros: p99,
        };
        let s = StandingSnapshot::from_statuses(&[mk(1, 2, 100, 200), mk(2, 6, 20, 500)]);
        assert_eq!(s.queries, 2);
        assert_eq!(s.subscribers, 3);
        assert_eq!(s.snapshots_seeded, 2);
        assert_eq!(s.snapshots_maintained, 4);
        assert_eq!(s.pages_scanned, 20);
        assert_eq!(s.rows_pushed, 6);
        assert_eq!(s.maintain_errors, 2);
        assert_eq!(s.push_count, 8);
        // (100*2 + 20*6) / 8 = 40: count-weighted, not a mean of means.
        assert_eq!(s.push_mean_micros, 40);
        assert_eq!(s.push_p99_micros, 500);
        assert_eq!(StandingSnapshot::from_statuses(&[]).push_mean_micros, 0);
    }

    #[test]
    fn standing_field_order_is_wire_stable() {
        let names: Vec<&str> = StandingSnapshot::default()
            .fields()
            .iter()
            .map(|(n, _)| *n)
            .collect();
        assert_eq!(
            names,
            [
                "queries",
                "subscribers",
                "snapshots_seeded",
                "snapshots_maintained",
                "pages_scanned",
                "pages_skipped",
                "rows_pushed",
                "maintain_errors",
                "push_count",
                "push_mean_micros",
                "push_p99_micros",
            ]
        );
    }

    #[test]
    fn gauge_dec_saturates() {
        let m = Metrics::new();
        m.dec(&m.queue_depth);
        assert_eq!(m.queue_depth.get(), 0);
    }

    #[test]
    fn field_order_is_wire_stable() {
        // Dashboards key on this exact sequence. The pruning sidecar
        // work split `pages_skipped` into `pages_skipped_delta` +
        // `pages_pruned_filter` (one deliberate wire bump); nothing may
        // reorder or rename it further.
        let names: Vec<&str> = Metrics::new().fields().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "queries_total",
                "queries_ok",
                "queries_failed",
                "queries_cancelled",
                "queries_timed_out",
                "admission_rejected",
                "prepares_total",
                "qq_iterations",
                "qq_rows",
                "pages_skipped_delta",
                "pages_pruned_filter",
                "rows_returned",
                "connections_open",
                "connections_total",
                "queue_depth",
                "in_flight",
                "latency_count",
                "latency_mean_micros",
                "latency_p50_micros",
                "latency_p99_micros",
            ]
        );
    }
}
