//! Server metrics: counters, gauges and a log-bucketed latency
//! histogram, rendered for the `METRICS` verb in human and JSON form.
//!
//! Everything is lock-free relaxed atomics — metrics are statistics,
//! not synchronization (the same discipline as `pagestore::stats`).
//! Page-level I/O counters are not duplicated here: the exporter takes
//! the shared store's `IoStatsSnapshot` at render time, so `METRICS`
//! reflects exactly what the execution layer counted.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use rql_memo::MemoStatsSnapshot;
use rql_pagestore::IoStatsSnapshot;

/// Latency histogram with power-of-two microsecond buckets:
/// bucket `i` counts samples in `[2^i, 2^(i+1))` µs (bucket 0 is `<2µs`).
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 32],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let idx = (64 - micros.leading_zeros() as usize).min(31);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros
            .load(Ordering::Relaxed)
            .checked_div(self.count())
            .unwrap_or(0)
    }

    /// Upper bound (µs) of the bucket containing quantile `q` in `[0,1]`.
    /// Bucketed, so the value is exact to within a factor of two.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << 31
    }
}

/// The server's metrics registry.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Queries accepted for execution (RUN statements admitted).
    pub queries_total: AtomicU64,
    /// Queries that completed successfully.
    pub queries_ok: AtomicU64,
    /// Queries that failed with an error (including cancellations).
    pub queries_failed: AtomicU64,
    /// Queries cancelled by client `CANCEL` (subset of failed).
    pub queries_cancelled: AtomicU64,
    /// Queries killed by the per-query deadline (subset of failed).
    pub queries_timed_out: AtomicU64,
    /// Requests rejected at admission (queue full).
    pub admission_rejected: AtomicU64,
    /// PREPARE requests served.
    pub prepares_total: AtomicU64,
    /// Mechanism loop iterations (Qq executions) across all queries.
    pub qq_iterations: AtomicU64,
    /// Qq rows produced across all queries.
    pub qq_rows: AtomicU64,
    /// Heap pages skipped by delta-driven iteration.
    pub pages_skipped: AtomicU64,
    /// Result rows shipped to clients.
    pub rows_returned: AtomicU64,
    /// Currently open client connections.
    pub connections_open: AtomicU64,
    /// Connections accepted since start.
    pub connections_total: AtomicU64,
    /// Jobs waiting in the admission queue right now.
    pub queue_depth: AtomicU64,
    /// Jobs executing right now.
    pub in_flight: AtomicU64,
    /// End-to-end query latency.
    pub latency: LatencyHistogram,
}

impl Metrics {
    /// Fresh zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bump a counter by 1.
    pub fn inc(&self, counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bump a counter by `n`.
    pub fn add(&self, counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Decrement a gauge (saturating at zero).
    pub fn dec(&self, gauge: &AtomicU64) {
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Every scalar as a stable `(name, value)` list; the histogram adds
    /// its derived `latency_*` entries.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        vec![
            ("queries_total", g(&self.queries_total)),
            ("queries_ok", g(&self.queries_ok)),
            ("queries_failed", g(&self.queries_failed)),
            ("queries_cancelled", g(&self.queries_cancelled)),
            ("queries_timed_out", g(&self.queries_timed_out)),
            ("admission_rejected", g(&self.admission_rejected)),
            ("prepares_total", g(&self.prepares_total)),
            ("qq_iterations", g(&self.qq_iterations)),
            ("qq_rows", g(&self.qq_rows)),
            ("pages_skipped", g(&self.pages_skipped)),
            ("rows_returned", g(&self.rows_returned)),
            ("connections_open", g(&self.connections_open)),
            ("connections_total", g(&self.connections_total)),
            ("queue_depth", g(&self.queue_depth)),
            ("in_flight", g(&self.in_flight)),
            ("latency_count", self.latency.count()),
            ("latency_mean_micros", self.latency.mean_micros()),
            ("latency_p50_micros", self.latency.quantile_micros(0.50)),
            ("latency_p99_micros", self.latency.quantile_micros(0.99)),
        ]
    }

    /// Human-readable render: one `name value` line per metric, then the
    /// store's I/O counters under an `io_` prefix and the shared memo
    /// store's counters under a `memo_` prefix.
    pub fn render_human(&self, io: &IoStatsSnapshot, memo: &MemoStatsSnapshot) -> String {
        let mut out = String::new();
        for (name, value) in self.fields() {
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in io.fields() {
            out.push_str("io_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        for (name, value) in memo.fields() {
            out.push_str("memo_");
            out.push_str(name);
            out.push(' ');
            out.push_str(&value.to_string());
            out.push('\n');
        }
        out
    }

    /// JSON render (flat object; all values are integers, so no escaping
    /// or float formatting subtleties).
    pub fn render_json(&self, io: &IoStatsSnapshot, memo: &MemoStatsSnapshot) -> String {
        let mut parts: Vec<String> = self
            .fields()
            .into_iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect();
        parts.extend(
            io.fields()
                .into_iter()
                .map(|(name, value)| format!("\"io_{name}\":{value}")),
        );
        parts.extend(
            memo.fields()
                .into_iter()
                .map(|(name, value)| format!("\"memo_{name}\":{value}")),
        );
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for _ in 0..99 {
            h.record(Duration::from_micros(100));
        }
        h.record(Duration::from_millis(50));
        assert_eq!(h.count(), 100);
        let p50 = h.quantile_micros(0.50);
        assert!((64..=256).contains(&p50), "p50={p50}");
        let p99 = h.quantile_micros(0.99);
        assert!(p99 <= 256, "p99 covers the 100µs mass, got {p99}");
        let p100 = h.quantile_micros(1.0);
        assert!(p100 >= 32_768, "max sample is 50ms, got {p100}");
        assert!(h.mean_micros() >= 100);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::default();
        assert_eq!(h.quantile_micros(0.99), 0);
        assert_eq!(h.mean_micros(), 0);
    }

    #[test]
    fn renders_include_io_memo_and_latency() {
        let m = Metrics::new();
        m.inc(&m.queries_total);
        m.latency.record(Duration::from_micros(10));
        let io = IoStatsSnapshot {
            pagelog_reads: 7,
            ..Default::default()
        };
        let memo = MemoStatsSnapshot {
            hits: 5,
            misses: 2,
            ..Default::default()
        };
        let human = m.render_human(&io, &memo);
        assert!(human.contains("queries_total 1"));
        assert!(human.contains("io_pagelog_reads 7"));
        assert!(human.contains("memo_hits 5"));
        assert!(human.contains("memo_misses 2"));
        assert!(human.contains("memo_spill_errors 0"));
        assert!(human.contains("latency_p99_micros"));
        let json = m.render_json(&io, &memo);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"queries_total\":1"));
        assert!(json.contains("\"io_pagelog_reads\":7"));
        assert!(json.contains("\"memo_hits\":5"));
        assert!(json.contains("\"memo_evictions\":0"));
    }

    #[test]
    fn gauge_dec_saturates() {
        let m = Metrics::new();
        m.dec(&m.queue_depth);
        assert_eq!(m.queue_depth.load(Ordering::Relaxed), 0);
    }
}
