//! Prometheus text exposition for the server's registries.
//!
//! The `METRICS` verb renders every counter the server owns as flat
//! `name value` / JSON lines; this module renders the *same* snapshots
//! through [`rql_trace::TextBuilder`] for the `--metrics-listen`
//! endpoint, so a scrape and a `METRICS` frame taken at the same moment
//! agree number for number.
//!
//! The only judgement exercised here is counter-vs-gauge
//! classification: the wire-stable field lists carry no type
//! information, so each section declares which of its names are
//! level-style gauges (`connections_open`, `queue_depth`, the memo's
//! resident `bytes`, replication `lag_*`, …); everything else is a
//! monotonic counter and gets the `_total` suffix Prometheus naming
//! demands. Derived quantiles (`latency_p50_micros` and friends) are
//! *not* exported — the histogram itself is, as cumulative buckets, so
//! the scrape side can compute any quantile with `histogram_quantile`.

use std::time::Duration;

use rql_memo::MemoStatsSnapshot;
use rql_pagestore::IoStatsSnapshot;
use rql_repl::ReplSnapshot;
use rql_trace::TextBuilder;

use crate::metrics::{Metrics, StandingSnapshot};

/// Gauge names in [`Metrics::fields`]; the `latency_*` entries are
/// skipped entirely (the histogram is exported instead).
const SERVER_GAUGES: &[&str] = &["connections_open", "queue_depth", "in_flight"];

/// Gauge names in the store's `IoStatsSnapshot::fields`.
const IO_GAUGES: &[&str] = &["sidecar_bytes"];

/// Gauge names in the memo store's `MemoStatsSnapshot::fields`.
const MEMO_GAUGES: &[&str] = &["bytes", "spill_bytes"];

/// Gauge names in [`StandingSnapshot::fields`].
const STANDING_GAUGES: &[&str] = &[
    "queries",
    "subscribers",
    "push_mean_micros",
    "push_p99_micros",
];

/// Gauge names in `ReplSnapshot::fields`.
const REPL_GAUGES: &[&str] = &[
    "role",
    "phase",
    "followers",
    "lag_bytes",
    "lag_snapshots",
    "lag_micros",
];

fn section(
    b: &mut TextBuilder,
    prefix: &str,
    fields: &[(&'static str, u64)],
    gauges: &[&str],
    help: &str,
) {
    for (name, value) in fields {
        let full = format!("rql_{prefix}{name}");
        let line = format!("{help}: {name}.");
        if gauges.contains(name) {
            b.gauge(&full, &line, *value);
        } else {
            b.counter(&full, &line, *value);
        }
    }
}

/// Render the full `/metrics` page from one consistent set of
/// snapshots. `uptime` is the serving process's age.
pub fn render_openmetrics(
    metrics: &Metrics,
    io: &IoStatsSnapshot,
    memo: &MemoStatsSnapshot,
    standing: &StandingSnapshot,
    repl: &ReplSnapshot,
    uptime: Duration,
) -> String {
    let mut b = TextBuilder::new();
    b.info(
        "rql_build_info",
        "Build metadata of the serving binary.",
        &[("version", env!("CARGO_PKG_VERSION"))],
    );
    b.gauge_f64(
        "rql_uptime_seconds",
        "Seconds since the server started serving.",
        uptime.as_secs_f64(),
    );

    let server_fields: Vec<(&'static str, u64)> = metrics
        .fields()
        .into_iter()
        .filter(|(name, _)| !name.starts_with("latency_"))
        .collect();
    section(
        &mut b,
        "",
        &server_fields,
        SERVER_GAUGES,
        "rqld server counter",
    );
    b.histogram(
        "rql_query_latency_seconds",
        "End-to-end query latency (admission to reply).",
        &metrics.latency,
    );

    section(&mut b, "io_", &io.fields(), IO_GAUGES, "Snapshot-store I/O");
    section(
        &mut b,
        "memo_",
        &memo.fields(),
        MEMO_GAUGES,
        "Shared Qq memoization store",
    );
    section(
        &mut b,
        "standing_",
        &standing.fields(),
        STANDING_GAUGES,
        "Standing-query engine",
    );
    section(&mut b, "repl_", &repl.fields(), REPL_GAUGES, "Replication");
    // The lag gauge Prometheus alerting actually wants: the propagated
    // commit-timestamp lag in base units, derived from `lag_micros`.
    b.gauge_f64(
        "rql_repl_lag_seconds",
        "Replication lag from propagated leader commit timestamps.",
        repl.lag_micros as f64 / 1e6,
    );
    b.finish()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;

    fn page() -> String {
        let m = Metrics::new();
        m.inc(&m.queries_total);
        m.inc(&m.connections_open);
        m.latency.record(Duration::from_micros(100));
        let io = IoStatsSnapshot {
            pagelog_reads: 7,
            sidecar_bytes: 1024,
            ..Default::default()
        };
        let memo = MemoStatsSnapshot {
            hits: 5,
            bytes: 4096,
            ..Default::default()
        };
        let standing = StandingSnapshot {
            queries: 2,
            rows_pushed: 9,
            ..Default::default()
        };
        let repl = ReplSnapshot {
            role: 2,
            segments_applied: 3,
            lag_micros: 250_000,
            ..Default::default()
        };
        render_openmetrics(&m, &io, &memo, &standing, &repl, Duration::from_secs(2))
    }

    #[test]
    fn exposition_covers_every_registry() {
        let page = page();
        assert!(page.contains("rql_build_info{version=\""));
        assert!(page.contains("rql_uptime_seconds 2.0\n"));
        assert!(page.contains("rql_queries_total 1\n"));
        assert!(page.contains("rql_io_pagelog_reads_total 7\n"));
        assert!(page.contains("rql_memo_hits_total 5\n"));
        assert!(page.contains("rql_standing_rows_pushed_total 9\n"));
        assert!(page.contains("rql_repl_segments_applied_total 3\n"));
        assert!(page.contains("rql_query_latency_seconds_bucket{le=\"+Inf\"} 1\n"));
        assert!(page.contains("rql_query_latency_seconds_count 1\n"));
    }

    #[test]
    fn levels_export_as_gauges_not_counters() {
        let page = page();
        assert!(page.contains("# TYPE rql_connections_open gauge\n"));
        assert!(page.contains("rql_connections_open 1\n"));
        assert!(page.contains("# TYPE rql_io_sidecar_bytes gauge\n"));
        assert!(page.contains("# TYPE rql_memo_bytes gauge\n"));
        assert!(page.contains("# TYPE rql_standing_queries gauge\n"));
        assert!(page.contains("# TYPE rql_repl_lag_micros gauge\n"));
        assert!(page.contains("rql_repl_lag_seconds 0.25\n"));
        // Quantiles are derivable from the buckets; the flat micros
        // fields must not leak into the exposition.
        assert!(!page.contains("latency_p50"));
        assert!(!page.contains("latency_p99"));
    }
}
