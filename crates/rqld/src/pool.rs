//! The shared read-path stack and per-connection session pool.
//!
//! One [`SharedStack`] owns the process-wide snapshotable store — one
//! pagestore buffer cache, one Pagelog, one Maplog — exactly the "shared
//! read-path stack" of the server design. Each connection checks out a
//! [`ServerSession`]:
//!
//! * its **snap** side is a fresh [`Database`] facade over the *shared*
//!   store, so every session reads the same data through the same cache
//!   (the cross-snapshot page-sharing effect now also crosses sessions),
//!   while cancellation tokens stay per-connection;
//! * its **aux** side is a private in-memory database (`SnapIds` plus
//!   result tables), so mechanism folds never contend on a writer.
//!
//! The store is single-writer by design (`StoreError::WriterBusy` is an
//! error, not a wait), so the stack serializes *write* statements from
//! different sessions behind one mutex; reads never take it. `SnapIds`
//! rows are fanned out through a server-side snapshot log: before each
//! program, a session folds in every logged declaration it has not seen.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use parking_lot::{Mutex, RwLock};

use rql::{self as rqlcore, snapids, Database, Program, ProgramRun, RqlSession, SqlError};
use rql_memo::{MemoConfig, MemoStatsSnapshot, MemoStore};
use rql_retro::{RetroConfig, RetroStore};
use rql_sqlengine::{parse_statement, Stmt};

/// One snapshot declaration, as fanned out to every session's `SnapIds`.
#[derive(Debug, Clone)]
pub struct SnapEntry {
    /// Snapshot id.
    pub sid: u64,
    /// Declaration timestamp.
    pub ts: String,
    /// User-friendly name, when given.
    pub name: Option<String>,
}

/// The process-wide stack: shared store + write serialization + the
/// snapshot fan-out log + session-id allocation.
pub struct SharedStack {
    store: Arc<RetroStore>,
    /// Serializes snap-store write statements across sessions: the store
    /// itself errors (`WriterBusy`) rather than blocks on a second
    /// writer, which is correct for one embedded process but would make
    /// concurrent clients flaky. Reads never take this.
    write_lock: Mutex<()>,
    snapshot_log: RwLock<Vec<SnapEntry>>,
    next_session: AtomicU64,
    active_sessions: AtomicU64,
    max_sessions: u64,
    /// One memoization store shared by every checked-out session, so a
    /// Qq result computed by any connection serves all of them. `None`
    /// when the server runs with memoization disabled (`--no-memo`).
    memo: Option<Arc<MemoStore>>,
    /// Reject snap-store write statements with `[RQL505]` — the stack
    /// fronts a replication follower whose store only the apply thread
    /// may write.
    read_only: bool,
}

impl SharedStack {
    /// Build the stack and bootstrap the store's catalog while still
    /// single-threaded (two facades racing on an empty store would both
    /// try to bootstrap).
    pub fn new(config: RetroConfig, max_sessions: u64) -> Arc<SharedStack> {
        Self::new_with_memo(
            config,
            max_sessions,
            Some(Arc::new(MemoStore::new(MemoConfig::default()))),
        )
    }

    /// Like [`SharedStack::new`], with an explicit memo store (`None`
    /// disables cross-session memoization entirely).
    pub fn new_with_memo(
        config: RetroConfig,
        max_sessions: u64,
        memo: Option<Arc<MemoStore>>,
    ) -> Arc<SharedStack> {
        Self::new_over_store(RetroStore::in_memory(config), max_sessions, memo, false)
    }

    /// Build the stack over an existing store — a durable store opened
    /// from disk, or a replication follower's replica. The catalog is
    /// bootstrapped only when the store is empty (a seeded replica
    /// already carries the leader's catalog commit). `read_only = true`
    /// rejects every snap-store write statement with `[RQL505]`: on a
    /// follower, the replication apply thread is the only writer, and a
    /// local commit would diverge the replica from the leader's WAL.
    pub fn new_over_store(
        store: Arc<RetroStore>,
        max_sessions: u64,
        memo: Option<Arc<MemoStore>>,
        read_only: bool,
    ) -> Arc<SharedStack> {
        let bootstrap = Database::over_store(Arc::clone(&store));
        drop(bootstrap);
        Arc::new(SharedStack {
            store,
            write_lock: Mutex::new(()),
            snapshot_log: RwLock::new(Vec::new()),
            next_session: AtomicU64::new(1),
            active_sessions: AtomicU64::new(0),
            max_sessions,
            memo,
            read_only,
        })
    }

    /// Whether snap-store writes are rejected (replication follower).
    pub fn read_only(&self) -> bool {
        self.read_only
    }

    /// Counters of the shared memo store (zeroes when memoization is
    /// disabled, so `METRICS` renders a stable field set either way).
    pub fn memo_stats(&self) -> MemoStatsSnapshot {
        self.memo.as_ref().map(|m| m.stats()).unwrap_or_default()
    }

    /// The shared snapshotable store.
    pub fn store(&self) -> &Arc<RetroStore> {
        &self.store
    }

    /// Sessions currently checked out.
    pub fn active_sessions(&self) -> u64 {
        self.active_sessions.load(Ordering::Relaxed)
    }

    /// Snapshot declarations seen so far (for tests and STATUS).
    pub fn snapshot_log_len(&self) -> usize {
        self.snapshot_log.read().len()
    }

    /// Check out a session for a new connection. Errors when the session
    /// cap is reached.
    pub fn checkout(self: &Arc<Self>) -> rqlcore::Result<ServerSession> {
        let prev = self.active_sessions.fetch_add(1, Ordering::AcqRel);
        if prev >= self.max_sessions {
            self.active_sessions.fetch_sub(1, Ordering::AcqRel);
            return Err(SqlError::Constraint(format!(
                "session limit reached ({} active)",
                prev
            )));
        }
        let snap = Database::over_store(Arc::clone(&self.store));
        let aux = Database::in_memory(RetroConfig::new());
        let session = match RqlSession::over_databases(snap, aux) {
            Ok(s) => s,
            Err(e) => {
                self.active_sessions.fetch_sub(1, Ordering::AcqRel);
                return Err(e);
            }
        };
        // Every session shares the stack's memo store: a Qq result
        // computed by one connection is a warm hit for all the others.
        session.set_memo(self.memo.clone());
        let id = self.next_session.fetch_add(1, Ordering::Relaxed);
        Ok(ServerSession {
            id,
            session,
            stack: Arc::clone(self),
        })
    }

    /// A session for server-hosted background work (standing-query
    /// maintenance): shares the store and memo like any checkout, but is
    /// owned by the server itself and does not count against the
    /// connection cap.
    pub fn host_session(self: &Arc<Self>) -> rqlcore::Result<Arc<RqlSession>> {
        let snap = Database::over_store(Arc::clone(&self.store));
        let aux = Database::in_memory(RetroConfig::new());
        let session = RqlSession::over_databases(snap, aux)?;
        session.set_memo(self.memo.clone());
        Ok(session)
    }

    /// Hold the stack's writer serialization lock for a write outside
    /// any checked-out session. Standing-query registration takes this
    /// across its seeding pass: seeding writes the host session's aux
    /// store, which a concurrent commit also writes (maintenance runs on
    /// the committing thread) — unserialized, one of them would hit the
    /// store's `WriterBusy` error.
    pub fn writer_gate(&self) -> std::sync::MutexGuard<'_, ()> {
        self.write_lock.lock()
    }

    /// Fold every logged snapshot declaration `session` has not seen into
    /// its private `SnapIds` (same contract as
    /// [`ServerSession::sync_snapids`], usable for host sessions too).
    pub fn sync_snapids_into(&self, session: &RqlSession) -> rqlcore::Result<()> {
        let known: std::collections::HashSet<u64> = snapids::all_snapshots(session.aux_db())?
            .into_iter()
            .map(|(sid, _, _)| sid)
            .collect();
        let log = self.snapshot_log.read();
        for entry in log.iter() {
            if !known.contains(&entry.sid) {
                snapids::record_snapshot(
                    session.aux_db(),
                    entry.sid,
                    &entry.ts,
                    entry.name.as_deref(),
                )?;
            }
        }
        Ok(())
    }

    /// Record externally declared snapshots in the fan-out log, so every
    /// session's `SnapIds` picks them up on its next sync. This is how a
    /// follower `rqld` surfaces snapshots replicated from the leader —
    /// the same path local `COMMIT WITH SNAPSHOT` declarations take.
    /// Unlike local declarations (whose sids are unique by construction)
    /// external notes may race a snapshot-hook delivery of the same sid,
    /// so this dedups against the log under its write lock.
    pub fn note_snapshots(&self, sids: &[u64]) {
        if sids.is_empty() {
            return;
        }
        let ts = wall_clock_ts();
        let mut log = self.snapshot_log.write();
        for &sid in sids {
            if log.iter().any(|e| e.sid == sid) {
                continue;
            }
            log.push(SnapEntry {
                sid,
                ts: ts.clone(),
                name: None,
            });
        }
    }

    fn log_snapshots(&self, sids: &[u64]) {
        if sids.is_empty() {
            return;
        }
        let ts = wall_clock_ts();
        let mut log = self.snapshot_log.write();
        for &sid in sids {
            log.push(SnapEntry {
                sid,
                ts: ts.clone(),
                name: None,
            });
        }
    }
}

/// A checked-out per-connection session.
pub struct ServerSession {
    /// Session id (the `HELLO` handle used for out-of-band `CANCEL`).
    pub id: u64,
    session: Arc<RqlSession>,
    stack: Arc<SharedStack>,
}

impl Drop for ServerSession {
    fn drop(&mut self) {
        self.stack.active_sessions.fetch_sub(1, Ordering::AcqRel);
    }
}

impl ServerSession {
    /// The underlying RQL session (for cancellation and inspection).
    pub fn session(&self) -> &Arc<RqlSession> {
        &self.session
    }

    /// Fold every logged snapshot declaration this session has not seen
    /// into its private `SnapIds` (set-based, so no declaration is ever
    /// missed or duplicated regardless of interleaving).
    pub fn sync_snapids(&self) -> rqlcore::Result<()> {
        self.stack.sync_snapids_into(&self.session)
    }

    /// Execute a parsed program statement-by-statement. Statements that
    /// write the shared snap store take the stack's global write lock,
    /// held across a whole `BEGIN … COMMIT` span (the store is
    /// single-writer, and a second writer would see `WriterBusy`
    /// mid-transaction otherwise); reads and mechanism loops run
    /// lock-free. Declared snapshots go to the fan-out log so other
    /// sessions see them on their next sync. A transaction still open
    /// when the program ends is rolled back — the program is the
    /// transaction unit over the wire.
    pub fn run_program(&self, program: &Program) -> rqlcore::Result<ProgramRun> {
        self.run_program_opts(program, false)
    }

    /// [`ServerSession::run_program`] with a per-request memo override:
    /// `no_memo = true` detaches the shared memo store for the duration
    /// of this program (the client's `--no-memo` ablation switch) and
    /// re-attaches it afterwards. Requests on one connection are
    /// serialized, so the temporary detach cannot race another job on
    /// this session.
    pub fn run_program_opts(
        &self,
        program: &Program,
        no_memo: bool,
    ) -> rqlcore::Result<ProgramRun> {
        if no_memo {
            self.session.set_memo(None);
        }
        let out = self.run_program_inner(program);
        if no_memo {
            self.session.set_memo(self.stack.memo.clone());
        }
        out
    }

    fn run_program_inner(&self, program: &Program) -> rqlcore::Result<ProgramRun> {
        self.sync_snapids()?;
        let mut run = ProgramRun::default();
        let mut write_guard = None;
        let mut failure = None;
        for stmt in &program.statements {
            let single = Program {
                src: stmt.text.clone(),
                statements: vec![stmt.clone()],
                policy: program.policy,
                policy_span: None,
            };
            let writes_snap =
                !stmt.on_aux && !matches!(parse_statement(&stmt.text), Ok(Stmt::Select(_)));
            if writes_snap && self.stack.read_only {
                failure = Some(SqlError::Constraint(
                    "[RQL505] read-only replica: this server follows a leader; \
                     send writes to the leader"
                        .into(),
                ));
                break;
            }
            if writes_snap && write_guard.is_none() {
                write_guard = Some(self.stack.write_lock.lock());
            }
            match rqlcore::run_program_with_reports(&self.session, &single) {
                Ok(step) => {
                    self.stack.log_snapshots(&step.snapshots);
                    run.tables.extend(step.tables);
                    run.reports.extend(step.reports);
                    run.snapshots.extend(step.snapshots);
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
            if write_guard.is_some() && !self.session.snap_db().has_open_txn() {
                write_guard = None;
            }
        }
        // Roll back before releasing the lock: an open transaction still
        // holds the store's single writer slot.
        if self.session.snap_db().has_open_txn() {
            let _ = self.session.snap_db().execute("ROLLBACK");
        }
        drop(write_guard);
        match failure {
            Some(e) => Err(e),
            None => Ok(run),
        }
    }
}

/// "YYYY-MM-DD HH:MM:SS"-shaped UTC timestamp for log entries (matches
/// the session clock's rendering closely enough for `SnapIds`).
fn wall_clock_ts() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default()
        .as_secs();
    format!("@{secs}")
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]

    use super::*;
    use rql::parse_program;

    #[test]
    fn sessions_share_data_and_snapids_fan_out() {
        let stack = SharedStack::new(RetroConfig::new(), 8);
        let a = stack.checkout().unwrap();
        let b = stack.checkout().unwrap();
        assert_eq!(stack.active_sessions(), 2);

        let program = parse_program(
            "CREATE TABLE t (v INTEGER);\n\
             BEGIN;\n\
             INSERT INTO t VALUES (1), (2);\n\
             COMMIT WITH SNAPSHOT;",
        )
        .unwrap();
        a.run_program(&program).unwrap();
        assert_eq!(stack.snapshot_log_len(), 1);

        // Session B sees A's table through the shared store, and A's
        // snapshot through the fan-out log.
        let q = parse_program("SELECT COUNT(*) FROM t;").unwrap();
        let out = b.run_program(&q).unwrap();
        assert_eq!(out.tables[0].rows[0][0], rql::Value::Integer(2));
        let snaps = snapids::all_snapshots(b.session().aux_db()).unwrap();
        assert_eq!(snaps.len(), 1);

        // Sync is idempotent.
        b.sync_snapids().unwrap();
        assert_eq!(
            snapids::all_snapshots(b.session().aux_db()).unwrap().len(),
            1
        );
    }

    #[test]
    fn memo_is_shared_across_sessions_and_detachable_per_request() {
        let stack = SharedStack::new(RetroConfig::new(), 4);
        let writer = stack.checkout().unwrap();
        writer
            .run_program(
                &parse_program(
                    "CREATE TABLE t (v INTEGER);\n\
                     BEGIN;\n\
                     INSERT INTO t VALUES (1), (2);\n\
                     COMMIT WITH SNAPSHOT;\n\
                     BEGIN;\n\
                     INSERT INTO t VALUES (3);\n\
                     COMMIT WITH SNAPSHOT;",
                )
                .unwrap(),
            )
            .unwrap();

        // The memo key is the Qq fingerprint, not the result table, so
        // each run can land in a fresh table (the aux db rejects reuse).
        let mech = |table: &str| {
            parse_program(&format!(
                "SELECT CollateData(snap_id, 'SELECT v FROM t', '{table}') FROM SnapIds;"
            ))
            .unwrap()
        };
        let a = stack.checkout().unwrap();
        a.run_program(&mech("r1")).unwrap();
        let cold = stack.memo_stats();
        assert!(cold.inserts > 0, "first run populates the memo: {cold:?}");

        // A different session replays the same Qq: every iteration hits.
        let b = stack.checkout().unwrap();
        b.run_program(&mech("r2")).unwrap();
        let warm = stack.memo_stats();
        assert!(
            warm.hits >= cold.hits + 2,
            "second session should hit the shared memo: {warm:?}"
        );

        // Per-request opt-out leaves the counters untouched and then
        // re-attaches the shared store.
        let before = stack.memo_stats();
        b.run_program_opts(&mech("r3"), true).unwrap();
        let after = stack.memo_stats();
        assert_eq!(before.hits, after.hits, "no-memo run must not hit");
        assert_eq!(before.misses, after.misses, "no-memo run must not miss");
        b.run_program(&mech("r4")).unwrap();
        assert!(
            stack.memo_stats().hits > after.hits,
            "memo re-attached after the opt-out request"
        );
    }

    #[test]
    fn read_only_stack_rejects_snap_writes_with_rql505() {
        let store = RetroStore::in_memory(RetroConfig::new());
        let stack = SharedStack::new_over_store(store, 4, None, true);
        assert!(stack.read_only());
        let s = stack.checkout().unwrap();

        // Snap-store writes bounce with the replica code...
        let err = s
            .run_program(&parse_program("CREATE TABLE t (v INTEGER);").unwrap())
            .unwrap_err();
        assert!(
            err.to_string().contains("[RQL505]"),
            "want RQL505, got: {err}"
        );

        // ...while aux writes (mechanism scratch space) still work.
        s.run_program(&parse_program("--@aux\nCREATE TABLE scratch (v INTEGER);").unwrap())
            .unwrap();

        // Externally noted snapshots fan out like local declarations.
        stack.note_snapshots(&[7]);
        s.sync_snapids().unwrap();
        assert_eq!(
            snapids::all_snapshots(s.session().aux_db()).unwrap().len(),
            1
        );
    }

    #[test]
    fn session_cap_is_enforced_and_released() {
        let stack = SharedStack::new(RetroConfig::new(), 1);
        let a = stack.checkout().unwrap();
        assert!(stack.checkout().is_err());
        drop(a);
        assert!(stack.checkout().is_ok());
    }

    #[test]
    fn mechanism_runs_against_shared_store() {
        let stack = SharedStack::new(RetroConfig::new(), 4);
        let writer = stack.checkout().unwrap();
        writer
            .run_program(
                &parse_program(
                    "CREATE TABLE loggedin (l_userid TEXT);\n\
                     BEGIN;\n\
                     INSERT INTO loggedin VALUES ('UserA');\n\
                     COMMIT WITH SNAPSHOT;\n\
                     BEGIN;\n\
                     INSERT INTO loggedin VALUES ('UserB');\n\
                     COMMIT WITH SNAPSHOT;",
                )
                .unwrap(),
            )
            .unwrap();

        let reader = stack.checkout().unwrap();
        let out = reader
            .run_program(
                &parse_program(
                    "SELECT CollateData(snap_id, 'SELECT DISTINCT l_userid FROM loggedin', \
                     'Found') FROM SnapIds;\n\
                     --@aux\n\
                     SELECT COUNT(*) FROM Found;",
                )
                .unwrap(),
            )
            .unwrap();
        assert_eq!(out.reports.len(), 1);
        assert_eq!(out.reports[0].0, "Found");
        assert_eq!(out.tables[0].rows[0][0], rql::Value::Integer(3));
    }
}
